//! Umbrella crate: hosts the workspace examples and integration tests.
pub use flowtime as core;
