//! Graphviz DOT export for workflows.
//!
//! Render with e.g. `dot -Tsvg workflow.dot -o workflow.svg` to inspect a
//! DAG's level structure — node labels carry the job name, task geometry,
//! and total demand.

use crate::topo::node_levels;
use crate::workflow::Workflow;
use std::fmt::Write as _;

/// Renders `workflow` as a DOT digraph, ranking nodes by topological level
/// so Graphviz lays the paper's "node sets" out as columns.
///
/// # Example
///
/// ```
/// use flowtime_dag::prelude::*;
/// use flowtime_dag::dot::to_dot;
/// # fn main() -> Result<(), DagError> {
/// let mut b = WorkflowBuilder::new(WorkflowId::new(1), "etl");
/// let a = b.add_job(JobSpec::new("extract", 4, 2, ResourceVec::new([1, 1024])));
/// let c = b.add_job(JobSpec::new("load", 2, 1, ResourceVec::new([1, 1024])));
/// b.add_dep(a, c)?;
/// let dot = to_dot(&b.window(0, 50).build()?);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("extract"));
/// assert!(dot.contains("n0 -> n1"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(workflow: &Workflow) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {:?} {{", workflow.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    let levels = node_levels(workflow.dag()).expect("workflows are acyclic");
    for (node, job) in workflow.jobs().iter().enumerate() {
        let _ = writeln!(
            out,
            "  n{node} [label=\"{}\\n{}x{} slots\\n{}\"];",
            escape(job.name()),
            job.tasks(),
            job.task_slots(),
            job.total_demand()
        );
    }
    // Same-rank groups per level set.
    let max_level = levels.iter().copied().max().unwrap_or(0);
    for level in 0..=max_level {
        let members: Vec<String> = levels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == level)
            .map(|(n, _)| format!("n{n}"))
            .collect();
        if members.len() > 1 {
            let _ = writeln!(out, "  {{ rank=same; {}; }}", members.join("; "));
        }
    }
    for (from, to) in workflow.dag().edges() {
        let _ = writeln!(out, "  n{from} -> n{to};");
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::WorkflowId;
    use crate::job::JobSpec;
    use crate::resources::ResourceVec;
    use crate::workflow::WorkflowBuilder;

    fn fork_join() -> Workflow {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "fj");
        let spec = JobSpec::new("j", 4, 1, ResourceVec::new([1, 1024]));
        let head = b.add_job(spec.clone());
        let m1 = b.add_job(spec.clone());
        let m2 = b.add_job(spec.clone());
        let tail = b.add_job(spec);
        for m in [m1, m2] {
            b.add_dep(head, m).unwrap();
            b.add_dep(m, tail).unwrap();
        }
        b.window(0, 50).build().unwrap()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let dot = to_dot(&fork_join());
        for n in 0..4 {
            assert!(dot.contains(&format!("n{n} [label=")), "{dot}");
        }
        assert_eq!(dot.matches(" -> ").count(), 4);
        assert!(dot.contains("rank=same; n1; n2"), "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn names_are_escaped() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        b.add_job(JobSpec::new("say \"hi\"", 1, 1, ResourceVec::new([1, 1])));
        let dot = to_dot(&b.window(0, 5).build().unwrap());
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
