//! Typed identifiers for jobs and workflows.
//!
//! Newtypes keep workflow-level and job-level bookkeeping statically distinct
//! (a `JobId` can never be passed where a `WorkflowId` is expected), following
//! the C-NEWTYPE guideline.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a single job (a node of a workflow DAG, or an ad-hoc job).
///
/// # Example
///
/// ```
/// use flowtime_dag::JobId;
/// let id = JobId::new(7);
/// assert_eq!(id.as_u64(), 7);
/// assert_eq!(id.to_string(), "job-7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(u64);

impl JobId {
    /// Creates a job identifier from a raw integer.
    pub const fn new(raw: u64) -> Self {
        JobId(raw)
    }

    /// Returns the raw integer value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl From<u64> for JobId {
    fn from(raw: u64) -> Self {
        JobId(raw)
    }
}

/// Identifier of a workflow (a deadline-aware DAG of jobs).
///
/// # Example
///
/// ```
/// use flowtime_dag::WorkflowId;
/// let id = WorkflowId::new(3);
/// assert_eq!(id.to_string(), "wf-3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkflowId(u64);

impl WorkflowId {
    /// Creates a workflow identifier from a raw integer.
    pub const fn new(raw: u64) -> Self {
        WorkflowId(raw)
    }

    /// Returns the raw integer value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for WorkflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wf-{}", self.0)
    }
}

impl From<u64> for WorkflowId {
    fn from(raw: u64) -> Self {
        WorkflowId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn job_id_round_trip() {
        let id = JobId::new(42);
        assert_eq!(id.as_u64(), 42);
        assert_eq!(JobId::from(42), id);
    }

    #[test]
    fn workflow_id_round_trip() {
        let id = WorkflowId::new(9);
        assert_eq!(id.as_u64(), 9);
        assert_eq!(WorkflowId::from(9), id);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(JobId::new(1));
        set.insert(JobId::new(1));
        set.insert(JobId::new(2));
        assert_eq!(set.len(), 2);
        assert!(JobId::new(1) < JobId::new(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(JobId::new(5).to_string(), "job-5");
        assert_eq!(WorkflowId::new(5).to_string(), "wf-5");
    }
}
