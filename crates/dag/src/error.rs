//! Error types for workflow construction and DAG analysis.

use std::error::Error;
use std::fmt;

/// Errors produced while building or analysing workflow DAGs.
///
/// # Example
///
/// ```
/// use flowtime_dag::{Dag, DagError};
/// let mut dag = Dag::new(2);
/// dag.add_edge(0, 1)?;
/// assert_eq!(dag.add_edge(1, 1), Err(DagError::SelfLoop { node: 1 }));
/// # Ok::<(), DagError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DagError {
    /// An edge endpoint referred to a node index outside the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        len: usize,
    },
    /// An edge from a node to itself was added.
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },
    /// The same dependency edge was added twice.
    DuplicateEdge {
        /// Source node.
        from: usize,
        /// Destination node.
        to: usize,
    },
    /// The dependency graph contains a cycle and is not a DAG.
    Cycle {
        /// A node known to participate in (or be downstream of) a cycle.
        node: usize,
    },
    /// A workflow was built with no jobs.
    EmptyWorkflow,
    /// A workflow window had `deadline <= submit`.
    InvalidWindow {
        /// Submission slot `ws`.
        submit: u64,
        /// Deadline slot `wd`.
        deadline: u64,
    },
    /// A job specification was invalid (zero tasks or zero task duration).
    InvalidJob {
        /// Index of the offending job within the workflow.
        index: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::NodeOutOfRange { node, len } => {
                write!(f, "node index {node} out of range for graph of {len} nodes")
            }
            DagError::SelfLoop { node } => write!(f, "self-loop on node {node}"),
            DagError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            DagError::Cycle { node } => {
                write!(f, "dependency graph contains a cycle through node {node}")
            }
            DagError::EmptyWorkflow => f.write_str("workflow contains no jobs"),
            DagError::InvalidWindow { submit, deadline } => {
                write!(
                    f,
                    "workflow deadline {deadline} is not after submit time {submit}"
                )
            }
            DagError::InvalidJob { index, reason } => {
                write!(f, "job {index} is invalid: {reason}")
            }
        }
    }
}

impl Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs = [
            DagError::NodeOutOfRange { node: 3, len: 2 },
            DagError::SelfLoop { node: 1 },
            DagError::DuplicateEdge { from: 0, to: 1 },
            DagError::Cycle { node: 2 },
            DagError::EmptyWorkflow,
            DagError::InvalidWindow {
                submit: 5,
                deadline: 5,
            },
            DagError::InvalidJob {
                index: 0,
                reason: "zero tasks",
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase()
                    || msg.chars().next().unwrap().is_numeric()
            );
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<DagError>();
    }
}
