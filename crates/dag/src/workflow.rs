//! Workflows: the paper's `W_i = {Q_i, ws_i, wd_i, P_i}` (Section II-A).
//!
//! A workflow bundles a set of jobs `Q_i`, a submission slot `ws_i`, a
//! deadline slot `wd_i`, and the dependency structure `P_i` (a [`Dag`]).

use crate::critical_path::CriticalPath;
use crate::error::DagError;
use crate::graph::Dag;
use crate::ids::WorkflowId;
use crate::job::JobSpec;
use crate::resources::ResourceVec;
use crate::topo::{level_sets, topological_order};
use serde::{Deserialize, Serialize};

/// A deadline-aware workflow: a DAG of jobs with a submission time and a
/// deadline, both in slot units.
///
/// Construct with [`WorkflowBuilder`]; a built workflow is always internally
/// consistent (acyclic, non-empty, valid window, valid job specs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    id: WorkflowId,
    name: String,
    jobs: Vec<JobSpec>,
    dag: Dag,
    submit_slot: u64,
    deadline_slot: u64,
}

impl Workflow {
    /// The workflow identifier.
    pub fn id(&self) -> WorkflowId {
        self.id
    }

    /// The workflow's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The constituent jobs, indexed by DAG node index.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// The job at DAG node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= jobs().len()`.
    pub fn job(&self, index: usize) -> &JobSpec {
        &self.jobs[index]
    }

    /// The dependency DAG `P_i`.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Submission slot `ws_i`.
    pub fn submit_slot(&self) -> u64 {
        self.submit_slot
    }

    /// Deadline slot `wd_i`.
    pub fn deadline_slot(&self) -> u64 {
        self.deadline_slot
    }

    /// Window length `wd_i - ws_i` in slots.
    pub fn window_slots(&self) -> u64 {
        self.deadline_slot - self.submit_slot
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the workflow has no jobs (never true for built workflows).
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The paper's node sets: topological level sets of the DAG
    /// (see [`level_sets`]).
    ///
    /// Infallible here because construction validated acyclicity.
    pub fn level_sets(&self) -> Vec<Vec<usize>> {
        level_sets(&self.dag).expect("validated at build time")
    }

    /// One valid topological order of the jobs.
    pub fn topological_order(&self) -> Vec<usize> {
        topological_order(&self.dag).expect("validated at build time")
    }

    /// Critical path weighted by job minimum runtimes.
    pub fn critical_path(&self) -> CriticalPath {
        let weights: Vec<u64> = self.jobs.iter().map(JobSpec::min_runtime_slots).collect();
        CriticalPath::compute(&self.dag, &weights).expect("validated at build time")
    }

    /// Sum of total demands of all jobs, in resource-slots.
    pub fn total_demand(&self) -> ResourceVec {
        self.jobs
            .iter()
            .fold(ResourceVec::zero(), |acc, j| acc + j.total_demand())
    }

    /// Sum over level sets of the *set minimum runtime* (the max of member
    /// jobs' minimum runtimes) — the least window in which the workflow can
    /// complete even with unlimited resources, per the decomposition model.
    pub fn min_makespan_slots(&self) -> u64 {
        self.level_sets()
            .iter()
            .map(|set| {
                set.iter()
                    .map(|&j| self.jobs[j].min_runtime_slots())
                    .max()
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Returns a copy of this workflow shifted to a new submission slot,
    /// keeping the window length — used to instantiate recurring runs.
    #[must_use]
    pub fn recur_at(&self, id: WorkflowId, submit_slot: u64) -> Workflow {
        let window = self.window_slots();
        Workflow {
            id,
            name: self.name.clone(),
            jobs: self.jobs.clone(),
            dag: self.dag.clone(),
            submit_slot,
            deadline_slot: submit_slot + window,
        }
    }
}

/// Incremental builder for [`Workflow`].
///
/// # Example
///
/// ```
/// use flowtime_dag::{WorkflowBuilder, WorkflowId, JobSpec, ResourceVec};
/// # fn main() -> Result<(), flowtime_dag::DagError> {
/// let mut b = WorkflowBuilder::new(WorkflowId::new(1), "etl");
/// let extract = b.add_job(JobSpec::new("extract", 8, 2, ResourceVec::new([1, 1024])));
/// let load = b.add_job(JobSpec::new("load", 4, 1, ResourceVec::new([1, 2048])));
/// b.add_dep(extract, load)?;
/// let wf = b.window(0, 50).build()?;
/// assert_eq!(wf.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WorkflowBuilder {
    id: WorkflowId,
    name: String,
    jobs: Vec<JobSpec>,
    edges: Vec<(usize, usize)>,
    submit_slot: u64,
    deadline_slot: u64,
}

impl WorkflowBuilder {
    /// Starts a builder for workflow `id` named `name`.
    pub fn new(id: WorkflowId, name: impl Into<String>) -> Self {
        WorkflowBuilder {
            id,
            name: name.into(),
            jobs: Vec::new(),
            edges: Vec::new(),
            submit_slot: 0,
            deadline_slot: 0,
        }
    }

    /// Adds a job, returning its node index for use in [`add_dep`].
    ///
    /// [`add_dep`]: WorkflowBuilder::add_dep
    pub fn add_job(&mut self, spec: JobSpec) -> usize {
        self.jobs.push(spec);
        self.jobs.len() - 1
    }

    /// Declares that `dependent` cannot start before `prerequisite`
    /// completes.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::NodeOutOfRange`], [`DagError::SelfLoop`], or
    /// [`DagError::DuplicateEdge`] on malformed edges (cycles are detected
    /// at [`build`](WorkflowBuilder::build) time).
    pub fn add_dep(&mut self, prerequisite: usize, dependent: usize) -> Result<(), DagError> {
        let n = self.jobs.len();
        for node in [prerequisite, dependent] {
            if node >= n {
                return Err(DagError::NodeOutOfRange { node, len: n });
            }
        }
        if prerequisite == dependent {
            return Err(DagError::SelfLoop { node: prerequisite });
        }
        if self.edges.contains(&(prerequisite, dependent)) {
            return Err(DagError::DuplicateEdge {
                from: prerequisite,
                to: dependent,
            });
        }
        self.edges.push((prerequisite, dependent));
        Ok(())
    }

    /// Sets the workflow window `[ws, wd)` in slots.
    #[must_use]
    pub fn window(mut self, submit_slot: u64, deadline_slot: u64) -> Self {
        self.submit_slot = submit_slot;
        self.deadline_slot = deadline_slot;
        self
    }

    /// Finalizes the workflow.
    ///
    /// # Errors
    ///
    /// * [`DagError::EmptyWorkflow`] if no jobs were added.
    /// * [`DagError::InvalidWindow`] if `deadline <= submit`.
    /// * [`DagError::InvalidJob`] if a job spec is degenerate.
    /// * [`DagError::Cycle`] if the dependencies are cyclic.
    pub fn build(self) -> Result<Workflow, DagError> {
        if self.jobs.is_empty() {
            return Err(DagError::EmptyWorkflow);
        }
        if self.deadline_slot <= self.submit_slot {
            return Err(DagError::InvalidWindow {
                submit: self.submit_slot,
                deadline: self.deadline_slot,
            });
        }
        for (index, job) in self.jobs.iter().enumerate() {
            if let Err(reason) = job.validate() {
                return Err(DagError::InvalidJob { index, reason });
            }
        }
        let dag = Dag::from_edges(self.jobs.len(), self.edges)?;
        topological_order(&dag)?; // acyclicity check
        Ok(Workflow {
            id: self.id,
            name: self.name,
            jobs: self.jobs,
            dag,
            submit_slot: self.submit_slot,
            deadline_slot: self.deadline_slot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceVec;

    fn job(tasks: u64, dur: u64) -> JobSpec {
        JobSpec::new("j", tasks, dur, ResourceVec::new([1, 1024]))
    }

    fn fork_join(n_mid: usize, window: u64) -> Workflow {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "fj");
        let head = b.add_job(job(4, 2));
        let mids: Vec<usize> = (0..n_mid).map(|_| b.add_job(job(4, 2))).collect();
        let tail = b.add_job(job(4, 2));
        for &m in &mids {
            b.add_dep(head, m).unwrap();
            b.add_dep(m, tail).unwrap();
        }
        b.window(0, window).build().unwrap()
    }

    #[test]
    fn build_validates_window() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        b.add_job(job(1, 1));
        assert!(matches!(
            b.clone().window(10, 10).build(),
            Err(DagError::InvalidWindow { .. })
        ));
        assert!(b.window(10, 11).build().is_ok());
    }

    #[test]
    fn build_rejects_empty() {
        let b = WorkflowBuilder::new(WorkflowId::new(1), "w").window(0, 10);
        assert_eq!(b.build().unwrap_err(), DagError::EmptyWorkflow);
    }

    #[test]
    fn build_rejects_cycle() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        let a = b.add_job(job(1, 1));
        let c = b.add_job(job(1, 1));
        b.add_dep(a, c).unwrap();
        b.add_dep(c, a).unwrap();
        assert!(matches!(
            b.window(0, 10).build(),
            Err(DagError::Cycle { .. })
        ));
    }

    #[test]
    fn build_rejects_bad_job() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        b.add_job(job(0, 1));
        assert!(matches!(
            b.window(0, 10).build(),
            Err(DagError::InvalidJob { index: 0, .. })
        ));
    }

    #[test]
    fn min_makespan_sums_level_maxima() {
        let wf = fork_join(3, 100);
        // Three levels, each min runtime 2 slots (all tasks parallel).
        assert_eq!(wf.min_makespan_slots(), 6);
    }

    #[test]
    fn total_demand_adds_up() {
        let wf = fork_join(2, 100);
        // 4 jobs x (4 tasks x 2 slots) x <1, 1024>
        assert_eq!(wf.total_demand(), ResourceVec::new([32, 32 * 1024]));
    }

    #[test]
    fn recur_shifts_window() {
        let wf = fork_join(2, 100);
        let next = wf.recur_at(WorkflowId::new(2), 500);
        assert_eq!(next.submit_slot(), 500);
        assert_eq!(next.deadline_slot(), 600);
        assert_eq!(next.len(), wf.len());
        assert_eq!(next.id(), WorkflowId::new(2));
    }

    #[test]
    fn critical_path_of_fork_join() {
        let wf = fork_join(5, 100);
        let cp = wf.critical_path();
        assert_eq!(cp.nodes.len(), 3);
        assert_eq!(cp.length, 6);
    }

    #[test]
    fn add_dep_validates_indices() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        let a = b.add_job(job(1, 1));
        assert!(matches!(
            b.add_dep(a, 7),
            Err(DagError::NodeOutOfRange { .. })
        ));
        assert!(matches!(b.add_dep(a, a), Err(DagError::SelfLoop { .. })));
    }
}
