//! Multi-resource vectors.
//!
//! The paper's formulation ranges over resource types `r ∈ R`; its
//! experiments use two (CPU cores and memory, e.g. the Fig. 7 cluster of
//! 500 cores and 1 TB of memory). We fix `|R| =` [`NUM_RESOURCES`] `= 2` and
//! represent quantities as a small fixed-size array, which keeps arithmetic
//! allocation-free throughout the scheduler's inner loops.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub, SubAssign};

/// Number of resource dimensions tracked by the scheduler.
pub const NUM_RESOURCES: usize = 2;

/// The resource dimensions of a [`ResourceVec`].
///
/// # Example
///
/// ```
/// use flowtime_dag::{ResourceKind, ResourceVec};
/// let v = ResourceVec::new([4, 8192]);
/// assert_eq!(v[ResourceKind::Cpu], 4);
/// assert_eq!(v[ResourceKind::MemoryMb], 8192);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU, in whole cores (YARN vcores are integral, which is what motivates
    /// the paper's integrality constraint Eq. (5)).
    Cpu,
    /// Memory, in mebibytes.
    MemoryMb,
}

impl ResourceKind {
    /// All resource kinds, in index order.
    pub const ALL: [ResourceKind; NUM_RESOURCES] = [ResourceKind::Cpu, ResourceKind::MemoryMb];

    /// The array index of this resource kind.
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::MemoryMb => 1,
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Cpu => f.write_str("cpu"),
            ResourceKind::MemoryMb => f.write_str("mem_mb"),
        }
    }
}

/// A non-negative quantity of each resource kind.
///
/// Arithmetic panics on overflow in debug builds (standard Rust semantics);
/// [`ResourceVec::saturating_sub`] is provided for the common "remaining
/// capacity" computation where clamping at zero is the intended behaviour.
///
/// # Example
///
/// ```
/// use flowtime_dag::ResourceVec;
/// let cap = ResourceVec::new([500, 1_048_576]); // 500 cores, 1 TiB
/// let task = ResourceVec::new([1, 2048]);
/// let ten_tasks = task * 10;
/// assert!(ten_tasks.fits_within(&cap));
/// assert_eq!(cap.saturating_sub(&ten_tasks), ResourceVec::new([490, 1_028_096]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ResourceVec([u64; NUM_RESOURCES]);

impl ResourceVec {
    /// Creates a resource vector from raw per-kind quantities,
    /// ordered as [`ResourceKind::ALL`].
    pub const fn new(raw: [u64; NUM_RESOURCES]) -> Self {
        ResourceVec(raw)
    }

    /// The zero vector.
    pub const fn zero() -> Self {
        ResourceVec([0; NUM_RESOURCES])
    }

    /// A vector with `amount` in every dimension.
    pub const fn splat(amount: u64) -> Self {
        ResourceVec([amount; NUM_RESOURCES])
    }

    /// Returns the underlying array.
    pub const fn as_array(&self) -> [u64; NUM_RESOURCES] {
        self.0
    }

    /// Returns the quantity of resource `kind`.
    pub const fn get(&self, kind: ResourceKind) -> u64 {
        self.0[kind.index()]
    }

    /// Returns the quantity at raw dimension `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= NUM_RESOURCES`.
    pub fn dim(&self, r: usize) -> u64 {
        self.0[r]
    }

    /// True if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }

    /// True if `self[r] <= cap[r]` for every resource `r`
    /// (component-wise domination, the capacity check of Eq. (4)).
    pub fn fits_within(&self, cap: &ResourceVec) -> bool {
        self.0.iter().zip(cap.0.iter()).all(|(a, b)| a <= b)
    }

    /// Component-wise subtraction clamped at zero.
    pub fn saturating_sub(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = [0; NUM_RESOURCES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a.saturating_sub(*b);
        }
        ResourceVec(out)
    }

    /// Component-wise checked subtraction; `None` if any component would
    /// go negative.
    pub fn checked_sub(&self, other: &ResourceVec) -> Option<ResourceVec> {
        let mut out = [0; NUM_RESOURCES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a.checked_sub(*b)?;
        }
        Some(ResourceVec(out))
    }

    /// Component-wise minimum.
    pub fn min(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = [0; NUM_RESOURCES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = (*a).min(*b);
        }
        ResourceVec(out)
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = [0; NUM_RESOURCES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = (*a).max(*b);
        }
        ResourceVec(out)
    }

    /// The largest `q` such that `q * self` fits within `cap`
    /// (how many unit-tasks of shape `self` the capacity can host).
    /// Returns `u64::MAX` if `self` is zero.
    pub fn times_fitting(&self, cap: &ResourceVec) -> u64 {
        let mut q = u64::MAX;
        for (need, have) in self.0.iter().zip(cap.0.iter()) {
            if *need > 0 {
                q = q.min(have / need);
            }
        }
        q
    }

    /// The maximum over resources of `self[r] / cap[r]`, the normalized load
    /// `max_r z^r / C^r` of the paper's objective (Eq. (1)). Dimensions with
    /// zero capacity are skipped.
    pub fn max_normalized_by(&self, cap: &ResourceVec) -> f64 {
        let mut worst = 0.0f64;
        for (used, have) in self.0.iter().zip(cap.0.iter()) {
            if *have > 0 {
                worst = worst.max(*used as f64 / *have as f64);
            }
        }
        worst
    }
}

impl Index<ResourceKind> for ResourceVec {
    type Output = u64;
    fn index(&self, kind: ResourceKind) -> &u64 {
        &self.0[kind.index()]
    }
}

impl IndexMut<ResourceKind> for ResourceVec {
    fn index_mut(&mut self, kind: ResourceKind) -> &mut u64 {
        &mut self.0[kind.index()]
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(self, rhs: ResourceVec) -> ResourceVec {
        let mut out = self.0;
        for (o, b) in out.iter_mut().zip(rhs.0.iter()) {
            *o += b;
        }
        ResourceVec(out)
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: ResourceVec) {
        for (o, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *o += b;
        }
    }
}

impl Sub for ResourceVec {
    type Output = ResourceVec;
    /// # Panics
    ///
    /// Panics if any component underflows (in debug builds); use
    /// [`ResourceVec::saturating_sub`] or [`ResourceVec::checked_sub`] when
    /// clamping is intended.
    fn sub(self, rhs: ResourceVec) -> ResourceVec {
        let mut out = self.0;
        for (o, b) in out.iter_mut().zip(rhs.0.iter()) {
            *o -= b;
        }
        ResourceVec(out)
    }
}

impl SubAssign for ResourceVec {
    fn sub_assign(&mut self, rhs: ResourceVec) {
        for (o, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *o -= b;
        }
    }
}

impl Mul<u64> for ResourceVec {
    type Output = ResourceVec;
    fn mul(self, rhs: u64) -> ResourceVec {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o *= rhs;
        }
        ResourceVec(out)
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<cpu={}, mem_mb={}>",
            self.0[ResourceKind::Cpu.index()],
            self.0[ResourceKind::MemoryMb.index()]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = ResourceVec::new([4, 100]);
        let b = ResourceVec::new([1, 50]);
        assert_eq!(a + b, ResourceVec::new([5, 150]));
        assert_eq!(a - b, ResourceVec::new([3, 50]));
        assert_eq!(b * 3, ResourceVec::new([3, 150]));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_and_checked_sub() {
        let a = ResourceVec::new([1, 100]);
        let b = ResourceVec::new([2, 50]);
        assert_eq!(a.saturating_sub(&b), ResourceVec::new([0, 50]));
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(b.checked_sub(&b), Some(ResourceVec::zero()));
    }

    #[test]
    fn fits_and_times_fitting() {
        let cap = ResourceVec::new([10, 100]);
        let task = ResourceVec::new([2, 30]);
        assert!(task.fits_within(&cap));
        assert_eq!(task.times_fitting(&cap), 3); // mem-bound: 100/30 = 3
        assert_eq!(ResourceVec::zero().times_fitting(&cap), u64::MAX);
    }

    #[test]
    fn min_max_components() {
        let a = ResourceVec::new([4, 10]);
        let b = ResourceVec::new([2, 20]);
        assert_eq!(a.min(&b), ResourceVec::new([2, 10]));
        assert_eq!(a.max(&b), ResourceVec::new([4, 20]));
    }

    #[test]
    fn normalized_load() {
        let cap = ResourceVec::new([10, 100]);
        let used = ResourceVec::new([5, 80]);
        let norm = used.max_normalized_by(&cap);
        assert!((norm - 0.8).abs() < 1e-12);
        // Zero-capacity dimensions are skipped, not a division by zero.
        let cap0 = ResourceVec::new([10, 0]);
        assert!((used.max_normalized_by(&cap0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn indexing_by_kind() {
        let mut v = ResourceVec::zero();
        v[ResourceKind::Cpu] = 7;
        assert_eq!(v[ResourceKind::Cpu], 7);
        assert_eq!(v.dim(0), 7);
        assert_eq!(v.get(ResourceKind::MemoryMb), 0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", ResourceVec::zero()).is_empty());
        assert!(!format!("{:?}", ResourceVec::zero()).is_empty());
    }
}
