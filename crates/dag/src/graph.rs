//! Directed acyclic graph over workflow jobs.
//!
//! Nodes are dense indices `0..n` (the position of each job within its
//! workflow); edges point from a job to the jobs that depend on it — the
//! paper's `P_i^j`, "all the jobs that depend on the j-th job" (Section
//! II-A). Acyclicity is validated on demand by [`crate::topo`].

use crate::error::DagError;
use serde::{Deserialize, Serialize};

/// A dependency graph over `n` jobs.
///
/// # Example
///
/// ```
/// use flowtime_dag::Dag;
/// # fn main() -> Result<(), flowtime_dag::DagError> {
/// let mut dag = Dag::new(3);
/// dag.add_edge(0, 1)?; // job 1 depends on job 0
/// dag.add_edge(1, 2)?;
/// assert_eq!(dag.successors(0), &[1]);
/// assert_eq!(dag.predecessors(2), &[1]);
/// assert_eq!(dag.sources().collect::<Vec<_>>(), vec![0]);
/// assert_eq!(dag.sinks().collect::<Vec<_>>(), vec![2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag {
    n: usize,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
    edge_count: usize,
}

impl Dag {
    /// Creates an edgeless graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        Dag {
            n,
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Creates a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Dag::add_edge`].
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, DagError> {
        let mut dag = Dag::new(n);
        for (from, to) in edges {
            dag.add_edge(from, to)?;
        }
        Ok(dag)
    }

    /// Adds a dependency edge `from -> to` (job `to` cannot start until job
    /// `from` completes).
    ///
    /// # Errors
    ///
    /// * [`DagError::NodeOutOfRange`] if either endpoint is `>= n`.
    /// * [`DagError::SelfLoop`] if `from == to`.
    /// * [`DagError::DuplicateEdge`] if the edge already exists.
    ///
    /// Cycles are *not* detected here (that would make edge insertion
    /// quadratic); they are reported by [`crate::topo::topological_order`].
    pub fn add_edge(&mut self, from: usize, to: usize) -> Result<(), DagError> {
        for node in [from, to] {
            if node >= self.n {
                return Err(DagError::NodeOutOfRange { node, len: self.n });
            }
        }
        if from == to {
            return Err(DagError::SelfLoop { node: from });
        }
        if self.succ[from].contains(&to) {
            return Err(DagError::DuplicateEdge { from, to });
        }
        self.succ[from].push(to);
        self.pred[to].push(from);
        self.edge_count += 1;
        Ok(())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Nodes that depend on `node` (out-neighbours).
    ///
    /// # Panics
    ///
    /// Panics if `node >= len()`.
    pub fn successors(&self, node: usize) -> &[usize] {
        &self.succ[node]
    }

    /// Nodes that `node` depends on (in-neighbours).
    ///
    /// # Panics
    ///
    /// Panics if `node >= len()`.
    pub fn predecessors(&self, node: usize) -> &[usize] {
        &self.pred[node]
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<usize> {
        self.pred.iter().map(Vec::len).collect()
    }

    /// Nodes with no predecessors (entry jobs).
    pub fn sources(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(|&v| self.pred[v].is_empty())
    }

    /// Nodes with no successors (exit jobs).
    pub fn sinks(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(|&v| self.succ[v].is_empty())
    }

    /// All edges as `(from, to)` pairs, in insertion order per source node.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(from, tos)| tos.iter().map(move |&to| (from, to)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let dag = Dag::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.edge_count(), 4);
        assert_eq!(dag.successors(0), &[1, 2]);
        assert_eq!(dag.predecessors(3), &[1, 2]);
        assert_eq!(dag.sources().collect::<Vec<_>>(), vec![0]);
        assert_eq!(dag.sinks().collect::<Vec<_>>(), vec![3]);
        assert_eq!(dag.edges().count(), 4);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut dag = Dag::new(2);
        assert_eq!(
            dag.add_edge(0, 5),
            Err(DagError::NodeOutOfRange { node: 5, len: 2 })
        );
    }

    #[test]
    fn rejects_self_loop_and_duplicate() {
        let mut dag = Dag::new(2);
        assert_eq!(dag.add_edge(1, 1), Err(DagError::SelfLoop { node: 1 }));
        dag.add_edge(0, 1).unwrap();
        assert_eq!(
            dag.add_edge(0, 1),
            Err(DagError::DuplicateEdge { from: 0, to: 1 })
        );
    }

    #[test]
    fn empty_graph() {
        let dag = Dag::new(0);
        assert!(dag.is_empty());
        assert_eq!(dag.sources().count(), 0);
        assert_eq!(dag.in_degrees(), Vec::<usize>::new());
    }

    #[test]
    fn isolated_nodes_are_sources_and_sinks() {
        let dag = Dag::new(3);
        assert_eq!(dag.sources().count(), 3);
        assert_eq!(dag.sinks().count(), 3);
    }
}
