//! Job specifications.
//!
//! A job is one node of a workflow DAG: a batch of `tasks` identical tasks,
//! each running for `task_slots` time slots and occupying a `per_task`
//! resource vector while running (a YARN container). This matches the
//! paper's system model: for recurring workflows "the resource demand for
//! each job ... as well as the estimated running time of tasks in each job"
//! are known (Section I).

use crate::resources::{ResourceKind, ResourceVec, NUM_RESOURCES};
use serde::{Deserialize, Serialize};

/// Static description of a job's estimated shape.
///
/// The *work* of a job is `tasks * task_slots`, measured in task-slots: one
/// task occupying its container for one slot. The scheduler allocates some
/// number of concurrent tasks `q_it` to the job in each slot; the job
/// completes once its accumulated task-slots reach [`JobSpec::work`].
///
/// # Example
///
/// ```
/// use flowtime_dag::{JobSpec, ResourceVec, ResourceKind};
/// // 40 map tasks, 3 slots each, 1 core + 2 GiB per container:
/// let spec = JobSpec::new("wordcount-map", 40, 3, ResourceVec::new([1, 2048]));
/// assert_eq!(spec.work(), 120);
/// // With at most 10 concurrent tasks it needs at least 12 slots:
/// let spec = spec.with_max_parallel(10);
/// assert_eq!(spec.min_runtime_slots(), 12);
/// assert_eq!(spec.total_demand().get(ResourceKind::Cpu), 120);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    name: String,
    tasks: u64,
    task_slots: u64,
    per_task: ResourceVec,
    max_parallel: Option<u64>,
}

impl JobSpec {
    /// Creates a job of `tasks` tasks, each lasting `task_slots` slots and
    /// consuming `per_task` resources while running.
    ///
    /// Zero `tasks` or `task_slots` are permitted here and rejected at
    /// workflow build time ([`crate::WorkflowBuilder::build`]), so that
    /// specs can be constructed incrementally.
    pub fn new(
        name: impl Into<String>,
        tasks: u64,
        task_slots: u64,
        per_task: ResourceVec,
    ) -> Self {
        JobSpec {
            name: name.into(),
            tasks,
            task_slots,
            per_task,
            max_parallel: None,
        }
    }

    /// Caps the number of concurrently running tasks (e.g. a wave limit).
    ///
    /// A cap of zero is treated as "no cap" at validation time and rejected.
    #[must_use]
    pub fn with_max_parallel(mut self, max_parallel: u64) -> Self {
        self.max_parallel = Some(max_parallel);
        self
    }

    /// The job's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks in the job.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// Estimated duration of one task, in slots.
    pub fn task_slots(&self) -> u64 {
        self.task_slots
    }

    /// Resources held by one running task.
    pub fn per_task(&self) -> ResourceVec {
        self.per_task
    }

    /// Concurrency cap, if any.
    pub fn max_parallel(&self) -> Option<u64> {
        self.max_parallel
    }

    /// Total work in task-slots: `tasks * task_slots`.
    pub fn work(&self) -> u64 {
        self.tasks * self.task_slots
    }

    /// Effective concurrency limit: the explicit cap, or `tasks` (all tasks
    /// can run at once) when uncapped.
    pub fn effective_parallel(&self) -> u64 {
        match self.max_parallel {
            Some(p) => p.min(self.tasks).max(1),
            None => self.tasks.max(1),
        }
    }

    /// Minimum runtime in slots assuming unlimited cluster capacity:
    /// the number of task *waves* times the task duration,
    /// `ceil(tasks / effective_parallel) * task_slots`.
    ///
    /// This is the per-job "minimum runtime" the decomposer reserves for each
    /// node set (Section IV-B).
    pub fn min_runtime_slots(&self) -> u64 {
        if self.tasks == 0 {
            return 0;
        }
        let p = self.effective_parallel();
        self.tasks.div_ceil(p) * self.task_slots
    }

    /// Total resource demand `s_i^r = work * per_task[r]` over the job's
    /// lifetime, in resource-slots (constraint Eq. (2) right-hand side).
    pub fn total_demand(&self) -> ResourceVec {
        self.per_task * self.work()
    }

    /// The demand of a single resource dimension, convenience for summations.
    pub fn demand_of(&self, kind: ResourceKind) -> u64 {
        self.total_demand().get(kind)
    }

    /// Validates the spec, returning a reason string on failure.
    pub(crate) fn validate(&self) -> Result<(), &'static str> {
        if self.tasks == 0 {
            return Err("job has zero tasks");
        }
        if self.task_slots == 0 {
            return Err("job has zero task duration");
        }
        if self.per_task.is_zero() {
            return Err("job tasks consume no resources");
        }
        if self.max_parallel == Some(0) {
            return Err("max_parallel of zero");
        }
        let _ = NUM_RESOURCES; // dimensionality is fixed at compile time
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tasks: u64, dur: u64) -> JobSpec {
        JobSpec::new("t", tasks, dur, ResourceVec::new([1, 1024]))
    }

    #[test]
    fn work_and_demand() {
        let j = spec(10, 3);
        assert_eq!(j.work(), 30);
        assert_eq!(j.total_demand(), ResourceVec::new([30, 30 * 1024]));
        assert_eq!(j.demand_of(ResourceKind::Cpu), 30);
    }

    #[test]
    fn min_runtime_unlimited_parallelism_is_one_wave() {
        assert_eq!(spec(10, 3).min_runtime_slots(), 3);
    }

    #[test]
    fn min_runtime_with_waves() {
        let j = spec(10, 3).with_max_parallel(4);
        // ceil(10/4) = 3 waves of 3 slots
        assert_eq!(j.min_runtime_slots(), 9);
    }

    #[test]
    fn min_runtime_cap_larger_than_tasks() {
        let j = spec(4, 2).with_max_parallel(100);
        assert_eq!(j.effective_parallel(), 4);
        assert_eq!(j.min_runtime_slots(), 2);
    }

    #[test]
    fn zero_task_job_has_zero_runtime() {
        assert_eq!(spec(0, 3).min_runtime_slots(), 0);
    }

    #[test]
    fn validation_catches_degenerate_specs() {
        assert!(spec(0, 1).validate().is_err());
        assert!(spec(1, 0).validate().is_err());
        assert!(JobSpec::new("t", 1, 1, ResourceVec::zero())
            .validate()
            .is_err());
        assert!(spec(1, 1).with_max_parallel(0).validate().is_err());
        assert!(spec(1, 1).validate().is_ok());
    }
}
