//! Critical-path analysis.
//!
//! The critical path is the node-weight-heaviest source-to-sink path of the
//! workflow DAG, with each node weighted by its job's minimum runtime. The
//! paper uses it in two places: the traditional decomposer it compares
//! against (Yu et al. [7], Section IV-B) and the fallback decomposer used
//! when the workflow window is tighter than the sum of per-set minimum
//! runtimes (footnote 1).

use crate::error::DagError;
use crate::graph::Dag;
use crate::topo::topological_order;

/// A critical path through a node-weighted DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Nodes along the path, in topological order (source first).
    pub nodes: Vec<usize>,
    /// Total weight of the path (sum of node weights along it).
    pub length: u64,
}

impl CriticalPath {
    /// Computes the critical path of `dag` under per-node `weights`.
    ///
    /// Weights are typically job minimum runtimes in slots
    /// ([`crate::JobSpec::min_runtime_slots`]).
    ///
    /// # Errors
    ///
    /// * [`DagError::Cycle`] if the graph is not acyclic.
    /// * [`DagError::NodeOutOfRange`] if `weights.len() != dag.len()`.
    ///
    /// # Example
    ///
    /// ```
    /// use flowtime_dag::{Dag, CriticalPath};
    /// # fn main() -> Result<(), flowtime_dag::DagError> {
    /// // Diamond: 0 -> {1, 2} -> 3, node 2 is the heavy branch.
    /// let dag = Dag::from_edges(4, [(0,1),(0,2),(1,3),(2,3)])?;
    /// let cp = CriticalPath::compute(&dag, &[2, 1, 10, 2])?;
    /// assert_eq!(cp.nodes, vec![0, 2, 3]);
    /// assert_eq!(cp.length, 14);
    /// # Ok(())
    /// # }
    /// ```
    pub fn compute(dag: &Dag, weights: &[u64]) -> Result<Self, DagError> {
        if weights.len() != dag.len() {
            return Err(DagError::NodeOutOfRange {
                node: weights.len(),
                len: dag.len(),
            });
        }
        if dag.is_empty() {
            return Ok(CriticalPath {
                nodes: Vec::new(),
                length: 0,
            });
        }
        let order = topological_order(dag)?;
        // dist[v] = heaviest path ending at v (inclusive of v's weight).
        let mut dist = vec![0u64; dag.len()];
        let mut best_pred: Vec<Option<usize>> = vec![None; dag.len()];
        for &v in &order {
            let mut incoming = 0;
            for &p in dag.predecessors(v) {
                if dist[p] >= incoming {
                    incoming = dist[p];
                    best_pred[v] = Some(p);
                }
            }
            dist[v] = incoming + weights[v];
        }
        let (end, length) = dist
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, d)| d)
            .expect("non-empty dag");
        let mut nodes = vec![end];
        let mut cur = end;
        while let Some(p) = best_pred[cur] {
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        Ok(CriticalPath { nodes, length })
    }

    /// True if `node` lies on this critical path.
    pub fn contains(&self, node: usize) -> bool {
        self.nodes.contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_path_is_whole_chain() {
        let dag = Dag::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let cp = CriticalPath::compute(&dag, &[5, 7, 3]).unwrap();
        assert_eq!(cp.nodes, vec![0, 1, 2]);
        assert_eq!(cp.length, 15);
        assert!(cp.contains(1));
        assert!(!cp.contains(99));
    }

    #[test]
    fn picks_heavier_branch() {
        let dag = Dag::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let cp = CriticalPath::compute(&dag, &[1, 100, 1, 1]).unwrap();
        assert_eq!(cp.nodes, vec![0, 1, 3]);
        assert_eq!(cp.length, 102);
    }

    #[test]
    fn fork_join_equal_weights_matches_paper() {
        // Fig. 3 with equal runtimes: critical path is 1 -> 2 -> n+1 (3 hops).
        let n_mid = 4;
        let mut edges = Vec::new();
        for m in 1..=n_mid {
            edges.push((0, m));
            edges.push((m, n_mid + 1));
        }
        let dag = Dag::from_edges(n_mid + 2, edges).unwrap();
        let cp = CriticalPath::compute(&dag, &vec![10; n_mid + 2]).unwrap();
        assert_eq!(cp.nodes.len(), 3);
        assert_eq!(cp.length, 30);
    }

    #[test]
    fn disconnected_components_pick_global_max() {
        // Two chains: 0->1 (weights 1,1) and 2->3 (weights 10, 10).
        let dag = Dag::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let cp = CriticalPath::compute(&dag, &[1, 1, 10, 10]).unwrap();
        assert_eq!(cp.nodes, vec![2, 3]);
        assert_eq!(cp.length, 20);
    }

    #[test]
    fn weight_length_mismatch_errors() {
        let dag = Dag::new(2);
        assert!(CriticalPath::compute(&dag, &[1]).is_err());
    }

    #[test]
    fn empty_dag() {
        let cp = CriticalPath::compute(&Dag::new(0), &[]).unwrap();
        assert!(cp.nodes.is_empty());
        assert_eq!(cp.length, 0);
    }

    #[test]
    fn cycle_detected() {
        let dag = Dag::from_edges(2, [(0, 1), (1, 0)]).unwrap();
        assert!(matches!(
            CriticalPath::compute(&dag, &[1, 1]),
            Err(DagError::Cycle { .. })
        ));
    }
}
