//! Kahn's algorithm and level-set grouping.
//!
//! Section IV-A of the paper adapts Kahn's topological sort [Kahn 1962] so
//! that jobs with no dependencies *among each other* are grouped into one
//! **node set**: for the fork-join DAG `1 -> {2..n} -> n+1` the output is
//! `{1}, {2, 3, ..., n}, {n+1}` rather than a flat order. Deadlines are then
//! decomposed per node set, so all parallel jobs in a set share an arrival
//! time and a deadline.
//!
//! We implement the grouping as *longest-distance layering*: the level of a
//! node is `0` for sources and `1 + max(level of predecessors)` otherwise.
//! Within a level no node can depend on another (any dependency would force a
//! higher level), so levels are exactly the paper's node sets.

use crate::error::DagError;
use crate::graph::Dag;
use std::collections::VecDeque;

/// Returns one valid topological order of `dag` using Kahn's algorithm.
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic; the reported node
/// is one that never became ready.
///
/// # Example
///
/// ```
/// use flowtime_dag::{Dag, topological_order};
/// # fn main() -> Result<(), flowtime_dag::DagError> {
/// let dag = Dag::from_edges(3, [(0, 1), (1, 2)])?;
/// assert_eq!(topological_order(&dag)?, vec![0, 1, 2]);
/// # Ok(())
/// # }
/// ```
pub fn topological_order(dag: &Dag) -> Result<Vec<usize>, DagError> {
    let mut indeg = dag.in_degrees();
    let mut queue: VecDeque<usize> = (0..dag.len()).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(dag.len());
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in dag.successors(v) {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push_back(w);
            }
        }
    }
    if order.len() != dag.len() {
        let node = indeg.iter().position(|&d| d > 0).unwrap_or(0);
        return Err(DagError::Cycle { node });
    }
    Ok(order)
}

/// Groups the nodes of `dag` into topological **level sets** (the paper's
/// node sets): level 0 holds all sources; every other node sits one level
/// above its deepest predecessor. Nodes within a level are mutually
/// independent.
///
/// Returns the levels in topological order; node indices within a level are
/// ascending.
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
///
/// # Example
///
/// The paper's Fig. 3 fork-join shape:
///
/// ```
/// use flowtime_dag::{Dag, level_sets};
/// # fn main() -> Result<(), flowtime_dag::DagError> {
/// // 0 -> {1,2,3} -> 4
/// let dag = Dag::from_edges(5, [(0,1),(0,2),(0,3),(1,4),(2,4),(3,4)])?;
/// assert_eq!(level_sets(&dag)?, vec![vec![0], vec![1, 2, 3], vec![4]]);
/// # Ok(())
/// # }
/// ```
pub fn level_sets(dag: &Dag) -> Result<Vec<Vec<usize>>, DagError> {
    let order = topological_order(dag)?;
    let mut level = vec![0usize; dag.len()];
    let mut max_level = 0usize;
    for &v in &order {
        for &p in dag.predecessors(v) {
            level[v] = level[v].max(level[p] + 1);
        }
        max_level = max_level.max(level[v]);
    }
    if dag.is_empty() {
        return Ok(Vec::new());
    }
    let mut sets = vec![Vec::new(); max_level + 1];
    for v in 0..dag.len() {
        sets[level[v]].push(v);
    }
    Ok(sets)
}

/// Returns the level index of each node, as computed by [`level_sets`].
///
/// # Errors
///
/// Returns [`DagError::Cycle`] if the graph is not acyclic.
pub fn node_levels(dag: &Dag) -> Result<Vec<usize>, DagError> {
    let order = topological_order(dag)?;
    let mut level = vec![0usize; dag.len()];
    for &v in &order {
        for &p in dag.predecessors(v) {
            level[v] = level[v].max(level[p] + 1);
        }
    }
    Ok(level)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_respects_edges() {
        let dag = Dag::from_edges(6, [(0, 2), (1, 2), (2, 3), (3, 4), (3, 5)]).unwrap();
        let order = topological_order(&dag).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (from, to) in dag.edges() {
            assert!(pos[from] < pos[to], "edge {from}->{to} violated");
        }
    }

    #[test]
    fn detects_cycle() {
        let dag = Dag::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(matches!(
            topological_order(&dag),
            Err(DagError::Cycle { .. })
        ));
        assert!(matches!(level_sets(&dag), Err(DagError::Cycle { .. })));
    }

    #[test]
    fn fork_join_levels_match_paper_example() {
        // Fig. 3: 1 -> {2..n} -> n+1 with n = 5 parallel middles.
        let n_mid = 5;
        let total = n_mid + 2;
        let mut edges = Vec::new();
        for m in 1..=n_mid {
            edges.push((0, m));
            edges.push((m, n_mid + 1));
        }
        let dag = Dag::from_edges(total, edges).unwrap();
        let sets = level_sets(&dag).unwrap();
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0], vec![0]);
        assert_eq!(sets[1], (1..=n_mid).collect::<Vec<_>>());
        assert_eq!(sets[2], vec![n_mid + 1]);
    }

    #[test]
    fn levels_are_antichains() {
        let dag =
            Dag::from_edges(7, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5), (5, 6)]).unwrap();
        let sets = level_sets(&dag).unwrap();
        for set in &sets {
            for &a in set {
                for &b in set {
                    assert!(
                        !dag.successors(a).contains(&b),
                        "{a} -> {b} within one level"
                    );
                }
            }
        }
    }

    #[test]
    fn straggler_joins_level_of_deepest_predecessor() {
        // 0 -> 1 -> 3, 2 -> 3: node 2 is a source but 3 must sit at level 2.
        let dag = Dag::from_edges(4, [(0, 1), (1, 3), (2, 3)]).unwrap();
        let levels = node_levels(&dag).unwrap();
        assert_eq!(levels, vec![0, 1, 0, 2]);
        let sets = level_sets(&dag).unwrap();
        assert_eq!(sets, vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        assert_eq!(level_sets(&Dag::new(0)).unwrap(), Vec::<Vec<usize>>::new());
        assert_eq!(level_sets(&Dag::new(3)).unwrap(), vec![vec![0, 1, 2]]);
    }
}
