//! Workflow DAG model for the FlowTime scheduler.
//!
//! This crate is the bottom-most substrate of the FlowTime reproduction. It
//! defines:
//!
//! * typed identifiers for jobs and workflows ([`ids`]),
//! * the multi-resource vector type used across the workspace ([`resources`]),
//! * job specifications with task-level demand estimates ([`job`]),
//! * a directed acyclic graph over jobs ([`graph`]),
//! * Kahn's algorithm with *level-set* grouping — the paper's
//!   "node sets" of Section IV ([`topo`]),
//! * critical-path analysis used by the fallback decomposer
//!   ([`critical_path`]), and
//! * the [`Workflow`](workflow::Workflow) bundle `W = {Q, ws, wd, P}` of the
//!   paper's system model (Section II-A).
//!
//! # Example
//!
//! Build the paper's Fig. 3 fork-join workflow (`1 → {2..n} → n+1`) and
//! inspect its level sets:
//!
//! ```
//! use flowtime_dag::prelude::*;
//!
//! # fn main() -> Result<(), DagError> {
//! let mut b = WorkflowBuilder::new(WorkflowId::new(1), "fork-join");
//! let head = b.add_job(JobSpec::new("head", 10, 2, ResourceVec::new([10, 1024])));
//! let mids: Vec<_> = (0..4)
//!     .map(|i| b.add_job(JobSpec::new(format!("mid{i}"), 10, 2, ResourceVec::new([10, 1024]))))
//!     .collect();
//! let tail = b.add_job(JobSpec::new("tail", 10, 2, ResourceVec::new([10, 1024])));
//! for &m in &mids {
//!     b.add_dep(head, m)?;
//!     b.add_dep(m, tail)?;
//! }
//! let wf = b.window(0, 100).build()?;
//! let levels = wf.level_sets();
//! assert_eq!(levels.len(), 3);
//! assert_eq!(levels[1].len(), 4); // the parallel middle set
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critical_path;
pub mod dot;
pub mod error;
pub mod graph;
pub mod ids;
pub mod job;
pub mod resources;
pub mod topo;
pub mod workflow;

pub use critical_path::CriticalPath;
pub use error::DagError;
pub use graph::Dag;
pub use ids::{JobId, WorkflowId};
pub use job::JobSpec;
pub use resources::{ResourceKind, ResourceVec, NUM_RESOURCES};
pub use topo::{level_sets, topological_order};
pub use workflow::{Workflow, WorkflowBuilder};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::{
        CriticalPath, Dag, DagError, JobId, JobSpec, ResourceKind, ResourceVec, Workflow,
        WorkflowBuilder, WorkflowId, NUM_RESOURCES,
    };
}
