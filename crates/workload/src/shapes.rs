//! Parametric DAG topologies.
//!
//! Edge lists over dense node indices `0..n`, composable with any job
//! specs. The random layered generator drives the Fig. 6 decomposition
//! scalability sweep (10–200 nodes, up to 6 000 edges).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Edges of a linear chain `0 → 1 → … → n-1`.
pub fn chain(n: usize) -> Vec<(usize, usize)> {
    (1..n).map(|i| (i - 1, i)).collect()
}

/// Edges of the paper's Fig. 3 fork-join: `0 → {1..=mid} → mid+1`.
/// Total nodes: `mid + 2`.
pub fn fork_join(mid: usize) -> Vec<(usize, usize)> {
    let mut edges = Vec::with_capacity(2 * mid);
    for m in 1..=mid {
        edges.push((0, m));
        edges.push((m, mid + 1));
    }
    edges
}

/// Edges of a diamond of `width` parallel two-job branches:
/// `0 → aᵢ → bᵢ → 2·width+1`.
pub fn diamond(width: usize) -> Vec<(usize, usize)> {
    let sink = 2 * width + 1;
    let mut edges = Vec::with_capacity(3 * width);
    for i in 0..width {
        let a = 1 + 2 * i;
        let b = 2 + 2 * i;
        edges.push((0, a));
        edges.push((a, b));
        edges.push((b, sink));
    }
    edges
}

/// A random layered DAG: `nodes` nodes spread over `layers` layers; each
/// non-first-layer node draws at least one parent from the previous layer;
/// additional edges are added between random earlier/later layers until
/// `target_edges` is reached (or the topology saturates). Deterministic in
/// `seed`.
///
/// # Panics
///
/// Panics if `layers == 0` or `nodes < layers`.
pub fn layered_random(
    nodes: usize,
    layers: usize,
    target_edges: usize,
    seed: u64,
) -> Vec<(usize, usize)> {
    assert!(
        layers > 0 && nodes >= layers,
        "need at least one node per layer"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Assign nodes to layers: one guaranteed each, remainder random.
    let mut layer_of = vec![0usize; nodes];
    for (l, node) in layer_of.iter_mut().enumerate().take(layers) {
        *node = l;
    }
    for node in layer_of.iter_mut().skip(layers) {
        *node = rng.gen_range(0..layers);
    }
    let mut by_layer: Vec<Vec<usize>> = vec![Vec::new(); layers];
    for (node, &l) in layer_of.iter().enumerate() {
        by_layer[l].push(node);
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut have = std::collections::HashSet::new();
    // Backbone: every node beyond layer 0 gets a parent in the previous
    // non-empty layer.
    for l in 1..layers {
        let mut prev = l;
        while prev > 0 && by_layer[prev - 1].is_empty() {
            prev -= 1;
        }
        if prev == 0 {
            continue;
        }
        let parents = &by_layer[prev - 1];
        for &v in &by_layer[l] {
            let p = parents[rng.gen_range(0..parents.len())];
            if have.insert((p, v)) {
                edges.push((p, v));
            }
        }
    }
    // Extra cross-layer edges up to the target.
    let mut attempts = 0usize;
    while edges.len() < target_edges && attempts < target_edges * 20 + 1000 {
        attempts += 1;
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        let (from, to) = match layer_of[a].cmp(&layer_of[b]) {
            std::cmp::Ordering::Less => (a, b),
            std::cmp::Ordering::Greater => (b, a),
            std::cmp::Ordering::Equal => continue,
        };
        if have.insert((from, to)) {
            edges.push((from, to));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{level_sets, topological_order, Dag};

    #[test]
    fn chain_is_linear() {
        let edges = chain(4);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
        let dag = Dag::from_edges(4, edges).unwrap();
        assert_eq!(level_sets(&dag).unwrap().len(), 4);
    }

    #[test]
    fn chain_of_one_or_zero() {
        assert!(chain(1).is_empty());
        assert!(chain(0).is_empty());
    }

    #[test]
    fn fork_join_levels() {
        let edges = fork_join(5);
        let dag = Dag::from_edges(7, edges).unwrap();
        let sets = level_sets(&dag).unwrap();
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[1].len(), 5);
    }

    #[test]
    fn diamond_structure() {
        let edges = diamond(3);
        let dag = Dag::from_edges(8, edges).unwrap();
        let sets = level_sets(&dag).unwrap();
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[1].len(), 3);
        assert_eq!(sets[2].len(), 3);
    }

    #[test]
    fn layered_random_is_acyclic_and_deterministic() {
        for seed in 0..5 {
            let edges = layered_random(50, 6, 300, seed);
            let dag = Dag::from_edges(50, edges.clone()).unwrap();
            assert!(topological_order(&dag).is_ok(), "seed {seed} cyclic");
            let again = layered_random(50, 6, 300, seed);
            assert_eq!(edges, again, "seed {seed} not deterministic");
        }
    }

    #[test]
    fn layered_random_hits_edge_targets() {
        let edges = layered_random(200, 10, 6000, 42);
        // Dense request: should get reasonably close to the target.
        assert!(edges.len() >= 4000, "only {} edges", edges.len());
        let dag = Dag::from_edges(200, edges).unwrap();
        assert!(topological_order(&dag).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one node per layer")]
    fn layered_random_validates() {
        layered_random(3, 10, 5, 0);
    }
}
