//! Recurring-workflow helpers.
//!
//! The paper's deadline workflows are "typically recurring, running on a
//! daily, weekly or monthly basis" (Section I). This module stamps out the
//! recurring instances of a template: one submission per period, ids
//! offset, windows shifted.

use flowtime_dag::{Workflow, WorkflowId};
use flowtime_sim::WorkflowSubmission;

/// Generates `count` recurring instances of `template`, one every
/// `period_slots`, starting at the template's own submit slot. Instance
/// `k` gets workflow id `base_id + k`.
///
/// # Example
///
/// ```
/// use flowtime_dag::prelude::*;
/// use flowtime_workload::recurrence::recur;
/// # fn main() -> Result<(), DagError> {
/// let mut b = WorkflowBuilder::new(WorkflowId::new(0), "daily");
/// b.add_job(JobSpec::new("j", 4, 1, ResourceVec::new([1, 1024])));
/// let template = b.window(10, 60).build()?;
/// let runs = recur(&template, 100, 3, 360);
/// assert_eq!(runs.len(), 3);
/// assert_eq!(runs[2].workflow.submit_slot(), 10 + 2 * 360);
/// assert_eq!(runs[2].workflow.id(), WorkflowId::new(102));
/// # Ok(())
/// # }
/// ```
pub fn recur(
    template: &Workflow,
    base_id: u64,
    count: usize,
    period_slots: u64,
) -> Vec<WorkflowSubmission> {
    (0..count)
        .map(|k| {
            let submit = template.submit_slot() + k as u64 * period_slots;
            let wf = template.recur_at(WorkflowId::new(base_id + k as u64), submit);
            WorkflowSubmission::new(wf)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder};

    fn template() -> Workflow {
        let mut b = WorkflowBuilder::new(WorkflowId::new(0), "t");
        b.add_job(JobSpec::new("j", 4, 2, ResourceVec::new([1, 1024])));
        b.window(5, 45).build().unwrap()
    }

    #[test]
    fn instances_shift_and_keep_window_length() {
        let runs = recur(&template(), 10, 4, 100);
        assert_eq!(runs.len(), 4);
        for (k, sub) in runs.iter().enumerate() {
            let wf = &sub.workflow;
            assert_eq!(wf.submit_slot(), 5 + k as u64 * 100);
            assert_eq!(wf.window_slots(), 40);
            assert_eq!(wf.id(), WorkflowId::new(10 + k as u64));
            assert_eq!(wf.len(), 1);
        }
    }

    #[test]
    fn zero_count_is_empty() {
        assert!(recur(&template(), 0, 0, 10).is_empty());
    }
}
