//! Ad-hoc job streams.
//!
//! Ad-hoc jobs in the paper are best-effort, non-recurring, and unknown in
//! size at submission. This generator produces a Poisson arrival process
//! with log-normal sizes — the canonical datacenter workload shape: many small
//! interactive queries, a heavy tail of larger analytics jobs.

use flowtime_dag::{JobSpec, ResourceVec};
use flowtime_sim::AdhocSubmission;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Temporal shape of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ArrivalPattern {
    /// Homogeneous Poisson arrivals at `rate_per_slot`.
    #[default]
    Poisson,
    /// Diurnal modulation: the instantaneous rate is
    /// `rate * (1 + amplitude * sin(2π t / period))`, clamped at zero —
    /// the day/night swing of interactive query traffic.
    Diurnal {
        /// Relative swing in `[0, 1]`.
        amplitude: f64,
        /// Period in slots (e.g. one simulated day).
        period: f64,
    },
    /// Markov-modulated on/off bursts: alternating busy and idle phases
    /// with the given mean lengths (slots); arrivals only occur in busy
    /// phases, at a rate scaled up to preserve the long-run mean.
    Bursty {
        /// Mean busy-phase length in slots.
        mean_on: f64,
        /// Mean idle-phase length in slots.
        mean_off: f64,
    },
}

/// Configuration of an ad-hoc stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdhocStream {
    /// Mean arrivals per slot (long-run average across patterns).
    pub rate_per_slot: f64,
    /// Temporal arrival pattern.
    #[serde(default)]
    pub pattern: ArrivalPattern,
    /// Log-normal μ of the job *work* in task-slots.
    pub work_mu: f64,
    /// Log-normal σ of the job work.
    pub work_sigma: f64,
    /// Per-task container size.
    pub container: ResourceVec,
    /// Maximum tasks a job runs concurrently.
    pub max_parallel: u64,
}

impl Default for AdhocStream {
    fn default() -> Self {
        AdhocStream {
            rate_per_slot: 0.2,
            pattern: ArrivalPattern::Poisson,
            work_mu: 2.5, // median ~12 task-slots
            work_sigma: 0.8,
            container: ResourceVec::new([1, 2048]),
            max_parallel: 8,
        }
    }
}

impl AdhocStream {
    /// A bursty stream: default sizes, `rate_per_slot` long-run arrivals,
    /// Markov-modulated on/off phases of the given mean lengths. The shape
    /// the fault-injection harness uses for adversarial arrival pressure.
    ///
    /// # Example
    ///
    /// ```
    /// use flowtime_workload::AdhocStream;
    /// let jobs = AdhocStream::bursty(0.5, 20.0, 80.0).generate(1_000, 7);
    /// assert!(!jobs.is_empty());
    /// ```
    pub fn bursty(rate_per_slot: f64, mean_on: f64, mean_off: f64) -> Self {
        AdhocStream {
            rate_per_slot,
            pattern: ArrivalPattern::Bursty { mean_on, mean_off },
            ..Default::default()
        }
    }

    /// Generates submissions over slots `[0, horizon)`, deterministic in
    /// `seed`.
    ///
    /// # Example
    ///
    /// ```
    /// use flowtime_workload::AdhocStream;
    /// let jobs = AdhocStream::default().generate(500, 42);
    /// assert!(!jobs.is_empty());
    /// assert!(jobs.windows(2).all(|w| w[0].arrival_slot <= w[1].arrival_slot));
    /// ```
    pub fn generate(&self, horizon: u64, seed: u64) -> Vec<AdhocSubmission> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        // Non-homogeneous Poisson via thinning against the peak rate.
        let peak_rate = self.peak_rate();
        let mut t = 0.0f64;
        let mut idx = 0usize;
        let mut phase = BurstPhase::new(&self.pattern, &mut rng);
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / peak_rate.max(1e-9);
            let slot = t.floor() as u64;
            if slot >= horizon {
                break;
            }
            // Thinning: accept with probability rate(t)/peak.
            let accept = self.instantaneous_rate(t, &mut phase, &mut rng) / peak_rate;
            if rng.gen_range(0.0..1.0) >= accept {
                continue;
            }
            let work = self.sample_work(&mut rng);
            // Shape the work into tasks x duration: short tasks for small
            // jobs, a few waves for larger ones.
            let tasks = work.min(self.max_parallel.max(1));
            let task_slots = work.div_ceil(tasks);
            let spec = JobSpec::new(format!("adhoc-{idx}"), tasks, task_slots, self.container)
                .with_max_parallel(self.max_parallel.max(1));
            out.push(AdhocSubmission::new(spec, slot));
            idx += 1;
        }
        out
    }

    /// The maximum instantaneous rate of the configured pattern.
    fn peak_rate(&self) -> f64 {
        match self.pattern {
            ArrivalPattern::Poisson => self.rate_per_slot,
            ArrivalPattern::Diurnal { amplitude, .. } => {
                self.rate_per_slot * (1.0 + amplitude.clamp(0.0, 1.0))
            }
            ArrivalPattern::Bursty { mean_on, mean_off } => {
                // Busy-phase rate preserves the long-run mean.
                self.rate_per_slot * (mean_on + mean_off).max(1e-9) / mean_on.max(1e-9)
            }
        }
    }

    /// The instantaneous rate at continuous time `t`.
    fn instantaneous_rate(&self, t: f64, phase: &mut BurstPhase, rng: &mut StdRng) -> f64 {
        match self.pattern {
            ArrivalPattern::Poisson => self.rate_per_slot,
            ArrivalPattern::Diurnal { amplitude, period } => {
                let swing = (2.0 * std::f64::consts::PI * t / period.max(1e-9)).sin();
                (self.rate_per_slot * (1.0 + amplitude.clamp(0.0, 1.0) * swing)).max(0.0)
            }
            ArrivalPattern::Bursty { .. } => {
                if phase.is_on(t, &self.pattern, rng) {
                    self.peak_rate()
                } else {
                    0.0
                }
            }
        }
    }

    /// One log-normal work sample in task-slots (at least 1).
    fn sample_work(&self, rng: &mut StdRng) -> u64 {
        // Box-Muller standard normal.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.work_mu + self.work_sigma * z).exp().round().max(1.0) as u64
    }
}

/// On/off phase tracker for the bursty pattern.
struct BurstPhase {
    on: bool,
    until: f64,
}

impl BurstPhase {
    fn new(pattern: &ArrivalPattern, rng: &mut StdRng) -> BurstPhase {
        let mut phase = BurstPhase {
            on: true,
            until: 0.0,
        };
        if let ArrivalPattern::Bursty { mean_on, .. } = pattern {
            phase.until = sample_exp(*mean_on, rng);
        }
        phase
    }

    fn is_on(&mut self, t: f64, pattern: &ArrivalPattern, rng: &mut StdRng) -> bool {
        let ArrivalPattern::Bursty { mean_on, mean_off } = pattern else {
            return true;
        };
        while t >= self.until {
            self.on = !self.on;
            let mean = if self.on { *mean_on } else { *mean_off };
            self.until += sample_exp(mean, rng);
        }
        self.on
    }
}

fn sample_exp(mean: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() * mean.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let s = AdhocStream::default();
        assert_eq!(s.generate(200, 7), s.generate(200, 7));
        assert_ne!(s.generate(200, 7), s.generate(200, 8));
    }

    #[test]
    fn rate_controls_volume() {
        let slow = AdhocStream {
            rate_per_slot: 0.05,
            ..Default::default()
        };
        let fast = AdhocStream {
            rate_per_slot: 1.0,
            ..Default::default()
        };
        let ns = slow.generate(1000, 3).len();
        let nf = fast.generate(1000, 3).len();
        assert!(nf > ns * 5, "fast {nf} vs slow {ns}");
        // Poisson mean ~ rate * horizon.
        assert!((nf as f64) > 700.0 && (nf as f64) < 1300.0, "{nf}");
    }

    #[test]
    fn arrivals_within_horizon_and_ordered() {
        let jobs = AdhocStream::default().generate(300, 11);
        for w in jobs.windows(2) {
            assert!(w[0].arrival_slot <= w[1].arrival_slot);
        }
        assert!(jobs.iter().all(|j| j.arrival_slot < 300));
    }

    #[test]
    fn specs_respect_parallelism() {
        let s = AdhocStream {
            max_parallel: 4,
            ..Default::default()
        };
        for j in s.generate(500, 5) {
            assert!(j.spec.tasks() <= 4 || j.spec.max_parallel() == Some(4));
            assert!(j.spec.work() >= 1);
        }
    }

    #[test]
    fn diurnal_rate_modulates_arrivals() {
        let flat = AdhocStream {
            rate_per_slot: 0.5,
            ..Default::default()
        };
        let diurnal = AdhocStream {
            rate_per_slot: 0.5,
            pattern: ArrivalPattern::Diurnal {
                amplitude: 1.0,
                period: 200.0,
            },
            ..Default::default()
        };
        let horizon = 2000u64;
        let nd = diurnal.generate(horizon, 21);
        let nf = flat.generate(horizon, 21);
        // Long-run volume is comparable...
        let ratio = nd.len() as f64 / nf.len() as f64;
        assert!((0.7..1.3).contains(&ratio), "volume ratio {ratio}");
        // ...but the diurnal stream concentrates in rate peaks: compare
        // quarter-period buckets (peak vs trough of the sine).
        let count_in = |jobs: &[flowtime_sim::AdhocSubmission], lo: u64, hi: u64| {
            jobs.iter()
                .filter(|j| (lo..hi).contains(&j.arrival_slot))
                .count()
        };
        let mut peak = 0usize;
        let mut trough = 0usize;
        for cycle in 0..(horizon / 200) {
            let base = cycle * 200;
            peak += count_in(&nd, base, base + 100);
            trough += count_in(&nd, base + 100, base + 200);
        }
        assert!(peak > trough * 2, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn bursty_pattern_clusters_arrivals() {
        let bursty = AdhocStream {
            rate_per_slot: 0.5,
            pattern: ArrivalPattern::Bursty {
                mean_on: 20.0,
                mean_off: 80.0,
            },
            ..Default::default()
        };
        let jobs = bursty.generate(3000, 33);
        assert!(!jobs.is_empty());
        // Long-run volume still tracks the nominal rate within a factor.
        let expected = 0.5 * 3000.0;
        let n = jobs.len() as f64;
        assert!(
            (expected * 0.5..expected * 1.6).contains(&n),
            "{n} arrivals"
        );
        // Clustering: the variance of per-100-slot counts far exceeds the
        // Poisson variance (= mean).
        let mut buckets = vec![0f64; 30];
        for j in &jobs {
            buckets[(j.arrival_slot / 100) as usize] += 1.0;
        }
        let mean = buckets.iter().sum::<f64>() / buckets.len() as f64;
        let var = buckets.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / buckets.len() as f64;
        assert!(var > mean * 2.0, "var {var} vs mean {mean}");
    }

    #[test]
    fn work_distribution_has_spread() {
        let jobs = AdhocStream::default().generate(2000, 13);
        let works: Vec<u64> = jobs.iter().map(|j| j.spec.work()).collect();
        let min = works.iter().min().unwrap();
        let max = works.iter().max().unwrap();
        assert!(max > &(min * 4), "min {min} max {max}");
    }
}
