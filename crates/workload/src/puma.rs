//! PUMA-style MapReduce job templates.
//!
//! The paper's testbed runs jobs from the PUMA benchmark suite [17] —
//! InvertedIndex, SequenceCount, and WordCount over Wikipedia-style text
//! (≥10 GB inputs) plus SelfJoin over synthetic data. Only the *shape* of a
//! job matters to a scheduler (task count, per-task runtime, container
//! size), so each template scales those parameters per input gigabyte with
//! constants consistent with PUMA's published characteristics (map-heavy
//! text jobs; SelfJoin shuffle-heavy with longer reduce-ish tasks;
//! TeraSort/Grep added for workload variety).

use flowtime_dag::{JobSpec, ResourceVec};
use serde::{Deserialize, Serialize};

/// The PUMA benchmarks modelled by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PumaBenchmark {
    /// Word frequency count over text (map-dominated).
    WordCount,
    /// Inverted index construction (map-dominated, larger intermediate).
    InvertedIndex,
    /// Frequency of every 3-gram sequence (heavier maps than WordCount).
    SequenceCount,
    /// Self-join of adjacency lists (shuffle-heavy, long tasks).
    SelfJoin,
    /// Distributed sort (balanced map/reduce).
    TeraSort,
    /// Pattern search (light, short tasks).
    Grep,
}

impl PumaBenchmark {
    /// All modelled benchmarks.
    pub const ALL: [PumaBenchmark; 6] = [
        PumaBenchmark::WordCount,
        PumaBenchmark::InvertedIndex,
        PumaBenchmark::SequenceCount,
        PumaBenchmark::SelfJoin,
        PumaBenchmark::TeraSort,
        PumaBenchmark::Grep,
    ];

    /// The text-processing subset used in the paper's workflow experiments
    /// (Section VII-A) plus SelfJoin.
    pub const PAPER_SET: [PumaBenchmark; 4] = [
        PumaBenchmark::InvertedIndex,
        PumaBenchmark::SequenceCount,
        PumaBenchmark::WordCount,
        PumaBenchmark::SelfJoin,
    ];

    /// Benchmark name as used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            PumaBenchmark::WordCount => "WordCount",
            PumaBenchmark::InvertedIndex => "InvertedIndex",
            PumaBenchmark::SequenceCount => "SequenceCount",
            PumaBenchmark::SelfJoin => "SelfJoin",
            PumaBenchmark::TeraSort => "TeraSort",
            PumaBenchmark::Grep => "Grep",
        }
    }

    /// `(tasks_per_gb, task_slots, container)` shape constants.
    ///
    /// One task processes one HDFS-block-sized split (~128 MB ⇒ 8
    /// tasks/GB) with per-benchmark runtime multipliers; containers are
    /// 1 core and 2–4 GiB as typical for YARN MapReduce.
    fn constants(&self) -> (u64, u64, ResourceVec) {
        match self {
            PumaBenchmark::WordCount => (8, 2, ResourceVec::new([1, 2048])),
            PumaBenchmark::InvertedIndex => (8, 3, ResourceVec::new([1, 3072])),
            PumaBenchmark::SequenceCount => (8, 4, ResourceVec::new([1, 3072])),
            PumaBenchmark::SelfJoin => (6, 5, ResourceVec::new([1, 4096])),
            PumaBenchmark::TeraSort => (8, 3, ResourceVec::new([1, 4096])),
            PumaBenchmark::Grep => (8, 1, ResourceVec::new([1, 2048])),
        }
    }

    /// Builds the job spec for this benchmark over `input_gb` gigabytes.
    ///
    /// At least one task is always produced; the paper's jobs use ≥10 GB.
    ///
    /// # Example
    ///
    /// ```
    /// use flowtime_workload::PumaBenchmark;
    /// let job = PumaBenchmark::WordCount.job(10);
    /// assert_eq!(job.tasks(), 80);
    /// assert_eq!(job.work(), 160);
    /// ```
    pub fn job(&self, input_gb: u64) -> JobSpec {
        let (tasks_per_gb, task_slots, container) = self.constants();
        let tasks = (tasks_per_gb * input_gb).max(1);
        JobSpec::new(self.name(), tasks, task_slots, container)
    }

    /// Like [`PumaBenchmark::job`] but capping concurrent tasks (a wave
    /// limit, as when the job's input splits exceed its queue share).
    pub fn job_with_parallelism(&self, input_gb: u64, max_parallel: u64) -> JobSpec {
        self.job(input_gb).with_max_parallel(max_parallel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_scale_with_input() {
        for b in PumaBenchmark::ALL {
            let small = b.job(10);
            let large = b.job(100);
            assert_eq!(large.tasks(), small.tasks() * 10, "{}", b.name());
            assert_eq!(small.task_slots(), large.task_slots());
            assert!(small.validate_ok());
        }
    }

    #[test]
    fn zero_input_still_valid() {
        let j = PumaBenchmark::Grep.job(0);
        assert_eq!(j.tasks(), 1);
    }

    #[test]
    fn parallelism_cap_applies() {
        let j = PumaBenchmark::TeraSort.job_with_parallelism(10, 16);
        assert_eq!(j.max_parallel(), Some(16));
        assert_eq!(j.min_runtime_slots(), 15); // 80 tasks / 16 wide * 3 slots
    }

    #[test]
    fn paper_set_is_subset_of_all() {
        for b in PumaBenchmark::PAPER_SET {
            assert!(PumaBenchmark::ALL.contains(&b));
        }
    }

    trait ValidateOk {
        fn validate_ok(&self) -> bool;
    }
    impl ValidateOk for JobSpec {
        fn validate_ok(&self) -> bool {
            self.tasks() > 0 && self.task_slots() > 0 && !self.per_task().is_zero()
        }
    }
}
