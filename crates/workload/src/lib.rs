//! Workload generation for the FlowTime reproduction.
//!
//! The paper evaluates against (a) workflows assembled from PUMA MapReduce
//! benchmark jobs [17] arranged in scientific-workflow DAG shapes
//! characterized by Bharathi et al. [16], and (b) trace-driven simulations
//! of production (Huawei) workloads. The production traces are proprietary;
//! following the reproduction's substitution rule, this crate generates
//! synthetic equivalents calibrated to the facts stated in the paper:
//! recurring workflows with *loose* deadlines (a 24-hour deadline for a
//! ~2-hour computation in their trace), plus bursty best-effort ad-hoc
//! jobs.
//!
//! * [`shapes`] — parametric DAG topologies (chain, fork-join, diamond,
//!   random layered DAGs for the Fig. 6 scalability sweep).
//! * [`scientific`] — Montage/CyberShake/Epigenomics/Inspiral/Sipht-like
//!   workflow skeletons per the Bharathi characterization.
//! * [`puma`] — PUMA-style job templates (WordCount, InvertedIndex,
//!   SequenceCount, SelfJoin, TeraSort, Grep) scaled by input gigabytes.
//! * [`adhoc`] — Poisson ad-hoc job streams with heavy-tailed sizes.
//! * [`trace`] — a serde/JSON-lines trace format plus the synthetic
//!   production-trace generator used by the trace-driven experiment.
//!
//! All generators are seeded ([`rand::SeedableRng`]) and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adhoc;
pub mod error;
pub mod puma;
pub mod recurrence;
pub mod scientific;
pub mod shapes;
pub mod trace;

pub use adhoc::{AdhocStream, ArrivalPattern};
pub use error::WorkloadError;
pub use puma::PumaBenchmark;
pub use scientific::ScientificShape;
pub use trace::Trace;
