//! Scientific-workflow skeletons (Bharathi et al. [16]).
//!
//! The paper builds its deadline workflows "according to several typical
//! structures of workflows in scientific computing" (Section VII-A) with 18
//! jobs per workflow. This module provides parametric skeletons of the five
//! workflows characterized by Bharathi et al. — Montage, CyberShake,
//! Epigenomics, LIGO Inspiral, and SIPHT — each instantiated with PUMA-style
//! jobs at a requested node count.

use crate::puma::PumaBenchmark;
use crate::shapes;
use flowtime_dag::{DagError, JobSpec, Workflow, WorkflowBuilder, WorkflowId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The five Bharathi workflow families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScientificShape {
    /// Astronomy mosaics: wide fan-out of short re-projection tasks, then
    /// aggregation levels narrowing to one output (fork-join-ish with a
    /// reduction tail).
    Montage,
    /// Seismic hazard: a few generators fan out to many parallel
    /// extraction/seismogram jobs, then a two-step merge.
    CyberShake,
    /// Genome methylation: several independent pipelines (chains) that
    /// merge at the end — "pipeline" structure.
    Epigenomics,
    /// Gravitational-wave search: repeated fork-join blocks (template bank
    /// analysis then thinca coincidence).
    Inspiral,
    /// sRNA prediction: mostly independent jobs gathered by one final
    /// annotation step (shallow, wide).
    Sipht,
}

impl ScientificShape {
    /// All shapes, the rotation used by the Fig. 4 experiment
    /// (5 workflows, one per family).
    pub const ALL: [ScientificShape; 5] = [
        ScientificShape::Montage,
        ScientificShape::CyberShake,
        ScientificShape::Epigenomics,
        ScientificShape::Inspiral,
        ScientificShape::Sipht,
    ];

    /// Family name.
    pub fn name(&self) -> &'static str {
        match self {
            ScientificShape::Montage => "Montage",
            ScientificShape::CyberShake => "CyberShake",
            ScientificShape::Epigenomics => "Epigenomics",
            ScientificShape::Inspiral => "Inspiral",
            ScientificShape::Sipht => "Sipht",
        }
    }

    /// Edge list for a skeleton of exactly `n` nodes (`n >= 4`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`.
    pub fn edges(&self, n: usize) -> Vec<(usize, usize)> {
        assert!(n >= 4, "scientific skeletons need at least 4 nodes");
        match self {
            ScientificShape::Montage => {
                // 0 -> {1..=w} -> aggregation chain -> sink
                let w = (n - 3).max(1);
                let mut e = shapes::fork_join(w); // nodes 0..=w+1
                                                  // tail chain from the join node to the remaining nodes
                for v in (w + 2)..n {
                    e.push((v - 1, v));
                }
                e
            }
            ScientificShape::CyberShake => {
                // two generators -> parallel middle -> two-step merge
                let mid = n - 4;
                let mut e = Vec::new();
                let merge1 = n - 2;
                let merge2 = n - 1;
                for m in 2..2 + mid {
                    e.push((0, m));
                    e.push((1, m));
                    e.push((m, merge1));
                }
                e.push((merge1, merge2));
                if mid == 0 {
                    e.push((0, merge1));
                    e.push((1, merge1));
                }
                e
            }
            ScientificShape::Epigenomics => {
                // k parallel chains of equal length joining at a sink.
                let k = ((n - 1) as f64).sqrt().round().max(1.0) as usize;
                let chain_len = (n - 1) / k;
                let mut e = Vec::new();
                let sink = n - 1;
                let mut node = 0usize;
                for _ in 0..k {
                    let first = node;
                    for i in 1..chain_len {
                        e.push((first + i - 1, first + i));
                    }
                    e.push((first + chain_len - 1, sink));
                    node += chain_len;
                }
                // leftover nodes become extra sources feeding the sink
                for v in node..sink {
                    e.push((v, sink));
                }
                e
            }
            ScientificShape::Inspiral => {
                // two stacked fork-joins: 0 -> {..} -> j1 -> {..} -> sink
                let per = (n - 3) / 2;
                let mut e = Vec::new();
                let j1 = 1 + per;
                let sink = n - 1;
                for m in 1..1 + per {
                    e.push((0, m));
                    e.push((m, j1));
                }
                for m in (j1 + 1)..sink {
                    e.push((j1, m));
                    e.push((m, sink));
                }
                if j1 + 1 == sink {
                    e.push((j1, sink));
                }
                e
            }
            ScientificShape::Sipht => {
                // wide independent set gathered by a single final node.
                let sink = n - 1;
                (0..sink).map(|v| (v, sink)).collect()
            }
        }
    }

    /// Instantiates a workflow of `n` jobs with PUMA-style specs drawn
    /// deterministically from `seed`, over window `[submit, deadline)`.
    ///
    /// # Errors
    ///
    /// Propagates [`DagError`] (only on invalid windows — the skeletons are
    /// valid by construction).
    #[allow(clippy::too_many_arguments)]
    pub fn workflow(
        &self,
        id: WorkflowId,
        n: usize,
        input_gb_min: u64,
        input_gb_max: u64,
        submit: u64,
        deadline: u64,
        seed: u64,
    ) -> Result<Workflow, DagError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = WorkflowBuilder::new(id, self.name());
        // One uniform container shape across jobs, as in the paper's YARN
        // deployment (a single container size keeps the placement polytope
        // the TU transportation polytope of Lemma 2); task counts and
        // durations still vary per benchmark.
        let container = flowtime_dag::ResourceVec::new([1, 3072]);
        for i in 0..n {
            let bench = PumaBenchmark::PAPER_SET[rng.gen_range(0..PumaBenchmark::PAPER_SET.len())];
            let gb = rng.gen_range(input_gb_min..=input_gb_max.max(input_gb_min));
            let spec: JobSpec = bench.job(gb);
            let name = format!("{}-{}-{}", self.name(), bench.name(), i);
            builder.add_job(JobSpec::new(
                name,
                spec.tasks(),
                spec.task_slots(),
                container,
            ));
        }
        for (from, to) in self.edges(n) {
            builder.add_dep(from, to)?;
        }
        builder.window(submit, deadline).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{level_sets, Dag};

    #[test]
    fn all_shapes_build_18_node_workflows() {
        for (i, shape) in ScientificShape::ALL.iter().enumerate() {
            let wf = shape
                .workflow(WorkflowId::new(i as u64), 18, 10, 30, 0, 500, 7)
                .unwrap_or_else(|e| panic!("{}: {e}", shape.name()));
            assert_eq!(wf.len(), 18, "{}", shape.name());
            assert!(wf.dag().edge_count() > 0);
            assert!(!wf.level_sets().is_empty());
        }
    }

    #[test]
    fn skeletons_are_acyclic_at_many_sizes() {
        for shape in ScientificShape::ALL {
            for n in [4, 7, 18, 31, 60] {
                let edges = shape.edges(n);
                let dag = Dag::from_edges(n, edges)
                    .unwrap_or_else(|e| panic!("{} n={n}: {e}", shape.name()));
                assert!(level_sets(&dag).is_ok(), "{} n={n}", shape.name());
            }
        }
    }

    #[test]
    fn montage_has_wide_second_level() {
        let edges = ScientificShape::Montage.edges(18);
        let dag = Dag::from_edges(18, edges).unwrap();
        let sets = level_sets(&dag).unwrap();
        assert!(sets[1].len() >= 10);
    }

    #[test]
    fn sipht_is_two_levels() {
        let edges = ScientificShape::Sipht.edges(12);
        let dag = Dag::from_edges(12, edges).unwrap();
        assert_eq!(level_sets(&dag).unwrap().len(), 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ScientificShape::CyberShake
            .workflow(WorkflowId::new(1), 18, 10, 30, 0, 400, 99)
            .unwrap();
        let b = ScientificShape::CyberShake
            .workflow(WorkflowId::new(1), 18, 10, 30, 0, 400, 99)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 4 nodes")]
    fn tiny_skeletons_rejected() {
        ScientificShape::Montage.edges(3);
    }
}
