//! Trace format and the synthetic production trace.
//!
//! A trace couples a cluster description with a full [`SimWorkload`] so an
//! experiment is exactly reproducible from one file. The on-disk format is
//! JSON lines: a header record followed by one record per workflow and
//! ad-hoc submission, diff-friendly and streamable.
//!
//! [`Trace::synthesize_production`] generates the stand-in for the paper's
//! proprietary Huawei trace (Section VII trace-driven simulation),
//! calibrated to what the paper states: recurring workflows whose deadlines
//! are *loose* — "the deadline for the workflow is 24 hours ... it can
//! complete in only around 2 hours" (Section II-B) — sharing the cluster
//! with bursty ad-hoc jobs, and runtime estimates carrying error relative
//! to actual runs (Section III-A).

use crate::adhoc::AdhocStream;
use crate::error::WorkloadError;
use crate::scientific::ScientificShape;
use flowtime_dag::WorkflowId;
use flowtime_sim::{AdhocSubmission, ClusterConfig, SimWorkload, WorkflowSubmission};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// A reproducible experiment input: cluster + workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Cluster the trace was generated for.
    pub cluster: ClusterConfig,
    /// The workload.
    pub workload: SimWorkload,
}

/// One JSON-lines record.
#[derive(Debug, Serialize, Deserialize)]
enum Record {
    Header {
        cluster: ClusterConfig,
        version: u32,
    },
    Workflow(Box<WorkflowSubmission>),
    Adhoc(AdhocSubmission),
}

/// Parameters of the synthetic production trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductionTraceConfig {
    /// Number of recurring workflow instances.
    pub workflows: usize,
    /// Jobs per workflow.
    pub jobs_per_workflow: usize,
    /// Slots between recurring submissions (the "daily" period).
    pub recurrence_slots: u64,
    /// Deadline looseness: window = looseness x minimal makespan (the
    /// paper's trace observed ~12x: 24 h deadline, ~2 h runtime).
    pub looseness: f64,
    /// Ad-hoc stream riding on the same cluster.
    pub adhoc: AdhocStream,
    /// Horizon over which ad-hoc jobs arrive, in slots.
    pub adhoc_horizon: u64,
    /// Relative runtime-estimation error bound (actual work is drawn
    /// uniformly within `±error` of the estimate).
    pub estimation_error: f64,
}

impl Default for ProductionTraceConfig {
    fn default() -> Self {
        ProductionTraceConfig {
            workflows: 10,
            jobs_per_workflow: 18,
            recurrence_slots: 360,
            looseness: 6.0,
            adhoc: AdhocStream::default(),
            adhoc_horizon: 3600,
            estimation_error: 0.15,
        }
    }
}

impl Trace {
    /// Writes the trace as JSON lines.
    ///
    /// # Errors
    ///
    /// I/O errors from `writer`.
    pub fn write_jsonl<W: Write>(&self, mut writer: W) -> Result<(), WorkloadError> {
        let header = Record::Header {
            cluster: self.cluster.clone(),
            version: 1,
        };
        serde_json::to_writer(&mut writer, &header).map_err(|e| WorkloadError::Parse {
            line: 0,
            message: e.to_string(),
        })?;
        writer.write_all(b"\n")?;
        for wf in &self.workload.workflows {
            serde_json::to_writer(&mut writer, &Record::Workflow(Box::new(wf.clone()))).map_err(
                |e| WorkloadError::Parse {
                    line: 0,
                    message: e.to_string(),
                },
            )?;
            writer.write_all(b"\n")?;
        }
        for job in &self.workload.adhoc {
            serde_json::to_writer(&mut writer, &Record::Adhoc(job.clone())).map_err(|e| {
                WorkloadError::Parse {
                    line: 0,
                    message: e.to_string(),
                }
            })?;
            writer.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Reads a trace written by [`Trace::write_jsonl`].
    ///
    /// # Errors
    ///
    /// * [`WorkloadError::Io`] on read failures.
    /// * [`WorkloadError::Parse`] on malformed records or a missing header.
    pub fn read_jsonl<R: BufRead>(reader: R) -> Result<Self, WorkloadError> {
        let mut cluster: Option<ClusterConfig> = None;
        let mut workload = SimWorkload::default();
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let record: Record = serde_json::from_str(&line).map_err(|e| WorkloadError::Parse {
                line: idx + 1,
                message: e.to_string(),
            })?;
            match record {
                Record::Header { cluster: c, .. } => cluster = Some(c),
                Record::Workflow(wf) => workload.workflows.push(*wf),
                Record::Adhoc(job) => workload.adhoc.push(job),
            }
        }
        let cluster = cluster.ok_or(WorkloadError::Parse {
            line: 0,
            message: "missing header record".into(),
        })?;
        Ok(Trace { cluster, workload })
    }

    /// Generates the synthetic production trace (see module docs).
    ///
    /// Workflow shapes rotate through the five scientific families;
    /// deadlines are `looseness ×` the workflow's minimum makespan;
    /// per-job actual work deviates from the estimate by up to
    /// `estimation_error`; submissions recur every `recurrence_slots`.
    pub fn synthesize_production(
        cluster: ClusterConfig,
        config: &ProductionTraceConfig,
        seed: u64,
    ) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut workload = SimWorkload::default();
        for i in 0..config.workflows {
            let shape = ScientificShape::ALL[i % ScientificShape::ALL.len()];
            let submit = (i as u64 / ScientificShape::ALL.len() as u64) * config.recurrence_slots
                + rng.gen_range(0..config.recurrence_slots / 4 + 1);
            // Build once with a placeholder window to learn the minimal
            // makespan, then rebuild with the loose deadline.
            let probe = shape
                .workflow(
                    WorkflowId::new(i as u64),
                    config.jobs_per_workflow,
                    10,
                    30,
                    submit,
                    submit + 1_000_000,
                    seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15),
                )
                .expect("skeletons are valid");
            // Judge looseness against the capacity-aware makespan: the
            // dependency makespan floored by the workflow's total demand in
            // normalized slot-equivalents (a window 6x a width-unlimited
            // makespan could still be infeasible on a finite cluster).
            let demand_slots = probe
                .total_demand()
                .max_normalized_by(&cluster.capacity())
                .ceil() as u64;
            let min_makespan = probe.min_makespan_slots().max(demand_slots).max(1);
            let window = ((min_makespan as f64) * config.looseness).ceil() as u64;
            let wf = probe.recur_at(WorkflowId::new(i as u64), submit);
            let wf = {
                // recur_at keeps the placeholder window; rebuild the window
                // via another shift with explicit deadline arithmetic.
                let mut b = flowtime_dag::WorkflowBuilder::new(wf.id(), wf.name().to_string());
                for job in wf.jobs() {
                    b.add_job(job.clone());
                }
                for (from, to) in wf.dag().edges() {
                    b.add_dep(from, to).expect("edges valid");
                }
                b.window(submit, submit + window)
                    .build()
                    .expect("window valid")
            };
            let actual: Vec<u64> = wf
                .jobs()
                .iter()
                .map(|j| {
                    let err = rng.gen_range(-config.estimation_error..=config.estimation_error);
                    ((j.work() as f64) * (1.0 + err)).round().max(1.0) as u64
                })
                .collect();
            workload
                .workflows
                .push(WorkflowSubmission::new(wf).with_actual_work(actual));
        }
        workload.adhoc = config
            .adhoc
            .generate(config.adhoc_horizon, seed.wrapping_add(1));
        Trace { cluster, workload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::ResourceVec;

    fn cluster() -> ClusterConfig {
        ClusterConfig::new(ResourceVec::new([500, 1_048_576]), 10.0)
    }

    #[test]
    fn round_trip_jsonl() {
        let trace = Trace::synthesize_production(
            cluster(),
            &ProductionTraceConfig {
                workflows: 3,
                adhoc_horizon: 200,
                ..Default::default()
            },
            42,
        );
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn missing_header_rejected() {
        let data = b"{\"Adhoc\":{\"spec\":{\"name\":\"x\",\"tasks\":1,\"task_slots\":1,\"per_task\":[1,1],\"max_parallel\":null},\"arrival_slot\":0}}\n";
        let err = Trace::read_jsonl(std::io::BufReader::new(&data[..])).unwrap_err();
        assert!(matches!(err, WorkloadError::Parse { .. }));
    }

    #[test]
    fn malformed_line_reports_position() {
        let data = b"not json\n";
        match Trace::read_jsonl(std::io::BufReader::new(&data[..])) {
            Err(WorkloadError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn production_trace_has_loose_deadlines() {
        let cfg = ProductionTraceConfig {
            workflows: 5,
            ..Default::default()
        };
        let trace = Trace::synthesize_production(cluster(), &cfg, 7);
        assert_eq!(trace.workload.workflows.len(), 5);
        for sub in &trace.workload.workflows {
            let wf = &sub.workflow;
            let min = wf.min_makespan_slots();
            assert!(
                wf.window_slots() >= (min as f64 * cfg.looseness * 0.99) as u64,
                "window {} vs min {min}",
                wf.window_slots()
            );
            let actual = sub.actual_work.as_ref().unwrap();
            assert_eq!(actual.len(), wf.len());
        }
        assert!(!trace.workload.adhoc.is_empty());
    }

    #[test]
    fn estimation_error_bounded() {
        let cfg = ProductionTraceConfig {
            workflows: 5,
            estimation_error: 0.2,
            ..Default::default()
        };
        let trace = Trace::synthesize_production(cluster(), &cfg, 9);
        for sub in &trace.workload.workflows {
            for (job, &actual) in sub
                .workflow
                .jobs()
                .iter()
                .zip(sub.actual_work.as_ref().unwrap())
            {
                let est = job.work() as f64;
                assert!((actual as f64) >= est * 0.79 && (actual as f64) <= est * 1.21);
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = ProductionTraceConfig {
            workflows: 4,
            ..Default::default()
        };
        let a = Trace::synthesize_production(cluster(), &cfg, 5);
        let b = Trace::synthesize_production(cluster(), &cfg, 5);
        assert_eq!(a, b);
    }
}
