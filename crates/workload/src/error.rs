//! Workload crate errors.

use std::error::Error;
use std::fmt;

/// Errors from trace serialization and workload construction.
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkloadError {
    /// Underlying I/O failure while reading or writing a trace file.
    Io(std::io::Error),
    /// A trace line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The serde error message.
        message: String,
    },
    /// A generator was asked for an impossible configuration.
    InvalidConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Io(e) => write!(f, "trace io error: {e}"),
            WorkloadError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            WorkloadError::InvalidConfig { reason } => {
                write!(f, "invalid workload configuration: {reason}")
            }
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WorkloadError {
    fn from(e: std::io::Error) -> Self {
        WorkloadError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: WorkloadError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
        let e = WorkloadError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(WorkloadError::InvalidConfig { reason: "x" }
            .source()
            .is_none());
    }
}
