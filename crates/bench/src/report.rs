//! Table rendering and result persistence.

use crate::experiments::SummaryRow;
use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// Host execution context embedded in persisted benchmark artifacts, so a
/// flat scaling curve recorded on a 1-core dev box is self-explaining
/// instead of looking like a parallelism bug. Never part of deterministic
/// report bytes — only of wall-clock BENCH records.
#[derive(Debug, Clone, Serialize)]
pub struct HostMeta {
    /// Logical cores available to this process
    /// (`std::thread::available_parallelism()`, 1 when unknown).
    pub available_parallelism: usize,
}

/// The current host's [`HostMeta`].
pub fn host_meta() -> HostMeta {
    HostMeta {
        available_parallelism: host_parallelism(),
    }
}

/// Logical cores available to this process, 1 when the query fails.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Renders Fig. 4/5-style rows as an aligned text table.
pub fn render_table(title: &str, rows: &[SummaryRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>8} {:>9} {:>12} {:>12} {:>14} {:>8}",
        "algorithm",
        "jobs",
        "misses",
        "wf-miss",
        "max Δ (s)",
        "mean Δ (s)",
        "adhoc tat (s)",
        "util"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>8} {:>9} {:>12.1} {:>12.1} {:>14.1} {:>8.3}",
            r.algo,
            r.deadline_jobs,
            r.job_misses,
            r.workflow_misses,
            r.max_delta_s,
            r.mean_delta_s,
            r.adhoc_turnaround_s,
            r.avg_utilization,
        );
    }
    out
}

/// Writes any serializable result to `results/<name>.json`, creating the
/// directory if needed. Best-effort: failures are printed, not fatal, so a
/// read-only checkout still runs experiments.
pub fn persist<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![SummaryRow {
            algo: "FlowTime".into(),
            deadline_jobs: 90,
            job_misses: 0,
            workflow_misses: 0,
            max_delta_s: -120.0,
            mean_delta_s: -300.5,
            adhoc_turnaround_s: 522.5,
            avg_utilization: 0.41,
        }];
        let t = render_table("fig4", &rows);
        assert!(t.contains("FlowTime"));
        assert!(t.contains("522.5"));
        assert!(t.lines().count() >= 3);
    }

    #[test]
    fn host_meta_serializes_actual_parallelism() {
        let meta = host_meta();
        assert!(meta.available_parallelism >= 1);
        assert_eq!(meta.available_parallelism, host_parallelism());
        let json = serde_json::to_string(&meta).unwrap();
        assert!(
            json.contains(&format!(
                "\"available_parallelism\":{}",
                meta.available_parallelism
            )),
            "host metadata missing from serialized form: {json}"
        );
    }
}
