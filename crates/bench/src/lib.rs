//! Experiment harness regenerating every table and figure of the FlowTime
//! paper's evaluation (Section VII).
//!
//! Each paper figure has a binary in `src/bin/` (`fig1`, `fig4`, `fig5`,
//! `fig6`, `fig7`, `trace_sim`) plus a `repro_all` driver; Criterion
//! micro-benches live in `benches/`. This library holds the shared
//! machinery: workload construction, the scheduler factory, metric
//! summarization, and table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod scaling;
pub mod sweep;

pub use experiments::{Algo, SummaryRow};
