//! Deterministic `(scenario × scheduler × seed)` experiment sweeps.
//!
//! The paper's evaluation is trace-driven simulation over many workload
//! mixes; the robustness experiments replay dozens of fault seeds on top.
//! [`SweepSpec`] names that whole grid once, expands it into independent
//! cells in a **canonical order** (scenario-major, then scheduler, then
//! fault seed), and executes the cells with the work-stealing runner
//! [`flowtime_sim::run_cells`]. Each cell builds its own workload and its
//! own scheduler and engine, so cells share nothing mutable; results are
//! reduced back in cell order. Together with the engine's own determinism
//! this makes the serialized [`SweepReport`] byte-identical for any thread
//! count — the property `tests/sweep_props.rs` pins.
//!
//! Wall-clock time is reported next to the run ([`SweepRun::wall_ms`]) but
//! never inside the report, mirroring how [`flowtime_sim::telemetry`]
//! excludes wall time from serialization.

use crate::experiments::{faulted_instance, Algo, WorkflowExperiment};
use crate::report;
use flowtime_sim::{
    run_cells, ClusterConfig, EngineTelemetry, FaultConfig, RecoveryPolicy, RecoverySetup,
    RecoveryStats, RuntimeFaultConfig, ShardSpec, ShardedOutcome, ShedPolicy, SimOutcome,
    SolverTelemetry,
};
use serde::Serialize;
use std::time::Instant;

/// How a scenario derives each cell's [`FaultConfig`] from its fault seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultProfile {
    /// No injection: the clean generated workload.
    Clean,
    /// The moderate everything mix of [`FaultConfig::mixed`].
    Mixed,
    /// Runtime misestimation only, at the given log-normal sigma.
    Misestimate {
        /// Log-normal sigma of the actual/estimated work factor.
        sigma: f64,
    },
}

impl FaultProfile {
    /// Materializes the per-cell fault configuration.
    pub fn config(&self, seed: u64) -> FaultConfig {
        match *self {
            FaultProfile::Clean => FaultConfig::none(seed),
            FaultProfile::Mixed => FaultConfig::mixed(seed),
            FaultProfile::Misestimate { sigma } => FaultConfig::none(seed).with_misestimate(sigma),
        }
    }
}

/// A mid-run failure/recovery layer applied per fault seed — the runtime
/// analogue of [`FaultProfile`], which only rewrites the workload before
/// the run starts. Serialized into the report so a persisted sweep is
/// self-describing.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryProfile {
    /// Per-attempt probability that a running task attempt fails mid-run.
    pub task_fail_rate: f64,
    /// Fraction of capacity a node-crash window removes (0 = no crashes).
    pub crash_severity: f64,
    /// Slots between crash windows.
    pub crash_period: u64,
    /// Fraction of first attempts inflated by straggler slowdown.
    pub straggler_rate: f64,
    /// Extra-work factor applied to a straggling attempt.
    pub straggler_factor: f64,
    /// Kills tolerated per job before the final attempt runs protected.
    pub max_retries: u32,
    /// Admission policy for ad-hoc jobs under sustained overload.
    pub shed: ShedPolicy,
    /// Ad-hoc backlog per core counting as overload (only meaningful with
    /// a shedding policy).
    pub overload_factor: f64,
    /// Slots of sustained overload before the policy sheds.
    pub overload_sustain: u64,
}

impl RecoveryProfile {
    /// The chaos grid profile: task failures at `task_fail_rate`, periodic
    /// 30%-severity node crashes, 10% stragglers, default retry budget.
    pub fn chaos(task_fail_rate: f64) -> Self {
        RecoveryProfile {
            task_fail_rate,
            crash_severity: 0.3,
            crash_period: 60,
            straggler_rate: 0.1,
            straggler_factor: 0.5,
            max_retries: 3,
            shed: ShedPolicy::None,
            overload_factor: 4.0,
            overload_sustain: 10,
        }
    }

    /// Materializes the per-cell recovery setup from the cell's fault seed
    /// (the same seed that drives the scenario's [`FaultProfile`], so one
    /// number reproduces the whole cell).
    pub fn setup(&self, seed: u64) -> RecoverySetup {
        RecoverySetup::new(
            RuntimeFaultConfig::none(seed)
                .with_task_failures(self.task_fail_rate)
                .with_crashes(self.crash_severity)
                .with_crash_period(self.crash_period)
                .with_stragglers(self.straggler_rate, self.straggler_factor),
            RecoveryPolicy::default()
                .with_max_retries(self.max_retries)
                .with_shed(self.shed)
                .with_overload(self.overload_factor, self.overload_sustain),
        )
    }
}

/// One named workload scenario of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepScenario {
    /// Stable name used in report rows (e.g. `clean`, `overrun-20`).
    pub name: String,
    /// Runtime overrun bound fed to [`WorkflowExperiment::overrun`].
    pub overrun: f64,
    /// Fault injection profile applied per fault seed.
    pub faults: FaultProfile,
    /// Mid-run failure/recovery layer, applied per fault seed. `None`
    /// (and skipped in serialization) keeps pre-recovery sweep reports
    /// byte-identical.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub recovery: Option<RecoveryProfile>,
}

impl SweepScenario {
    /// A clean scenario (exact estimates, no faults).
    pub fn clean() -> Self {
        SweepScenario {
            name: "clean".into(),
            overrun: 0.0,
            faults: FaultProfile::Clean,
            recovery: None,
        }
    }

    /// The mixed-fault scenario of the robustness sweep.
    pub fn mixed_faults() -> Self {
        SweepScenario {
            name: "mixed-faults".into(),
            overrun: 0.0,
            faults: FaultProfile::Mixed,
            recovery: None,
        }
    }

    /// The chaos scenario: a clean workload hit by mid-run task failures,
    /// node crashes, and stragglers, recovered by the retry policy.
    pub fn chaos(task_fail_rate: f64) -> Self {
        SweepScenario {
            name: format!("chaos-{}", (task_fail_rate * 100.0).round() as u64),
            overrun: 0.0,
            faults: FaultProfile::Clean,
            recovery: Some(RecoveryProfile::chaos(task_fail_rate)),
        }
    }

    /// Attaches (or replaces) the scenario's recovery layer.
    #[must_use]
    pub fn with_recovery(mut self, profile: RecoveryProfile) -> Self {
        self.recovery = Some(profile);
        self
    }
}

/// The full grid of a sweep: one base experiment crossed with scenarios,
/// schedulers, and fault seeds.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Base experiment sizing (workflows, jobs, ad-hoc stream, seed).
    pub base: WorkflowExperiment,
    /// The simulated cluster.
    pub cluster: ClusterConfig,
    /// Scenarios, in report order.
    pub scenarios: Vec<SweepScenario>,
    /// Schedulers, in report order.
    pub schedulers: Vec<Algo>,
    /// Fault seeds, in report order.
    pub fault_seeds: Vec<u64>,
    /// When true, every cell additionally records a decision trace and the
    /// offline auditor ([`flowtime_sim::certify`]) must certify the run; a
    /// rejected cell aborts the sweep. The report's bytes are unchanged by
    /// this flag — auditing only verifies.
    pub audit: bool,
    /// Pod-level sharding ([`flowtime_sim::shard`]) applied to every cell.
    /// `None` runs the unsharded engine; `Some` runs each cell as
    /// `shard.pods` per-pod engines (sequentially inside the cell — the
    /// sweep grid already saturates the workers) and aggregates per-pod
    /// outcomes into the cell row. With auditing on, sharded cells are
    /// certified by [`flowtime_sim::certify_sharded`], including the
    /// cross-pod conservation checks.
    pub shard: Option<ShardSpec>,
}

/// One cell of the expanded grid.
#[derive(Debug, Clone)]
struct SweepCell {
    scenario: usize,
    algo: Algo,
    fault_seed: u64,
}

/// Everything measured inside one cell (intermediate, not serialized:
/// the raw turnaround samples feed the pooled percentiles).
struct CellOutcome {
    row: SweepCellRow,
    adhoc_turnaround_slots: Vec<u64>,
    /// Worst per-node milestone overrun of the cell: `(slots, "wf-X:nY")`.
    top_culprit: Option<(u64, String)>,
    solver: Option<SolverTelemetry>,
    engine: EngineTelemetry,
}

/// Per-cell summary row of the report, in canonical cell order.
#[derive(Debug, Clone, Serialize)]
pub struct SweepCellRow {
    /// Scenario name.
    pub scenario: String,
    /// Scheduler name.
    pub algo: String,
    /// Fault seed of this cell.
    pub fault_seed: u64,
    /// Jobs completed (the whole workload: sweeps reject partial runs).
    pub completed_jobs: usize,
    /// Milestone-tracked deadline jobs.
    pub deadline_jobs: usize,
    /// Milestone misses.
    pub job_misses: usize,
    /// Workflow deadline misses.
    pub workflow_misses: usize,
    /// Mean ad-hoc turnaround in seconds (0 when no ad-hoc jobs ran).
    pub adhoc_turnaround_s: f64,
    /// Total milestone overrun across the cell's deadline-miss attribution
    /// reports, in slots (which node set consumed the decomposed slack).
    pub overrun_slots: u64,
    /// Slots simulated.
    pub slots_elapsed: u64,
    /// Number of pods the cell ran sharded across; omitted — keeping
    /// unsharded report bytes — for unsharded cells.
    #[serde(skip_serializing_if = "is_zero_usize")]
    pub pods: usize,
    /// Mid-run failure/recovery counters of the cell (task failures, crash
    /// kills, retries, wasted work, sheds); omitted — keeping pre-recovery
    /// report bytes — when nothing fired.
    #[serde(skip_serializing_if = "RecoveryStats::is_inert")]
    pub recovery: RecoveryStats,
}

/// Aggregate over every cell of one `(scenario, scheduler)` pair.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRollup {
    /// Scenario name.
    pub scenario: String,
    /// Scheduler name.
    pub algo: String,
    /// Number of cells aggregated (= number of fault seeds).
    pub cells: usize,
    /// Total milestone-tracked jobs across cells.
    pub deadline_jobs: usize,
    /// Total milestone misses across cells.
    pub job_misses: usize,
    /// `job_misses / deadline_jobs` (0 when no deadline jobs).
    pub deadline_miss_rate: f64,
    /// Total workflow misses across cells.
    pub workflow_misses: usize,
    /// Pooled ad-hoc turnaround percentiles in seconds (nearest-rank over
    /// every ad-hoc job of every cell).
    pub adhoc_p50_s: f64,
    /// 90th percentile, same pooling.
    pub adhoc_p90_s: f64,
    /// 99th percentile, same pooling.
    pub adhoc_p99_s: f64,
    /// Total milestone overrun across cells, in slots.
    pub overrun_slots: u64,
    /// Worst single-node milestone overrun in the group, rendered as
    /// `"wf-X:nY +Z"` (empty when no node overran). Ties resolve to the
    /// first cell/node in canonical order, so the string is deterministic.
    pub top_overrun_node: String,
    /// Solver-effort counters summed across cells; `None` for solver-free
    /// schedulers.
    pub solver_telemetry: Option<SolverTelemetry>,
    /// Engine counters accumulated across cells (peak is a max).
    pub engine_telemetry: EngineTelemetry,
    /// Failure/recovery counters summed across cells; omitted (keeping
    /// pre-recovery report bytes) when nothing fired in the group.
    #[serde(skip_serializing_if = "RecoveryStats::is_inert")]
    pub recovery: RecoveryStats,
}

/// Compact description of the base experiment, embedded in the report so a
/// persisted sweep is self-describing.
#[derive(Debug, Clone, Serialize)]
pub struct SweepExperimentInfo {
    /// Number of workflows.
    pub workflows: usize,
    /// Jobs per workflow.
    pub jobs_per_workflow: usize,
    /// Ad-hoc arrival horizon in slots.
    pub adhoc_horizon: u64,
    /// Base workload seed.
    pub seed: u64,
}

/// The deterministic, ordered result of a sweep. Serialization contains no
/// wall-clock quantity, so its bytes are a pure function of the spec.
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Base experiment sizing.
    pub experiment: SweepExperimentInfo,
    /// The scenario axis.
    pub scenarios: Vec<SweepScenario>,
    /// The scheduler axis, by display name.
    pub schedulers: Vec<String>,
    /// The fault-seed axis.
    pub fault_seeds: Vec<u64>,
    /// The shard configuration every cell ran under; omitted — keeping
    /// pre-shard report bytes — for unsharded sweeps.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub shard: Option<ShardSpec>,
    /// Per-cell rows in canonical (scenario, scheduler, seed) order.
    pub cells: Vec<SweepCellRow>,
    /// Per-`(scenario, scheduler)` aggregates, same order as the axes.
    pub rollups: Vec<SweepRollup>,
}

/// A finished sweep: the deterministic report plus how it was executed.
#[derive(Debug)]
pub struct SweepRun {
    /// The deterministic report (thread-count independent).
    pub report: SweepReport,
    /// Worker threads used.
    pub threads: usize,
    /// Cells executed.
    pub cells: usize,
    /// Wall-clock time of the whole sweep in milliseconds. Not part of the
    /// report; record it via [`SweepBenchPoint`] when benchmarking.
    pub wall_ms: f64,
}

/// One wall-clock datapoint for `results/` (the BENCH record of a sweep's
/// cost at a given thread count).
#[derive(Debug, Clone, Serialize)]
pub struct SweepBenchPoint {
    /// Which sweep this measures (e.g. `robustness`).
    pub sweep: String,
    /// Worker threads used.
    pub threads: usize,
    /// Logical cores the host offers (`available_parallelism()`), so a
    /// flat scaling curve recorded on a 1-core box is self-explaining.
    pub host_parallelism: usize,
    /// Pods each cell was sharded across (0 = unsharded).
    #[serde(skip_serializing_if = "is_zero_usize")]
    pub pods: usize,
    /// Cells executed.
    pub cells: usize,
    /// Wall-clock milliseconds for the whole sweep.
    pub wall_ms: f64,
}

/// True for zero (skip the field in serialization).
fn is_zero_usize(v: &usize) -> bool {
    *v == 0
}

impl SweepSpec {
    /// The robustness fault-seed sweep as a spec: every Fig. 4 algorithm ×
    /// mixed faults × `fault_seeds` seeds on the default experiment.
    pub fn robustness(base_seed: u64, fault_seeds: usize) -> Self {
        SweepSpec {
            base: WorkflowExperiment {
                seed: base_seed,
                ..Default::default()
            },
            cluster: crate::experiments::testbed_cluster(),
            scenarios: vec![SweepScenario::mixed_faults()],
            schedulers: Algo::FIG4.to_vec(),
            fault_seeds: (0..fault_seeds as u64).collect(),
            audit: false,
            shard: None,
        }
    }

    /// Number of cells the spec expands to.
    pub fn cell_count(&self) -> usize {
        self.scenarios.len() * self.schedulers.len() * self.fault_seeds.len()
    }

    fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for scenario in 0..self.scenarios.len() {
            for &algo in &self.schedulers {
                for &fault_seed in &self.fault_seeds {
                    cells.push(SweepCell {
                        scenario,
                        algo,
                        fault_seed,
                    });
                }
            }
        }
        cells
    }

    /// Builds and runs one cell, fully isolated: its own workload, its own
    /// scheduler instance, its own engine.
    fn run_cell(&self, cell: &SweepCell) -> CellOutcome {
        let scenario = &self.scenarios[cell.scenario];
        let exp = WorkflowExperiment {
            overrun: scenario.overrun,
            ..self.base.clone()
        };
        let (workload, cluster) =
            faulted_instance(&exp, &self.cluster, scenario.faults.config(cell.fault_seed));
        let recovery = scenario.recovery.as_ref().map(|p| p.setup(cell.fault_seed));
        if let Some(shard) = &self.shard {
            // Pods run sequentially inside the cell (threads = 1): the
            // sweep grid is already spread across the workers, and nested
            // parallelism would oversubscribe them.
            let outcome = if self.audit {
                let (outcome, traces) = crate::experiments::run_sharded_outcome_traced_with(
                    cell.algo,
                    &cluster,
                    &workload,
                    recovery.as_ref(),
                    shard,
                    1,
                );
                let report = flowtime_sim::certify_sharded(
                    &cluster,
                    &workload,
                    shard,
                    &outcome,
                    &traces,
                    recovery.as_ref(),
                );
                assert!(
                    report.is_certified(),
                    "shard audit rejected {} / {} / seed {}: {}",
                    scenario.name,
                    cell.algo.name(),
                    cell.fault_seed,
                    report.summary()
                );
                outcome
            } else {
                crate::experiments::run_sharded_outcome_with(
                    cell.algo,
                    &cluster,
                    &workload,
                    recovery.as_ref(),
                    shard,
                    1,
                )
            };
            return sharded_cell_outcome(scenario, cell, &outcome);
        }
        let outcome = if self.audit {
            let (outcome, trace) = crate::experiments::run_outcome_traced_with(
                cell.algo,
                &cluster,
                workload.clone(),
                recovery.as_ref(),
            );
            let report = flowtime_sim::certify_with_recovery(
                &cluster,
                &workload,
                &outcome,
                &trace,
                recovery.as_ref(),
            );
            assert!(
                report.is_certified(),
                "audit rejected {} / {} / seed {}: {}",
                scenario.name,
                cell.algo.name(),
                cell.fault_seed,
                report.summary()
            );
            outcome
        } else {
            crate::experiments::run_outcome_with(cell.algo, &cluster, workload, recovery.as_ref())
        };
        cell_outcome(scenario, cell, &outcome)
    }

    /// Executes the sweep on up to `threads` workers.
    ///
    /// The returned [`SweepRun::report`] is byte-identical for any
    /// `threads` value; only [`SweepRun::wall_ms`] may differ.
    pub fn run(&self, threads: usize) -> SweepRun {
        let cells = self.cells();
        let t0 = Instant::now();
        let outcomes = run_cells(&cells, threads, |_, cell| self.run_cell(cell));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let slot_seconds = self.cluster.slot_seconds();

        let mut rollups = Vec::with_capacity(self.scenarios.len() * self.schedulers.len());
        for (s, scenario) in self.scenarios.iter().enumerate() {
            for &algo in &self.schedulers {
                let group: Vec<&CellOutcome> = cells
                    .iter()
                    .zip(&outcomes)
                    .filter(|(c, _)| c.scenario == s && c.algo == algo)
                    .map(|(_, o)| o)
                    .collect();
                rollups.push(rollup(scenario, algo, &group, slot_seconds));
            }
        }
        let report = SweepReport {
            experiment: SweepExperimentInfo {
                workflows: self.base.workflows,
                jobs_per_workflow: self.base.jobs_per_workflow,
                adhoc_horizon: self.base.adhoc_horizon,
                seed: self.base.seed,
            },
            scenarios: self.scenarios.clone(),
            schedulers: self.schedulers.iter().map(|a| a.name().into()).collect(),
            fault_seeds: self.fault_seeds.clone(),
            shard: self.shard.clone(),
            cells: outcomes.iter().map(|o| o.row.clone()).collect(),
            rollups,
        };
        SweepRun {
            report,
            threads,
            cells: cells.len(),
            wall_ms,
        }
    }

    /// Runs the sweep at each thread count, checks every report serializes
    /// to the same bytes as the first, and persists one
    /// [`SweepBenchPoint`] per count under `results/<name>_bench.json`.
    ///
    /// # Errors
    ///
    /// Returns the offending thread count if any report's bytes diverge
    /// from the `thread_counts[0]` reference (a determinism bug).
    pub fn bench(
        &self,
        name: &str,
        thread_counts: &[usize],
    ) -> Result<Vec<SweepBenchPoint>, usize> {
        let mut reference: Option<String> = None;
        let mut points = Vec::new();
        for &threads in thread_counts {
            let run = self.run(threads.max(1));
            let bytes = serde_json::to_string_pretty(&run.report).expect("report serializes");
            match &reference {
                None => reference = Some(bytes),
                Some(expect) if *expect != bytes => return Err(threads),
                Some(_) => {}
            }
            points.push(SweepBenchPoint {
                sweep: name.to_string(),
                threads: run.threads,
                host_parallelism: report::host_parallelism(),
                pods: self.shard.as_ref().map_or(0, |s| s.pods),
                cells: run.cells,
                wall_ms: run.wall_ms,
            });
        }
        report::persist(&format!("{name}_bench"), &points);
        Ok(points)
    }
}

/// Nearest-rank percentile over an already-sorted slice of slot counts,
/// converted to seconds. Deterministic: integer sort, one f64 multiply.
fn percentile_seconds(sorted_slots: &[u64], p: f64, slot_seconds: f64) -> f64 {
    if sorted_slots.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_slots.len() as f64) * p).ceil() as usize;
    let idx = rank.clamp(1, sorted_slots.len()) - 1;
    sorted_slots[idx] as f64 * slot_seconds
}

fn cell_outcome(scenario: &SweepScenario, cell: &SweepCell, outcome: &SimOutcome) -> CellOutcome {
    let metrics = &outcome.metrics;
    let mut adhoc_turnaround_slots: Vec<u64> =
        metrics.adhoc_jobs().map(|j| j.turnaround_slots()).collect();
    adhoc_turnaround_slots.sort_unstable();
    let overrun_slots: u64 = outcome
        .deadline_attribution
        .iter()
        .map(|a| a.total_overrun_slots)
        .sum();
    // Strict `>` keeps the first maximum in (workflow, node) order, so the
    // pick is deterministic.
    let mut top_culprit: Option<(u64, String)> = None;
    for a in &outcome.deadline_attribution {
        for c in &a.culprits {
            if top_culprit
                .as_ref()
                .is_none_or(|(best, _)| c.overrun_slots > *best)
            {
                top_culprit = Some((c.overrun_slots, format!("{}:n{}", a.workflow, c.node)));
            }
        }
    }
    CellOutcome {
        row: SweepCellRow {
            scenario: scenario.name.clone(),
            algo: cell.algo.name().to_string(),
            fault_seed: cell.fault_seed,
            completed_jobs: metrics.completed_jobs(),
            deadline_jobs: metrics.deadline_jobs().count(),
            job_misses: metrics.job_deadline_misses(),
            workflow_misses: metrics.workflow_deadline_misses(),
            adhoc_turnaround_s: metrics.avg_adhoc_turnaround_seconds().unwrap_or(0.0),
            overrun_slots,
            slots_elapsed: outcome.slots_elapsed,
            pods: 0,
            recovery: outcome.recovery.clone(),
        },
        adhoc_turnaround_slots,
        top_culprit,
        solver: outcome.solver_telemetry.clone(),
        engine: outcome.engine_telemetry.clone(),
    }
}

/// Aggregates one sharded cell's per-pod outcomes into a single row:
/// counters sum, makespan is the slowest pod's, ad-hoc turnarounds pool
/// across pods, and telemetry accumulates exactly as [`rollup`] does
/// across cells.
fn sharded_cell_outcome(
    scenario: &SweepScenario,
    cell: &SweepCell,
    outcome: &ShardedOutcome,
) -> CellOutcome {
    let mut adhoc_turnaround_slots: Vec<u64> = Vec::new();
    let mut overrun_slots = 0u64;
    let mut top_culprit: Option<(u64, String)> = None;
    let mut solver: Option<SolverTelemetry> = None;
    let mut engine = EngineTelemetry::default();
    let mut recovery = RecoveryStats::default();
    let mut slot_seconds = 0.0;
    for pod in &outcome.pods {
        slot_seconds = pod.metrics.slot_seconds;
        adhoc_turnaround_slots.extend(pod.metrics.adhoc_jobs().map(|j| j.turnaround_slots()));
        overrun_slots += pod
            .deadline_attribution
            .iter()
            .map(|a| a.total_overrun_slots)
            .sum::<u64>();
        // Strict `>` keeps the first maximum in (pod, workflow, node)
        // order, so the pick is deterministic.
        for a in &pod.deadline_attribution {
            for c in &a.culprits {
                if top_culprit
                    .as_ref()
                    .is_none_or(|(best, _)| c.overrun_slots > *best)
                {
                    top_culprit = Some((c.overrun_slots, format!("{}:n{}", a.workflow, c.node)));
                }
            }
        }
        if let Some(t) = &pod.solver_telemetry {
            solver
                .get_or_insert_with(SolverTelemetry::default)
                .accumulate(t);
        }
        engine.accumulate(&pod.engine_telemetry);
        recovery.accumulate(&pod.recovery);
    }
    adhoc_turnaround_slots.sort_unstable();
    let adhoc_turnaround_s = if adhoc_turnaround_slots.is_empty() {
        0.0
    } else {
        let sum: u64 = adhoc_turnaround_slots.iter().sum();
        sum as f64 / adhoc_turnaround_slots.len() as f64 * slot_seconds
    };
    CellOutcome {
        row: SweepCellRow {
            scenario: scenario.name.clone(),
            algo: cell.algo.name().to_string(),
            fault_seed: cell.fault_seed,
            completed_jobs: outcome.completed_jobs(),
            deadline_jobs: outcome
                .pods
                .iter()
                .map(|p| p.metrics.deadline_jobs().count())
                .sum(),
            job_misses: outcome.job_deadline_misses(),
            workflow_misses: outcome.workflow_deadline_misses(),
            adhoc_turnaround_s,
            overrun_slots,
            slots_elapsed: outcome.slots_elapsed(),
            pods: outcome.pods.len(),
            recovery,
        },
        adhoc_turnaround_slots,
        top_culprit,
        solver,
        engine,
    }
}

fn rollup(
    scenario: &SweepScenario,
    algo: Algo,
    group: &[&CellOutcome],
    slot_seconds: f64,
) -> SweepRollup {
    let mut deadline_jobs = 0usize;
    let mut job_misses = 0usize;
    let mut workflow_misses = 0usize;
    let mut pooled: Vec<u64> = Vec::new();
    let mut overrun_slots = 0u64;
    let mut top: Option<(u64, String)> = None;
    let mut solver: Option<SolverTelemetry> = None;
    let mut engine = EngineTelemetry::default();
    let mut recovery = RecoveryStats::default();
    for o in group {
        recovery.accumulate(&o.row.recovery);
        deadline_jobs += o.row.deadline_jobs;
        job_misses += o.row.job_misses;
        workflow_misses += o.row.workflow_misses;
        overrun_slots += o.row.overrun_slots;
        if let Some((ov, label)) = &o.top_culprit {
            if top.as_ref().is_none_or(|(best, _)| *ov > *best) {
                top = Some((*ov, label.clone()));
            }
        }
        pooled.extend_from_slice(&o.adhoc_turnaround_slots);
        if let Some(t) = &o.solver {
            solver
                .get_or_insert_with(SolverTelemetry::default)
                .accumulate(t);
        }
        engine.accumulate(&o.engine);
    }
    pooled.sort_unstable();
    SweepRollup {
        scenario: scenario.name.clone(),
        algo: algo.name().to_string(),
        cells: group.len(),
        deadline_jobs,
        job_misses,
        deadline_miss_rate: if deadline_jobs == 0 {
            0.0
        } else {
            job_misses as f64 / deadline_jobs as f64
        },
        workflow_misses,
        adhoc_p50_s: percentile_seconds(&pooled, 0.50, slot_seconds),
        adhoc_p90_s: percentile_seconds(&pooled, 0.90, slot_seconds),
        adhoc_p99_s: percentile_seconds(&pooled, 0.99, slot_seconds),
        overrun_slots,
        top_overrun_node: top.map(|(ov, l)| format!("{l} +{ov}")).unwrap_or_default(),
        solver_telemetry: solver,
        engine_telemetry: engine,
        recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            base: WorkflowExperiment {
                workflows: 2,
                jobs_per_workflow: 5,
                adhoc_horizon: 50,
                ..Default::default()
            },
            cluster: crate::experiments::testbed_cluster(),
            scenarios: vec![SweepScenario::clean(), SweepScenario::mixed_faults()],
            schedulers: vec![Algo::Edf, Algo::Fifo],
            fault_seeds: vec![0, 1],
            audit: false,
            shard: None,
        }
    }

    #[test]
    fn cells_expand_in_canonical_order() {
        let spec = tiny_spec();
        assert_eq!(spec.cell_count(), 8);
        let cells = spec.cells();
        let order: Vec<(usize, &str, u64)> = cells
            .iter()
            .map(|c| (c.scenario, c.algo.name(), c.fault_seed))
            .collect();
        assert_eq!(order[0], (0, "EDF", 0));
        assert_eq!(order[1], (0, "EDF", 1));
        assert_eq!(order[2], (0, "FIFO", 0));
        assert_eq!(order[4], (1, "EDF", 0));
        assert_eq!(order[7], (1, "FIFO", 1));
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        let spec = tiny_spec();
        let sequential = serde_json::to_string_pretty(&spec.run(1).report).unwrap();
        let parallel = serde_json::to_string_pretty(&spec.run(4).report).unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn rollups_aggregate_their_group() {
        let spec = tiny_spec();
        let report = spec.run(2).report;
        assert_eq!(report.cells.len(), 8);
        assert_eq!(report.rollups.len(), 4);
        for r in &report.rollups {
            assert_eq!(r.cells, 2);
            let group: Vec<&SweepCellRow> = report
                .cells
                .iter()
                .filter(|c| c.scenario == r.scenario && c.algo == r.algo)
                .collect();
            assert_eq!(group.len(), 2);
            assert_eq!(r.job_misses, group.iter().map(|c| c.job_misses).sum());
            assert_eq!(r.deadline_jobs, group.iter().map(|c| c.deadline_jobs).sum());
            assert!(r.adhoc_p50_s <= r.adhoc_p90_s && r.adhoc_p90_s <= r.adhoc_p99_s);
            assert!(r.engine_telemetry.slots_simulated > 0);
        }
    }

    #[test]
    fn audited_sweep_certifies_and_leaves_report_bytes_unchanged() {
        let spec = tiny_spec();
        let plain = serde_json::to_string_pretty(&spec.run(1).report).unwrap();
        let audited_spec = SweepSpec {
            audit: true,
            ..spec
        };
        // run() panics inside a cell if the auditor rejects it.
        let audited = serde_json::to_string_pretty(&audited_spec.run(2).report).unwrap();
        assert_eq!(plain, audited);
    }

    #[test]
    fn chaos_sweep_audits_recovers_and_stays_thread_deterministic() {
        let spec = SweepSpec {
            scenarios: vec![SweepScenario::chaos(0.3)],
            audit: true,
            ..tiny_spec()
        };
        let run = spec.run(1);
        let fired: u64 = run
            .report
            .cells
            .iter()
            .map(|c| c.recovery.task_failures + c.recovery.crash_kills)
            .sum();
        assert!(fired > 0, "chaos scenario injected nothing");
        for r in &run.report.rollups {
            assert_eq!(
                r.recovery.retries,
                r.recovery.task_failures + r.recovery.crash_kills
            );
        }
        let sequential = serde_json::to_string_pretty(&run.report).unwrap();
        let parallel = serde_json::to_string_pretty(&spec.run(4).report).unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn recovery_free_scenarios_serialize_without_recovery_fields() {
        let spec = tiny_spec();
        let bytes = serde_json::to_string_pretty(&spec.run(1).report).unwrap();
        assert!(!bytes.contains("\"recovery\""), "inert counters leaked");
    }

    #[test]
    fn sharded_sweep_audits_and_stays_thread_deterministic() {
        let spec = SweepSpec {
            audit: true,
            shard: Some(ShardSpec::new(2)),
            ..tiny_spec()
        };
        let run = spec.run(1);
        for row in &run.report.cells {
            assert_eq!(row.pods, 2);
        }
        assert_eq!(run.report.shard.as_ref().map(|s| s.pods), Some(2));
        let sequential = serde_json::to_string_pretty(&run.report).unwrap();
        let parallel = serde_json::to_string_pretty(&spec.run(4).report).unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn single_pod_sharded_rows_match_unsharded_rows() {
        let spec = tiny_spec();
        let unsharded = spec.run(1).report;
        let sharded = SweepSpec {
            shard: Some(ShardSpec::new(1)),
            ..spec
        }
        .run(1)
        .report;
        assert_eq!(unsharded.cells.len(), sharded.cells.len());
        for (u, s) in unsharded.cells.iter().zip(&sharded.cells) {
            assert_eq!(s.pods, 1);
            assert_eq!(u.completed_jobs, s.completed_jobs);
            assert_eq!(u.job_misses, s.job_misses);
            assert_eq!(u.workflow_misses, s.workflow_misses);
            assert_eq!(u.overrun_slots, s.overrun_slots);
            assert_eq!(u.slots_elapsed, s.slots_elapsed);
            assert_eq!(u.adhoc_turnaround_s, s.adhoc_turnaround_s);
        }
    }

    #[test]
    fn unsharded_reports_serialize_without_shard_fields() {
        let spec = tiny_spec();
        let bytes = serde_json::to_string_pretty(&spec.run(1).report).unwrap();
        assert!(!bytes.contains("\"shard\""), "shard config leaked");
        assert!(!bytes.contains("\"pods\""), "pod count leaked");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let slots: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_seconds(&slots, 0.50, 10.0), 500.0);
        assert_eq!(percentile_seconds(&slots, 0.90, 10.0), 900.0);
        assert_eq!(percentile_seconds(&slots, 0.99, 10.0), 990.0);
        assert_eq!(percentile_seconds(&[], 0.5, 10.0), 0.0);
        assert_eq!(percentile_seconds(&[7], 0.99, 10.0), 70.0);
    }
}
