//! Workload construction, scheduler factory, and experiment runners.

use flowtime::decompose::{decompose, DecomposeConfig};
use flowtime::{
    CoraScheduler, EdfScheduler, FairScheduler, FifoScheduler, FlowTimeConfig, FlowTimeScheduler,
    MorpheusScheduler,
};
use flowtime_dag::{ResourceVec, WorkflowId};
use flowtime_sim::{
    ClusterConfig, Engine, FaultConfig, FaultPlan, Metrics, RecoverySetup, Scheduler, SimWorkload,
};
use flowtime_workload::{AdhocStream, ScientificShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Slot duration used throughout the experiments (the paper's 10 s).
pub const SLOT_SECONDS: f64 = 10.0;

/// The simulated cluster for the workflow experiments (Fig. 4/5): a
/// 10-node testbed at 8 cores / 32 GiB per node — small relative to the
/// jobs' task parallelism, as in the paper's deployment, so the deadline
/// workload genuinely contends for the cluster.
pub fn testbed_cluster() -> ClusterConfig {
    ClusterConfig::new(ResourceVec::new([80, 327_680]), SLOT_SECONDS)
}

/// The Fig. 7 cluster: 500 CPU cores and 1 TB of memory.
pub fn fig7_cluster() -> ClusterConfig {
    ClusterConfig::new(ResourceVec::new([500, 1_048_576]), SLOT_SECONDS)
}

/// The algorithms compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[allow(missing_docs)]
pub enum Algo {
    FlowTime,
    /// Ablation: FlowTime without deadline slack (Fig. 5).
    FlowTimeNoDs,
    Cora,
    Edf,
    Fair,
    Fifo,
    Morpheus,
}

impl Algo {
    /// The five algorithms shown in Fig. 4, in the paper's order, plus the
    /// Morpheus baseline named in Section VII-A.
    pub const FIG4: [Algo; 6] = [
        Algo::FlowTime,
        Algo::Cora,
        Algo::Edf,
        Algo::Fair,
        Algo::Fifo,
        Algo::Morpheus,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::FlowTime => "FlowTime",
            Algo::FlowTimeNoDs => "FlowTime_no_ds",
            Algo::Cora => "CORA",
            Algo::Edf => "EDF",
            Algo::Fair => "Fair",
            Algo::Fifo => "FIFO",
            Algo::Morpheus => "Morpheus",
        }
    }

    /// Parses a scheduler name as printed by [`Algo::name`], ignoring case
    /// and separators (`flowtime`, `FlowTime_no_ds`, `flow-time-no-ds` and
    /// the like all resolve).
    pub fn parse(name: &str) -> Option<Algo> {
        let norm: String = name
            .chars()
            .filter(char::is_ascii_alphanumeric)
            .collect::<String>()
            .to_ascii_lowercase();
        match norm.as_str() {
            "flowtime" => Some(Algo::FlowTime),
            "flowtimenods" => Some(Algo::FlowTimeNoDs),
            "cora" => Some(Algo::Cora),
            "edf" => Some(Algo::Edf),
            "fair" => Some(Algo::Fair),
            "fifo" => Some(Algo::Fifo),
            "morpheus" => Some(Algo::Morpheus),
            _ => None,
        }
    }

    /// Instantiates the scheduler.
    pub fn make(&self, cluster: &ClusterConfig) -> Box<dyn Scheduler> {
        match self {
            Algo::FlowTime => Box::new(FlowTimeScheduler::new(
                cluster.clone(),
                FlowTimeConfig::default(),
            )),
            Algo::FlowTimeNoDs => Box::new(FlowTimeScheduler::new(
                cluster.clone(),
                FlowTimeConfig {
                    slack_slots: 0,
                    ..Default::default()
                },
            )),
            Algo::Cora => Box::new(CoraScheduler::new(cluster.clone())),
            Algo::Edf => Box::new(EdfScheduler::new()),
            Algo::Fair => Box::new(FairScheduler::new()),
            Algo::Fifo => Box::new(FifoScheduler::new()),
            Algo::Morpheus => Box::new(MorpheusScheduler::new(cluster.clone())),
        }
    }
}

/// Parameters of the Fig. 4/5 workflow experiment.
#[derive(Debug, Clone)]
pub struct WorkflowExperiment {
    /// Number of workflows (paper: 5).
    pub workflows: usize,
    /// Jobs per workflow (paper: 18, for 90 deadline jobs).
    pub jobs_per_workflow: usize,
    /// Input size range per job in GB (paper: >= 10 GB).
    pub input_gb: (u64, u64),
    /// Deadline looseness: window = looseness x minimal makespan.
    pub looseness: f64,
    /// Stagger between workflow submissions, in slots.
    pub stagger_slots: u64,
    /// Ad-hoc arrival rate per slot.
    pub adhoc_rate: f64,
    /// Slots over which ad-hoc jobs arrive.
    pub adhoc_horizon: u64,
    /// Relative runtime under-estimation bound: actual work is drawn in
    /// `[est, est * (1 + overrun)]` (0 = exact estimates).
    pub overrun: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkflowExperiment {
    fn default() -> Self {
        WorkflowExperiment {
            workflows: 5,
            jobs_per_workflow: 18,
            input_gb: (5, 12),
            looseness: 3.5,
            stagger_slots: 40,
            adhoc_rate: 0.45,
            adhoc_horizon: 600,
            overrun: 0.0,
            seed: 20180702, // ICDCS 2018 opened July 2 :-)
        }
    }
}

impl WorkflowExperiment {
    /// Builds the workload: `workflows` scientific workflows (one family
    /// each, rotating) of PUMA-style jobs with loose deadlines, per-job
    /// milestone deadlines attached from the scheduler-independent demand
    /// decomposition, plus a Poisson ad-hoc stream.
    pub fn build(&self, cluster: &ClusterConfig) -> SimWorkload {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut workload = SimWorkload::default();
        for i in 0..self.workflows {
            let shape = ScientificShape::ALL[i % ScientificShape::ALL.len()];
            let submit = i as u64 * self.stagger_slots;
            let probe = shape
                .workflow(
                    WorkflowId::new(i as u64),
                    self.jobs_per_workflow,
                    self.input_gb.0,
                    self.input_gb.1,
                    submit,
                    submit + 1_000_000,
                    self.seed ^ (0xABCD + i as u64),
                )
                .expect("valid skeleton");
            // "Loose" must be judged against what the cluster can actually
            // do: the window is `looseness x` the capacity-aware makespan
            // (dependency makespan, floored by total normalized demand).
            let demand_slots = probe
                .total_demand()
                .max_normalized_by(&cluster.capacity())
                .ceil() as u64;
            let min_span = probe.min_makespan_slots().max(demand_slots).max(1);
            let window = ((min_span as f64) * self.looseness).ceil() as u64;
            let wf = {
                let mut b =
                    flowtime_dag::WorkflowBuilder::new(probe.id(), probe.name().to_string());
                for job in probe.jobs() {
                    b.add_job(job.clone());
                }
                for (from, to) in probe.dag().edges() {
                    b.add_dep(from, to).expect("valid edges");
                }
                b.window(submit, submit + window)
                    .build()
                    .expect("valid window")
            };
            // Scheduler-independent milestones from the paper's (unslacked)
            // demand decomposition: every algorithm is judged against the
            // same per-job deadlines.
            let milestones = decompose(&wf, &DecomposeConfig::new(cluster.capacity()))
                .expect("window covers level sets")
                .job_deadlines();
            let actual: Vec<u64> = wf
                .jobs()
                .iter()
                .map(|j| {
                    let overrun = rng.gen_range(0.0..=self.overrun.max(0.0));
                    ((j.work() as f64) * (1.0 + overrun)).round().max(1.0) as u64
                })
                .collect();
            workload.workflows.push(
                flowtime_sim::WorkflowSubmission::new(wf)
                    .with_job_deadlines(milestones)
                    .with_actual_work(actual),
            );
        }
        let stream = AdhocStream {
            rate_per_slot: self.adhoc_rate,
            // Heavy-tailed sizes: mostly small queries with occasional
            // multi-hundred-task-slot analytics jobs, the mix that makes
            // FIFO's head-of-line blocking visible (paper Fig. 4(b)).
            work_mu: 3.0,
            work_sigma: 1.1,
            ..Default::default()
        };
        workload.adhoc = stream.generate(self.adhoc_horizon, self.seed.wrapping_add(17));
        workload
    }
}

/// Builds an experiment's workload and then rewrites it (and the cluster)
/// through a deterministic [`FaultPlan`]. Every algorithm compared on the
/// returned pair sees the same misestimated runtimes, degraded capacity
/// windows, and injected bursts.
pub fn faulted_instance(
    exp: &WorkflowExperiment,
    cluster: &ClusterConfig,
    config: FaultConfig,
) -> (SimWorkload, ClusterConfig) {
    let mut workload = exp.build(cluster);
    let mut cluster = cluster.clone();
    let horizon = workload
        .workflows
        .iter()
        .map(|w| w.workflow.deadline_slot())
        .max()
        .unwrap_or(0)
        .max(exp.adhoc_horizon);
    FaultPlan::new(config).apply(&mut workload, &mut cluster, horizon);
    (workload, cluster)
}

/// Runs `algo` on a workload, returning its metrics.
///
/// # Panics
///
/// Panics if the engine rejects the scheduler (a bug) or the horizon is
/// exhausted (workload mis-sized).
pub fn run(algo: Algo, cluster: &ClusterConfig, workload: SimWorkload) -> Metrics {
    run_outcome(algo, cluster, workload).metrics
}

/// Runs `algo` on a workload, returning the full outcome (metrics plus
/// solver and engine telemetry).
///
/// # Panics
///
/// Panics if the engine rejects the scheduler (a bug) or the horizon is
/// exhausted (workload mis-sized) — the engine reports exhaustion via
/// [`flowtime_sim::SimOutcome::in_flight`], and the experiment harness
/// treats a partial run as unusable for comparisons.
pub fn run_outcome(
    algo: Algo,
    cluster: &ClusterConfig,
    workload: SimWorkload,
) -> flowtime_sim::SimOutcome {
    run_outcome_with(algo, cluster, workload, None)
}

/// [`run_outcome`] with an optional mid-run failure/recovery layer. With
/// `None` this is exactly `run_outcome`; passing an inert setup attaches
/// the layer (crash overlays, degradation scans) without firing anything.
///
/// # Panics
///
/// Same contract as [`run_outcome`].
pub fn run_outcome_with(
    algo: Algo,
    cluster: &ClusterConfig,
    workload: SimWorkload,
    recovery: Option<&RecoverySetup>,
) -> flowtime_sim::SimOutcome {
    let mut scheduler = algo.make(cluster);
    let mut engine = Engine::new(cluster.clone(), workload, 1_000_000).expect("valid workload");
    if let Some(setup) = recovery {
        engine = engine.with_recovery(setup.clone());
    }
    let outcome = engine
        .run(scheduler.as_mut())
        .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
    assert!(
        outcome.is_complete(),
        "{}: horizon exhausted with {} jobs in flight",
        algo.name(),
        outcome.in_flight.len()
    );
    outcome
}

/// Runs `algo` on a workload with decision-trace recording enabled (ring
/// bound [`flowtime_sim::DEFAULT_TRACE_CAPACITY`]), returning the outcome
/// together with the recorded trace. The outcome is bit-identical to
/// [`run_outcome`] — tracing only observes.
///
/// # Panics
///
/// Same contract as [`run_outcome`].
pub fn run_outcome_traced(
    algo: Algo,
    cluster: &ClusterConfig,
    workload: SimWorkload,
) -> (flowtime_sim::SimOutcome, flowtime_sim::DecisionTrace) {
    run_outcome_traced_with(algo, cluster, workload, None)
}

/// [`run_outcome_traced`] with an optional mid-run failure/recovery layer.
///
/// # Panics
///
/// Same contract as [`run_outcome`].
pub fn run_outcome_traced_with(
    algo: Algo,
    cluster: &ClusterConfig,
    workload: SimWorkload,
    recovery: Option<&RecoverySetup>,
) -> (flowtime_sim::SimOutcome, flowtime_sim::DecisionTrace) {
    let mut scheduler = algo.make(cluster);
    let mut engine = Engine::new(cluster.clone(), workload, 1_000_000).expect("valid workload");
    if let Some(setup) = recovery {
        engine = engine.with_recovery(setup.clone());
    }
    let (engine, handle) = engine.with_trace(flowtime_sim::DEFAULT_TRACE_CAPACITY);
    let outcome = engine
        .run(scheduler.as_mut())
        .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
    assert!(
        outcome.is_complete(),
        "{}: horizon exhausted with {} jobs in flight",
        algo.name(),
        outcome.in_flight.len()
    );
    (outcome, handle.take())
}

/// Runs `algo` sharded across `shard.pods` pods ([`flowtime_sim::shard`]),
/// with per-pod engines executed on up to `threads` workers. Each pod gets
/// its own scheduler instance built against its capacity slice — and
/// therefore its own plan cache, so warm starts survive sharding without
/// cross-pod interference.
///
/// # Panics
///
/// Panics if any pod's engine rejects the scheduler or exhausts the
/// horizon — same contract as [`run_outcome`], applied per pod.
pub fn run_sharded_outcome_with(
    algo: Algo,
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    recovery: Option<&RecoverySetup>,
    shard: &flowtime_sim::ShardSpec,
    threads: usize,
) -> flowtime_sim::ShardedOutcome {
    let outcome = flowtime_sim::run_sharded(
        cluster,
        workload,
        shard,
        1_000_000,
        threads,
        recovery,
        |_pod, pod_cluster| algo.make(pod_cluster),
    )
    .unwrap_or_else(|e| panic!("{} (sharded) failed: {e}", algo.name()));
    assert_sharded_complete(algo, &outcome);
    outcome
}

/// [`run_sharded_outcome_with`] with one decision trace recorded per pod
/// (ring bound [`flowtime_sim::DEFAULT_TRACE_CAPACITY`]), for
/// certification via [`flowtime_sim::certify_sharded`]. The outcome is
/// bit-identical to the untraced run.
///
/// # Panics
///
/// Same contract as [`run_sharded_outcome_with`].
pub fn run_sharded_outcome_traced_with(
    algo: Algo,
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    recovery: Option<&RecoverySetup>,
    shard: &flowtime_sim::ShardSpec,
    threads: usize,
) -> (
    flowtime_sim::ShardedOutcome,
    Vec<flowtime_sim::DecisionTrace>,
) {
    let (outcome, traces) = flowtime_sim::run_sharded_traced(
        cluster,
        workload,
        shard,
        1_000_000,
        threads,
        recovery,
        flowtime_sim::DEFAULT_TRACE_CAPACITY,
        |_pod, pod_cluster| algo.make(pod_cluster),
    )
    .unwrap_or_else(|e| panic!("{} (sharded) failed: {e}", algo.name()));
    assert_sharded_complete(algo, &outcome);
    (outcome, traces)
}

fn assert_sharded_complete(algo: Algo, outcome: &flowtime_sim::ShardedOutcome) {
    for pod in &outcome.pods {
        assert!(
            pod.is_complete(),
            "{} pod {}: horizon exhausted with {} jobs in flight",
            algo.name(),
            pod.pod,
            pod.in_flight.len()
        );
    }
}

/// One row of the Fig. 4/5 comparison tables.
#[derive(Debug, Clone, Serialize)]
pub struct SummaryRow {
    /// Algorithm name.
    pub algo: String,
    /// Number of deadline jobs with milestones.
    pub deadline_jobs: usize,
    /// Jobs that missed their milestone (Fig. 4(b)).
    pub job_misses: usize,
    /// Workflows that missed their deadline.
    pub workflow_misses: usize,
    /// Worst completion-minus-deadline in seconds (Fig. 4(a) top).
    pub max_delta_s: f64,
    /// Mean completion-minus-deadline in seconds (Fig. 4(a) tendency).
    pub mean_delta_s: f64,
    /// Average ad-hoc turnaround in seconds (Fig. 4(c)).
    pub adhoc_turnaround_s: f64,
    /// Mean peak-normalized cluster utilization.
    pub avg_utilization: f64,
}

/// Summarizes a metrics object into a table row.
pub fn summarize(algo: Algo, metrics: &Metrics) -> SummaryRow {
    let deltas = metrics.job_deadline_deltas_seconds();
    let mean = if deltas.is_empty() {
        0.0
    } else {
        deltas.iter().sum::<f64>() / deltas.len() as f64
    };
    SummaryRow {
        algo: algo.name().to_string(),
        deadline_jobs: metrics.deadline_jobs().count(),
        job_misses: metrics.job_deadline_misses(),
        workflow_misses: metrics.workflow_deadline_misses(),
        max_delta_s: deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        mean_delta_s: mean,
        adhoc_turnaround_s: metrics.avg_adhoc_turnaround_seconds().unwrap_or(0.0),
        avg_utilization: metrics.avg_peak_utilization(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_with_milestones() {
        let cluster = testbed_cluster();
        let exp = WorkflowExperiment {
            adhoc_horizon: 100,
            ..Default::default()
        };
        let wl = exp.build(&cluster);
        assert_eq!(wl.workflows.len(), 5);
        for sub in &wl.workflows {
            assert_eq!(sub.workflow.len(), 18);
            assert!(sub.job_deadlines.is_some());
            assert!(sub.actual_work.is_some());
        }
        assert!(!wl.adhoc.is_empty());
    }

    #[test]
    fn faulted_instance_is_deterministic_and_diverges() {
        let cluster = testbed_cluster();
        let exp = WorkflowExperiment {
            workflows: 2,
            jobs_per_workflow: 6,
            adhoc_horizon: 60,
            ..Default::default()
        };
        let (wl_a, cl_a) = faulted_instance(&exp, &cluster, FaultConfig::mixed(9));
        let (wl_b, cl_b) = faulted_instance(&exp, &cluster, FaultConfig::mixed(9));
        assert_eq!(wl_a, wl_b);
        assert_eq!(cl_a, cl_b);
        let (wl_clean, cl_clean) = faulted_instance(&exp, &cluster, FaultConfig::none(9));
        assert_eq!(wl_clean, exp.build(&cluster));
        assert_eq!(cl_clean, cluster);
        assert_ne!(wl_a, wl_clean);
    }

    #[test]
    fn all_algorithms_complete_a_small_instance() {
        let cluster = testbed_cluster();
        let exp = WorkflowExperiment {
            workflows: 2,
            jobs_per_workflow: 6,
            adhoc_horizon: 60,
            adhoc_rate: 0.45,
            ..Default::default()
        };
        for algo in Algo::FIG4 {
            let metrics = run(algo, &cluster, exp.build(&cluster));
            assert!(metrics.completed_jobs() > 12, "{}", algo.name());
            let row = summarize(algo, &metrics);
            assert_eq!(row.deadline_jobs, 12);
        }
    }
}
