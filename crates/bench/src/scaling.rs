//! Lemma 2 interval-structured leveling LPs at parameterized scale.
//!
//! The paper's per-slot scheduling LP (Section IV, Lemma 2) has *interval
//! structure*: every allocation variable touches one job-demand row and one
//! slot-capacity row inside a contiguous slot window, and the peak variable
//! couples the slot rows. The constraint matrix is therefore near-banded
//! and extremely sparse (two nonzeros per allocation column), which is
//! exactly the regime the sparse revised simplex exploits.
//!
//! This module generates that family at any job count, deterministically
//! from a seed, for the `fig_scaling` benchmark and the scale-stratified
//! property tests:
//!
//! * `min z  s.t.  Σ_t a_{j,t} = D_j` (one equality per job),
//!   `Σ_j a_{j,t} − z ≤ 0` (one row per slot), `0 ≤ a_{j,t} ≤ cap`.
//! * Windows are short random intervals, so column count ≈ 6·jobs while
//!   rows ≈ jobs + horizon — the 1k–10k-job shapes DAGPS-style schedulers
//!   replan at.
//! * [`perturbed`] shrinks demands by a few percent (what job completions
//!   do between replans) without touching the structure, producing the
//!   realistic warm-start sequence.

use flowtime_lp::{Problem, Relation, VarId};

/// Per-variable allocation cap (containers per job per slot).
pub const SLOT_CAP: u64 = 4;

/// An interval leveling LP plus the metadata needed to reason about its
/// size and to regenerate perturbed variants.
pub struct ScalingInstance {
    /// The assembled LP (`min z`).
    pub problem: Problem,
    /// The peak variable.
    pub z: VarId,
    /// Job count (equality-row count).
    pub jobs: usize,
    /// Slot count (inequality-row count).
    pub horizon: usize,
    /// Total rows `jobs + horizon`.
    pub rows: usize,
    /// Total structural columns (allocations + z).
    pub cols: usize,
    /// Structural nonzeros of the constraint matrix.
    pub nnz: usize,
    /// Each job's `(window_start, window_len, demand)`.
    pub shape: Vec<(usize, usize, u64)>,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Deterministic interval instance with `jobs` jobs on a horizon of
/// `max(24, jobs/4)` slots.
pub fn interval_instance(jobs: usize, seed: u64) -> ScalingInstance {
    let horizon = (jobs / 4).max(24);
    let mut state = seed | 1;
    let mut shape = Vec::with_capacity(jobs);
    for _ in 0..jobs {
        let len = 4 + (xorshift(&mut state) % 5) as usize; // 4..=8 slots
        let start = (xorshift(&mut state) % (horizon - len + 1) as u64) as usize;
        // Demand fits the window under the per-slot cap: D ≤ len·SLOT_CAP.
        let demand = len as u64 + xorshift(&mut state) % (len as u64 * (SLOT_CAP - 1) + 1);
        shape.push((start, len, demand));
    }
    assemble(horizon, &shape)
}

/// The replan at `step`: the base shape with every demand shrunk by a
/// deterministic few percent (never below 1), structure untouched. Each
/// step's LP has identical dimensions, so an optimal basis of the base
/// instance warm-starts it.
pub fn perturbed(base: &ScalingInstance, step: u64, seed: u64) -> ScalingInstance {
    let mut state = (seed ^ step.wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
    let shape: Vec<(usize, usize, u64)> = base
        .shape
        .iter()
        .map(|&(start, len, demand)| {
            let cut = xorshift(&mut state) % (demand / 20 + 1);
            (start, len, (demand - cut).max(1))
        })
        .collect();
    assemble(base.horizon, &shape)
}

/// Like [`perturbed`], but shrinks the demands of only `count`
/// pseudo-randomly chosen jobs, leaving the rest untouched. This is the
/// bounded-drift replan (a handful of completions land between two
/// replans): the number of moved RHS entries stays constant as the
/// instance grows, which is what lets warm-resolve work scale
/// sub-quadratically in n.
pub fn perturbed_jobs(
    base: &ScalingInstance,
    step: u64,
    seed: u64,
    count: usize,
) -> ScalingInstance {
    let mut state = (seed ^ step.wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
    let mut shape = base.shape.clone();
    for _ in 0..count {
        let j = (xorshift(&mut state) % shape.len() as u64) as usize;
        let (start, len, demand) = shape[j];
        let cut = xorshift(&mut state) % (demand / 20 + 1);
        shape[j] = (start, len, (demand - cut).max(1));
    }
    assemble(base.horizon, &shape)
}

fn assemble(horizon: usize, shape: &[(usize, usize, u64)]) -> ScalingInstance {
    let mut p = Problem::new();
    let z = p.add_var(1.0, 0.0, f64::INFINITY).expect("valid bounds");
    let mut slot_terms: Vec<Vec<(VarId, f64)>> = vec![vec![(z, -1.0)]; horizon];
    let mut cols = 1usize;
    let mut nnz = horizon; // z's entries
    for &(start, len, demand) in shape {
        let mut job_terms = Vec::with_capacity(len);
        for slot in slot_terms.iter_mut().skip(start).take(len) {
            let a = p.add_var(0.0, 0.0, SLOT_CAP as f64).expect("valid bounds");
            job_terms.push((a, 1.0));
            slot.push((a, 1.0));
            cols += 1;
            nnz += 2;
        }
        p.add_constraint(&job_terms, Relation::Eq, demand as f64)
            .expect("well-formed row");
    }
    for terms in &slot_terms {
        p.add_constraint(terms, Relation::Le, 0.0)
            .expect("well-formed row");
    }
    ScalingInstance {
        problem: p,
        z,
        jobs: shape.len(),
        horizon,
        rows: shape.len() + horizon,
        cols,
        nnz,
        shape: shape.to_vec(),
    }
}

/// Analytic peak-memory estimate for the dense tableau engine on this
/// instance, in bytes: the tableau is `rows × width` of f64 where `width`
/// counts structurals, slacks (one per ≤ row), artificials (one per row),
/// and the RHS column. This is computed *without allocating*, so the
/// benchmark can record a dense DNF at scales whose tableau would not fit.
pub fn dense_tableau_bytes(inst: &ScalingInstance) -> u64 {
    let width = inst.cols + inst.horizon + inst.rows + 1;
    (inst.rows as u64) * (width as u64) * 8
}

/// Analytic peak-memory estimate for the sparse revised engine, in bytes:
/// the CSC matrix (nonzeros + column pointers), the LU factors (bounded by
/// a small fill multiple of the basis nonzeros on this near-banded
/// family), the eta file between refactorizations, and the dense
/// work vectors.
pub fn sparse_bytes_estimate(inst: &ScalingInstance) -> u64 {
    let csc = (inst.nnz + inst.horizon + inst.rows) as u64 * 12 + (inst.cols as u64 + 1) * 8;
    let lu_fill = 3 * (inst.nnz as u64) * 16;
    let vectors = 8 * (inst.rows as u64) * 8;
    csc + lu_fill + vectors
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_lp::SimplexOptions;

    #[test]
    fn instance_is_feasible_and_leveled() {
        let inst = interval_instance(40, 7);
        assert_eq!(inst.rows, 40 + inst.horizon);
        let sol = inst.problem.solve().unwrap();
        // z equals the peak usage; the perfectly-leveled lower bound is
        // total demand over the horizon.
        let total: u64 = inst.shape.iter().map(|&(_, _, d)| d).sum();
        let floor = total as f64 / inst.horizon as f64;
        assert!(sol.objective >= floor - 1e-6, "{} < {floor}", sol.objective);
        assert!(inst.problem.is_feasible(&sol.x, 1e-6));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = interval_instance(25, 3);
        let b = interval_instance(25, 3);
        assert_eq!(a.shape, b.shape);
        let pa = perturbed(&a, 2, 11);
        let pb = perturbed(&b, 2, 11);
        assert_eq!(pa.shape, pb.shape);
    }

    #[test]
    fn perturbation_keeps_dimensions_and_feasibility() {
        let base = interval_instance(30, 5);
        let stepped = perturbed(&base, 1, 5);
        assert_eq!(base.rows, stepped.rows);
        assert_eq!(base.cols, stepped.cols);
        for (&(s0, l0, d0), &(s1, l1, d1)) in base.shape.iter().zip(&stepped.shape) {
            assert_eq!((s0, l0), (s1, l1));
            assert!(d1 <= d0 && d1 >= 1);
        }
        // The base optimum warm-starts the perturbed replan.
        let opts = SimplexOptions::default();
        let first = base.problem.solve_warm(&opts, None).unwrap();
        let warm = stepped
            .problem
            .solve_warm(&opts, Some(&first.basis))
            .unwrap();
        assert!(warm.warm_used, "replan should accept the previous basis");
    }

    #[test]
    fn memory_estimates_scale_apart() {
        let small = interval_instance(100, 1);
        let big = interval_instance(1000, 1);
        // Dense grows quadratically (rows × width), sparse linearly.
        let dense_ratio = dense_tableau_bytes(&big) as f64 / dense_tableau_bytes(&small) as f64;
        let sparse_ratio =
            sparse_bytes_estimate(&big) as f64 / sparse_bytes_estimate(&small) as f64;
        assert!(dense_ratio > 50.0, "dense ratio {dense_ratio}");
        assert!(sparse_ratio < 25.0, "sparse ratio {sparse_ratio}");
    }
}
