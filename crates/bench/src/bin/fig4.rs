//! Fig. 4 — deadline-aware workflows sharing the cluster with ad-hoc jobs.
//!
//! Reproduces all three panels of the paper's headline comparison:
//! (a) completion-minus-deadline deltas, (b) the number of jobs missing
//! their (decomposed) deadlines, (c) the average ad-hoc job turnaround —
//! for FlowTime, CORA, EDF, Fair, FIFO (plus the Morpheus baseline named
//! in Section VII-A).
//!
//! Usage: `fig4 [seed] [--quick]`

use flowtime_bench::experiments::{run, summarize, testbed_cluster, Algo, WorkflowExperiment};
use flowtime_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .find_map(|a| a.parse::<u64>().ok())
        .unwrap_or(20180702);

    let cluster = testbed_cluster();
    let exp = if quick {
        WorkflowExperiment {
            workflows: 3,
            jobs_per_workflow: 8,
            adhoc_horizon: 150,
            seed,
            ..Default::default()
        }
    } else {
        WorkflowExperiment {
            seed,
            ..Default::default()
        }
    };

    println!(
        "fig4: {} workflows x {} jobs, adhoc rate {}/slot over {} slots, seed {}",
        exp.workflows, exp.jobs_per_workflow, exp.adhoc_rate, exp.adhoc_horizon, exp.seed
    );
    let mut rows = Vec::new();
    for algo in Algo::FIG4 {
        let workload = exp.build(&cluster);
        let t0 = std::time::Instant::now();
        let metrics = run(algo, &cluster, workload);
        let row = summarize(algo, &metrics);
        println!(
            "  {:<12} done in {:>6.1}s wall ({} jobs)",
            algo.name(),
            t0.elapsed().as_secs_f64(),
            metrics.completed_jobs()
        );
        rows.push(row);
    }
    println!();
    print!(
        "{}",
        report::render_table("Fig. 4 — deadlines and ad-hoc turnaround", &rows)
    );
    report::persist("fig4", &rows);
}
