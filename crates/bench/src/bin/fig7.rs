//! Fig. 7 — scheduling-solver latency.
//!
//! Measures the time to solve the placement optimization as the number of
//! deadline-aware jobs grows, on the paper's Fig. 7 configuration: 500 CPU
//! cores, 1 TB of memory, 100 slots of 10 s (a 1000 s span). The paper
//! solves with CPLEX; we report both of our exact backends — the bundled
//! simplex LP and the parametric max-flow solver. Absolute numbers differ
//! from CPLEX; the shape to reproduce is sub-second growth with job count.
//!
//! Usage: `fig7 [--max-jobs 100] [--reps 5]`

use flowtime::lp_sched::{LevelingProblem, PlanJob, SolverBackend};
use flowtime_bench::experiments::fig7_cluster;
use flowtime_dag::{JobId, ResourceVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

const SLOTS: usize = 100;

#[derive(Debug, Serialize)]
struct Point {
    jobs: usize,
    backend: &'static str,
    mean_ms: f64,
}

fn instance(jobs: usize, seed: u64) -> LevelingProblem {
    let cluster = fig7_cluster();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plan_jobs = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let start = rng.gen_range(0..SLOTS - 10);
        let len = rng.gen_range(10..=SLOTS - start);
        let window = (start, start + len);
        // Containers of 1 core / 2 GiB; demand sized so ~100 jobs load the
        // cluster to roughly half on average.
        let demand = rng.gen_range(100..400);
        plan_jobs.push(PlanJob {
            id: JobId::new(i as u64),
            window,
            demand,
            per_task: ResourceVec::new([1, 2048]),
            per_slot_cap: Some(rng.gen_range(20..80)),
        });
    }
    LevelingProblem {
        slot_caps: vec![cluster.capacity(); SLOTS],
        jobs: plan_jobs,
    }
}

fn measure(problem: &LevelingProblem, backend: SolverBackend, reps: usize) -> f64 {
    let mut total = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let plan = problem.solve(backend).expect("feasible instance");
        std::hint::black_box(&plan);
        total += t0.elapsed().as_secs_f64();
    }
    total * 1e3 / reps as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let max_jobs = get("--max-jobs", 100);
    let reps = get("--reps", 5);

    println!("fig7: solver latency, {SLOTS} slots x 10 s, cluster 500 cores / 1 TB, {reps} reps");
    println!(
        "{:>6} {:>18} {:>18}",
        "jobs", "simplex LP (ms)", "param. flow (ms)"
    );
    let mut points = Vec::new();
    let mut jobs = 10;
    while jobs <= max_jobs {
        // Rejection-sample seeds until the random instance is feasible
        // (dense random windows can locally over-commit the cluster).
        let mut offset = 0u64;
        let problem = loop {
            let candidate = instance(jobs, 42 + jobs as u64 + offset * 1000);
            if candidate.solve(SolverBackend::ParametricFlow).is_ok() {
                break candidate;
            }
            offset += 1;
            assert!(offset < 50, "could not find a feasible instance");
        };
        let lp_ms = measure(&problem, SolverBackend::Simplex { lex_rounds: 1 }, reps);
        let flow_ms = measure(&problem, SolverBackend::ParametricFlow, reps);
        println!("{jobs:>6} {lp_ms:>18.2} {flow_ms:>18.2}");
        points.push(Point {
            jobs,
            backend: "simplex",
            mean_ms: lp_ms,
        });
        points.push(Point {
            jobs,
            backend: "flow",
            mean_ms: flow_ms,
        });
        jobs += 10;
    }
    flowtime_bench::report::persist("fig7", &points);
}
