//! Fig. 7 — scheduling-solver latency.
//!
//! Measures the time to solve the placement optimization as the number of
//! deadline-aware jobs grows, on the paper's Fig. 7 configuration: 500 CPU
//! cores, 1 TB of memory, 100 slots of 10 s (a 1000 s span). The paper
//! solves with CPLEX; we report both of our exact backends — the bundled
//! simplex LP and the parametric max-flow solver. Absolute numbers differ
//! from CPLEX; the shape to reproduce is sub-second growth with job count.
//!
//! It also reports **warm-started vs. cold replan latency**: a sequence of
//! perturbed leveling LPs (each replan shrinks some demands, as completions
//! do) solved cold from scratch versus warm-started from the previous
//! replan's optimal basis via dual-simplex repair. The process exits
//! nonzero if the warm-started chain never actually warm-starts — CI uses
//! this as a smoke test for the warm-start path.
//!
//! Usage: `fig7 [--max-jobs 100] [--reps 5] [--runs 5] [--warmup 1]
//! [--threads 1]`
//!
//! The latency grid runs on the work-stealing sweep runner; `--threads`
//! fans the job-count levels out over workers. The default of 1 keeps the
//! measured latencies contention-free — raise it only to smoke-test the
//! runner or when the host has cores to spare, and expect noisier numbers.

use flowtime::lp_sched::{formulation, LevelingProblem, PlanJob, SolverBackend};
use flowtime_bench::experiments::fig7_cluster;
use flowtime_dag::{JobId, ResourceVec};
use flowtime_lp::{Basis, SimplexOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashMap;
use std::time::Instant;

const SLOTS: usize = 100;
/// Replans per warm-vs-cold chain (one chain = one simulated run's worth of
/// successive replans).
const CHAIN_STEPS: u64 = 20;

#[derive(Debug, Serialize)]
struct Point {
    jobs: usize,
    backend: &'static str,
    mean_ms: f64,
}

#[derive(Debug, Serialize)]
struct WarmColdReport {
    jobs: usize,
    steps: u64,
    runs: usize,
    cold_median_ms: f64,
    warm_median_ms: f64,
    warm_solves: u64,
    warm_fallbacks: u64,
}

#[derive(Debug, Serialize)]
struct Fig7Report {
    latency: Vec<Point>,
    warm_vs_cold: WarmColdReport,
}

fn instance(jobs: usize, seed: u64) -> LevelingProblem {
    let cluster = fig7_cluster();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plan_jobs = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let start = rng.gen_range(0..SLOTS - 10);
        let len = rng.gen_range(10..=SLOTS - start);
        let window = (start, start + len);
        // Containers of 1 core / 2 GiB; demand sized so ~100 jobs load the
        // cluster to roughly half on average.
        let demand = rng.gen_range(100..400);
        plan_jobs.push(PlanJob {
            id: JobId::new(i as u64),
            window,
            demand,
            per_task: ResourceVec::new([1, 2048]),
            per_slot_cap: Some(rng.gen_range(20..80)),
        });
    }
    LevelingProblem {
        slot_caps: vec![cluster.capacity(); SLOTS],
        jobs: plan_jobs,
    }
}

/// The replan at `step`: the base instance with every demand reduced by a
/// deterministic pseudo-random few percent (completions shrink remaining
/// demand between replans; reductions keep every step feasible because the
/// base is). Windows, shapes and per-slot caps are untouched, so each
/// step's LP has the same dimensions — the realistic warm-start case.
fn perturbed(base: &LevelingProblem, step: u64, seed: u64) -> LevelingProblem {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(step.wrapping_mul(0x9e37_79b9)));
    let mut p = base.clone();
    for job in &mut p.jobs {
        let cut = rng.gen_range(0..=job.demand / 20);
        job.demand -= cut.min(job.demand.saturating_sub(1));
    }
    p
}

struct ChainOutcome {
    wall_ms: f64,
    warm_solves: u64,
    warm_fallbacks: u64,
}

/// Solves the replan sequence start to finish, optionally threading each
/// solve's optimal basis into the next as a warm start.
fn solve_chain(seq: &[LevelingProblem], warm: bool) -> ChainOutcome {
    let opts = SimplexOptions::default();
    let frozen = HashMap::new();
    let mut basis: Option<Basis> = None;
    let mut warm_solves = 0u64;
    let mut warm_fallbacks = 0u64;
    let t0 = Instant::now();
    for p in seq {
        let f = formulation::build(p, &frozen).expect("well-formed instance");
        let attempt = if warm { basis.as_ref() } else { None };
        let attempted = attempt.is_some();
        let res = f
            .problem
            .solve_warm(&opts, attempt)
            .expect("feasible chain");
        if res.warm_used {
            warm_solves += 1;
        } else if attempted {
            warm_fallbacks += 1;
        }
        basis = Some(res.basis);
        std::hint::black_box(&res.solution);
    }
    ChainOutcome {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        warm_solves,
        warm_fallbacks,
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

fn measure_warm_cold(base: &LevelingProblem, runs: usize, warmup: usize) -> WarmColdReport {
    let seq: Vec<LevelingProblem> = (0..CHAIN_STEPS)
        .map(|s| perturbed(base, s, 0xf107_beef))
        .collect();
    let mut cold_ms = Vec::with_capacity(runs);
    let mut warm_ms = Vec::with_capacity(runs);
    let mut warm_solves = 0u64;
    let mut warm_fallbacks = 0u64;
    for rep in 0..warmup + runs {
        let cold = solve_chain(&seq, false);
        let warmed = solve_chain(&seq, true);
        if rep < warmup {
            continue;
        }
        cold_ms.push(cold.wall_ms);
        warm_ms.push(warmed.wall_ms);
        warm_solves += warmed.warm_solves;
        warm_fallbacks += warmed.warm_fallbacks;
    }
    WarmColdReport {
        jobs: base.jobs.len(),
        steps: CHAIN_STEPS,
        runs,
        cold_median_ms: median(&mut cold_ms),
        warm_median_ms: median(&mut warm_ms),
        warm_solves,
        warm_fallbacks,
    }
}

fn measure(problem: &LevelingProblem, backend: SolverBackend, reps: usize) -> f64 {
    let mut total = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let plan = problem.solve(backend).expect("feasible instance");
        std::hint::black_box(&plan);
        total += t0.elapsed().as_secs_f64();
    }
    total * 1e3 / reps as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let max_jobs = get("--max-jobs", 100);
    let reps = get("--reps", 5);
    let runs = get("--runs", 5).max(1);
    let warmup = get("--warmup", 1);
    let threads = get("--threads", 1).max(1);

    // Rejection-sample seeds until the random instance is feasible (dense
    // random windows can locally over-commit the cluster).
    let feasible_instance = |jobs: usize| {
        let mut offset = 0u64;
        loop {
            let candidate = instance(jobs, 42 + jobs as u64 + offset * 1000);
            if candidate.solve(SolverBackend::ParametricFlow).is_ok() {
                break candidate;
            }
            offset += 1;
            assert!(offset < 50, "could not find a feasible instance");
        }
    };

    println!("fig7: solver latency, {SLOTS} slots x 10 s, cluster 500 cores / 1 TB, {reps} reps");
    println!(
        "{:>6} {:>18} {:>18}",
        "jobs", "simplex LP (ms)", "param. flow (ms)"
    );
    // One cell per job-count level, fanned out on the sweep runner; each
    // cell builds its own instance and measures both backends.
    let levels: Vec<usize> = (1..=max_jobs / 10).map(|i| i * 10).collect();
    let points: Vec<Point> = flowtime_sim::run_cells(&levels, threads, |_, &jobs| {
        let problem = feasible_instance(jobs);
        let lp_ms = measure(&problem, SolverBackend::Simplex { lex_rounds: 1 }, reps);
        let flow_ms = measure(&problem, SolverBackend::ParametricFlow, reps);
        [
            Point {
                jobs,
                backend: "simplex",
                mean_ms: lp_ms,
            },
            Point {
                jobs,
                backend: "flow",
                mean_ms: flow_ms,
            },
        ]
    })
    .into_iter()
    .flatten()
    .collect();
    for pair in points.chunks(2) {
        println!(
            "{:>6} {:>18.2} {:>18.2}",
            pair[0].jobs, pair[0].mean_ms, pair[1].mean_ms
        );
    }

    // Warm-vs-cold replan chains at the largest measured scale.
    let warm_vs_cold = measure_warm_cold(&feasible_instance(max_jobs), runs, warmup);
    println!(
        "\nwarm-vs-cold replan chain: {} jobs x {} replans, {} runs (+{} warmup)",
        warm_vs_cold.jobs, warm_vs_cold.steps, warm_vs_cold.runs, warmup
    );
    println!(
        "  cold   median {:>10.2} ms/chain\n  warm   median {:>10.2} ms/chain  ({} warm-started solves, {} fallbacks)",
        warm_vs_cold.cold_median_ms,
        warm_vs_cold.warm_median_ms,
        warm_vs_cold.warm_solves,
        warm_vs_cold.warm_fallbacks
    );
    let warm_dead = warm_vs_cold.warm_solves == 0;
    flowtime_bench::report::persist(
        "fig7",
        &Fig7Report {
            latency: points,
            warm_vs_cold,
        },
    );
    if warm_dead {
        eprintln!("error: warm-start chain never warm-started a solve");
        std::process::exit(1);
    }
}
