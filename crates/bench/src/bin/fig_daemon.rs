//! `fig_daemon` — open-loop load generation against daemon sessions.
//!
//! Measures the `flowtimed` submission path end to end: each worker
//! thread drives its own in-process loopback session (the same
//! `handle_line` byte stream the TCP server speaks) with a deterministic
//! open-loop stream of ad-hoc submissions plus a pair of deadline
//! workflows, then drains and reports:
//!
//! * submission throughput (request lines per wall-clock second),
//! * admission-to-start latency percentiles in virtual slots (and
//!   seconds, via the cluster's slot length), taken from decision-trace
//!   `Start` events,
//! * replan/plan-cache effort from the solver telemetry.
//!
//! Results land in `results/fig_daemon.json`.
//!
//! ```text
//! fig_daemon [--submitters N] [--threads T] [--scheduler NAME] [--check]
//! ```

use flowtime_bench::report::persist;
use flowtime_daemon::{FsyncPolicy, Loopback, Session, SessionConfig, WalConfig};
use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};
use flowtime_sim::{
    AdhocSubmission, ClusterConfig, SimOutcome, SolverTelemetry, TraceEvent, WorkflowSubmission,
};
use serde::Serialize;
use std::collections::HashMap;
use std::time::Instant;

/// Per-thread virtual cluster.
fn cluster() -> ClusterConfig {
    ClusterConfig::new(ResourceVec::new([48, 196_608]), 10.0)
}

/// Splitmix64 — deterministic, dependency-free stream of arrivals/sizes.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deadline workflow exercising the decomposition + plan-cache path.
fn chain_workflow(id: u64, submit: u64) -> WorkflowSubmission {
    let mut b = WorkflowBuilder::new(WorkflowId::new(id), format!("wf{id}"));
    let mut prev = None;
    for i in 0..6 {
        let node = b.add_job(JobSpec::new(
            format!("j{i}"),
            12,
            2,
            ResourceVec::new([1, 2048]),
        ));
        if let Some(p) = prev {
            b.add_dep(p, node).expect("chain edges are acyclic");
        }
        prev = Some(node);
    }
    WorkflowSubmission::new(b.window(submit, submit + 90).build().expect("valid window"))
}

struct ThreadReport {
    submissions: u64,
    submit_wall_seconds: f64,
    latencies_slots: Vec<u64>,
    solver: Option<SolverTelemetry>,
    trace_dropped: u64,
    complete: bool,
}

fn session_config(scheduler: &str) -> SessionConfig {
    SessionConfig {
        cluster: cluster(),
        scheduler: scheduler.to_string(),
        max_slots: 1_000_000,
        trace_capacity: 1 << 17,
        snapshot_path: None,
        pods: 0,
        placer: None,
    }
}

/// Builds the request-line stream up front so timed sections measure the
/// daemon path (parse + admission + queueing), not string formatting.
fn build_lines(thread_idx: u64, n_adhoc: u64) -> Vec<String> {
    let mut rng = 0x5eed_0000 + thread_idx;
    let mut lines = Vec::with_capacity(n_adhoc as usize + 2);
    for wf in 0..2u64 {
        let sub = chain_workflow(thread_idx * 2 + wf + 1, wf * 40);
        lines.push(format!(
            "{{\"req\":\"submit_workflow\",\"submission\":{}}}",
            serde_json::to_string(&sub).expect("workflow serializes")
        ));
    }
    // Open loop: ~6 arrivals per slot — modest sustained overload of the
    // 48-core cluster, so admission-to-start latency reflects queueing
    // under contention rather than an idle machine.
    for i in 0..n_adhoc {
        let arrival = i / 6;
        let tasks = 1 + splitmix(&mut rng) % 8;
        let dur = 1 + splitmix(&mut rng) % 3;
        let sub = AdhocSubmission::new(
            JobSpec::new(format!("a{i}"), tasks, dur, ResourceVec::new([1, 1024])),
            arrival,
        );
        lines.push(format!(
            "{{\"req\":\"submit_adhoc\",\"submission\":{}}}",
            serde_json::to_string(&sub).expect("adhoc serializes")
        ));
    }
    lines
}

/// Drives one loopback session with `n_adhoc` open-loop submissions.
fn drive_session(thread_idx: u64, n_adhoc: u64, scheduler: &str) -> ThreadReport {
    let session = Session::new(session_config(scheduler)).expect("valid session config");
    let mut lb = Loopback::new(session);
    let lines = build_lines(thread_idx, n_adhoc);

    let t0 = Instant::now();
    for line in &lines {
        let response = lb.request_line(line);
        assert!(
            response.starts_with("{\"ok\":"),
            "submission rejected: {response}"
        );
    }
    let submit_wall_seconds = t0.elapsed().as_secs_f64();

    let drain = lb.request_line("{\"req\":\"drain\"}");
    assert!(drain.starts_with("{\"ok\":"), "drain failed: {drain}");

    let session = lb.into_session();
    let outcome_json = session.outcome_json().expect("drained session");
    let outcome: SimOutcome =
        serde_json::from_value(&serde_json::parse(outcome_json).expect("outcome parses"))
            .expect("outcome deserializes");
    let trace = session.final_trace().expect("drained session");

    // Admission-to-start: first Start event per ad-hoc job vs its arrival.
    let mut starts: HashMap<u64, u64> = HashMap::new();
    for ev in trace.events() {
        if let TraceEvent::Start { slot, job } = ev {
            starts.entry(job.as_u64()).or_insert(*slot);
        }
    }
    let mut latencies_slots = Vec::new();
    for job in &outcome.metrics.jobs {
        if job.class.is_adhoc() {
            if let Some(&start) = starts.get(&job.id.as_u64()) {
                latencies_slots.push(start.saturating_sub(job.arrival_slot));
            }
        }
    }

    ThreadReport {
        submissions: lines.len() as u64,
        submit_wall_seconds,
        latencies_slots,
        solver: outcome.solver_telemetry.clone(),
        trace_dropped: trace.dropped(),
        complete: outcome.is_complete(),
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[derive(Serialize)]
struct LatencySummary {
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
}

#[derive(Serialize)]
struct FigDaemonResult {
    config: FigDaemonConfig,
    throughput: Throughput,
    /// Single-session throughput under each WAL fsync policy, against the
    /// `fsync: "off"` (no WAL) baseline.
    durability: Vec<DurabilityRow>,
    latency_slots: LatencySummary,
    latency_seconds: LatencySecondsSummary,
    replans: Replans,
    trace_dropped: u64,
    all_sessions_complete: bool,
}

#[derive(Serialize)]
struct FigDaemonConfig {
    submitters: u64,
    threads: u64,
    scheduler: String,
    slot_seconds: f64,
}

#[derive(Serialize)]
struct Throughput {
    submissions: u64,
    wall_seconds: f64,
    submissions_per_sec: f64,
}

/// One durability datapoint: the same submission stream through a
/// WAL-backed session under a given fsync policy (`fsync: "off"` is the
/// non-durable baseline).
#[derive(Serialize)]
struct DurabilityRow {
    fsync: String,
    submissions: u64,
    wall_seconds: f64,
    submissions_per_sec: f64,
}

/// Measures single-session submission throughput with the WAL enabled
/// under `fsync` (or disabled for the baseline row).
fn durability_row(scheduler: &str, n_adhoc: u64, fsync: Option<FsyncPolicy>) -> DurabilityRow {
    let label = fsync.map_or_else(|| "off".to_string(), |f| f.to_string());
    let dir = fsync.map(|_| {
        std::env::temp_dir().join(format!(
            "flowtime-fig-daemon-wal-{}-{}",
            std::process::id(),
            label.replace(':', "-")
        ))
    });
    let mut lb = match (fsync, &dir) {
        (Some(policy), Some(dir)) => {
            let _ = std::fs::remove_dir_all(dir);
            let mut config = WalConfig::new(dir);
            config.fsync = policy;
            let (session, _) = Session::recover(session_config(scheduler), config, None)
                .expect("fresh wal session");
            Loopback::new(session)
        }
        _ => Loopback::new(Session::new(session_config(scheduler)).expect("valid config")),
    };
    let lines = build_lines(7, n_adhoc);
    let t0 = Instant::now();
    for line in &lines {
        let response = lb.request_line(line);
        assert!(response.starts_with("{\"ok\":"), "rejected: {response}");
    }
    let wall_seconds = t0.elapsed().as_secs_f64();
    let drain = lb.request_line("{\"req\":\"drain\"}");
    assert!(drain.starts_with("{\"ok\":"), "drain failed: {drain}");
    drop(lb);
    if let Some(dir) = &dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    DurabilityRow {
        fsync: label,
        submissions: lines.len() as u64,
        wall_seconds,
        submissions_per_sec: if wall_seconds > 0.0 {
            lines.len() as f64 / wall_seconds
        } else {
            0.0
        },
    }
}

#[derive(Serialize)]
struct LatencySecondsSummary {
    p50: f64,
    p90: f64,
    p99: f64,
    max: f64,
}

#[derive(Serialize)]
struct Replans {
    total: u64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
}

fn arg_value(argv: &[String], key: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == key)
        .and_then(|i| argv.get(i + 1))
        .cloned()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let submitters: u64 = arg_value(&argv, "--submitters")
        .map(|v| v.parse().expect("--submitters must be an integer"))
        .unwrap_or(1000);
    let threads: u64 = arg_value(&argv, "--threads")
        .map(|v| v.parse().expect("--threads must be an integer"))
        .unwrap_or(4)
        .max(1);
    let scheduler = arg_value(&argv, "--scheduler").unwrap_or_else(|| "flowtime".to_string());
    let check = argv.iter().any(|a| a == "--check");

    println!(
        "fig_daemon: {submitters} submitters across {threads} loopback sessions, scheduler {scheduler}"
    );

    let per_thread = submitters.div_ceil(threads);
    let reports: Vec<ThreadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let n = per_thread.min(submitters - (t * per_thread).min(submitters));
                let scheduler = scheduler.clone();
                scope.spawn(move || drive_session(t, n, &scheduler))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let submissions: u64 = reports.iter().map(|r| r.submissions).sum();
    // Open-loop aggregate: every thread submits concurrently, so elapsed
    // time is the slowest thread's submission phase.
    let wall_seconds = reports
        .iter()
        .map(|r| r.submit_wall_seconds)
        .fold(0.0f64, f64::max);
    let mut latencies: Vec<u64> = reports
        .iter()
        .flat_map(|r| r.latencies_slots.iter().copied())
        .collect();
    latencies.sort_unstable();
    let trace_dropped: u64 = reports.iter().map(|r| r.trace_dropped).sum();
    let all_complete = reports.iter().all(|r| r.complete);

    let mut replans = 0u64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for solver in reports.iter().filter_map(|r| r.solver.as_ref()) {
        replans += solver.replans;
        cache_hits += solver.cache_hits_exact + solver.cache_hits_shift;
        cache_misses += solver.cache_misses;
    }
    let hit_rate = if cache_hits + cache_misses > 0 {
        cache_hits as f64 / (cache_hits + cache_misses) as f64
    } else {
        0.0
    };

    // Durability cost: the same stream through one WAL-backed session per
    // fsync policy (smaller n — fsync=always pays a disk sync per append).
    let durability_n = per_thread.min(500);
    let durability: Vec<DurabilityRow> = [
        None,
        Some(FsyncPolicy::None),
        Some(FsyncPolicy::Batch(64)),
        Some(FsyncPolicy::Always),
    ]
    .into_iter()
    .map(|fsync| durability_row(&scheduler, durability_n, fsync))
    .collect();

    let slot_seconds = cluster().slot_seconds();
    let lat = LatencySummary {
        p50: percentile(&latencies, 0.50),
        p90: percentile(&latencies, 0.90),
        p99: percentile(&latencies, 0.99),
        max: latencies.last().copied().unwrap_or(0),
    };
    let result = FigDaemonResult {
        config: FigDaemonConfig {
            submitters,
            threads,
            scheduler: scheduler.clone(),
            slot_seconds,
        },
        throughput: Throughput {
            submissions,
            wall_seconds,
            submissions_per_sec: if wall_seconds > 0.0 {
                submissions as f64 / wall_seconds
            } else {
                0.0
            },
        },
        latency_seconds: LatencySecondsSummary {
            p50: lat.p50 as f64 * slot_seconds,
            p90: lat.p90 as f64 * slot_seconds,
            p99: lat.p99 as f64 * slot_seconds,
            max: lat.max as f64 * slot_seconds,
        },
        durability,
        latency_slots: lat,
        replans: Replans {
            total: replans,
            cache_hits,
            cache_misses,
            hit_rate,
        },
        trace_dropped,
        all_sessions_complete: all_complete,
    };

    println!(
        "  throughput: {} submissions in {:.3}s = {:.0}/s",
        result.throughput.submissions,
        result.throughput.wall_seconds,
        result.throughput.submissions_per_sec
    );
    println!(
        "  admission-to-start (slots): p50 {} p90 {} p99 {} max {}",
        result.latency_slots.p50,
        result.latency_slots.p90,
        result.latency_slots.p99,
        result.latency_slots.max
    );
    for row in &result.durability {
        println!(
            "  durability fsync={}: {} submissions in {:.3}s = {:.0}/s",
            row.fsync, row.submissions, row.wall_seconds, row.submissions_per_sec
        );
    }
    println!(
        "  replans: {} total, cache {}/{} hit rate {:.2}",
        result.replans.total,
        result.replans.cache_hits,
        result.replans.cache_hits + result.replans.cache_misses,
        result.replans.hit_rate
    );
    persist("fig_daemon", &result);
    println!("  wrote results/fig_daemon.json");

    if check {
        assert!(all_complete, "a session finished with in-flight jobs");
        assert_eq!(
            trace_dropped, 0,
            "trace ring dropped events; raise capacity"
        );
        assert!(
            !latencies.is_empty(),
            "no ad-hoc start events observed — latency measurement is broken"
        );
        println!("  --check: all sessions complete, no trace drops");
    }
}
