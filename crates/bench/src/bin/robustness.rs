//! Robustness to estimation errors (paper Section III-A's third desired
//! property, extending the Fig. 5 ablation into a full curve): deadline
//! misses and ad-hoc turnaround as runtime under-estimation grows from 0%
//! to 40%, for FlowTime with and without deadline slack — followed by a
//! differential fault-seed sweep running all six algorithms on identical
//! fault-injected instances (log-normal misestimation + capacity churn +
//! arrival bursts from one seed each). Both grids execute on the
//! work-stealing sweep runner; results are deterministic for any thread
//! count.
//!
//! Usage: `robustness [seed] [fault-seeds] [threads]`

use flowtime_bench::experiments::{run, summarize, testbed_cluster, Algo, WorkflowExperiment};
use flowtime_bench::report;
use flowtime_bench::sweep::{SweepBenchPoint, SweepSpec};
use flowtime_sim::run_cells;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    overrun_pct: u32,
    algo: String,
    job_misses: usize,
    workflow_misses: usize,
    adhoc_turnaround_s: f64,
}

fn main() {
    let arg = |n: usize| std::env::args().nth(n).and_then(|a| a.parse::<u64>().ok());
    let seed = arg(1).unwrap_or(20180702);
    let fault_seeds = arg(2).unwrap_or(5);
    let threads = arg(3).unwrap_or(1).max(1) as usize;
    let cluster = testbed_cluster();
    println!("robustness: misses vs. runtime under-estimation, seed {seed}\n");
    println!(
        "{:>9} {:>18} {:>8} {:>9} {:>14}",
        "overrun", "algorithm", "misses", "wf-miss", "adhoc tat (s)"
    );
    // The overrun curve as a (level × algorithm) cell grid on the sweep
    // runner: cells are independent simulations, results come back in grid
    // order regardless of thread count.
    let grid: Vec<(u32, Algo)> = [0u32, 10, 20, 30, 40]
        .iter()
        .flat_map(|&pct| [(pct, Algo::FlowTime), (pct, Algo::FlowTimeNoDs)])
        .collect();
    let points: Vec<Point> = run_cells(&grid, threads, |_, &(overrun_pct, algo)| {
        let exp = WorkflowExperiment {
            overrun: overrun_pct as f64 / 100.0,
            seed,
            ..Default::default()
        };
        let metrics = run(algo, &cluster, exp.build(&cluster));
        let row = summarize(algo, &metrics);
        Point {
            overrun_pct,
            algo: row.algo,
            job_misses: row.job_misses,
            workflow_misses: row.workflow_misses,
            adhoc_turnaround_s: row.adhoc_turnaround_s,
        }
    });
    for p in &points {
        println!(
            "{:>8}% {:>18} {:>8} {:>9} {:>14.1}",
            p.overrun_pct, p.algo, p.job_misses, p.workflow_misses, p.adhoc_turnaround_s
        );
    }
    report::persist("robustness", &points);
    println!("\nslack (sized for ~20% error) roughly halves misses at every error level.");

    println!(
        "\nrobustness: all algorithms under mixed fault injection \
         (misestimation σ=0.25, 20% churn, bursts), {fault_seeds} seeds, {threads} thread(s)\n"
    );
    let spec = SweepSpec::robustness(seed, fault_seeds as usize);
    let sweep = spec.run(threads);
    println!(
        "{:>10} {:>18} {:>8} {:>9} {:>10} {:>14}",
        "fault-seed", "algorithm", "misses", "wf-miss", "completed", "adhoc tat (s)"
    );
    for c in &sweep.report.cells {
        println!(
            "{:>10} {:>18} {:>8} {:>9} {:>10} {:>14.1}",
            c.fault_seed,
            c.algo,
            c.job_misses,
            c.workflow_misses,
            c.completed_jobs,
            c.adhoc_turnaround_s
        );
    }
    println!("\nper-algorithm rollups over all {fault_seeds} fault seeds:");
    for r in &sweep.report.rollups {
        println!(
            "{:>18}  miss-rate {:>6.3}  adhoc p50/p90/p99 {:>6.0}/{:>6.0}/{:>6.0}s",
            r.algo, r.deadline_miss_rate, r.adhoc_p50_s, r.adhoc_p90_s, r.adhoc_p99_s
        );
    }
    report::persist("robustness_faults", &sweep.report);
    report::persist(
        "robustness_faults_bench",
        &[SweepBenchPoint {
            sweep: "robustness_faults".into(),
            threads: sweep.threads,
            host_parallelism: report::host_parallelism(),
            pods: 0,
            cells: sweep.cells,
            wall_ms: sweep.wall_ms,
        }],
    );
    println!(
        "\n{} cells in {:.0} ms; every run above passed the engine's per-slot invariant checker.",
        sweep.cells, sweep.wall_ms
    );
}
