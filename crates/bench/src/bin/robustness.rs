//! Robustness to estimation errors (paper Section III-A's third desired
//! property, extending the Fig. 5 ablation into a full curve): deadline
//! misses and ad-hoc turnaround as runtime under-estimation grows from 0%
//! to 40%, for FlowTime with and without deadline slack — followed by a
//! differential fault-seed sweep running all six algorithms on identical
//! fault-injected instances (log-normal misestimation + capacity churn +
//! arrival bursts from one seed each).
//!
//! Usage: `robustness [seed] [fault-seeds]`

use flowtime_bench::experiments::{
    faulted_instance, run, summarize, testbed_cluster, Algo, WorkflowExperiment,
};
use flowtime_bench::report;
use flowtime_sim::FaultConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    overrun_pct: u32,
    algo: String,
    job_misses: usize,
    workflow_misses: usize,
    adhoc_turnaround_s: f64,
}

#[derive(Debug, Serialize)]
struct FaultPoint {
    fault_seed: u64,
    algo: String,
    job_misses: usize,
    workflow_misses: usize,
    completed_jobs: usize,
    adhoc_turnaround_s: f64,
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20180702);
    let cluster = testbed_cluster();
    println!("robustness: misses vs. runtime under-estimation, seed {seed}\n");
    println!(
        "{:>9} {:>18} {:>8} {:>9} {:>14}",
        "overrun", "algorithm", "misses", "wf-miss", "adhoc tat (s)"
    );
    let mut points = Vec::new();
    for overrun_pct in [0u32, 10, 20, 30, 40] {
        let exp = WorkflowExperiment {
            overrun: overrun_pct as f64 / 100.0,
            seed,
            ..Default::default()
        };
        for algo in [Algo::FlowTime, Algo::FlowTimeNoDs] {
            let metrics = run(algo, &cluster, exp.build(&cluster));
            let row = summarize(algo, &metrics);
            println!(
                "{:>8}% {:>18} {:>8} {:>9} {:>14.1}",
                overrun_pct, row.algo, row.job_misses, row.workflow_misses, row.adhoc_turnaround_s
            );
            points.push(Point {
                overrun_pct,
                algo: row.algo.clone(),
                job_misses: row.job_misses,
                workflow_misses: row.workflow_misses,
                adhoc_turnaround_s: row.adhoc_turnaround_s,
            });
        }
    }
    report::persist("robustness", &points);
    println!("\nslack (sized for ~20% error) roughly halves misses at every error level.");

    let fault_seeds = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5u64);
    println!(
        "\nrobustness: all algorithms under mixed fault injection \
         (misestimation σ=0.25, 20% churn, bursts), {fault_seeds} seeds\n"
    );
    println!(
        "{:>10} {:>18} {:>8} {:>9} {:>10} {:>14}",
        "fault-seed", "algorithm", "misses", "wf-miss", "completed", "adhoc tat (s)"
    );
    let exp = WorkflowExperiment {
        seed,
        ..Default::default()
    };
    let mut fault_points = Vec::new();
    for fault_seed in 0..fault_seeds {
        let (workload, faulted_cluster) =
            faulted_instance(&exp, &cluster, FaultConfig::mixed(fault_seed));
        for algo in Algo::FIG4 {
            let metrics = run(algo, &faulted_cluster, workload.clone());
            let row = summarize(algo, &metrics);
            println!(
                "{:>10} {:>18} {:>8} {:>9} {:>10} {:>14.1}",
                fault_seed,
                row.algo,
                row.job_misses,
                row.workflow_misses,
                metrics.completed_jobs(),
                row.adhoc_turnaround_s
            );
            fault_points.push(FaultPoint {
                fault_seed,
                algo: row.algo.clone(),
                job_misses: row.job_misses,
                workflow_misses: row.workflow_misses,
                completed_jobs: metrics.completed_jobs(),
                adhoc_turnaround_s: row.adhoc_turnaround_s,
            });
        }
    }
    report::persist("robustness_faults", &fault_points);
    println!("\nevery run above passed the engine's per-slot invariant checker.");
}
