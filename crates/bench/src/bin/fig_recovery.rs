//! Deadline misses under mid-run failures and recovery: the chaos grid.
//!
//! Sweeps a task-failure-rate axis (with a constant background of periodic
//! 30%-severity node crashes and 10% stragglers) across every Fig. 4
//! algorithm, with the bounded-retry recovery policy healing each kill,
//! plus one shedding variant where the admission controller drops ad-hoc
//! jobs under sustained overload. Every cell is audited: the offline
//! certifier replays the decision trace, recounts every kill, retry, and
//! shed against the seeded fault plan, and aborts the sweep on any
//! discrepancy. The persisted `results/fig_recovery.json` report is a pure
//! function of the spec — byte-identical for any thread count.
//!
//! Usage: `fig_recovery [seed] [fault-seeds] [threads]`

use flowtime_bench::experiments::{testbed_cluster, Algo, WorkflowExperiment};
use flowtime_bench::report;
use flowtime_bench::sweep::{RecoveryProfile, SweepScenario, SweepSpec};
use flowtime_sim::ShedPolicy;

fn main() {
    let arg = |n: usize| std::env::args().nth(n).and_then(|a| a.parse::<u64>().ok());
    let seed = arg(1).unwrap_or(20180702);
    let fault_seeds = arg(2).unwrap_or(2);
    let threads = arg(3).unwrap_or(1).max(1) as usize;

    // The failure-rate axis; rate 0 shows the crash+straggler background
    // alone, so the marginal cost of task failures reads off the column.
    let mut scenarios: Vec<SweepScenario> = [0.0, 0.1, 0.2, 0.4]
        .iter()
        .map(|&rate| SweepScenario::chaos(rate))
        .collect();
    // Graceful degradation variant: same failures, but sustained ad-hoc
    // overload sheds instead of queueing.
    let mut shedding = SweepScenario::chaos(0.2).with_recovery(RecoveryProfile {
        shed: ShedPolicy::Shed,
        overload_factor: 1.0,
        overload_sustain: 3,
        ..RecoveryProfile::chaos(0.2)
    });
    shedding.name = "chaos-20-shed".into();
    scenarios.push(shedding);

    let spec = SweepSpec {
        base: WorkflowExperiment {
            workflows: 3,
            jobs_per_workflow: 10,
            adhoc_horizon: 240,
            seed,
            ..Default::default()
        },
        cluster: testbed_cluster(),
        scenarios,
        schedulers: Algo::FIG4.to_vec(),
        fault_seeds: (0..fault_seeds).collect(),
        audit: true,
        shard: None,
    };
    println!(
        "fig_recovery: deadline misses vs mid-run task-failure rate, \
         {} audited cells on {threads} thread(s)\n",
        spec.cell_count()
    );
    let run = spec.run(threads);
    println!(
        "{:>14} {:>18} {:>10} {:>8} {:>8} {:>8} {:>6} {:>12}",
        "scenario", "algorithm", "miss-rate", "fails", "kills", "retries", "shed", "adhoc p90 (s)"
    );
    for r in &run.report.rollups {
        println!(
            "{:>14} {:>18} {:>10.3} {:>8} {:>8} {:>8} {:>6} {:>12.0}",
            r.scenario,
            r.algo,
            r.deadline_miss_rate,
            r.recovery.task_failures,
            r.recovery.crash_kills,
            r.recovery.retries,
            r.recovery.shed_jobs,
            r.adhoc_p90_s,
        );
    }
    report::persist("fig_recovery", &run.report);
    println!(
        "\n{} cells certified by the offline auditor in {:.0} ms; \
         report written to results/fig_recovery.json",
        run.cells, run.wall_ms
    );
}
