//! Fig. 6 — scalability of the deadline-decomposition algorithm.
//!
//! Measures decomposition runtime over random layered workflows with 10 to
//! 200 nodes and up to ~6000 edges (5 edge densities per node count), each
//! point averaged over `--runs` runs after `--warmup` warmups, exactly
//! mirroring the paper's methodology (1000 runs after 100 warmups). The
//! paper's laptop returns 200-node / 6000-edge decompositions within 3 s;
//! the *shape* to reproduce is slow growth in both nodes and edges.
//!
//! Usage: `fig6 [--runs 1000] [--warmup 100]`

use flowtime::decompose::{decompose, DecomposeConfig};
use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};
use flowtime_workload::shapes;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Point {
    nodes: usize,
    edges: usize,
    mean_us: f64,
}

fn build_workflow(nodes: usize, target_edges: usize, seed: u64) -> flowtime_dag::Workflow {
    let layers = (nodes / 10).clamp(3, 20);
    let edges = shapes::layered_random(nodes, layers, target_edges, seed);
    let mut b = WorkflowBuilder::new(WorkflowId::new(seed), "fig6");
    for i in 0..nodes {
        b.add_job(JobSpec::new(
            format!("j{i}"),
            40 + (i as u64 % 160),
            1 + (i as u64 % 5),
            ResourceVec::new([1, 2048]),
        ));
    }
    for (from, to) in edges {
        b.add_dep(from, to).expect("generator emits unique edges");
    }
    b.window(0, 100_000).build().expect("valid workflow")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let runs = get("--runs", 1000);
    let warmup = get("--warmup", 100);
    let config = DecomposeConfig::new(ResourceVec::new([500, 1_048_576]));

    println!("fig6: decomposition runtime, {runs} runs after {warmup} warmups");
    println!("{:>6} {:>7} {:>12}", "nodes", "edges", "mean (us)");
    let mut points = Vec::new();
    for &nodes in &[10usize, 50, 100, 150, 200] {
        for density in 1..=5u64 {
            // Edge targets grow to ~6000 at 200 nodes / density 5.
            let target = (nodes * nodes / 7) * density as usize / 5;
            let wf = build_workflow(nodes, target, 1000 + density);
            let edges = wf.dag().edge_count();
            for _ in 0..warmup {
                let _ = decompose(&wf, &config).expect("valid");
            }
            let t0 = Instant::now();
            for _ in 0..runs {
                let d = decompose(&wf, &config).expect("valid");
                std::hint::black_box(&d);
            }
            let mean_us = t0.elapsed().as_secs_f64() * 1e6 / runs as f64;
            println!("{nodes:>6} {edges:>7} {mean_us:>12.1}");
            points.push(Point {
                nodes,
                edges,
                mean_us,
            });
        }
    }
    let worst = points.iter().map(|p| p.mean_us).fold(0.0, f64::max);
    println!(
        "\nworst case: {:.2} ms (paper: <= 3 s at 200 nodes / 6000 edges)",
        worst / 1e3
    );
    flowtime_bench::report::persist("fig6", &points);
}
