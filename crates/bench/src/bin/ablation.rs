//! Ablations of FlowTime's design choices (DESIGN.md §7) on the Fig. 4
//! workload:
//!
//! 1. **Decomposer**: the paper's demand-proportional split vs. the
//!    traditional critical-path split (quantifies the Fig. 3 argument
//!    end-to-end, not just on windows).
//! 2. **Deadline slack magnitude**: 0 / 2 / 6 / 12 slots under runtime
//!    under-estimation (the paper fixes 60 s and leaves tuning to future
//!    work — this is that future work).
//! 3. **Solver backend**: parametric flow vs. simplex LP, same plans,
//!    different cost.
//!
//! Usage: `ablation [seed]`

use flowtime::decompose::Decomposer;
use flowtime::lp_sched::SolverBackend;
use flowtime::{FlowTimeConfig, FlowTimeScheduler};
use flowtime_bench::experiments::{summarize, testbed_cluster, Algo, WorkflowExperiment};
use flowtime_bench::report;
use flowtime_sim::Engine;

fn run_config(
    name: &str,
    config: FlowTimeConfig,
    exp: &WorkflowExperiment,
) -> flowtime_bench::SummaryRow {
    let cluster = testbed_cluster();
    let workload = exp.build(&cluster);
    let mut scheduler = FlowTimeScheduler::new(cluster.clone(), config);
    let t0 = std::time::Instant::now();
    let metrics = Engine::new(cluster, workload, 1_000_000)
        .expect("valid workload")
        .run(&mut scheduler)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut row = summarize(Algo::FlowTime, &metrics.metrics);
    row.algo = format!(
        "{name} ({} solves, {:.2}s)",
        scheduler.solves(),
        t0.elapsed().as_secs_f64()
    );
    row
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20180702);

    // --- 1. decomposer ablation (exact estimates) ------------------------
    let exp = WorkflowExperiment {
        seed,
        ..Default::default()
    };
    let rows = vec![
        run_config(
            "demand-split",
            FlowTimeConfig {
                decomposer: Decomposer::ResourceDemand,
                ..Default::default()
            },
            &exp,
        ),
        run_config(
            "critical-path",
            FlowTimeConfig {
                decomposer: Decomposer::CriticalPath,
                ..Default::default()
            },
            &exp,
        ),
    ];
    print!(
        "{}",
        report::render_table("Ablation 1 — deadline decomposer", &rows)
    );
    report::persist("ablation_decomposer", &rows);

    // --- 2. slack sweep under 20% under-estimation -----------------------
    let noisy = WorkflowExperiment {
        overrun: 0.2,
        seed,
        ..Default::default()
    };
    let rows: Vec<_> = [0u64, 2, 6, 12]
        .into_iter()
        .map(|slack| {
            run_config(
                &format!("slack={slack}"),
                FlowTimeConfig {
                    slack_slots: slack,
                    ..Default::default()
                },
                &noisy,
            )
        })
        .collect();
    println!();
    print!(
        "{}",
        report::render_table("Ablation 2 — slack magnitude (20% overrun)", &rows)
    );
    report::persist("ablation_slack", &rows);

    // --- 3. solver backend ----------------------------------------------
    // The dense simplex is 100-1000x slower than the flow backend per
    // solve (Fig. 7), so this leg runs on a trimmed workload; the point is
    // that both backends produce equivalent schedules.
    let small = WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 8,
        adhoc_horizon: 120,
        seed,
        ..Default::default()
    };
    let rows = vec![
        run_config(
            "flow backend",
            FlowTimeConfig {
                backend: SolverBackend::ParametricFlow,
                ..Default::default()
            },
            &small,
        ),
        run_config(
            "simplex backend",
            FlowTimeConfig {
                backend: SolverBackend::Simplex { lex_rounds: 2 },
                ..Default::default()
            },
            &small,
        ),
    ];
    println!();
    print!(
        "{}",
        report::render_table("Ablation 3 — solver backend", &rows)
    );
    report::persist("ablation_backend", &rows);
}
