//! Fig. 1 — the paper's motivating example, reproduced exactly.
//!
//! Workflow W1 = two chained jobs, each occupying the full cluster for 100
//! time units, deadline 200. Ad-hoc jobs A1 (arrives 0) and A2 (arrives
//! 100), each needing half the cluster for 100 time units. EDF yields an
//! average ad-hoc turnaround of 150 = (200 + 100) / 2; FlowTime spreads W1
//! at half width and achieves 100 = (100 + 100) / 2 while still meeting the
//! deadline.

use flowtime::{EdfScheduler, FlowTimeConfig, FlowTimeScheduler};
use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};
use flowtime_sim::prelude::*;
use flowtime_sim::Scheduler;

fn workload() -> SimWorkload {
    // Cluster of 4 units; 1 slot = 10 time units of the figure.
    let mut b = WorkflowBuilder::new(WorkflowId::new(1), "W1");
    let j1 = b.add_job(JobSpec::new("job1", 20, 1, ResourceVec::new([1, 1024])));
    let j2 = b.add_job(JobSpec::new("job2", 20, 1, ResourceVec::new([1, 1024])));
    b.add_dep(j1, j2).expect("two nodes");
    let w1 = b.window(0, 20).build().expect("valid workflow");
    let mut wl = SimWorkload::default();
    wl.workflows.push(WorkflowSubmission::new(w1));
    let half_width = JobSpec::new("a", 20, 1, ResourceVec::new([1, 1024])).with_max_parallel(2);
    wl.adhoc.push(AdhocSubmission::new(half_width.clone(), 0)); // A1
    wl.adhoc.push(AdhocSubmission::new(half_width, 10)); // A2
    wl
}

fn run(name: &str, scheduler: &mut dyn Scheduler) -> (f64, usize) {
    let cluster = ClusterConfig::new(ResourceVec::new([4, 4096]), 10.0);
    let out = Engine::new(cluster, workload(), 10_000)
        .expect("valid workload")
        .run(scheduler)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    (
        out.metrics
            .avg_adhoc_turnaround_seconds()
            .expect("two ad-hoc jobs"),
        out.metrics.workflow_deadline_misses(),
    )
}

fn main() {
    println!("Fig. 1 — motivating example (1 slot = 10 time units of the figure)\n");
    let cluster = ClusterConfig::new(ResourceVec::new([4, 4096]), 10.0);
    let mut edf = EdfScheduler::new();
    let (edf_tat, edf_miss) = run("EDF", &mut edf);
    let mut ft = FlowTimeScheduler::new(
        cluster,
        FlowTimeConfig {
            slack_slots: 0,
            ..Default::default()
        },
    );
    let (ft_tat, ft_miss) = run("FlowTime", &mut ft);
    println!(
        "  EDF     : avg ad-hoc turnaround {edf_tat:6.1} time units, workflow misses {edf_miss}"
    );
    println!(
        "  FlowTime: avg ad-hoc turnaround {ft_tat:6.1} time units, workflow misses {ft_miss}"
    );
    println!("\npaper: EDF 150, our approach 100 (both meeting the deadline)");
    assert_eq!(edf_miss, 0);
    assert_eq!(ft_miss, 0);
    assert!((edf_tat - 150.0).abs() < 1e-9, "EDF should average 150");
    assert!((ft_tat - 100.0).abs() < 1e-9, "FlowTime should average 100");
    println!("reproduced exactly.");
}
