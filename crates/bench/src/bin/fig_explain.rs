//! Diagnosis coverage of the `explain` engine over the chaos grid
//! (`results/fig_explain.json`).
//!
//! Every cell of a chaos grid (task-failure rate × scheduler × fault
//! seed) is run traced, certified, and fed to [`flowtime_sim::explain`];
//! the figure quantifies how much of what went wrong the diagnostic
//! layer can actually account for: the fraction of missed workflows with
//! a *complete* causal chain (every culprit node explained down to E00x
//! evidence), plus the E00x code histogram. A cell whose run the auditor
//! rejects — or whose slack accounting fails to balance against the
//! `MissAttribution` recount — aborts the bin: coverage numbers over
//! uncertified runs would be meaningless.
//!
//! Usage: `fig_explain [--threads N] [--seeds N] [--rates 0.1,0.3,0.5]`

use flowtime_bench::experiments::{
    run_outcome_traced_with, testbed_cluster, Algo, WorkflowExperiment,
};
use flowtime_bench::report;
use flowtime_bench::sweep::RecoveryProfile;
use flowtime_sim::{explain, run_cells};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Serialize)]
struct CellRow {
    /// Chaos scenario name (`chaos-<rate%>`).
    scenario: String,
    /// Scheduler name.
    algo: String,
    /// Fault seed of this cell.
    fault_seed: u64,
    /// Workflows that missed their deadline.
    missed_workflows: usize,
    /// Missed workflows whose causal chain is complete.
    complete_chains: usize,
    /// Diagnostics emitted across all chains.
    diagnostics: usize,
    /// E00x code histogram of the cell.
    codes: BTreeMap<String, u64>,
}

#[derive(Debug, Serialize)]
struct Totals {
    missed_workflows: usize,
    complete_chains: usize,
    /// `complete_chains / missed_workflows`, in percent (100 when the
    /// grid produced no misses at all).
    coverage_pct: f64,
    diagnostics: usize,
    codes: BTreeMap<String, u64>,
}

#[derive(Debug, Serialize)]
struct ExplainFigure {
    rates: Vec<f64>,
    fault_seeds: Vec<u64>,
    threads: usize,
    host: report::HostMeta,
    rows: Vec<CellRow>,
    totals: Totals,
}

fn main() {
    if let Err(e) = run_cli() {
        eprintln!("fig_explain: error: {e}");
        std::process::exit(1);
    }
}

fn run_cli() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let threads: usize = get("--threads").and_then(|v| v.parse().ok()).unwrap_or(4);
    let seeds: u64 = get("--seeds").and_then(|v| v.parse().ok()).unwrap_or(3);
    let rates: Vec<f64> = match get("--rates") {
        Some(list) => list
            .split(',')
            .map(|r| {
                r.trim()
                    .parse()
                    .map_err(|_| format!("bad rate {r:?} in --rates"))
            })
            .collect::<Result<_, _>>()?,
        None => vec![0.1, 0.3, 0.5],
    };
    let fault_seeds: Vec<u64> = (0..seeds).map(|i| 11 + 31 * i).collect();

    let cluster = testbed_cluster();
    // Deadlines tight enough that chaos actually causes misses — a grid
    // with nothing to diagnose measures nothing.
    let workload = WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 5,
        looseness: 1.8,
        adhoc_horizon: 40,
        ..Default::default()
    }
    .build(&cluster);

    let mut cells: Vec<(f64, Algo, u64)> = Vec::new();
    for &rate in &rates {
        for algo in Algo::FIG4 {
            for &seed in &fault_seeds {
                cells.push((rate, algo, seed));
            }
        }
    }
    println!(
        "fig_explain: {} cells ({} rates x {} schedulers x {} seeds) on {threads} threads",
        cells.len(),
        rates.len(),
        Algo::FIG4.len(),
        fault_seeds.len()
    );

    let rows: Vec<CellRow> = run_cells(&cells, threads, |_, &(rate, algo, seed)| {
        let setup = RecoveryProfile::chaos(rate).setup(seed);
        let (outcome, trace) =
            run_outcome_traced_with(algo, &cluster, workload.clone(), Some(&setup));
        let report =
            explain(&cluster, &workload, &outcome, &trace, Some(&setup)).unwrap_or_else(|e| {
                panic!(
                    "chaos-{} {} seed {seed}: explain refused a grid cell: {e}",
                    (rate * 100.0).round(),
                    algo.name()
                )
            });
        let mut codes = BTreeMap::new();
        for wf in &report.workflows {
            for d in &wf.chain {
                *codes.entry(d.code.clone()).or_insert(0u64) += 1;
            }
        }
        CellRow {
            scenario: format!("chaos-{}", (rate * 100.0).round() as u64),
            algo: algo.name().to_string(),
            fault_seed: seed,
            missed_workflows: report.missed_workflows(),
            complete_chains: report.complete_chains(),
            diagnostics: report.diagnostics(),
            codes,
        }
    });

    let mut totals = Totals {
        missed_workflows: 0,
        complete_chains: 0,
        coverage_pct: 100.0,
        diagnostics: 0,
        codes: BTreeMap::new(),
    };
    for row in &rows {
        totals.missed_workflows += row.missed_workflows;
        totals.complete_chains += row.complete_chains;
        totals.diagnostics += row.diagnostics;
        for (code, n) in &row.codes {
            *totals.codes.entry(code.clone()).or_insert(0) += n;
        }
    }
    if totals.missed_workflows > 0 {
        totals.coverage_pct =
            100.0 * totals.complete_chains as f64 / totals.missed_workflows as f64;
    }

    println!(
        "  {} missed workflow(s), {} with complete chains — {:.1}% diagnosis coverage, {} diagnostic(s)",
        totals.missed_workflows, totals.complete_chains, totals.coverage_pct, totals.diagnostics
    );
    for (code, n) in &totals.codes {
        println!("  {code:<6} {n}");
    }
    let figure = ExplainFigure {
        rates,
        fault_seeds,
        threads,
        host: report::host_meta(),
        rows,
        totals,
    };
    report::persist("fig_explain", &figure);
    Ok(())
}
