//! Runs the full reproduction suite: Fig. 1, 4, 5, 6, 7 and the
//! trace-driven simulation, in sequence, by invoking the sibling binaries.
//!
//! Usage: `repro_all [--quick]` (quick mode trims run counts).

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let this = std::env::current_exe().expect("own path");
    let dir = this.parent().expect("bin dir").to_path_buf();
    let runs: Vec<(&str, Vec<&str>)> = vec![
        ("fig1", vec![]),
        ("fig4", if quick { vec!["--quick"] } else { vec![] }),
        ("fig5", vec![]),
        (
            "fig6",
            if quick {
                vec!["--runs", "50", "--warmup", "5"]
            } else {
                vec![]
            },
        ),
        (
            "fig7",
            if quick {
                vec!["--max-jobs", "40", "--reps", "2"]
            } else {
                vec![]
            },
        ),
        (
            "trace_sim",
            if quick {
                vec!["--workflows", "4"]
            } else {
                vec![]
            },
        ),
        ("ablation", vec![]),
        ("robustness", vec![]),
    ];
    for (bin, args) in runs {
        println!(
            "\n================ {bin} {} ================\n",
            args.join(" ")
        );
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nall experiments completed; JSON results in ./results/");
}
