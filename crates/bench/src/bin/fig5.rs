//! Fig. 5 — the deadline-slack ablation.
//!
//! Same workload as Fig. 4 but with runtime *under-estimation* (the actual
//! work exceeds the estimate by up to `--overrun`, default 20%), comparing
//! FlowTime against FlowTime_no_ds (slack = 0). The paper reports 5 jobs
//! missing deadlines without slack versus 0 with it, at essentially equal
//! ad-hoc turnaround (522.5 s vs 531.5 s).
//!
//! Usage: `fig5 [seed] [--overrun 0.2]`

use flowtime_bench::experiments::{run, summarize, testbed_cluster, Algo, WorkflowExperiment};
use flowtime_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = args
        .iter()
        .find_map(|a| a.parse::<u64>().ok())
        .unwrap_or(20180702);
    let overrun = args
        .iter()
        .position(|a| a == "--overrun")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.2);

    let cluster = testbed_cluster();
    let exp = WorkflowExperiment {
        overrun,
        seed,
        ..Default::default()
    };
    println!(
        "fig5: slack ablation with up to {:.0}% runtime under-estimation, seed {}",
        overrun * 100.0,
        seed
    );
    let mut rows = Vec::new();
    for algo in [Algo::FlowTime, Algo::FlowTimeNoDs] {
        let metrics = run(algo, &cluster, exp.build(&cluster));
        rows.push(summarize(algo, &metrics));
    }
    println!();
    print!(
        "{}",
        report::render_table("Fig. 5 — effect of deadline slack", &rows)
    );
    report::persist("fig5", &rows);
}
