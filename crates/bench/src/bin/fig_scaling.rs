//! Solver scaling curve — sparse revised simplex vs dense tableau oracle.
//!
//! Solves the Lemma 2 interval leveling family at 100 / 1 000 / 10 000
//! jobs, cold and warm-started, on both LP engines, recording solve time,
//! pivot counts, deterministic work units, and an analytic peak-memory
//! estimate per cell into `results/fig_scaling.json`. Every later PR gets
//! its solver budget from this curve.
//!
//! The dense tableau is `rows × width` of f64, so its memory footprint is
//! estimated *before* allocating; a scale whose tableau exceeds the memory
//! cap is recorded as `dnf-memory` instead of thrashing the host, and a
//! scale whose extrapolated runtime exceeds the time cap as `dnf-time`
//! (extrapolated quadratically from the previous completed scale). The
//! sparse engine is always run for real.
//!
//! Usage: `fig_scaling [--scales 100,1000,10000] [--reps 3]
//! [--mem-cap-mb 2048] [--time-cap-s 120] [--check-speedup N]`
//!
//! `--check-speedup N` exits nonzero unless the sparse engine is at least
//! N× faster than the dense engine (cold solve) at the largest scale both
//! completed — CI uses this as the 100-vs-1k smoke.

use flowtime_bench::scaling::{
    dense_tableau_bytes, interval_instance, perturbed, sparse_bytes_estimate, ScalingInstance,
};
use flowtime_lp::{Basis, SimplexEngine, SimplexOptions};
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 0x51ca11;
/// Warm chain length: replans measured per warm cell.
const WARM_STEPS: u64 = 5;

#[derive(Debug, Serialize)]
struct Cell {
    jobs: usize,
    engine: &'static str,
    mode: &'static str,
    status: &'static str,
    time_ms: f64,
    iterations: u64,
    work: u64,
    peak_mem_mb_est: f64,
}

#[derive(Debug, Serialize)]
struct ScalingReport {
    horizon_rule: &'static str,
    reps: usize,
    warm_steps: u64,
    host: flowtime_bench::report::HostMeta,
    cells: Vec<Cell>,
}

fn opts(engine: SimplexEngine) -> SimplexOptions {
    SimplexOptions {
        engine: Some(engine),
        ..SimplexOptions::default()
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// Cold solves, `reps` times; returns (median ms, iterations, work).
fn measure_cold(inst: &ScalingInstance, engine: SimplexEngine, reps: usize) -> (f64, u64, u64) {
    let o = opts(engine);
    let mut times = Vec::with_capacity(reps);
    let mut iters = 0u64;
    let mut work = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let sol = inst.problem.solve_with(&o).expect("feasible family");
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        iters = sol.iterations as u64;
        work = sol.work;
        std::hint::black_box(&sol);
    }
    (median(times), iters, work)
}

/// Warm replan chain: base optimum's basis carried through `WARM_STEPS`
/// perturbed instances; returns (median ms per replan, total iterations,
/// total work) and panics if any step falls back cold (the family is
/// designed so repair always succeeds).
fn measure_warm(inst: &ScalingInstance, engine: SimplexEngine) -> (f64, u64, u64) {
    let o = opts(engine);
    let first = inst.problem.solve_warm(&o, None).expect("feasible family");
    let mut basis: Basis = first.basis;
    let mut times = Vec::new();
    let mut iters = 0u64;
    let mut work = 0u64;
    for step in 0..WARM_STEPS {
        let replan = perturbed(inst, step + 1, SEED);
        let t0 = Instant::now();
        let res = replan
            .problem
            .solve_warm(&o, Some(&basis))
            .expect("feasible replan");
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        assert!(res.warm_used, "replan at step {step} fell back cold");
        iters += res.solution.iterations as u64;
        work += res.solution.work;
        basis = res.basis;
    }
    (median(times), iters, work)
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let scales: Vec<usize> = get("--scales")
        .map(String::as_str)
        .unwrap_or("100,1000,10000")
        .split(',')
        .map(|s| s.trim().parse().expect("--scales wants numbers"))
        .collect();
    let reps: usize = get("--reps").map_or(3, |v| v.parse().expect("--reps"));
    let mem_cap_mb: f64 = get("--mem-cap-mb").map_or(2048.0, |v| v.parse().expect("--mem-cap-mb"));
    let time_cap_s: f64 = get("--time-cap-s").map_or(120.0, |v| v.parse().expect("--time-cap-s"));
    let check_speedup: Option<f64> =
        get("--check-speedup").map(|v| v.parse().expect("--check-speedup"));

    println!("fig_scaling: interval leveling family, horizon = max(24, jobs/4), {reps} reps");
    println!(
        "{:>7} {:>7} {:>7}  {:>8}  {:>12} {:>12}  {:>10}",
        "jobs", "rows", "cols", "engine", "cold (ms)", "warm (ms)", "mem (MB)"
    );

    let mut cells = Vec::new();
    // (jobs, cold ms) of the last completed dense scale, for extrapolation.
    let mut last_dense: Option<(usize, f64)> = None;
    // (jobs, sparse cold ms, dense cold ms) where both engines completed.
    let mut speedup_base: Option<(usize, f64, f64)> = None;

    for &jobs in &scales {
        let inst = interval_instance(jobs, SEED);
        let sparse_mem = mb(sparse_bytes_estimate(&inst));
        let dense_mem = mb(dense_tableau_bytes(&inst));

        let (s_cold, s_iters, s_work) = measure_cold(&inst, SimplexEngine::Sparse, reps);
        let (s_warm, sw_iters, sw_work) = measure_warm(&inst, SimplexEngine::Sparse);
        cells.push(Cell {
            jobs,
            engine: "sparse",
            mode: "cold",
            status: "ok",
            time_ms: s_cold,
            iterations: s_iters,
            work: s_work,
            peak_mem_mb_est: sparse_mem,
        });
        cells.push(Cell {
            jobs,
            engine: "sparse",
            mode: "warm",
            status: "ok",
            time_ms: s_warm,
            iterations: sw_iters,
            work: sw_work,
            peak_mem_mb_est: sparse_mem,
        });

        // Dense: gate on estimated memory, then on extrapolated time.
        let dense_status = if dense_mem > mem_cap_mb {
            "dnf-memory"
        } else if let Some((prev_jobs, prev_ms)) = last_dense {
            let ratio = jobs as f64 / prev_jobs as f64;
            if prev_ms * ratio * ratio > time_cap_s * 1e3 {
                "dnf-time"
            } else {
                "ok"
            }
        } else {
            "ok"
        };
        let (d_cold, d_warm);
        if dense_status == "ok" {
            let (cold_ms, d_iters, d_work) = measure_cold(&inst, SimplexEngine::Dense, reps);
            let (warm_ms, dw_iters, dw_work) = measure_warm(&inst, SimplexEngine::Dense);
            last_dense = Some((jobs, cold_ms));
            speedup_base = Some((jobs, s_cold, cold_ms));
            cells.push(Cell {
                jobs,
                engine: "dense",
                mode: "cold",
                status: "ok",
                time_ms: cold_ms,
                iterations: d_iters,
                work: d_work,
                peak_mem_mb_est: dense_mem,
            });
            cells.push(Cell {
                jobs,
                engine: "dense",
                mode: "warm",
                status: "ok",
                time_ms: warm_ms,
                iterations: dw_iters,
                work: dw_work,
                peak_mem_mb_est: dense_mem,
            });
            (d_cold, d_warm) = (format!("{cold_ms:.2}"), format!("{warm_ms:.2}"));
        } else {
            for mode in ["cold", "warm"] {
                cells.push(Cell {
                    jobs,
                    engine: "dense",
                    mode,
                    status: dense_status,
                    time_ms: 0.0,
                    iterations: 0,
                    work: 0,
                    peak_mem_mb_est: dense_mem,
                });
            }
            (d_cold, d_warm) = (dense_status.into(), dense_status.into());
        }

        println!(
            "{:>7} {:>7} {:>7}  {:>8}  {:>12.2} {:>12.2}  {:>10.1}",
            jobs, inst.rows, inst.cols, "sparse", s_cold, s_warm, sparse_mem
        );
        println!(
            "{:>7} {:>7} {:>7}  {:>8}  {:>12} {:>12}  {:>10.1}",
            "", "", "", "dense", d_cold, d_warm, dense_mem
        );
    }

    flowtime_bench::report::persist(
        "fig_scaling",
        &ScalingReport {
            horizon_rule: "max(24, jobs/4)",
            reps,
            warm_steps: WARM_STEPS,
            host: flowtime_bench::report::host_meta(),
            cells,
        },
    );
    println!("report written to results/fig_scaling.json");

    if let Some(floor) = check_speedup {
        match speedup_base {
            Some((jobs, sparse_ms, dense_ms)) => {
                let speedup = dense_ms / sparse_ms.max(1e-9);
                println!("speedup at {jobs} jobs: {speedup:.1}x (floor {floor}x)");
                if speedup < floor {
                    eprintln!("error: sparse engine only {speedup:.1}x faster than dense");
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("error: no scale completed on both engines");
                std::process::exit(1);
            }
        }
    }
}
