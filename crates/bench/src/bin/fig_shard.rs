//! Pod-sharding scaling curve — per-pod FlowTime LP solves vs one
//! monolithic solve.
//!
//! Runs the same clean workload sharded across pods ∈ `--pods` (default
//! 1,2,4,8), each pod an independent FlowTime engine with its own plan
//! cache, and records wall time twice per pod count: **serial** (pods run
//! one after another on 1 worker — isolates the algorithmic win of
//! solving K small LPs instead of one big one) and **parallel** (pods run
//! on K workers via the work-stealing runner — adds the multi-core win).
//! Every cell is certified by the sharded auditor
//! ([`flowtime_sim::certify_sharded`]), including the cross-pod
//! conservation checks, and the serial and parallel outcomes are
//! byte-compared (determinism). Host parallelism is embedded in the
//! report so a flat parallel curve on a 1-core box is self-explaining.
//!
//! Usage: `fig_shard [--pods 1,2,4,8] [--placer demand] [--workflows 8]
//! [--jobs 12] [--adhoc-horizon 400] [--check-speedup N]`
//!
//! `--check-speedup N` exits nonzero unless the largest pod count's
//! *serial* wall time beats the unsharded run by at least N× — the
//! algorithmic floor, chosen so the gate also holds on 1-core runners;
//! multi-core CI additionally reports the parallel speedup.

use flowtime_bench::experiments::{
    run_sharded_outcome_traced_with, run_sharded_outcome_with, testbed_cluster, Algo,
    WorkflowExperiment,
};
use flowtime_bench::report;
use flowtime_sim::{certify_sharded, Placer, ShardSpec};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ShardRow {
    pods: usize,
    /// Wall ms with pods executed sequentially (1 worker).
    serial_wall_ms: f64,
    /// Wall ms with pods executed on `pods` workers.
    parallel_wall_ms: f64,
    /// Serial-vs-unsharded speedup (the algorithmic win).
    serial_speedup: f64,
    /// Parallel-vs-unsharded speedup (algorithmic + multi-core win).
    parallel_speedup: f64,
    /// Jobs completed across all pods.
    completed_jobs: usize,
    /// Per-job milestone misses across all pods.
    job_misses: usize,
    /// Workflow deadline misses across all pods.
    workflow_misses: usize,
    /// Slowest pod's makespan in slots.
    slots_elapsed: u64,
    /// Cross-pod rebalance moves recorded in the placement.
    rebalances: usize,
    /// Total solver replans (LP/flow re-solves and cache hits) across all
    /// pods' telemetry.
    replans: u64,
    /// The sharded auditor certified this cell (always true — a rejected
    /// cell aborts the bin).
    certified: bool,
}

#[derive(Debug, Serialize)]
struct ShardReport {
    scheduler: String,
    placer: &'static str,
    workflows: usize,
    jobs_per_workflow: usize,
    adhoc_horizon: u64,
    seed: u64,
    host: report::HostMeta,
    rows: Vec<ShardRow>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let pods: Vec<usize> = get("--pods")
        .map(String::as_str)
        .unwrap_or("1,2,4,8")
        .split(',')
        .map(|s| s.trim().parse().expect("--pods wants numbers"))
        .collect();
    let placer = get("--placer").map_or(Placer::Demand, |v| {
        Placer::parse(v).unwrap_or_else(|| panic!("unknown placer '{v}'"))
    });
    let workflows: usize = get("--workflows").map_or(8, |v| v.parse().expect("--workflows"));
    let jobs: usize = get("--jobs").map_or(12, |v| v.parse().expect("--jobs"));
    let adhoc_horizon: u64 =
        get("--adhoc-horizon").map_or(400, |v| v.parse().expect("--adhoc-horizon"));
    let check_speedup: Option<f64> =
        get("--check-speedup").map(|v| v.parse().expect("--check-speedup"));

    let exp = WorkflowExperiment {
        workflows,
        jobs_per_workflow: jobs,
        adhoc_horizon,
        ..Default::default()
    };
    let cluster = testbed_cluster();
    let workload = exp.build(&cluster);
    let host = report::host_meta();
    println!(
        "fig_shard: FlowTime on {workflows}x{jobs} workflows + ad-hoc stream, \
         placer {}, host cores {}",
        placer.name(),
        host.available_parallelism
    );
    println!(
        "{:>5} {:>13} {:>15} {:>9} {:>9} {:>7} {:>7} {:>10}",
        "pods", "serial (ms)", "parallel (ms)", "ser x", "par x", "misses", "rebal", "replans"
    );

    let mut rows: Vec<ShardRow> = Vec::new();
    let mut base_wall: Option<f64> = None;
    for &k in &pods {
        let spec = ShardSpec::new(k).with_placer(placer);

        let t0 = Instant::now();
        let serial = run_sharded_outcome_with(Algo::FlowTime, &cluster, &workload, None, &spec, 1);
        let serial_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let parallel =
            run_sharded_outcome_with(Algo::FlowTime, &cluster, &workload, None, &spec, k);
        let parallel_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Determinism: thread count must not change a byte.
        let serial_bytes = serde_json::to_string(&serial).expect("outcome serializes");
        let parallel_bytes = serde_json::to_string(&parallel).expect("outcome serializes");
        assert_eq!(
            serial_bytes, parallel_bytes,
            "pods={k}: serial and parallel outcomes diverge"
        );

        // Certification: traced rerun must be byte-identical and pass the
        // sharded auditor's cross-pod + per-pod checks.
        let (traced, traces) =
            run_sharded_outcome_traced_with(Algo::FlowTime, &cluster, &workload, None, &spec, k);
        assert_eq!(
            serde_json::to_string(&traced).expect("outcome serializes"),
            serial_bytes,
            "pods={k}: traced outcome diverges from untraced"
        );
        let audit = certify_sharded(&cluster, &workload, &spec, &traced, &traces, None);
        assert!(
            audit.is_certified(),
            "pods={k}: audit rejected the run: {}",
            audit.summary()
        );

        if k == 1 {
            base_wall = Some(serial_wall_ms);
        }
        let base = base_wall.unwrap_or(serial_wall_ms);
        let replans = serial
            .pods
            .iter()
            .filter_map(|p| p.solver_telemetry.as_ref())
            .map(|t| t.replans)
            .sum();
        let row = ShardRow {
            pods: k,
            serial_wall_ms,
            parallel_wall_ms,
            serial_speedup: base / serial_wall_ms.max(1e-9),
            parallel_speedup: base / parallel_wall_ms.max(1e-9),
            completed_jobs: serial.completed_jobs(),
            job_misses: serial.job_deadline_misses(),
            workflow_misses: serial.workflow_deadline_misses(),
            slots_elapsed: serial.slots_elapsed(),
            rebalances: serial.placement.rebalances.len(),
            replans,
            certified: true,
        };
        println!(
            "{:>5} {:>13.1} {:>15.1} {:>8.1}x {:>8.1}x {:>7} {:>7} {:>10}",
            k,
            row.serial_wall_ms,
            row.parallel_wall_ms,
            row.serial_speedup,
            row.parallel_speedup,
            row.job_misses + row.workflow_misses,
            row.rebalances,
            row.replans
        );
        rows.push(row);
    }
    let last_row = rows.last().map(|r| (r.pods, r.serial_speedup));

    report::persist(
        "fig_shard",
        &ShardReport {
            scheduler: Algo::FlowTime.name().to_string(),
            placer: placer.name(),
            workflows,
            jobs_per_workflow: jobs,
            adhoc_horizon,
            seed: exp.seed,
            host,
            rows,
        },
    );
    println!("report written to results/fig_shard.json");

    if let Some(floor) = check_speedup {
        let (last_pods, speedup) = last_row.expect("--pods must not be empty");
        println!("serial speedup at {last_pods} pods: {speedup:.1}x (floor {floor}x)");
        if speedup < floor {
            eprintln!("error: {last_pods} pods only {speedup:.1}x faster (serial) than unsharded");
            std::process::exit(1);
        }
    }
}
