//! Criterion companion to Fig. 6: deadline-decomposition runtime vs. DAG
//! size, plus the demand-vs-critical-path ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowtime::decompose::{decompose, DecomposeConfig, Decomposer};
use flowtime_dag::{JobSpec, ResourceVec, Workflow, WorkflowBuilder, WorkflowId};
use flowtime_workload::shapes;

fn workflow(nodes: usize, edges: usize, seed: u64) -> Workflow {
    let layers = (nodes / 10).clamp(3, 20);
    let edge_list = shapes::layered_random(nodes, layers, edges, seed);
    let mut b = WorkflowBuilder::new(WorkflowId::new(seed), "bench");
    for i in 0..nodes {
        b.add_job(JobSpec::new(
            format!("j{i}"),
            40 + (i as u64 % 160),
            1 + (i as u64 % 5),
            ResourceVec::new([1, 2048]),
        ));
    }
    for (from, to) in edge_list {
        b.add_dep(from, to).expect("unique edges");
    }
    b.window(0, 100_000).build().expect("valid")
}

fn bench_decomposition(c: &mut Criterion) {
    let config = DecomposeConfig::new(ResourceVec::new([500, 1_048_576]));
    let mut group = c.benchmark_group("fig6_decomposition");
    for &(nodes, edges) in &[(10usize, 20usize), (50, 350), (100, 1400), (200, 5700)] {
        let wf = workflow(nodes, edges, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}n_{}e", wf.dag().edge_count())),
            &wf,
            |b, wf| b.iter(|| decompose(wf, &config).expect("valid")),
        );
    }
    group.finish();

    let mut ablation = c.benchmark_group("decomposer_ablation");
    let wf = workflow(100, 1400, 7);
    ablation.bench_function("resource_demand", |b| {
        b.iter(|| decompose(&wf, &config).expect("valid"))
    });
    let cp = config.clone().with_decomposer(Decomposer::CriticalPath);
    ablation.bench_function("critical_path", |b| {
        b.iter(|| decompose(&wf, &cp).expect("valid"))
    });
    ablation.finish();
}

criterion_group!(benches, bench_decomposition);
criterion_main!(benches);
