//! Per-slot scheduling cost of every algorithm on a shared mid-size
//! workload state, plus the lexicographic-depth ablation called out in
//! DESIGN.md (min-max only vs. bounded lexmin refinement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowtime::lp_sched::{LevelingProblem, PlanJob, SolverBackend};
use flowtime_bench::experiments::{Algo, WorkflowExperiment};
use flowtime_dag::{JobId, ResourceVec};
use flowtime_sim::{ClusterConfig, Engine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Full-run wall time per algorithm on a trimmed workload: measures the
/// end-to-end scheduling overhead (the simulator itself is the same for
/// all, so differences are scheduler cost).
fn bench_schedulers(c: &mut Criterion) {
    let cluster = ClusterConfig::new(ResourceVec::new([48, 196_608]), 10.0);
    let exp = WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 8,
        adhoc_horizon: 80,
        adhoc_rate: 0.2,
        ..Default::default()
    };
    let workload = exp.build(&cluster);
    let mut group = c.benchmark_group("scheduler_full_run");
    group.sample_size(10);
    for algo in Algo::FIG4 {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &workload,
            |b, wl| {
                b.iter(|| {
                    let mut s = algo.make(&cluster);
                    Engine::new(cluster.clone(), wl.clone(), 1_000_000)
                        .expect("valid")
                        .run(s.as_mut())
                        .expect("completes")
                })
            },
        );
    }
    group.finish();
}

/// Lexicographic depth ablation on one placement problem.
fn bench_lex_depth(c: &mut Criterion) {
    // Small instance: each refinement round costs up to NECESSITY_BUDGET
    // trial LP solves, and degenerate trial LPs are the slow path of the
    // dense simplex — the *depth scaling* is the point of this group, not
    // absolute size.
    let mut rng = StdRng::seed_from_u64(3);
    let slots = 24usize;
    let jobs: Vec<PlanJob> = (0..8)
        .map(|i| {
            let start = rng.gen_range(0..slots - 8);
            let len = rng.gen_range(8..=slots - start);
            PlanJob {
                id: JobId::new(i),
                window: (start, start + len),
                demand: rng.gen_range(10..40),
                per_task: ResourceVec::new([1, 2048]),
                per_slot_cap: Some(rng.gen_range(4..12)),
            }
        })
        .collect();
    let problem = LevelingProblem {
        slot_caps: vec![ResourceVec::new([40, 81_920]); slots],
        jobs,
    };
    assert!(problem.solve(SolverBackend::ParametricFlow).is_ok());
    let mut group = c.benchmark_group("lexmin_depth");
    group.sample_size(10);
    for rounds in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &problem, |b, p| {
            b.iter(|| {
                p.solve(SolverBackend::Simplex { lex_rounds: rounds })
                    .expect("ok")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_lex_depth);
criterion_main!(benches);
