//! Criterion companion to Fig. 7: placement-solver latency vs. the number
//! of deadline jobs, for both exact backends, on the paper's 500-core /
//! 1 TB / 100-slot configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowtime::lp_sched::{LevelingProblem, PlanJob, SolverBackend};
use flowtime_dag::{JobId, ResourceVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SLOTS: usize = 100;

fn instance(jobs: usize, seed: u64) -> LevelingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plan_jobs = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let start = rng.gen_range(0..SLOTS - 25);
        let len = rng.gen_range(25..=SLOTS - start);
        plan_jobs.push(PlanJob {
            id: JobId::new(i as u64),
            window: (start, start + len),
            demand: rng.gen_range(80..260),
            per_task: ResourceVec::new([1, 2048]),
            per_slot_cap: Some(rng.gen_range(20..80)),
        });
    }
    LevelingProblem {
        slot_caps: vec![ResourceVec::new([500, 1_048_576]); SLOTS],
        jobs: plan_jobs,
    }
}

fn feasible_instance(jobs: usize) -> LevelingProblem {
    let mut offset = 0u64;
    loop {
        let candidate = instance(jobs, 42 + jobs as u64 + offset * 1000);
        if candidate.solve(SolverBackend::ParametricFlow).is_ok() {
            return candidate;
        }
        offset += 1;
        assert!(offset < 50, "no feasible instance found");
    }
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_solver_latency");
    group.sample_size(10);
    for &jobs in &[10usize, 30, 60] {
        let problem = feasible_instance(jobs);
        group.bench_with_input(BenchmarkId::new("flow", jobs), &problem, |b, p| {
            b.iter(|| p.solve(SolverBackend::ParametricFlow).expect("feasible"))
        });
        group.bench_with_input(BenchmarkId::new("simplex", jobs), &problem, |b, p| {
            b.iter(|| {
                p.solve(SolverBackend::Simplex { lex_rounds: 1 })
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
