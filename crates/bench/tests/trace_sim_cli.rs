//! Bad-path behaviour of the `trace_sim` binary: missing or malformed
//! trace files must produce a clear error on stderr and a nonzero exit
//! code, never a panic.

use std::process::Command;

fn trace_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trace_sim"))
}

#[test]
fn missing_load_path_errors_cleanly() {
    let out = trace_sim()
        .args(["--load", "/nonexistent/definitely-missing.jsonl"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot open trace file"),
        "stderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must not panic on a missing path: {stderr}"
    );
}

#[test]
fn malformed_trace_errors_cleanly() {
    let dir = std::env::temp_dir().join(format!("trace_sim_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.jsonl");
    std::fs::write(&path, "this is not json\n").unwrap();
    let out = trace_sim()
        .args(["--load", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed trace file"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "must not panic: {stderr}");
}

#[test]
fn unwritable_save_path_errors_cleanly() {
    let out = trace_sim()
        .args([
            "--workflows",
            "1",
            "--save",
            "/nonexistent-dir/trace-out.jsonl",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot create trace file"),
        "stderr: {stderr}"
    );
}
