//! Structured decision traces.
//!
//! Aggregate metrics say *what* a run produced; they cannot say *why* a
//! deadline was missed or a turnaround won. The decision trace is the
//! engine's machine-checkable record of every scheduling decision it
//! applied: arrivals, dependency releases, per-slot capacity grants, job
//! starts/preemptions/finishes, LP replan triggers, policy-regime changes,
//! and the fault injections that shaped the scenario. The offline auditor
//! ([`crate::audit`]) replays this record against the scenario and
//! certifies the run without trusting any engine state.
//!
//! # Recording model
//!
//! Recording is enabled per run via [`crate::Engine::with_trace`], which
//! returns a [`TraceHandle`] the caller drains after the run. Events land
//! in a bounded ring buffer ([`DecisionTrace`]): the buffer allocates
//! lazily up to its capacity and then overwrites the oldest events,
//! counting what it dropped, so a traced run can never exhaust memory.
//! When tracing is disabled the engine skips every recording branch — the
//! hot path pays one `Option` test per slot.
//!
//! # Determinism contract
//!
//! A trace is a pure function of `(cluster, workload, scheduler,
//! max_slots)`. No wall-clock or host-dependent value is recorded, so the
//! JSONL export ([`DecisionTrace::write_jsonl`]) is byte-identical across
//! hosts and `--threads` counts — the same rule
//! [`crate::telemetry`] applies to counters.
//!
//! # Canonical per-slot event order
//!
//! Within one slot the engine records, in order: `Arrival`/`Ready` events
//! (arrivals first, then readies, each in job-id order; admission-control
//! `Shed`/`Defer` events appear in place of the suppressed `Arrival`),
//! `Kill` events for jobs caught by a node-crash window opening this slot
//! (job-id order), one `Replan` if the scheduler re-solved, one
//! `PolicyTag` if the decision regime changed, `Preempt` events (job-id
//! order), then per granted job in id order a `Start` (first grant only)
//! followed by its `Grant`, and finally — interleaved in granted-job id
//! order as the work applies — `Straggler` (first grant only), task-kill
//! `Kill`, and `Finish` events. A `Finish` at slot `s` means the job
//! finished at the *end* of `s`; its `completion_slot` is `s + 1`. A
//! killed job re-enters the runnable set at its deterministic backoff
//! slot without a fresh `Ready` event — the retry slot is derivable from
//! the `Kill` event and the recovery policy.

use crate::job::JobClass;
use flowtime_dag::{JobId, ResourceVec};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};
use std::rc::Rc;

/// Default ring-buffer capacity: ample for every experiment in the repo
/// while bounding a runaway run to tens of MB.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// Static per-job metadata snapshotted into the trace header, so the
/// auditor can cross-check the engine's job table against the scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJobMeta {
    /// Dense engine job id.
    pub id: JobId,
    /// Workload class and workflow linkage.
    pub class: JobClass,
    /// Submission slot.
    pub arrival_slot: u64,
    /// Ground-truth work in task-slots.
    pub actual_work: u64,
    /// Milestone deadline, if tracked.
    pub deadline_slot: Option<u64>,
}

/// Run-level context recorded once at the start of a traced run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Name of the scheduler that produced the decisions.
    pub scheduler: String,
    /// Base cluster capacity.
    pub capacity: ResourceVec,
    /// Slot duration in seconds.
    pub slot_seconds: f64,
    /// The engine's slot bound for the run.
    pub max_slots: u64,
    /// Per-job metadata in engine id order.
    pub jobs: Vec<TraceJobMeta>,
    /// Total pod count of the sharded run ([`crate::shard`]) that produced
    /// this trace. Zero — and omitted from serialization — for unsharded
    /// runs and for K = 1 sharded runs, keeping their trace bytes
    /// identical to pre-shard recordings.
    #[serde(default, skip_serializing_if = "crate::serde_skip::zero_u64")]
    pub pods: u64,
    /// Pod index this trace was recorded on; only meaningful when
    /// `pods > 1` (pod 0 serializes identically to an unsharded trace
    /// apart from `pods` and `placer`).
    #[serde(default, skip_serializing_if = "crate::serde_skip::zero_u64")]
    pub pod: u64,
    /// Placement policy ([`crate::Placer`]) of the sharded run, by its
    /// canonical name; empty — and omitted — when unsharded.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub placer: String,
}

/// One scenario rewrite performed by fault injection before the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Fault class (`submit-delay`, `misestimate`, `capacity-churn`,
    /// `burst`).
    pub kind: String,
    /// Slot the fault takes effect.
    pub slot: u64,
    /// Human-readable description of the rewrite.
    pub detail: String,
}

/// One scheduling decision or state change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The job's submission slot was reached; it became visible.
    Arrival {
        /// Slot of the event.
        slot: u64,
        /// The job.
        job: JobId,
    },
    /// The job's dependencies were all satisfied; it became runnable.
    Ready {
        /// Slot of the event.
        slot: u64,
        /// The job.
        job: JobId,
    },
    /// The scheduler re-solved its plan (LP/flow replan or cache hit).
    Replan {
        /// Slot of the replan.
        slot: u64,
        /// Number of replans performed during this slot.
        replans: u64,
    },
    /// The scheduler's decision regime changed (see
    /// [`crate::Scheduler::decision_tag`]). Recorded on every change,
    /// including the initial regime at the first planned slot.
    PolicyTag {
        /// Slot of the change.
        slot: u64,
        /// The new regime label.
        tag: String,
    },
    /// A job that ran in the previous slot was left unallocated while
    /// still incomplete.
    Preempt {
        /// Slot of the preemption.
        slot: u64,
        /// The job.
        job: JobId,
    },
    /// First capacity grant of a job (it started running).
    Start {
        /// Slot of the first grant.
        slot: u64,
        /// The job.
        job: JobId,
    },
    /// Capacity grant: `tasks` concurrent tasks for this slot.
    Grant {
        /// Slot of the grant.
        slot: u64,
        /// The job.
        job: JobId,
        /// Concurrent tasks granted.
        tasks: u64,
    },
    /// The job's accumulated work reached its ground truth at the end of
    /// `slot`; its completion slot is `slot + 1`.
    Finish {
        /// Slot during which the job finished.
        slot: u64,
        /// The job.
        job: JobId,
        /// Total work accumulated at completion, in task-slots.
        done_work: u64,
    },
    /// A mid-run straggler inflated the job's ground-truth work at its
    /// first capacity grant.
    Straggler {
        /// Slot of the inflation (the job's first granted slot).
        slot: u64,
        /// The job.
        job: JobId,
        /// Extra task-slots of work added to the ground truth.
        extra: u64,
    },
    /// An attempt was killed mid-run (task failure or node crash); the
    /// job's progress resets and it re-enters the runnable set at its
    /// deterministic backoff slot.
    Kill {
        /// Slot of the kill.
        slot: u64,
        /// The job.
        job: JobId,
        /// The zero-based attempt that was killed.
        attempt: u32,
        /// Task-slots of progress discarded with the attempt.
        wasted: u64,
    },
    /// The admission controller dropped an arriving ad-hoc job under
    /// sustained overload (shed policy `shed`); the job never runs.
    Shed {
        /// Slot of the suppressed arrival.
        slot: u64,
        /// The job.
        job: JobId,
    },
    /// The admission controller postponed an arriving ad-hoc job under
    /// sustained overload (shed policy `delay`); it arrives at `until`.
    Defer {
        /// Slot of the original arrival.
        slot: u64,
        /// The job.
        job: JobId,
        /// Slot the deferred arrival lands.
        until: u64,
    },
}

impl TraceEvent {
    /// The slot the event belongs to.
    pub fn slot(&self) -> u64 {
        match *self {
            TraceEvent::Arrival { slot, .. }
            | TraceEvent::Ready { slot, .. }
            | TraceEvent::Replan { slot, .. }
            | TraceEvent::PolicyTag { slot, .. }
            | TraceEvent::Preempt { slot, .. }
            | TraceEvent::Start { slot, .. }
            | TraceEvent::Grant { slot, .. }
            | TraceEvent::Finish { slot, .. }
            | TraceEvent::Straggler { slot, .. }
            | TraceEvent::Kill { slot, .. }
            | TraceEvent::Shed { slot, .. }
            | TraceEvent::Defer { slot, .. } => slot,
        }
    }

    /// The job the event concerns, when it concerns one.
    pub fn job(&self) -> Option<JobId> {
        match *self {
            TraceEvent::Arrival { job, .. }
            | TraceEvent::Ready { job, .. }
            | TraceEvent::Preempt { job, .. }
            | TraceEvent::Start { job, .. }
            | TraceEvent::Grant { job, .. }
            | TraceEvent::Finish { job, .. }
            | TraceEvent::Straggler { job, .. }
            | TraceEvent::Kill { job, .. }
            | TraceEvent::Shed { job, .. }
            | TraceEvent::Defer { job, .. } => Some(job),
            TraceEvent::Replan { .. } | TraceEvent::PolicyTag { .. } => None,
        }
    }
}

/// A bounded, allocation-light ring buffer of scheduling decisions.
///
/// Events are appended in simulation order; once `capacity` is reached
/// the oldest events are overwritten and counted in [`Self::dropped`].
/// Equality compares the *logical* content (header, faults, events in
/// order, drop count), not the physical buffer layout.
#[derive(Debug, Clone)]
pub struct DecisionTrace {
    /// Run-level context (scheduler, cluster, job table).
    pub header: TraceHeader,
    /// Scenario rewrites applied before the run.
    pub faults: Vec<FaultRecord>,
    capacity: usize,
    /// Physical storage; once full, `start` marks the logical beginning.
    events: Vec<TraceEvent>,
    start: usize,
    dropped: u64,
}

impl DecisionTrace {
    /// An empty trace bounded at `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        DecisionTrace {
            header: TraceHeader::default(),
            faults: Vec::new(),
            capacity: capacity.max(1),
            events: Vec::new(),
            start: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest one when full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.start] = event;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring bound (0 on an untruncated trace).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.dropped + self.events.len() as u64
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates the retained events in simulation order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events[self.start..]
            .iter()
            .chain(self.events[..self.start].iter())
    }

    /// Rotates the physical buffer so it matches the logical order.
    pub fn make_contiguous(&mut self) {
        if self.start != 0 {
            self.events.rotate_left(self.start);
            self.start = 0;
        }
    }

    /// Mutable access to the event sequence in simulation order — the
    /// hook mutation tests use to corrupt a trace.
    pub fn events_mut(&mut self) -> &mut Vec<TraceEvent> {
        self.make_contiguous();
        &mut self.events
    }

    /// Writes the trace as JSON lines: a header record, one record per
    /// fault, one per event, then a footer carrying the event accounting.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on write failures.
    pub fn write_jsonl<W: Write>(&self, mut writer: W) -> Result<(), TraceError> {
        let write_record = |writer: &mut W, record: &TraceRecord| -> Result<(), TraceError> {
            serde_json::to_writer(&mut *writer, record).map_err(|e| TraceError::Parse {
                line: 0,
                message: e.to_string(),
            })?;
            writer.write_all(b"\n")?;
            Ok(())
        };
        write_record(
            &mut writer,
            &TraceRecord::Header(Box::new(self.header.clone())),
        )?;
        for fault in &self.faults {
            write_record(&mut writer, &TraceRecord::Fault(fault.clone()))?;
        }
        for event in self.events() {
            write_record(&mut writer, &TraceRecord::Event(event.clone()))?;
        }
        write_record(
            &mut writer,
            &TraceRecord::Footer {
                events: self.events.len() as u64,
                dropped: self.dropped,
            },
        )
    }

    /// Reads a trace written by [`Self::write_jsonl`].
    ///
    /// # Errors
    ///
    /// * [`TraceError::Io`] on read failures.
    /// * [`TraceError::Parse`] on malformed records, a missing header or
    ///   footer, or a footer whose event count disagrees with the file.
    pub fn read_jsonl<R: BufRead>(reader: R) -> Result<Self, TraceError> {
        let mut header: Option<TraceHeader> = None;
        let mut faults = Vec::new();
        let mut events = Vec::new();
        let mut footer: Option<(u64, u64)> = None;
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let record: TraceRecord =
                serde_json::from_str(&line).map_err(|e| TraceError::Parse {
                    line: idx + 1,
                    message: e.to_string(),
                })?;
            match record {
                TraceRecord::Header(h) => header = Some(*h),
                TraceRecord::Fault(f) => faults.push(f),
                TraceRecord::Event(e) => events.push(e),
                TraceRecord::Footer { events, dropped } => footer = Some((events, dropped)),
            }
        }
        let header = header.ok_or(TraceError::Parse {
            line: 0,
            message: "missing header record".into(),
        })?;
        let (expected, dropped) = footer.ok_or(TraceError::Parse {
            line: 0,
            message: "missing footer record".into(),
        })?;
        if expected != events.len() as u64 {
            return Err(TraceError::Parse {
                line: 0,
                message: format!(
                    "footer claims {expected} events, file holds {}",
                    events.len()
                ),
            });
        }
        let capacity = events.len().max(1);
        Ok(DecisionTrace {
            header,
            faults,
            capacity,
            events,
            start: 0,
            dropped,
        })
    }
}

impl PartialEq for DecisionTrace {
    fn eq(&self, other: &Self) -> bool {
        self.header == other.header
            && self.faults == other.faults
            && self.dropped == other.dropped
            && self.events().eq(other.events())
    }
}

/// One JSON-lines record of the trace file.
#[derive(Debug, Serialize, Deserialize)]
enum TraceRecord {
    Header(Box<TraceHeader>),
    Fault(FaultRecord),
    Event(TraceEvent),
    Footer { events: u64, dropped: u64 },
}

/// Errors reading or writing a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// An I/O failure.
    Io(std::io::Error),
    /// A malformed record (`line` is 1-based; 0 for whole-file problems).
    Parse {
        /// Line of the offending record.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "trace parse error: {message}")
                } else {
                    write!(f, "trace parse error at line {line}: {message}")
                }
            }
        }
    }
}

impl Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Caller-side handle to a traced run, returned by
/// [`crate::Engine::with_trace`]. The engine and the handle share the
/// buffer; after [`crate::Engine::run`] returns, [`Self::take`] drains the
/// recorded trace.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    buf: Rc<RefCell<DecisionTrace>>,
}

impl TraceHandle {
    /// Takes the recorded trace, leaving an empty buffer behind.
    pub fn take(&self) -> DecisionTrace {
        let capacity = self.buf.borrow().capacity;
        self.buf.replace(DecisionTrace::new(capacity))
    }

    /// Attaches the scenario's fault-injection records (see
    /// [`crate::FaultPlan::apply_recorded`]) to the trace prologue.
    pub fn record_faults(&self, records: &[FaultRecord]) {
        self.buf.borrow_mut().faults.extend_from_slice(records);
    }

    /// Clones the trace recorded so far without disturbing the buffer —
    /// the daemon's `trace` endpoint peeks mid-run while the engine keeps
    /// recording.
    pub fn snapshot(&self) -> DecisionTrace {
        self.buf.borrow().clone()
    }
}

/// Engine-side recording context: the shared buffer plus the incremental
/// state needed to derive `Start`/`Preempt`/`Replan`/`PolicyTag` events.
#[derive(Debug)]
pub(crate) struct TraceCtx {
    buf: Rc<RefCell<DecisionTrace>>,
    /// Jobs granted in the previous simulated slot, in id order.
    pub(crate) prev_granted: Vec<JobId>,
    /// Last recorded decision-regime tag.
    pub(crate) last_tag: Option<&'static str>,
    /// Scheduler replan counter at the last poll.
    pub(crate) prev_replans: u64,
}

impl TraceCtx {
    /// Builds a recording context and its caller-side handle.
    pub(crate) fn new(capacity: usize) -> (Self, TraceHandle) {
        let buf = Rc::new(RefCell::new(DecisionTrace::new(capacity)));
        let handle = TraceHandle {
            buf: Rc::clone(&buf),
        };
        (
            TraceCtx {
                buf,
                prev_granted: Vec::new(),
                last_tag: None,
                prev_replans: 0,
            },
            handle,
        )
    }

    /// Appends one event.
    pub(crate) fn push(&self, event: TraceEvent) {
        self.buf.borrow_mut().push(event);
    }

    /// Mutable access to the shared buffer (header writes, batched pushes).
    pub(crate) fn buffer(&self) -> std::cell::RefMut<'_, DecisionTrace> {
        self.buf.borrow_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(slot: u64, raw: u64) -> TraceEvent {
        TraceEvent::Grant {
            slot,
            job: JobId::new(raw),
            tasks: 1,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut t = DecisionTrace::new(3);
        for i in 0..5 {
            t.push(ev(i, i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.recorded(), 5);
        let slots: Vec<u64> = t.events().map(TraceEvent::slot).collect();
        assert_eq!(slots, vec![2, 3, 4]);
        t.make_contiguous();
        let slots2: Vec<u64> = t.events().map(TraceEvent::slot).collect();
        assert_eq!(slots2, vec![2, 3, 4]);
    }

    #[test]
    fn equality_ignores_physical_rotation() {
        let mut a = DecisionTrace::new(3);
        let mut b = DecisionTrace::new(3);
        for i in 0..5 {
            a.push(ev(i, i));
            b.push(ev(i, i));
        }
        b.make_contiguous();
        assert_eq!(a, b);
        b.push(ev(9, 9));
        assert_ne!(a, b);
    }

    #[test]
    fn jsonl_round_trip() {
        let mut t = DecisionTrace::new(16);
        t.header = TraceHeader {
            scheduler: "test".into(),
            capacity: ResourceVec::new([8, 1024]),
            slot_seconds: 10.0,
            max_slots: 100,
            jobs: vec![TraceJobMeta {
                id: JobId::new(0),
                class: JobClass::AdHoc,
                arrival_slot: 0,
                actual_work: 4,
                deadline_slot: None,
            }],
            ..TraceHeader::default()
        };
        t.faults.push(FaultRecord {
            kind: "burst".into(),
            slot: 3,
            detail: "one extra job".into(),
        });
        t.push(ev(0, 0));
        t.push(TraceEvent::Finish {
            slot: 1,
            job: JobId::new(0),
            done_work: 4,
        });
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = DecisionTrace::read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(t, back);
        // A second serialization is byte-identical.
        let mut buf2 = Vec::new();
        back.write_jsonl(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn missing_header_or_footer_rejected() {
        let only_footer = b"{\"Footer\":{\"events\":0,\"dropped\":0}}\n";
        assert!(DecisionTrace::read_jsonl(std::io::BufReader::new(&only_footer[..])).is_err());
        let t = DecisionTrace::new(4);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let without_footer: String = text
            .lines()
            .filter(|l| !l.contains("Footer"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(
            DecisionTrace::read_jsonl(std::io::BufReader::new(without_footer.as_bytes())).is_err()
        );
    }

    #[test]
    fn footer_count_mismatch_rejected() {
        let mut t = DecisionTrace::new(4);
        t.push(ev(0, 0));
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let tampered = text.replace("\"events\":1", "\"events\":2");
        let err =
            DecisionTrace::read_jsonl(std::io::BufReader::new(tampered.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("footer"));
    }

    #[test]
    fn malformed_line_reports_position() {
        match DecisionTrace::read_jsonl(std::io::BufReader::new(&b"not json\n"[..])) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn event_accessors() {
        assert_eq!(ev(4, 7).slot(), 4);
        assert_eq!(ev(4, 7).job(), Some(JobId::new(7)));
        let replan = TraceEvent::Replan {
            slot: 2,
            replans: 1,
        };
        assert_eq!(replan.slot(), 2);
        assert_eq!(replan.job(), None);
    }

    #[test]
    fn handle_take_drains_and_resets() {
        let (ctx, handle) = TraceCtx::new(8);
        ctx.push(ev(0, 1));
        handle.record_faults(&[FaultRecord {
            kind: "burst".into(),
            slot: 0,
            detail: "x".into(),
        }]);
        let taken = handle.take();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken.faults.len(), 1);
        let empty = handle.take();
        assert!(empty.is_empty());
        assert_eq!(empty.capacity(), 8);
    }
}
