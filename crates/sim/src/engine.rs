//! The simulation engine.
//!
//! The run loop is event-driven: arrivals and dependency releases live in a
//! binary-heap event queue and the runnable/visible job views are maintained
//! incrementally (see [`crate::state::SimState`]), so per-slot cost tracks
//! the number of jobs that *change* state rather than the number alive. The
//! historical linear-scan loop is preserved as [`crate::oracle::OracleEngine`]
//! and differential tests pin the two to identical outcomes.

use crate::cluster::{CapacityWindow, ClusterConfig};
use crate::error::SimError;
use crate::faults::{RecoveryPolicy, RecoverySetup, RuntimeFaultPlan, ShedPolicy};
use crate::invariants::InvariantChecker;
use crate::job::{AdhocSubmission, JobClass, JobRuntime, SimWorkload, WorkflowSubmission};
use crate::metrics::{
    InFlightJob, JobOutcome, Metrics, MissAttribution, NodeSlackUse, RecoveryStats, ShedJob,
    WorkflowOutcome,
};
use crate::placement::NodePool;
use crate::scheduler::Scheduler;
use crate::state::{SimState, WorkflowInstance};
use crate::telemetry::{EngineTelemetry, SolverTelemetry};
use crate::timeline::{Timeline, TimelineEntry};
use crate::trace::{TraceCtx, TraceEvent, TraceHandle, TraceHeader, TraceJobMeta};
use flowtime_dag::{JobId, ResourceVec};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

/// Result of a completed simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Aggregated metrics. On a horizon-exhausted run these cover only the
    /// jobs (and fully-finished workflows) that completed in time.
    pub metrics: Metrics,
    /// Number of slots simulated until the last completion.
    pub slots_elapsed: u64,
    /// Full allocation recording, when enabled via
    /// [`Engine::with_timeline`].
    pub timeline: Option<Timeline>,
    /// Per-slot count of tasks that would not have fit on any physical
    /// node (fragmentation diagnostic), when enabled via
    /// [`Engine::with_nodes`].
    pub placement_shortfalls: Option<Vec<u64>>,
    /// Solver-effort counters reported by the scheduler at the end of the
    /// run (see [`crate::telemetry`]); `None` for solver-free schedulers.
    #[serde(default)]
    pub solver_telemetry: Option<SolverTelemetry>,
    /// Engine hot-path counters for this run (see [`crate::telemetry`]);
    /// wall-clock time is excluded from serialization and equality.
    #[serde(default)]
    pub engine_telemetry: EngineTelemetry,
    /// Jobs still unfinished when the slot horizon ran out; empty on a
    /// complete run. See [`Self::is_complete`].
    #[serde(default)]
    pub in_flight: Vec<InFlightJob>,
    /// Deadline-miss attribution: one report per fully-completed workflow
    /// with decomposed per-job milestones, recording which node set
    /// consumed the decomposed slack (see [`MissAttribution`]).
    #[serde(default)]
    pub deadline_attribution: Vec<MissAttribution>,
    /// Mid-run failure/recovery counters (see [`Engine::with_recovery`]).
    /// All-zero — and omitted from serialization — whenever recovery is
    /// off or never fired, keeping pre-recovery outcomes byte-identical.
    #[serde(default, skip_serializing_if = "RecoveryStats::is_inert")]
    pub recovery: RecoveryStats,
    /// Ad-hoc jobs dropped by admission control under sustained overload;
    /// empty (and omitted from serialization) unless the shed policy
    /// fired. Shed jobs count as neither completed nor in flight.
    #[serde(default, skip_serializing_if = "crate::serde_skip::empty_vec")]
    pub shed: Vec<ShedJob>,
    /// Pod index this outcome was produced on, for sharded runs
    /// ([`crate::shard`]). Zero — and omitted from serialization — for
    /// unsharded runs and for pod 0, keeping K=1 sharded bytes identical
    /// to the unsharded engine's.
    #[serde(default, skip_serializing_if = "crate::serde_skip::zero_u64")]
    pub pod: u64,
}

impl SimOutcome {
    /// True when every submitted job finished within the horizon. When
    /// false, [`Self::in_flight`] lists the unfinished jobs and the
    /// metrics cover only the completed portion of the workload.
    pub fn is_complete(&self) -> bool {
        self.in_flight.is_empty()
    }
}

/// Event kind: a job's submission slot was reached (enters the visible
/// set). Ordered before [`EV_READY`] within a slot so a job is always
/// visible by the time it becomes runnable.
pub(crate) const EV_ARRIVAL: u8 = 0;
/// Event kind: a job's dependencies are satisfied (enters the runnable
/// set).
pub(crate) const EV_READY: u8 = 1;
/// Event kind: a killed attempt's backoff expired — the job re-enters the
/// runnable set, with no fresh `Ready` trace event (the retry slot is
/// derivable from the `Kill` event and the recovery policy).
const EV_RETRY: u8 = 2;

/// One pending state change, keyed `(slot, kind, job)`; `Reverse` turns
/// `BinaryHeap`'s max-heap into the min-heap the run loop pops from.
pub(crate) type Event = Reverse<(u64, u8, JobId)>;

/// Result of a single [`Engine::step`]: did the engine simulate a slot,
/// observe completion, or hit its horizon?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One slot was simulated and virtual time advanced by one.
    Advanced,
    /// Every known job is complete; the final invariants held. Virtual
    /// time did not advance. Stepping again after injecting more work
    /// (see [`crate::OnlineEngine`]) is valid and resumes the run.
    Complete,
    /// `max_slots` reached with work still pending; nothing was simulated.
    HorizonExhausted,
}

/// Runtime state of an armed failure/recovery subsystem (see
/// [`Engine::with_recovery`]).
struct RecoveryCtx {
    /// The seeded mid-run fault plan; every verdict is a pure function the
    /// offline auditor replays identically.
    plan: RuntimeFaultPlan,
    /// Retry bounds and degradation rules (sustain clamped to ≥ 1).
    policy: RecoveryPolicy,
    /// Materialized node-crash windows, ascending by `from_slot`.
    windows: Vec<CapacityWindow>,
    /// First window whose opening has not yet been processed.
    next_window: usize,
    /// Consecutive end-of-slot overload observations.
    overload_streak: u64,
    /// Counters surfaced as [`SimOutcome::recovery`].
    stats: RecoveryStats,
    /// Per-workflow infeasibility flag, set at most once each.
    flagged: Vec<bool>,
}

/// Drives a [`Scheduler`] over a [`SimWorkload`] slot by slot.
///
/// The engine is deterministic: identical workload, cluster, and scheduler
/// state produce identical outcomes, which is what makes algorithm
/// comparisons meaningful.
pub struct Engine {
    pub(crate) state: SimState,
    pub(crate) max_slots: u64,
    pub(crate) slot_loads: Vec<ResourceVec>,
    pub(crate) slot_capacities: Vec<ResourceVec>,
    pub(crate) timeline: Option<Timeline>,
    pub(crate) nodes: Option<NodePool>,
    pub(crate) placement_shortfalls: Vec<u64>,
    pub(crate) checker: InvariantChecker,
    pub(crate) telemetry: EngineTelemetry,
    /// Decision-trace recording context; `None` (the default) is the
    /// zero-cost path — no event is constructed and no telemetry is
    /// polled when tracing is off.
    pub(crate) trace: Option<TraceCtx>,
    /// Min-heap of pending arrival/readiness events.
    pub(crate) events: BinaryHeap<Event>,
    /// `(workflow index, DAG node)` of each workflow job, by job index;
    /// `None` for ad-hoc jobs.
    pub(crate) job_nodes: Vec<Option<(usize, usize)>>,
    /// Per workflow, per node: count of predecessors not yet complete. A
    /// node is released the moment its count reaches zero.
    pub(crate) pending_preds: Vec<Vec<usize>>,
    /// Mid-run failure/recovery context; `None` (the default) keeps every
    /// recovery branch untaken and the run byte-identical to builds that
    /// predate the subsystem.
    recovery: Option<RecoveryCtx>,
}

/// Incremental builder for the engine's dense job table. Both the batch
/// constructors ([`Engine::new`], [`Engine::from_log`]) and the online
/// injection path ([`crate::OnlineEngine`]) funnel through this type, so
/// the per-submission runtime layout is defined in exactly one place.
///
/// `base_job` / `base_workflow` offset the assigned ids, letting the
/// online engine splice freshly-built rows onto an already-populated
/// table without disturbing the dense-id contract.
pub(crate) struct TableBuilder {
    pub(crate) base_job: u64,
    pub(crate) base_workflow: usize,
    pub(crate) jobs: Vec<JobRuntime>,
    pub(crate) workflows: Vec<WorkflowInstance>,
    pub(crate) job_nodes: Vec<Option<(usize, usize)>>,
    pub(crate) pending_preds: Vec<Vec<usize>>,
}

impl TableBuilder {
    /// An empty table starting at job id 0, workflow index 0.
    pub(crate) fn new() -> Self {
        Self::offset(0, 0)
    }

    /// An empty table whose first job gets id `base_job` and whose first
    /// workflow gets index `base_workflow`.
    pub(crate) fn offset(base_job: u64, base_workflow: usize) -> Self {
        TableBuilder {
            base_job,
            base_workflow,
            jobs: Vec::new(),
            workflows: Vec::new(),
            job_nodes: Vec::new(),
            pending_preds: Vec::new(),
        }
    }

    /// Appends one workflow submission: one job per DAG node, in node
    /// order, with sources ready at the submit slot.
    pub(crate) fn push_workflow(&mut self, submission: WorkflowSubmission) -> Result<(), SimError> {
        let wf = &submission.workflow;
        let n = wf.len();
        if let Some(actual) = &submission.actual_work {
            if actual.len() != n {
                return Err(SimError::MalformedSubmission {
                    reason: "actual_work length differs from workflow size",
                });
            }
        }
        if let Some(dls) = &submission.job_deadlines {
            if dls.len() != n {
                return Err(SimError::MalformedSubmission {
                    reason: "job_deadlines length differs from workflow size",
                });
            }
        }
        let mut job_ids = Vec::with_capacity(n);
        let mut preds = Vec::with_capacity(n);
        for (node, spec) in wf.jobs().iter().enumerate() {
            let id = JobId::new(self.base_job + self.jobs.len() as u64);
            let actual_work = submission
                .actual_work
                .as_ref()
                .map_or_else(|| spec.work(), |v| v[node]);
            let n_preds = wf.dag().predecessors(node).len();
            self.jobs.push(JobRuntime {
                id,
                class: JobClass::Deadline {
                    workflow: wf.id(),
                    node,
                },
                estimate: spec.clone(),
                actual_work,
                arrival_slot: wf.submit_slot(),
                ready_slot: (n_preds == 0).then_some(wf.submit_slot()),
                done_work: 0,
                completion_slot: None,
                deadline_slot: submission.job_deadlines.as_ref().map(|v| v[node]),
                attempt: 0,
                wasted: 0,
                retry_at: 0,
                shed_slot: None,
                deferred: false,
            });
            job_ids.push(id);
            self.job_nodes
                .push(Some((self.base_workflow + self.workflows.len(), node)));
            preds.push(n_preds);
        }
        self.pending_preds.push(preds);
        self.workflows.push(WorkflowInstance {
            submission,
            job_ids,
        });
        Ok(())
    }

    /// Appends one ad-hoc job, ready at its arrival slot.
    pub(crate) fn push_adhoc(&mut self, adhoc: AdhocSubmission) {
        let id = JobId::new(self.base_job + self.jobs.len() as u64);
        self.jobs.push(JobRuntime {
            id,
            class: JobClass::AdHoc,
            actual_work: adhoc.spec.work(),
            estimate: adhoc.spec,
            arrival_slot: adhoc.arrival_slot,
            ready_slot: Some(adhoc.arrival_slot),
            done_work: 0,
            completion_slot: None,
            deadline_slot: None,
            attempt: 0,
            wasted: 0,
            retry_at: 0,
            shed_slot: None,
            deferred: false,
        });
        self.job_nodes.push(None);
    }
}

impl Engine {
    /// Builds an engine over `workload`, bounding the run at `max_slots`.
    ///
    /// Job ids are assigned densely: workflow jobs first (in submission
    /// order, node order), then ad-hoc jobs in submission order.
    ///
    /// # Errors
    ///
    /// [`SimError::MalformedSubmission`] if a workflow's `actual_work` or
    /// `job_deadlines` vector does not match its node count.
    pub fn new(
        cluster: ClusterConfig,
        workload: SimWorkload,
        max_slots: u64,
    ) -> Result<Self, SimError> {
        let mut table = TableBuilder::new();
        for submission in workload.workflows {
            table.push_workflow(submission)?;
        }
        for adhoc in workload.adhoc {
            table.push_adhoc(adhoc);
        }
        Ok(Self::assemble(cluster, table, max_slots))
    }

    /// Builds an engine from a [`SubmissionLog`]: cancelled submissions
    /// are dropped and job ids are assigned densely in `(arrival slot,
    /// submission sequence)` order — the same order an online session
    /// injects them in, which is what makes a batch replay of a recorded
    /// log byte-identical to the live run.
    ///
    /// # Errors
    ///
    /// [`SimError::MalformedSubmission`] for inconsistent workflow vectors
    /// or a cancel entry that does not resolve to exactly one earlier
    /// submission.
    pub fn from_log(
        cluster: ClusterConfig,
        log: &crate::submission::SubmissionLog,
        max_slots: u64,
    ) -> Result<Self, SimError> {
        let mut table = TableBuilder::new();
        for entry in log.effective()? {
            match entry {
                crate::submission::EffectiveSubmission::Workflow(sub) => {
                    table.push_workflow(sub.clone())?;
                }
                crate::submission::EffectiveSubmission::Adhoc(sub) => {
                    table.push_adhoc(sub.clone());
                }
            }
        }
        Ok(Self::assemble(cluster, table, max_slots))
    }

    /// Finishes construction from a fully-populated job table: seeds the
    /// incremental indices for slot 0 and queues every future state
    /// change on the event heap.
    pub(crate) fn assemble(cluster: ClusterConfig, table: TableBuilder, max_slots: u64) -> Self {
        let TableBuilder {
            jobs,
            workflows,
            job_nodes,
            pending_preds,
            ..
        } = table;
        let by_id: HashMap<JobId, usize> =
            jobs.iter().enumerate().map(|(i, j)| (j.id, i)).collect();
        let mut state = SimState {
            now: 0,
            cluster,
            jobs,
            workflows,
            by_id,
            runnable: Default::default(),
            visible: Default::default(),
            incomplete: 0,
            crash_overlay: Vec::new(),
        };
        // Seed the incremental indices for slot 0 (so views are correct
        // even before `run`) and queue every future state change.
        state.rebuild_indices();
        let mut telemetry = EngineTelemetry::default();
        let mut events = BinaryHeap::new();
        for job in &state.jobs {
            if job.arrival_slot > 0 {
                events.push(Reverse((job.arrival_slot, EV_ARRIVAL, job.id)));
                telemetry.heap_ops += 1;
            }
            if let Some(r) = job.ready_slot {
                if r > 0 {
                    events.push(Reverse((r, EV_READY, job.id)));
                    telemetry.heap_ops += 1;
                }
            }
        }
        Engine {
            state,
            max_slots,
            slot_loads: Vec::new(),
            slot_capacities: Vec::new(),
            timeline: None,
            nodes: None,
            placement_shortfalls: Vec::new(),
            checker: InvariantChecker::new(true),
            telemetry,
            trace: None,
            events,
            job_nodes,
            pending_preds,
            recovery: None,
        }
    }

    /// Enables or disables the extended accounting invariants (see
    /// [`crate::invariants`]). On by default; the scheduler-misbehaviour
    /// checks (capacity, readiness, parallelism) are always enforced
    /// regardless of this flag.
    #[must_use]
    pub fn with_invariants(mut self, extended: bool) -> Self {
        self.checker = InvariantChecker::new(extended);
        self
    }

    /// Read access to the engine's world state (for in-crate tests).
    #[cfg(test)]
    pub(crate) fn state(&self) -> &SimState {
        &self.state
    }

    /// Mutable access to the engine's world state (for in-crate tests that
    /// deliberately corrupt it).
    #[cfg(test)]
    pub(crate) fn state_mut(&mut self) -> &mut SimState {
        &mut self.state
    }

    /// Enables decision-trace recording into a ring buffer bounded at
    /// `capacity` events (see [`crate::trace`]). The returned
    /// [`TraceHandle`] stays valid after the run: call
    /// [`TraceHandle::take`] once the engine finishes to obtain the
    /// recorded [`crate::DecisionTrace`].
    #[must_use]
    pub fn with_trace(mut self, capacity: usize) -> (Self, TraceHandle) {
        let (ctx, handle) = TraceCtx::new(capacity);
        self.trace = Some(ctx);
        (self, handle)
    }

    /// Enables per-allocation recording; the result is returned in
    /// [`SimOutcome::timeline`] and can be rendered with
    /// [`crate::timeline::render_gantt`].
    #[must_use]
    pub fn with_timeline(mut self) -> Self {
        self.timeline = Some(Timeline::default());
        self
    }

    /// Enables node-level placement diagnostics: each slot's allocation is
    /// bin-packed onto `pool` and the unplaceable task count is recorded
    /// in [`SimOutcome::placement_shortfalls`]. Measured, not enforced
    /// (see [`crate::placement`]).
    #[must_use]
    pub fn with_nodes(mut self, pool: NodePool) -> Self {
        self.nodes = Some(pool);
        self
    }

    /// Arms the mid-run failure/recovery subsystem: `setup.faults` drives
    /// deterministic task failures, node-crash windows, and straggler
    /// inflation; `setup.policy` bounds retries and applies graceful
    /// degradation under sustained overload. An inert setup
    /// ([`RecoverySetup::is_inert`]) leaves the run — and its serialized
    /// outcome — byte-identical to one without this call, provided the
    /// workload never trips the infeasibility detector.
    #[must_use]
    pub fn with_recovery(mut self, setup: RecoverySetup) -> Self {
        let mut policy = setup.policy;
        // Sustain < 1 would let the controller shed before ever observing
        // an overloaded slot; clamp like `RecoveryPolicy::with_overload`.
        policy.sustain_slots = policy.sustain_slots.max(1);
        // Same horizon rule as `crate::faults::runtime_fault_horizon`, so
        // the auditor materializes the identical window list offline.
        let horizon = self
            .state
            .workflows
            .iter()
            .map(|w| {
                let wf = &w.submission.workflow;
                wf.submit_slot() + wf.window_slots()
            })
            .chain(
                self.state
                    .jobs
                    .iter()
                    .filter(|j| j.class.is_adhoc())
                    .map(|j| j.arrival_slot + 1),
            )
            .max()
            .unwrap_or(0)
            .max(1);
        let plan = RuntimeFaultPlan::new(setup.faults);
        let windows = plan.crash_windows(self.state.cluster.capacity(), horizon);
        self.state.crash_overlay = windows.clone();
        let flagged = vec![false; self.state.workflows.len()];
        self.recovery = Some(RecoveryCtx {
            plan,
            policy,
            windows,
            next_window: 0,
            overload_streak: 0,
            stats: RecoveryStats::default(),
            flagged,
        });
        self
    }

    /// Runs `scheduler` until every job completes or `max_slots` is
    /// reached. If the horizon runs out first, the outcome is still `Ok`:
    /// the completed portion of the workload lands in the metrics and the
    /// unfinished jobs are drained into [`SimOutcome::in_flight`]
    /// (check [`SimOutcome::is_complete`]).
    ///
    /// # Errors
    ///
    /// Scheduler-misbehaviour errors ([`SimError::CapacityExceeded`],
    /// [`SimError::UnknownJob`], [`SimError::JobNotRunnable`],
    /// [`SimError::ParallelismExceeded`]) and, when extended invariants
    /// are on, [`SimError::InvariantViolation`].
    pub fn run(mut self, scheduler: &mut dyn Scheduler) -> Result<SimOutcome, SimError> {
        let t0 = Instant::now();
        self.begin_trace(scheduler.name());
        loop {
            match self.step(scheduler, false)? {
                StepOutcome::Advanced => {}
                StepOutcome::Complete => {
                    self.telemetry.wall_nanos = t0.elapsed().as_nanos() as u64;
                    return Ok(self.finish(scheduler.telemetry()));
                }
                StepOutcome::HorizonExhausted => break,
            }
        }
        self.telemetry.wall_nanos = t0.elapsed().as_nanos() as u64;
        if self.state.incomplete == 0 {
            self.checker.check_final(&self.state)?;
        }
        // Horizon exhausted with jobs in flight: the exact-conservation
        // final check cannot hold, but every applied slot already passed
        // the per-slot invariants; report the partial outcome and list the
        // unfinished jobs instead of dropping them.
        Ok(self.finish(scheduler.telemetry()))
    }

    /// Writes the trace header and the slot-0 seed events. A no-op when
    /// tracing is off. The online engine calls this lazily at its first
    /// step (once the slot-0 table is final) instead of at construction.
    pub(crate) fn begin_trace(&self, scheduler_name: &str) {
        if let Some(ctx) = &self.trace {
            ctx.buffer().header = TraceHeader {
                scheduler: scheduler_name.to_string(),
                capacity: self.state.cluster.capacity(),
                slot_seconds: self.state.cluster.slot_seconds(),
                max_slots: self.max_slots,
                jobs: self.trace_job_metas(),
                // Pod provenance is stamped after the run by the sharding
                // layer ([`crate::shard`]); the engine itself is pod-blind.
                ..TraceHeader::default()
            };
            // Slot-0 arrivals and readies are seeded directly into the
            // incremental indices (never through the event heap), so they
            // must be recorded here to keep the trace self-contained.
            for j in &self.state.jobs {
                if j.arrival_slot == 0 {
                    ctx.push(TraceEvent::Arrival { slot: 0, job: j.id });
                }
            }
            for j in &self.state.jobs {
                if j.ready_slot == Some(0) {
                    ctx.push(TraceEvent::Ready { slot: 0, job: j.id });
                }
            }
        }
    }

    /// The trace header's job table for the current state (see
    /// [`TraceJobMeta`]). The online engine re-derives this at finish so
    /// the header covers jobs injected after the header was first written.
    pub(crate) fn trace_job_metas(&self) -> Vec<TraceJobMeta> {
        self.state
            .jobs
            .iter()
            .map(|j| TraceJobMeta {
                id: j.id,
                class: j.class,
                arrival_slot: j.arrival_slot,
                actual_work: j.actual_work,
                deadline_slot: j.deadline_slot,
            })
            .collect()
    }

    /// Advances the simulation by exactly one iteration of the run loop:
    /// applies due events, then either observes completion / horizon
    /// exhaustion (no slot simulated) or simulates one slot and advances
    /// virtual time.
    ///
    /// `force_idle` makes the engine simulate an (empty) slot even when
    /// every currently-known job is complete — the online path uses this
    /// to burn gap slots while future-dated submissions are queued, which
    /// is exactly what a batch run does while it waits for a far-future
    /// arrival. Observing [`StepOutcome::Complete`] is idempotent and
    /// resumable: stepping again after injecting more work continues the
    /// run with identical telemetry to a batch run of the merged table.
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::run`].
    pub(crate) fn step(
        &mut self,
        scheduler: &mut dyn Scheduler,
        force_idle: bool,
    ) -> Result<StepOutcome, SimError> {
        if self.state.now >= self.max_slots {
            return Ok(StepOutcome::HorizonExhausted);
        }
        {
            self.advance_events();
            self.telemetry.peak_live_jobs = self
                .telemetry
                .peak_live_jobs
                .max(self.state.visible.len() as u64);
            if self.state.incomplete == 0 && !force_idle {
                self.checker.check_final(&self.state)?;
                return Ok(StepOutcome::Complete);
            }
            self.telemetry.slots_simulated += 1;
            // Node-crash windows opening this slot kill a seeded subset of
            // the running jobs before the scheduler sees the (shrunken)
            // capacity. Notify the scheduler once state is consistent.
            for (id, attempt) in self.process_crash_windows() {
                scheduler.on_failure(&self.state, id, attempt);
            }
            let allocation = scheduler.plan_slot(&self.state);
            let now = self.state.now;

            // Validate: scheduler rules plus (by default) the accounting
            // invariants, all owned by the checker.
            let pairs: Vec<(JobId, u64)> = allocation.iter().collect();
            self.checker.check_slot(&self.state, &pairs)?;
            let used = self.state.allocation_usage(&pairs);
            if let Some(ctx) = &mut self.trace {
                // Replan delta: the scheduler's cumulative counter is
                // polled only when tracing, so the disabled path never
                // pays for telemetry construction.
                if let Some(t) = scheduler.telemetry() {
                    if t.replans > ctx.prev_replans {
                        let replans = t.replans - ctx.prev_replans;
                        ctx.prev_replans = t.replans;
                        ctx.push(TraceEvent::Replan { slot: now, replans });
                    }
                }
                let tag = scheduler.decision_tag();
                if ctx.last_tag != Some(tag) {
                    ctx.last_tag = Some(tag);
                    ctx.push(TraceEvent::PolicyTag {
                        slot: now,
                        tag: tag.to_string(),
                    });
                }
                // A job granted last slot, unfinished, and absent from
                // this slot's (sorted) grants was preempted.
                for &id in &ctx.prev_granted {
                    if pairs.binary_search_by_key(&id, |&(pid, _)| pid).is_err()
                        && !self.state.jobs[self.state.by_id[&id]].is_complete()
                    {
                        ctx.push(TraceEvent::Preempt { slot: now, job: id });
                    }
                }
                for &(id, q) in &pairs {
                    if self.state.jobs[self.state.by_id[&id]].done_work == 0 {
                        ctx.push(TraceEvent::Start { slot: now, job: id });
                    }
                    ctx.push(TraceEvent::Grant {
                        slot: now,
                        job: id,
                        tasks: q,
                    });
                }
                ctx.prev_granted = pairs.iter().map(|&(id, _)| id).collect();
            }

            // Apply: each allocated task performs one task-slot of work.
            self.slot_loads.push(used);
            self.slot_capacities.push(self.state.capacity_now());
            if let Some(tl) = &mut self.timeline {
                for &(id, q) in &pairs {
                    tl.entries.push(TimelineEntry {
                        slot: now,
                        job: id,
                        tasks: q,
                    });
                }
            }
            if let Some(pool) = &self.nodes {
                let requests: Vec<_> = pairs
                    .iter()
                    .map(|&(id, q)| {
                        let shape = self.state.jobs[self.state.by_id[&id]].estimate.per_task();
                        (id, shape, q)
                    })
                    .collect();
                self.placement_shortfalls
                    .push(pool.pack(&requests).unplaced_tasks());
            }
            let mut failed: Vec<(JobId, u32)> = Vec::new();
            for (id, q) in pairs {
                let idx = self.state.by_id[&id];
                // Straggler inflation fires at the job's first-ever grant
                // (attempt 0, no prior progress): the ground truth grows
                // before this slot's work is applied, and at most once —
                // kills bump the attempt counter.
                if let Some(rec) = &mut self.recovery {
                    let job = &mut self.state.jobs[idx];
                    if job.attempt == 0 && job.done_work == 0 {
                        let extra = rec.plan.straggler_extra(id, job.actual_work);
                        if extra > 0 {
                            job.actual_work += extra;
                            rec.stats.stragglers += 1;
                            rec.stats.straggler_extra_work += extra;
                            if let Some(ctx) = &self.trace {
                                ctx.push(TraceEvent::Straggler {
                                    slot: now,
                                    job: id,
                                    extra,
                                });
                            }
                        }
                    }
                }
                self.state.jobs[idx].done_work += q;
                // A seeded task failure takes precedence over completion:
                // the attempt dies the slot its cumulative progress first
                // reaches the failure threshold, even if that grant would
                // have finished the job. The final permitted attempt is
                // exempt, so no job is ever lost to task failures.
                let fails = self.recovery.as_ref().is_some_and(|rec| {
                    let job = &self.state.jobs[idx];
                    job.attempt < rec.policy.max_retries
                        && rec
                            .plan
                            .attempt_failure(id, job.attempt, job.actual_work)
                            .is_some_and(|fail_at| job.done_work >= fail_at)
                });
                if fails {
                    let attempt = self.state.jobs[idx].attempt;
                    self.kill_job(idx, now, false);
                    failed.push((id, attempt + 1));
                    continue;
                }
                let job = &mut self.state.jobs[idx];
                if job.done_work >= job.actual_work && job.completion_slot.is_none() {
                    job.completion_slot = Some(now + 1);
                    let done_work = job.done_work;
                    if let Some(ctx) = &self.trace {
                        // Recorded at `now` (the job finished at the *end*
                        // of this slot; completion_slot = now + 1) so
                        // event slots stay non-decreasing.
                        ctx.push(TraceEvent::Finish {
                            slot: now,
                            job: id,
                            done_work,
                        });
                    }
                    self.on_complete(idx, now);
                }
            }
            for (id, attempt) in failed {
                scheduler.on_failure(&self.state, id, attempt);
            }
            self.update_degradation();
            self.state.now += 1;
        }
        Ok(StepOutcome::Advanced)
    }

    /// Applies every pending event at or before the current slot to the
    /// incremental visible/runnable indices. With recovery armed, ad-hoc
    /// arrivals pass through admission control here: under sustained
    /// overload they are shed or deferred instead of admitted.
    fn advance_events(&mut self) {
        while let Some(&Reverse((slot, kind, id))) = self.events.peek() {
            if slot > self.state.now {
                break;
            }
            self.events.pop();
            self.telemetry.heap_ops += 1;
            self.telemetry.events_processed += 1;
            let idx = self.state.by_id[&id];
            let job = &self.state.jobs[idx];
            if job.is_complete() || job.shed_slot.is_some() {
                continue;
            }
            let key = (job.arrival_slot, id);
            let adhoc = job.class.is_adhoc();
            let deferred = job.deferred;
            let ready_slot = job.ready_slot;
            match kind {
                EV_ARRIVAL => {
                    if adhoc {
                        if let Some(rec) = &mut self.recovery {
                            if rec.overload_streak >= rec.policy.sustain_slots {
                                match rec.policy.shed {
                                    ShedPolicy::Shed => {
                                        self.state.jobs[idx].shed_slot = Some(slot);
                                        self.state.incomplete -= 1;
                                        rec.stats.shed_jobs += 1;
                                        if let Some(ctx) = &self.trace {
                                            ctx.push(TraceEvent::Shed { slot, job: id });
                                        }
                                        continue;
                                    }
                                    ShedPolicy::Delay { slots } if !deferred => {
                                        let until = slot + slots.max(1);
                                        let job = &mut self.state.jobs[idx];
                                        job.deferred = true;
                                        job.ready_slot = Some(until);
                                        self.events.push(Reverse((until, EV_ARRIVAL, id)));
                                        self.events.push(Reverse((until, EV_READY, id)));
                                        self.telemetry.heap_ops += 2;
                                        rec.stats.delayed_jobs += 1;
                                        if let Some(ctx) = &self.trace {
                                            ctx.push(TraceEvent::Defer {
                                                slot,
                                                job: id,
                                                until,
                                            });
                                        }
                                        continue;
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    self.state.visible.insert(key);
                    if let Some(ctx) = &self.trace {
                        ctx.push(TraceEvent::Arrival { slot, job: id });
                    }
                }
                EV_READY => {
                    // A deferred job's original ready event is stale; the
                    // re-queued one fires at the deferred arrival instead.
                    if ready_slot.is_none_or(|r| r > slot) {
                        continue;
                    }
                    self.state.runnable.insert(key);
                    if let Some(ctx) = &self.trace {
                        ctx.push(TraceEvent::Ready { slot, job: id });
                    }
                }
                _ => {
                    // EV_RETRY: the kill's backoff expired; the next
                    // attempt re-enters the runnable set silently (the
                    // Kill event plus the policy already pin this slot).
                    self.state.runnable.insert(key);
                }
            }
        }
    }

    /// Handles node-crash windows opening at the current slot: each
    /// running job (positive progress) with retries left is killed with
    /// probability equal to the crash severity — it was on the capacity
    /// that just vanished. Returns `(job, next attempt)` pairs so the run
    /// loop can notify the scheduler once state is consistent.
    fn process_crash_windows(&mut self) -> Vec<(JobId, u32)> {
        let mut killed = Vec::new();
        let now = self.state.now;
        loop {
            let Some(rec) = &self.recovery else {
                return killed;
            };
            let Some(w) = rec.windows.get(rec.next_window) else {
                return killed;
            };
            if w.from_slot > now {
                return killed;
            }
            let opens_now = w.from_slot == now;
            let w_idx = rec.next_window as u64;
            if opens_now {
                // Job-id order, so Kill events land deterministically.
                for idx in 0..self.state.jobs.len() {
                    let j = &self.state.jobs[idx];
                    if j.done_work == 0 || j.is_complete() || j.shed_slot.is_some() {
                        continue;
                    }
                    let (id, attempt) = (j.id, j.attempt);
                    let rec = self.recovery.as_ref().expect("recovery armed");
                    if attempt < rec.policy.max_retries && rec.plan.crash_kills(w_idx, id) {
                        self.kill_job(idx, now, true);
                        killed.push((id, attempt + 1));
                    }
                }
            }
            self.recovery.as_mut().expect("recovery armed").next_window += 1;
        }
    }

    /// Kills the current attempt of the job at `idx`: its progress is
    /// discarded into `wasted`, the attempt counter bumps, and the job
    /// leaves the runnable set until its deterministic backoff slot, when
    /// an [`EV_RETRY`] event re-admits it. `crash` selects which stats
    /// counter the kill lands in.
    fn kill_job(&mut self, idx: usize, now: u64, crash: bool) {
        let rec = self.recovery.as_mut().expect("kill with recovery armed");
        let job = &mut self.state.jobs[idx];
        let wasted = job.done_work;
        let killed_attempt = job.attempt;
        job.wasted += wasted;
        job.done_work = 0;
        job.attempt += 1;
        let retry_at = now + 1 + rec.policy.backoff_base * job.attempt as u64;
        job.retry_at = retry_at;
        rec.stats.retries += 1;
        rec.stats.wasted_work += wasted;
        if crash {
            rec.stats.crash_kills += 1;
        } else {
            rec.stats.task_failures += 1;
        }
        let key = (job.arrival_slot, job.id);
        let id = job.id;
        self.state.runnable.remove(&key);
        self.events.push(Reverse((retry_at, EV_RETRY, id)));
        self.telemetry.heap_ops += 1;
        if let Some(ctx) = &self.trace {
            ctx.push(TraceEvent::Kill {
                slot: now,
                job: id,
                attempt: killed_attempt,
                wasted,
            });
        }
    }

    /// End-of-slot degradation bookkeeping: the overload detector feeds
    /// the admission controller, and workflows whose remaining ground
    /// truth provably exceeds what the base capacity can deliver before
    /// their deadline are flagged (once each) in the stats. The flags are
    /// observability only — they never change scheduling.
    fn update_degradation(&mut self) {
        let Some(rec) = &mut self.recovery else {
            return;
        };
        let now = self.state.now;
        if rec.policy.shed != ShedPolicy::None {
            let backlog: u64 = self
                .state
                .jobs
                .iter()
                .filter(|j| {
                    j.class.is_adhoc()
                        && j.arrival_slot <= now
                        && j.shed_slot.is_none()
                        && !j.is_complete()
                })
                .map(|j| j.remaining_actual())
                .sum();
            let cores = self.state.capacity_now().dim(0);
            if backlog as f64 > rec.policy.overload_factor * cores as f64 {
                rec.overload_streak += 1;
            } else {
                rec.overload_streak = 0;
            }
        }
        let base_cores = self.state.cluster.capacity().dim(0);
        for (w, inst) in self.state.workflows.iter().enumerate() {
            if rec.flagged[w] || inst.submission.workflow.submit_slot() > now {
                continue;
            }
            let remaining: u64 = inst
                .job_ids
                .iter()
                .map(|id| self.state.jobs[self.state.by_id[id]].remaining_actual())
                .sum();
            let deadline = inst.submission.workflow.deadline_slot();
            // Even granting every core of every remaining slot, the
            // workflow cannot finish by its deadline: provably infeasible.
            if remaining > 0 && remaining > base_cores * deadline.saturating_sub(now + 1) {
                rec.flagged[w] = true;
                rec.stats.infeasible_flags += 1;
            }
        }
    }

    /// Incremental completion bookkeeping: drops the job from the live
    /// indices and releases any workflow dependents whose last pending
    /// predecessor this was. Released jobs become runnable from `now + 1`,
    /// matching the historical end-of-slot release rule.
    fn on_complete(&mut self, idx: usize, now: u64) {
        let key = (self.state.jobs[idx].arrival_slot, self.state.jobs[idx].id);
        self.state.runnable.remove(&key);
        self.state.visible.remove(&key);
        self.state.incomplete -= 1;
        let Some((w, node)) = self.job_nodes[idx] else {
            return;
        };
        let successors: Vec<usize> = self.state.workflows[w]
            .submission
            .workflow
            .dag()
            .successors(node)
            .to_vec();
        for s in successors {
            self.pending_preds[w][s] -= 1;
            if self.pending_preds[w][s] == 0 {
                let sid = self.state.workflows[w].job_ids[s];
                let sidx = self.state.by_id[&sid];
                self.state.jobs[sidx].ready_slot = Some(now + 1);
                self.events.push(Reverse((now + 1, EV_READY, sid)));
                self.telemetry.heap_ops += 1;
            }
        }
    }

    /// Builds the outcome from whatever has completed. Jobs without a
    /// completion slot drain into [`SimOutcome::in_flight`]; workflows
    /// count only once every node finished.
    pub(crate) fn finish(self, solver_telemetry: Option<SolverTelemetry>) -> SimOutcome {
        let slots_elapsed = self.state.now;
        let mut job_outcomes: Vec<JobOutcome> = Vec::new();
        let mut in_flight: Vec<InFlightJob> = Vec::new();
        let mut shed: Vec<ShedJob> = Vec::new();
        for j in &self.state.jobs {
            if let Some(shed_slot) = j.shed_slot {
                // Shed jobs never ran: they are neither completed nor in
                // flight, and never hold a run incomplete.
                shed.push(ShedJob {
                    id: j.id,
                    arrival_slot: j.arrival_slot,
                    shed_slot,
                });
                continue;
            }
            match j.completion_slot {
                Some(completion_slot) => job_outcomes.push(JobOutcome {
                    id: j.id,
                    class: j.class,
                    arrival_slot: j.arrival_slot,
                    ready_slot: j.ready_slot.expect("completed jobs were ready"),
                    completion_slot,
                    deadline_slot: j.deadline_slot,
                    retries: j.attempt as u64,
                    wasted_work: j.wasted,
                }),
                None => in_flight.push(InFlightJob {
                    id: j.id,
                    class: j.class,
                    arrival_slot: j.arrival_slot,
                    ready_slot: j.ready_slot,
                    done_work: j.done_work,
                    remaining_work: j.remaining_actual(),
                    deadline_slot: j.deadline_slot,
                    retries: j.attempt as u64,
                    wasted_work: j.wasted,
                }),
            }
        }
        let workflow_outcomes: Vec<WorkflowOutcome> = self
            .state
            .workflows
            .iter()
            .filter_map(|w| {
                let completion = w
                    .job_ids
                    .iter()
                    .map(|id| self.state.jobs[self.state.by_id[id]].completion_slot)
                    .collect::<Option<Vec<u64>>>()?
                    .into_iter()
                    .max()
                    .expect("workflows are non-empty");
                Some(WorkflowOutcome {
                    id: w.submission.workflow.id(),
                    deadline_slot: w.submission.workflow.deadline_slot(),
                    completion_slot: completion,
                })
            })
            .collect();
        // Deadline-miss attribution: for every fully-completed workflow
        // with decomposed milestones, record which nodes finished past
        // their milestone (i.e. consumed the decomposed slack).
        let deadline_attribution: Vec<MissAttribution> = self
            .state
            .workflows
            .iter()
            .filter_map(|w| {
                let milestones = w.submission.job_deadlines.as_ref()?;
                let completions: Vec<u64> = w
                    .job_ids
                    .iter()
                    .map(|id| self.state.jobs[self.state.by_id[id]].completion_slot)
                    .collect::<Option<Vec<u64>>>()?;
                let culprits: Vec<NodeSlackUse> = completions
                    .iter()
                    .enumerate()
                    .filter_map(|(node, &c)| {
                        let m = milestones[node];
                        (c > m).then(|| NodeSlackUse {
                            job: w.job_ids[node],
                            node: node as u64,
                            milestone_slot: m,
                            completion_slot: c,
                            overrun_slots: c - m,
                        })
                    })
                    .collect();
                Some(MissAttribution {
                    workflow: w.submission.workflow.id(),
                    deadline_slot: w.submission.workflow.deadline_slot(),
                    completion_slot: *completions.iter().max().expect("workflows are non-empty"),
                    total_overrun_slots: culprits.iter().map(|c| c.overrun_slots).sum(),
                    culprits,
                })
            })
            .collect();
        SimOutcome {
            metrics: Metrics {
                jobs: job_outcomes,
                workflows: workflow_outcomes,
                slot_loads: self.slot_loads,
                slot_capacities: self.slot_capacities,
                capacity: self.state.cluster.capacity(),
                slot_seconds: self.state.cluster.slot_seconds(),
            },
            slots_elapsed,
            timeline: self.timeline,
            placement_shortfalls: self.nodes.is_some().then_some(self.placement_shortfalls),
            solver_telemetry,
            engine_telemetry: self.telemetry,
            in_flight,
            deadline_attribution,
            recovery: self.recovery.map(|r| r.stats).unwrap_or_default(),
            shed,
            pod: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AdhocSubmission, WorkflowSubmission};
    use crate::scheduler::Allocation;
    use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};

    /// Greedy FIFO test scheduler.
    struct Greedy;
    impl Scheduler for Greedy {
        fn name(&self) -> &str {
            "greedy"
        }
        fn plan_slot(&mut self, state: &SimState) -> Allocation {
            let mut alloc = Allocation::new();
            let mut free = state.capacity();
            for job in state.runnable_jobs() {
                let fit = job
                    .per_task
                    .times_fitting(&free)
                    .min(job.max_tasks_this_slot);
                if fit > 0 {
                    alloc.assign(job.id, fit);
                    free -= job.per_task * fit;
                }
            }
            alloc
        }
    }

    fn cluster(cores: u64) -> ClusterConfig {
        ClusterConfig::new(ResourceVec::new([cores, cores * 4096]), 10.0)
    }

    fn spec(tasks: u64, dur: u64) -> JobSpec {
        JobSpec::new("j", tasks, dur, ResourceVec::new([1, 4096]))
    }

    fn chain_workflow(submit: u64, deadline: u64) -> WorkflowSubmission {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "chain");
        let a = b.add_job(spec(4, 2));
        let c = b.add_job(spec(4, 2));
        b.add_dep(a, c).unwrap();
        WorkflowSubmission::new(b.window(submit, deadline).build().unwrap())
    }

    #[test]
    fn single_adhoc_job_runs_to_completion() {
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(spec(8, 2), 3));
        let engine = Engine::new(cluster(8), wl, 100).unwrap();
        let out = engine.run(&mut Greedy).unwrap();
        assert_eq!(out.metrics.completed_jobs(), 1);
        assert!(out.is_complete());
        let j = &out.metrics.jobs[0];
        // 16 task-slots of work at up to 8 concurrent tasks: 2 slots.
        assert_eq!(j.arrival_slot, 3);
        assert_eq!(j.completion_slot, 5);
        assert_eq!(j.turnaround_slots(), 2);
    }

    #[test]
    fn workflow_dependencies_gate_execution() {
        let mut wl = SimWorkload::default();
        wl.workflows.push(chain_workflow(0, 100));
        let out = Engine::new(cluster(8), wl, 200)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        let jobs = &out.metrics.jobs;
        // First job: 8 units at 4-wide = 2 slots, completes at slot 2.
        assert_eq!(jobs[0].completion_slot, 2);
        // Second becomes ready at slot 3 (released end of slot 1... the
        // engine releases at completion, runnable the next slot).
        assert!(jobs[1].ready_slot >= jobs[0].completion_slot);
        assert!(jobs[1].completion_slot > jobs[0].completion_slot);
        assert_eq!(out.metrics.workflows.len(), 1);
        assert!(!out.metrics.workflows[0].missed_deadline());
    }

    #[test]
    fn capacity_is_shared_and_enforced() {
        // Two ad-hoc jobs that each want 8 tasks, cluster of 8 cores:
        // greedy serves FIFO, so total never exceeds capacity and the
        // second job is delayed.
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(spec(8, 4), 0));
        wl.adhoc.push(AdhocSubmission::new(spec(8, 4), 0));
        let out = Engine::new(cluster(8), wl, 100)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        for load in &out.metrics.slot_loads {
            assert!(load.fits_within(&ResourceVec::new([8, 8 * 4096])));
        }
        let c0 = out.metrics.jobs[0].completion_slot;
        let c1 = out.metrics.jobs[1].completion_slot;
        assert_eq!(c0.min(c1), 4);
        assert_eq!(c0.max(c1), 8);
    }

    #[test]
    fn overallocation_is_rejected() {
        struct Cheater;
        impl Scheduler for Cheater {
            fn name(&self) -> &str {
                "cheater"
            }
            fn plan_slot(&mut self, state: &SimState) -> Allocation {
                let mut a = Allocation::new();
                for job in state.runnable_jobs() {
                    a.assign(job.id, job.max_tasks_this_slot);
                }
                a
            }
        }
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(spec(8, 4), 0));
        wl.adhoc.push(AdhocSubmission::new(spec(8, 4), 0));
        // Cluster of 8 cores cannot host 16 concurrent tasks.
        let err = Engine::new(cluster(8), wl, 100)
            .unwrap()
            .run(&mut Cheater)
            .unwrap_err();
        assert_eq!(err, SimError::CapacityExceeded { slot: 0 });
    }

    #[test]
    fn allocating_to_gated_job_is_rejected() {
        struct EagerBeaver;
        impl Scheduler for EagerBeaver {
            fn name(&self) -> &str {
                "eager"
            }
            fn plan_slot(&mut self, state: &SimState) -> Allocation {
                // Allocates to *visible* (not necessarily ready) jobs.
                let mut a = Allocation::new();
                for job in state.visible_jobs() {
                    a.assign(job.id, 1);
                }
                a
            }
        }
        let mut wl = SimWorkload::default();
        wl.workflows.push(chain_workflow(0, 100));
        let err = Engine::new(cluster(8), wl, 100)
            .unwrap()
            .run(&mut EagerBeaver)
            .unwrap_err();
        assert!(matches!(err, SimError::JobNotRunnable { .. }));
    }

    #[test]
    fn parallelism_cap_is_enforced() {
        struct Wide;
        impl Scheduler for Wide {
            fn name(&self) -> &str {
                "wide"
            }
            fn plan_slot(&mut self, state: &SimState) -> Allocation {
                let mut a = Allocation::new();
                for job in state.runnable_jobs() {
                    a.assign(job.id, job.max_tasks_this_slot + 1);
                }
                a
            }
        }
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(spec(4, 1), 0));
        let err = Engine::new(cluster(64), wl, 100)
            .unwrap()
            .run(&mut Wide)
            .unwrap_err();
        assert!(matches!(err, SimError::ParallelismExceeded { .. }));
    }

    #[test]
    fn horizon_exhaustion_reported() {
        struct Lazy;
        impl Scheduler for Lazy {
            fn name(&self) -> &str {
                "lazy"
            }
            fn plan_slot(&mut self, _: &SimState) -> Allocation {
                Allocation::new()
            }
        }
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(spec(1, 1), 0));
        let out = Engine::new(cluster(8), wl, 5)
            .unwrap()
            .run(&mut Lazy)
            .unwrap();
        // The job never ran: the run is incomplete but *not* an error, and
        // the untouched job is drained into `in_flight`.
        assert!(!out.is_complete());
        assert_eq!(out.slots_elapsed, 5);
        assert_eq!(out.metrics.completed_jobs(), 0);
        assert_eq!(out.in_flight.len(), 1);
        let j = &out.in_flight[0];
        assert_eq!(j.done_work, 0);
        assert_eq!(j.remaining_work, 1);
    }

    #[test]
    fn horizon_drain_reports_partial_progress() {
        // A 1-wide job with 10 task-slots of work against a 5-slot horizon:
        // half the work lands, and the drained record says exactly that.
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(spec(1, 10), 0));
        wl.workflows.push(chain_workflow(0, 100));
        let out = Engine::new(cluster(8), wl, 5)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        assert!(!out.is_complete());
        // Both workflow jobs finish within 5 slots; the ad-hoc job cannot.
        assert_eq!(out.metrics.completed_jobs(), 2);
        assert_eq!(out.metrics.workflows.len(), 1);
        assert_eq!(out.in_flight.len(), 1);
        let j = &out.in_flight[0];
        assert!(j.class.is_adhoc());
        assert_eq!(j.done_work, 5);
        assert_eq!(j.remaining_work, 5);

        // A workflow cut off mid-DAG is excluded from workflow outcomes.
        let mut wl2 = SimWorkload::default();
        wl2.workflows.push(chain_workflow(0, 100));
        let out2 = Engine::new(cluster(8), wl2, 3)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        assert!(!out2.is_complete());
        assert_eq!(out2.metrics.completed_jobs(), 1);
        assert!(out2.metrics.workflows.is_empty());
        assert_eq!(out2.in_flight.len(), 1);
        assert!(out2.in_flight[0].ready_slot.is_some());
    }

    #[test]
    fn actual_work_overrun_delays_completion() {
        let mut sub = chain_workflow(0, 100);
        // Estimates say 8 task-slots each; reality is 12 for the first job.
        sub.actual_work = Some(vec![12, 8]);
        let mut wl = SimWorkload::default();
        wl.workflows.push(sub);
        let out = Engine::new(cluster(8), wl, 200)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        // 12 units at 4-wide = 3 slots.
        assert_eq!(out.metrics.jobs[0].completion_slot, 3);
    }

    #[test]
    fn malformed_submissions_rejected() {
        let mut sub = chain_workflow(0, 100);
        sub.actual_work = Some(vec![1]);
        let mut wl = SimWorkload::default();
        wl.workflows.push(sub);
        assert!(matches!(
            Engine::new(cluster(8), wl, 100),
            Err(SimError::MalformedSubmission { .. })
        ));
        let mut sub2 = chain_workflow(0, 100);
        sub2.job_deadlines = Some(vec![1, 2, 3]);
        let mut wl2 = SimWorkload::default();
        wl2.workflows.push(sub2);
        assert!(Engine::new(cluster(8), wl2, 100).is_err());
    }

    #[test]
    fn adhoc_size_is_hidden_from_views() {
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(spec(8, 2), 0));
        wl.workflows.push(chain_workflow(0, 100));
        let engine = Engine::new(cluster(8), wl, 100).unwrap();
        let views = engine.state.runnable_jobs();
        for v in views {
            match v.class {
                JobClass::AdHoc => {
                    assert_eq!(v.estimated_remaining, None);
                    assert_eq!(v.estimated_total, None);
                }
                JobClass::Deadline { .. } => {
                    assert!(v.estimated_remaining.is_some());
                }
            }
        }
    }

    #[test]
    fn incremental_views_match_full_rescan_every_slot() {
        // Dependency releases, staggered arrivals, and completions all
        // mutate the incremental indices; a scheduler that re-derives both
        // views from a full scan each slot must always agree with them.
        struct Auditing {
            inner: Greedy,
        }
        impl Scheduler for Auditing {
            fn name(&self) -> &str {
                "auditing"
            }
            fn plan_slot(&mut self, state: &SimState) -> Allocation {
                let now = state.now();
                let visible = state.visible_jobs();
                let runnable: Vec<_> = state.runnable_jobs().iter().map(|v| v.id).collect();
                // The runnable set is exactly the ready subset of the
                // visible set, in the same (arrival, id) order, and every
                // indexed job has arrived.
                let expect: Vec<_> = visible
                    .iter()
                    .filter(|v| v.ready_slot.is_some_and(|r| r <= now))
                    .map(|v| v.id)
                    .collect();
                assert_eq!(runnable, expect);
                let mut keys: Vec<_> = visible.iter().map(|v| (v.arrival_slot, v.id)).collect();
                keys.dedup();
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
                for v in &visible {
                    assert!(v.arrival_slot <= now);
                    assert!(state.job(v.id).is_some());
                }
                self.inner.plan_slot(state)
            }
        }
        let mut wl = SimWorkload::default();
        wl.workflows.push(chain_workflow(0, 100));
        wl.adhoc.push(AdhocSubmission::new(spec(2, 3), 2));
        wl.adhoc.push(AdhocSubmission::new(spec(1, 1), 7));
        let out = Engine::new(cluster(8), wl, 200)
            .unwrap()
            .run(&mut Auditing { inner: Greedy })
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.metrics.completed_jobs(), 4);
    }

    #[test]
    fn job_deadline_milestones_flow_into_metrics() {
        let sub = chain_workflow(0, 100).with_job_deadlines(vec![1, 100]);
        let mut wl = SimWorkload::default();
        wl.workflows.push(sub);
        let out = Engine::new(cluster(8), wl, 200)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        // First job needs 2 slots but milestone was 1: one miss.
        assert_eq!(out.metrics.job_deadline_misses(), 1);
    }

    #[test]
    fn timeline_records_all_allocations() {
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(spec(8, 2), 0));
        let out = Engine::new(cluster(8), wl, 100)
            .unwrap()
            .with_timeline()
            .run(&mut Greedy)
            .unwrap();
        let tl = out.timeline.expect("enabled");
        // Total recorded tasks equal the job's work.
        let id = out.metrics.jobs[0].id;
        assert_eq!(tl.total_for(id), 16);
        let chart = crate::timeline::render_gantt(&tl, Some(&out.metrics), 40);
        assert!(chart.contains("ad-hoc"));
    }

    #[test]
    fn node_placement_diagnostics_record_shortfalls() {
        // 8-core aggregate as 2x4-core nodes; a job with 3-core containers
        // can only place 2 tasks (one per node) though aggregate fits 2.67.
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(
            JobSpec::new("wide", 2, 4, ResourceVec::new([3, 1024])),
            0,
        ));
        let pool = crate::placement::NodePool::new(2, ResourceVec::new([4, 8192]));
        let out = Engine::new(cluster(8), wl, 100)
            .unwrap()
            .with_nodes(pool)
            .run(&mut Greedy)
            .unwrap();
        let shortfalls = out.placement_shortfalls.expect("enabled");
        // Two 3-core tasks fit one per node: no shortfall in this layout.
        assert_eq!(shortfalls.iter().sum::<u64>(), 0);
        assert_eq!(out.metrics.completed_jobs(), 1);
    }

    #[test]
    fn scheduler_telemetry_lands_in_outcome() {
        struct Counting {
            inner: Greedy,
            slots: u64,
        }
        impl Scheduler for Counting {
            fn name(&self) -> &str {
                "counting"
            }
            fn plan_slot(&mut self, state: &SimState) -> Allocation {
                self.slots += 1;
                self.inner.plan_slot(state)
            }
            fn telemetry(&self) -> Option<SolverTelemetry> {
                Some(SolverTelemetry {
                    replans: self.slots,
                    ..SolverTelemetry::default()
                })
            }
        }
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(spec(8, 2), 0));
        let mut sched = Counting {
            inner: Greedy,
            slots: 0,
        };
        let out = Engine::new(cluster(8), wl, 100)
            .unwrap()
            .run(&mut sched)
            .unwrap();
        let telemetry = out.solver_telemetry.expect("scheduler reported Some");
        assert_eq!(telemetry.replans, out.slots_elapsed);

        // Solver-free schedulers report nothing.
        let out2 = Engine::new(cluster(8), SimWorkload::default(), 10)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        assert_eq!(out2.solver_telemetry, None);
    }

    #[test]
    fn engine_telemetry_counts_the_run() {
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(spec(8, 2), 3));
        wl.workflows.push(chain_workflow(0, 100));
        let out = Engine::new(cluster(8), wl, 100)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        let t = &out.engine_telemetry;
        assert_eq!(t.slots_simulated, out.slots_elapsed);
        // Every queued event is eventually consumed: the chain source and
        // its dependent plus the late ad-hoc arrival all flow through.
        assert!(t.events_processed >= 3);
        assert!(t.heap_ops >= t.events_processed);
        // At its peak the chain job and the ad-hoc job are live together.
        assert_eq!(t.peak_live_jobs, 2);

        // The counters are deterministic across runs (wall time is not,
        // but it is excluded from equality).
        let mut wl2 = SimWorkload::default();
        wl2.adhoc.push(AdhocSubmission::new(spec(8, 2), 3));
        wl2.workflows.push(chain_workflow(0, 100));
        let out2 = Engine::new(cluster(8), wl2, 100)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        assert_eq!(out.engine_telemetry, out2.engine_telemetry);
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let out = Engine::new(cluster(8), SimWorkload::default(), 10)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        assert_eq!(out.metrics.completed_jobs(), 0);
        assert_eq!(out.slots_elapsed, 0);
        assert!(out.is_complete());
        assert_eq!(out.engine_telemetry.slots_simulated, 0);
    }
}
