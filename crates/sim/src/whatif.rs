//! Certified counterfactual replay: "what if we had run a different
//! policy?"
//!
//! The decision trace and the offline auditor make runs *replayable*; this
//! module makes them *comparable*. A what-if replays the same scenario
//! under a modified policy (scheduler, shed/retry policy, fault seed, pod
//! count/placer) and produces a two-sided diff in which
//!
//! * **both sides are certified** — [`certified_diff`] refuses to compare
//!   runs the auditor rejects, so a diff row can never be an artifact of a
//!   broken replay;
//! * the diff is **byte-deterministic** — it is computed from certified
//!   artifacts only, so serializing it twice (or computing it from runs
//!   produced on different thread counts) yields identical bytes;
//! * every changed outcome row **links back to the first diverging trace
//!   event** for its job ([`DiffRow::diverged`]), and the diff as a whole
//!   records the first global divergence ([`WhatIfDiff::first_divergence`]).
//!
//! An *identical-policy* what-if is the harness's self-test: it must
//! produce an empty diff ([`WhatIfDiff::identical`] = true, no rows, no
//! divergence) — anything else means the replay itself is not
//! deterministic.
//!
//! Sharded comparisons ([`certified_sharded_diff`]) diff at workflow
//! granularity: workflow ids are global and survive re-placement, while
//! per-pod job ids are pod-local dense indices that do not correspond
//! across different pod counts. Event divergence is only computed when
//! both sides used the same shard spec (pods then align pairwise).

use std::collections::BTreeMap;

use flowtime_dag::{JobId, WorkflowId};
use serde::{Deserialize, Serialize};

use crate::audit::{certify_sharded, certify_with_recovery, AuditReport};
use crate::cluster::ClusterConfig;
use crate::engine::{Engine, SimOutcome};
use crate::error::SimError;
use crate::faults::RecoverySetup;
use crate::job::SimWorkload;
use crate::scheduler::Scheduler;
use crate::shard::{ShardSpec, ShardedOutcome};
use crate::trace::{DecisionTrace, TraceEvent};

/// The artifacts of one policy run: the certified outcome plus the full
/// decision trace it is certified against.
///
/// Not serializable as a unit: traces persist via
/// [`DecisionTrace::write_jsonl`], outcomes as JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifacts {
    /// The run's outcome.
    pub outcome: SimOutcome,
    /// The run's decision trace.
    pub trace: DecisionTrace,
}

/// The artifacts of one sharded policy run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRunArtifacts {
    /// The sharded outcome (placement + per-pod outcomes).
    pub outcome: ShardedOutcome,
    /// Per-pod decision traces, in pod order.
    pub traces: Vec<DecisionTrace>,
}

/// Replays `workload` under `scheduler`, recording a full trace: the
/// standard way to produce one side of a what-if.
pub fn run_policy(
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    max_slots: u64,
    trace_capacity: usize,
    recovery: Option<&RecoverySetup>,
    scheduler: &mut dyn Scheduler,
) -> Result<RunArtifacts, SimError> {
    let mut engine = Engine::new(cluster.clone(), workload.clone(), max_slots)?;
    if let Some(setup) = recovery {
        engine = engine.with_recovery(setup.clone());
    }
    let (engine, handle) = engine.with_trace(trace_capacity);
    let outcome = engine.run(scheduler)?;
    Ok(RunArtifacts {
        outcome,
        trace: handle.take(),
    })
}

/// How one job ended under one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobFate {
    /// Completion slot; `None` if the job never finished (in flight at the
    /// horizon, or shed).
    pub completion_slot: Option<u64>,
    /// Milestone deadline, if tracked.
    pub deadline_slot: Option<u64>,
    /// True when the job finished past a tracked milestone.
    pub missed_deadline: bool,
    /// Attempts killed by mid-run faults.
    #[serde(default, skip_serializing_if = "crate::serde_skip::zero_u64")]
    pub retries: u64,
    /// True when admission control dropped the job.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub shed: bool,
    /// True when the job was still in flight at the slot horizon.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub in_flight: bool,
}

impl JobFate {
    fn absent() -> Self {
        JobFate {
            completion_slot: None,
            deadline_slot: None,
            missed_deadline: false,
            retries: 0,
            shed: false,
            in_flight: false,
        }
    }
}

/// The first trace event on which two replays disagree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Divergence {
    /// Pod the divergence was found on (sharded diffs only).
    #[serde(default, skip_serializing_if = "crate::serde_skip::zero_u64")]
    pub pod: u64,
    /// Position in the compared event sequence (global for
    /// [`WhatIfDiff::first_divergence`], job-filtered for
    /// [`DiffRow::diverged`]).
    pub index: u64,
    /// Slot of the diverging event (the earlier of the two sides when
    /// both exist).
    pub slot: u64,
    /// The base side's event, rendered as compact JSON; `None` when the
    /// base sequence ended first.
    pub base_event: Option<String>,
    /// The alt side's event; `None` when the alt sequence ended first.
    pub alt_event: Option<String>,
}

/// One job whose fate changed between the two policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffRow {
    /// Job id (the scenario's job table is shared by both sides).
    pub job: JobId,
    /// The job's fate under the base policy.
    pub base: JobFate,
    /// The job's fate under the alt policy.
    pub alt: JobFate,
    /// The first event in the job's own event sequence where the two
    /// replays disagree; `None` when the job's events are identical (its
    /// fate changed only through global contention, e.g. a shed that
    /// produced no events on one side).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub diverged: Option<Divergence>,
}

/// One workflow whose deadline fate changed between the two policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowDiffRow {
    /// Workflow id (global, survives re-placement).
    pub workflow: WorkflowId,
    /// Workflow deadline `wd`.
    pub deadline_slot: u64,
    /// Completion under the base policy; `None` if unfinished.
    pub base_completion: Option<u64>,
    /// Completion under the alt policy; `None` if unfinished.
    pub alt_completion: Option<u64>,
    /// Missed under the base policy.
    pub base_missed: bool,
    /// Missed under the alt policy.
    pub alt_missed: bool,
}

/// Aggregate comparison of the two sides.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiffSummary {
    /// Jobs whose fate changed.
    pub changed_jobs: u64,
    /// Workflows whose deadline fate changed.
    pub changed_workflows: u64,
    /// Per-job milestone misses under the base policy.
    pub base_job_misses: u64,
    /// Per-job milestone misses under the alt policy.
    pub alt_job_misses: u64,
    /// Workflow deadline misses under the base policy.
    pub base_workflow_misses: u64,
    /// Workflow deadline misses under the alt policy.
    pub alt_workflow_misses: u64,
    /// Makespan under the base policy.
    pub base_slots_elapsed: u64,
    /// Makespan under the alt policy.
    pub alt_slots_elapsed: u64,
    /// Total attributed milestone overrun under the base policy.
    pub base_overrun_slots: u64,
    /// Total attributed milestone overrun under the alt policy.
    pub alt_overrun_slots: u64,
}

/// A certified two-sided policy diff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIfDiff {
    /// Base-side policy label (scheduler name, plus the shard spec for
    /// sharded diffs).
    pub base_policy: String,
    /// Alt-side policy label.
    pub alt_policy: String,
    /// True when the two replays are indistinguishable: no changed rows
    /// and no event divergence. An identical-policy what-if must report
    /// `true` — that is the harness's own determinism check.
    pub identical: bool,
    /// The first event on which the two replays disagree, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub first_divergence: Option<Divergence>,
    /// Jobs whose fate changed, in job-id order. Empty for sharded diffs
    /// (per-pod job ids do not correspond across pod counts).
    #[serde(default, skip_serializing_if = "crate::serde_skip::empty_vec")]
    pub jobs: Vec<DiffRow>,
    /// Workflows whose deadline fate changed, in workflow-id order.
    #[serde(default, skip_serializing_if = "crate::serde_skip::empty_vec")]
    pub workflows: Vec<WorkflowDiffRow>,
    /// Aggregate comparison.
    pub summary: DiffSummary,
}

/// Why a what-if comparison was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum WhatIfError {
    /// One side failed certification.
    Uncertified {
        /// Which side (`"base"` or `"alt"`).
        side: &'static str,
        /// The auditor's one-line summary.
        summary: String,
        /// Every violation, rendered `code: detail`.
        violations: Vec<String>,
    },
}

impl std::fmt::Display for WhatIfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WhatIfError::Uncertified { side, summary, .. } => {
                write!(f, "{side} side is not certified: {summary}")
            }
        }
    }
}

impl std::error::Error for WhatIfError {}

fn ensure_certified(side: &'static str, report: &AuditReport) -> Result<(), WhatIfError> {
    if report.is_certified() {
        return Ok(());
    }
    Err(WhatIfError::Uncertified {
        side,
        summary: report.summary(),
        violations: report
            .violations
            .iter()
            .map(|v| format!("{}: {}", v.code, v.detail))
            .collect(),
    })
}

/// Certifies both sides against the shared scenario, then diffs them.
///
/// Each side's `recovery` must be the setup *that side's* engine was
/// armed with — a what-if may change the retry/shed policy or fault seed
/// between sides, so they are passed independently.
pub fn certified_diff(
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    base: &RunArtifacts,
    base_recovery: Option<&RecoverySetup>,
    alt: &RunArtifacts,
    alt_recovery: Option<&RecoverySetup>,
) -> Result<WhatIfDiff, WhatIfError> {
    let base_report =
        certify_with_recovery(cluster, workload, &base.outcome, &base.trace, base_recovery);
    ensure_certified("base", &base_report)?;
    let alt_report =
        certify_with_recovery(cluster, workload, &alt.outcome, &alt.trace, alt_recovery);
    ensure_certified("alt", &alt_report)?;
    Ok(diff_runs(base, alt))
}

/// Diffs two replays of the same scenario **without** certifying them.
///
/// This is the pure diff kernel behind [`certified_diff`], exposed so
/// harnesses can verify the detector itself: corrupt one side and the
/// diff must flag the exact divergence.
pub fn diff_runs(base: &RunArtifacts, alt: &RunArtifacts) -> WhatIfDiff {
    let base_fates = job_fates(&base.outcome);
    let alt_fates = job_fates(&alt.outcome);

    let mut jobs = Vec::new();
    let mut keys: Vec<JobId> = base_fates.keys().chain(alt_fates.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    for job in keys {
        let b = base_fates
            .get(&job)
            .cloned()
            .unwrap_or_else(JobFate::absent);
        let a = alt_fates.get(&job).cloned().unwrap_or_else(JobFate::absent);
        if b != a {
            let diverged = first_divergence_for(&base.trace, &alt.trace, Some(job));
            jobs.push(DiffRow {
                job,
                base: b,
                alt: a,
                diverged,
            });
        }
    }

    let workflows = workflow_rows(
        &workflow_fates(std::slice::from_ref(&base.outcome)),
        &workflow_fates(std::slice::from_ref(&alt.outcome)),
    );
    let first_divergence = first_divergence_for(&base.trace, &alt.trace, None);
    let summary = summarize(
        std::slice::from_ref(&base.outcome),
        std::slice::from_ref(&alt.outcome),
        jobs.len() as u64,
        workflows.len() as u64,
    );
    let identical = jobs.is_empty() && workflows.is_empty() && first_divergence.is_none();
    WhatIfDiff {
        base_policy: base.trace.header.scheduler.clone(),
        alt_policy: alt.trace.header.scheduler.clone(),
        identical,
        first_divergence,
        jobs,
        workflows,
        summary,
    }
}

/// Certifies both sharded sides ([`certify_sharded`]) against the shared
/// scenario, then diffs them at workflow granularity.
#[allow(clippy::too_many_arguments)]
pub fn certified_sharded_diff(
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    base: &ShardedRunArtifacts,
    base_spec: &ShardSpec,
    base_recovery: Option<&RecoverySetup>,
    alt: &ShardedRunArtifacts,
    alt_spec: &ShardSpec,
    alt_recovery: Option<&RecoverySetup>,
) -> Result<WhatIfDiff, WhatIfError> {
    let base_report = certify_sharded(
        cluster,
        workload,
        base_spec,
        &base.outcome,
        &base.traces,
        base_recovery,
    );
    ensure_certified("base", &base_report)?;
    let alt_report = certify_sharded(
        cluster,
        workload,
        alt_spec,
        &alt.outcome,
        &alt.traces,
        alt_recovery,
    );
    ensure_certified("alt", &alt_report)?;

    let workflows = workflow_rows(
        &workflow_fates(&base.outcome.pods),
        &workflow_fates(&alt.outcome.pods),
    );
    // Pods only align pairwise when both sides used the same spec; with
    // different pod counts or placers the event streams are incomparable.
    let first_divergence = if base_spec == alt_spec {
        base.traces
            .iter()
            .zip(alt.traces.iter())
            .enumerate()
            .find_map(|(pod, (bt, at))| {
                first_divergence_for(bt, at, None).map(|mut d| {
                    d.pod = pod as u64;
                    d
                })
            })
    } else {
        None
    };
    let summary = summarize(
        &base.outcome.pods,
        &alt.outcome.pods,
        0,
        workflows.len() as u64,
    );
    let identical = workflows.is_empty()
        && first_divergence.is_none()
        && summary.base_job_misses == summary.alt_job_misses
        && summary.base_slots_elapsed == summary.alt_slots_elapsed
        && summary.base_overrun_slots == summary.alt_overrun_slots;
    let label = |spec: &ShardSpec, traces: &[DecisionTrace]| {
        let scheduler = traces
            .first()
            .map(|t| t.header.scheduler.as_str())
            .unwrap_or("?");
        format!(
            "{scheduler} [pods={} placer={}]",
            spec.pods,
            spec.placer.name()
        )
    };
    Ok(WhatIfDiff {
        base_policy: label(base_spec, &base.traces),
        alt_policy: label(alt_spec, &alt.traces),
        identical,
        first_divergence,
        jobs: Vec::new(),
        workflows,
        summary,
    })
}

fn job_fates(outcome: &SimOutcome) -> BTreeMap<JobId, JobFate> {
    let mut fates = BTreeMap::new();
    for j in &outcome.metrics.jobs {
        fates.insert(
            j.id,
            JobFate {
                completion_slot: Some(j.completion_slot),
                deadline_slot: j.deadline_slot,
                missed_deadline: j.deadline_delta().is_some_and(|d| d > 0),
                retries: j.retries,
                shed: false,
                in_flight: false,
            },
        );
    }
    for j in &outcome.in_flight {
        fates.insert(
            j.id,
            JobFate {
                completion_slot: None,
                deadline_slot: j.deadline_slot,
                missed_deadline: false,
                retries: j.retries,
                shed: false,
                in_flight: true,
            },
        );
    }
    for j in &outcome.shed {
        fates.insert(
            j.id,
            JobFate {
                completion_slot: None,
                deadline_slot: None,
                missed_deadline: false,
                retries: 0,
                shed: true,
                in_flight: false,
            },
        );
    }
    fates
}

fn workflow_fates(pods: &[SimOutcome]) -> BTreeMap<WorkflowId, (u64, Option<u64>)> {
    let mut fates = BTreeMap::new();
    for outcome in pods {
        for wf in &outcome.metrics.workflows {
            fates.insert(wf.id, (wf.deadline_slot, Some(wf.completion_slot)));
        }
    }
    fates
}

fn workflow_rows(
    base: &BTreeMap<WorkflowId, (u64, Option<u64>)>,
    alt: &BTreeMap<WorkflowId, (u64, Option<u64>)>,
) -> Vec<WorkflowDiffRow> {
    let mut keys: Vec<WorkflowId> = base.keys().chain(alt.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    let mut rows = Vec::new();
    for wf in keys {
        let (_, bc) = base.get(&wf).copied().unwrap_or((0, None));
        let (_, ac) = alt.get(&wf).copied().unwrap_or((0, None));
        let deadline = base
            .get(&wf)
            .or_else(|| alt.get(&wf))
            .map(|&(d, _)| d)
            .unwrap_or(0);
        let base_missed = bc.is_some_and(|c| c > deadline);
        let alt_missed = ac.is_some_and(|c| c > deadline);
        if bc != ac || base_missed != alt_missed {
            rows.push(WorkflowDiffRow {
                workflow: wf,
                deadline_slot: deadline,
                base_completion: bc,
                alt_completion: ac,
                base_missed,
                alt_missed,
            });
        }
    }
    rows
}

fn summarize(
    base: &[SimOutcome],
    alt: &[SimOutcome],
    changed_jobs: u64,
    changed_workflows: u64,
) -> DiffSummary {
    let misses = |pods: &[SimOutcome]| -> (u64, u64, u64, u64) {
        let job: usize = pods.iter().map(|o| o.metrics.job_deadline_misses()).sum();
        let wf: usize = pods
            .iter()
            .map(|o| o.metrics.workflow_deadline_misses())
            .sum();
        let slots = pods.iter().map(|o| o.slots_elapsed).max().unwrap_or(0);
        let overrun: u64 = pods
            .iter()
            .flat_map(|o| &o.deadline_attribution)
            .map(|a| a.total_overrun_slots)
            .sum();
        (job as u64, wf as u64, slots, overrun)
    };
    let (bj, bw, bs, bo) = misses(base);
    let (aj, aw, asl, ao) = misses(alt);
    DiffSummary {
        changed_jobs,
        changed_workflows,
        base_job_misses: bj,
        alt_job_misses: aj,
        base_workflow_misses: bw,
        alt_workflow_misses: aw,
        base_slots_elapsed: bs,
        alt_slots_elapsed: asl,
        base_overrun_slots: bo,
        alt_overrun_slots: ao,
    }
}

/// First position at which the two traces' event sequences disagree,
/// optionally restricted to one job's events.
fn first_divergence_for(
    base: &DecisionTrace,
    alt: &DecisionTrace,
    job: Option<JobId>,
) -> Option<Divergence> {
    let keep = |ev: &&TraceEvent| match job {
        Some(id) => ev.job() == Some(id),
        None => true,
    };
    let mut b = base.events().filter(keep);
    let mut a = alt.events().filter(keep);
    let mut index = 0u64;
    loop {
        match (b.next(), a.next()) {
            (None, None) => return None,
            (be, ae) => {
                if be != ae {
                    let slot = match (be, ae) {
                        (Some(x), Some(y)) => x.slot().min(y.slot()),
                        (Some(x), None) => x.slot(),
                        (None, Some(y)) => y.slot(),
                        (None, None) => unreachable!(),
                    };
                    let render = |ev: Option<&TraceEvent>| {
                        ev.map(|e| serde_json::to_string(e).expect("trace events serialize"))
                    };
                    return Some(Divergence {
                        pod: 0,
                        index,
                        slot,
                        base_event: render(be),
                        alt_event: render(ae),
                    });
                }
                index += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Allocation;
    use crate::state::SimState;
    use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder};

    struct Greedy;
    impl Scheduler for Greedy {
        fn name(&self) -> &'static str {
            "greedy"
        }
        fn plan_slot(&mut self, state: &SimState) -> Allocation {
            let mut alloc = Allocation::new();
            let mut free = state.capacity();
            for job in state.runnable_jobs() {
                let fit = job
                    .per_task
                    .times_fitting(&free)
                    .min(job.max_tasks_this_slot);
                if fit > 0 {
                    alloc.assign(job.id, fit);
                    free -= job.per_task * fit;
                }
            }
            alloc
        }
    }

    /// Grants one task per runnable job per slot: deliberately slow, so
    /// its replay diverges from Greedy's on the very first planned slot.
    struct Trickle;
    impl Scheduler for Trickle {
        fn name(&self) -> &'static str {
            "trickle"
        }
        fn plan_slot(&mut self, state: &SimState) -> Allocation {
            let mut alloc = Allocation::new();
            let mut free = state.capacity();
            for job in state.runnable_jobs() {
                if job.per_task.times_fitting(&free) > 0 && job.max_tasks_this_slot > 0 {
                    alloc.assign(job.id, 1);
                    free -= job.per_task * 1;
                }
            }
            alloc
        }
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::new(ResourceVec::new([8, 65_536]), 10.0)
    }

    fn workload() -> SimWorkload {
        let mut b = WorkflowBuilder::new(flowtime_dag::WorkflowId::new(1), "wf");
        let spec = |n: &str| JobSpec::new(n, 8, 2, ResourceVec::new([1, 1024]));
        let x = b.add_job(spec("a"));
        let y = b.add_job(spec("b"));
        b.add_dep(x, y).unwrap();
        let wf = b.window(0, 3).build().unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows
            .push(crate::job::WorkflowSubmission::new(wf).with_job_deadlines(vec![1, 3]));
        wl.adhoc.push(crate::job::AdhocSubmission::new(
            JobSpec::new("adhoc", 4, 2, ResourceVec::new([1, 512])),
            0,
        ));
        wl
    }

    #[test]
    fn identical_policy_is_a_no_op_diff() {
        let wl = workload();
        let base = run_policy(&cluster(), &wl, 300, 4096, None, &mut Greedy).unwrap();
        let alt = run_policy(&cluster(), &wl, 300, 4096, None, &mut Greedy).unwrap();
        let diff = certified_diff(&cluster(), &wl, &base, None, &alt, None).unwrap();
        assert!(diff.identical, "identical policies must no-op: {diff:?}");
        assert!(diff.jobs.is_empty());
        assert!(diff.workflows.is_empty());
        assert!(diff.first_divergence.is_none());
        let again = certified_diff(&cluster(), &wl, &base, None, &alt, None).unwrap();
        assert_eq!(
            serde_json::to_string(&diff).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn cross_scheduler_diff_links_divergence() {
        let wl = workload();
        let base = run_policy(&cluster(), &wl, 300, 4096, None, &mut Greedy).unwrap();
        let alt = run_policy(&cluster(), &wl, 300, 4096, None, &mut Trickle).unwrap();
        let diff = certified_diff(&cluster(), &wl, &base, None, &alt, None).unwrap();
        assert!(!diff.identical);
        assert_eq!(diff.base_policy, "greedy");
        assert_eq!(diff.alt_policy, "trickle");
        assert!(diff.first_divergence.is_some());
        assert!(!diff.jobs.is_empty());
        for row in &diff.jobs {
            let d = row
                .diverged
                .as_ref()
                .expect("changed fate implies event divergence here");
            assert!(d.base_event.is_some() || d.alt_event.is_some());
        }
    }

    #[test]
    fn corrupted_side_is_refused_but_pure_diff_flags_it() {
        let wl = workload();
        let base = run_policy(&cluster(), &wl, 300, 4096, None, &mut Greedy).unwrap();
        let mut alt = base.clone();
        // Corrupt one Finish event in the replayed alt trace.
        let pos = alt
            .trace
            .events()
            .position(|e| matches!(e, TraceEvent::Finish { .. }))
            .unwrap();
        let (slot, expected_index) = {
            let ev = &alt.trace.events_mut()[pos];
            (ev.slot(), pos as u64)
        };
        if let TraceEvent::Finish { done_work, .. } = &mut alt.trace.events_mut()[pos] {
            *done_work += 1;
        }
        let err = certified_diff(&cluster(), &wl, &base, None, &alt, None).unwrap_err();
        assert!(matches!(err, WhatIfError::Uncertified { side: "alt", .. }));
        let diff = diff_runs(&base, &alt);
        let d = diff.first_divergence.expect("corruption must be flagged");
        assert_eq!(d.index, expected_index);
        assert_eq!(d.slot, slot);
    }

    #[test]
    fn sharded_identical_spec_diff_is_empty() {
        let wl = workload();
        let spec = ShardSpec::new(2);
        let run = |threads: usize| {
            let (outcome, traces) = crate::shard::run_sharded_traced(
                &cluster(),
                &wl,
                &spec,
                300,
                threads,
                None,
                4096,
                |_, _| Box::new(Greedy),
            )
            .unwrap();
            ShardedRunArtifacts { outcome, traces }
        };
        let base = run(1);
        let alt = run(2);
        let diff =
            certified_sharded_diff(&cluster(), &wl, &base, &spec, None, &alt, &spec, None).unwrap();
        assert!(diff.identical, "same spec, same scheduler: {diff:?}");
        assert!(diff.first_divergence.is_none());
    }
}
