//! Experiment metrics.
//!
//! Mirrors the paper's evaluation metrics (Section VII-A): the number of
//! jobs/workflows that meet their deadlines, the signed completion-minus-
//! deadline deltas (Fig. 4(a)/5(a)), and the average turnaround time of
//! ad-hoc jobs (Fig. 4(c)/5(c)).

use crate::job::JobClass;
use flowtime_dag::{JobId, ResourceVec, WorkflowId};
use serde::{Deserialize, Serialize};

/// Final record of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Job id.
    pub id: JobId,
    /// Workload class.
    pub class: JobClass,
    /// Submission slot.
    pub arrival_slot: u64,
    /// Slot dependencies were satisfied.
    pub ready_slot: u64,
    /// Completion slot (exclusive: the job finished at the end of
    /// `completion_slot - 1`).
    pub completion_slot: u64,
    /// Milestone deadline, if tracked.
    pub deadline_slot: Option<u64>,
    /// Attempts killed by mid-run faults before the job completed.
    #[serde(default, skip_serializing_if = "crate::serde_skip::zero_u64")]
    pub retries: u64,
    /// Task-slots of work discarded by those killed attempts.
    #[serde(default, skip_serializing_if = "crate::serde_skip::zero_u64")]
    pub wasted_work: u64,
}

impl JobOutcome {
    /// Turnaround in slots: completion minus submission.
    pub fn turnaround_slots(&self) -> u64 {
        self.completion_slot - self.arrival_slot
    }

    /// Signed completion-minus-deadline delta in slots, if a milestone is
    /// tracked (negative = early).
    pub fn deadline_delta(&self) -> Option<i64> {
        self.deadline_slot
            .map(|d| self.completion_slot as i64 - d as i64)
    }

    /// True if the job had a milestone and missed it.
    pub fn missed_deadline(&self) -> bool {
        self.deadline_delta().is_some_and(|d| d > 0)
    }
}

/// Snapshot of a job still unfinished when the slot horizon ran out.
///
/// Reported in [`crate::SimOutcome::in_flight`] so exhausted runs surface
/// exactly what was dropped rather than erroring the whole simulation away.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InFlightJob {
    /// Job id.
    pub id: JobId,
    /// Workload class.
    pub class: JobClass,
    /// Submission slot.
    pub arrival_slot: u64,
    /// Slot dependencies were satisfied; `None` if still gated.
    pub ready_slot: Option<u64>,
    /// Work completed before the horizon, in task-slots.
    pub done_work: u64,
    /// Ground-truth work still outstanding, in task-slots.
    pub remaining_work: u64,
    /// Milestone deadline, if tracked.
    pub deadline_slot: Option<u64>,
    /// Attempts killed by mid-run faults so far.
    #[serde(default, skip_serializing_if = "crate::serde_skip::zero_u64")]
    pub retries: u64,
    /// Task-slots of work discarded by those killed attempts.
    #[serde(default, skip_serializing_if = "crate::serde_skip::zero_u64")]
    pub wasted_work: u64,
}

/// An ad-hoc job dropped by admission control under sustained overload —
/// it never ran and is excluded from job metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShedJob {
    /// Job id.
    pub id: JobId,
    /// Original submission slot.
    pub arrival_slot: u64,
    /// Slot the admission controller dropped it.
    pub shed_slot: u64,
}

/// Per-run rollup of mid-run failure and recovery activity. All-zero (the
/// [`Default`]) on runs without a recovery setup; serialization skips the
/// struct entirely in that case so outcomes stay byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Attempts killed by seed-derived task failures.
    pub task_failures: u64,
    /// Attempts killed because a node-crash window caught them in flight.
    pub crash_kills: u64,
    /// Total retries scheduled (equals `task_failures + crash_kills`).
    pub retries: u64,
    /// Task-slots of work discarded across all killed attempts.
    pub wasted_work: u64,
    /// Jobs whose ground truth was inflated by straggler injection.
    pub stragglers: u64,
    /// Total extra task-slots added by straggler inflation.
    pub straggler_extra_work: u64,
    /// Ad-hoc jobs dropped by admission control.
    pub shed_jobs: u64,
    /// Ad-hoc jobs deferred by admission control.
    pub delayed_jobs: u64,
    /// Workflows flagged mid-run because their remaining work provably
    /// exceeded what full capacity could deliver before the deadline.
    pub infeasible_flags: u64,
}

impl RecoveryStats {
    /// True when nothing fired — the serialized outcome omits the field.
    pub fn is_inert(&self) -> bool {
        *self == RecoveryStats::default()
    }

    /// Adds another run's counters into this one (sweep rollups).
    pub fn accumulate(&mut self, other: &RecoveryStats) {
        self.task_failures += other.task_failures;
        self.crash_kills += other.crash_kills;
        self.retries += other.retries;
        self.wasted_work += other.wasted_work;
        self.stragglers += other.stragglers;
        self.straggler_extra_work += other.straggler_extra_work;
        self.shed_jobs += other.shed_jobs;
        self.delayed_jobs += other.delayed_jobs;
        self.infeasible_flags += other.infeasible_flags;
    }
}

/// Final record of one workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowOutcome {
    /// Workflow id.
    pub id: WorkflowId,
    /// Workflow deadline `wd`.
    pub deadline_slot: u64,
    /// Completion slot of the last constituent job.
    pub completion_slot: u64,
}

impl WorkflowOutcome {
    /// True if the workflow finished after its deadline.
    pub fn missed_deadline(&self) -> bool {
        self.completion_slot > self.deadline_slot
    }
}

/// One node's contribution to a workflow deadline miss: the node finished
/// after its decomposed milestone, consuming slack the decomposition had
/// reserved for its successors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSlackUse {
    /// The job backing this DAG node.
    pub job: JobId,
    /// DAG node index within the workflow.
    pub node: u64,
    /// The decomposed per-job milestone the node was budgeted.
    pub milestone_slot: u64,
    /// When the node actually completed.
    pub completion_slot: u64,
    /// Slots past the milestone (`completion - milestone`).
    pub overrun_slots: u64,
}

/// Deadline-miss attribution for one workflow with decomposed per-job
/// milestones: which node set consumed the decomposed slack.
///
/// Emitted for every fully-completed workflow that carries
/// `job_deadlines`, whether or not the workflow deadline was missed, so
/// near-misses are visible too; [`Self::missed`] distinguishes the two.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissAttribution {
    /// Workflow id.
    pub workflow: WorkflowId,
    /// The workflow deadline `wd`.
    pub deadline_slot: u64,
    /// Completion slot of the last constituent job.
    pub completion_slot: u64,
    /// Total milestone overrun across all culprit nodes, in slots.
    pub total_overrun_slots: u64,
    /// Every node that finished past its milestone, in node order.
    pub culprits: Vec<NodeSlackUse>,
}

impl MissAttribution {
    /// True if the workflow finished after its deadline.
    pub fn missed(&self) -> bool {
        self.completion_slot > self.deadline_slot
    }

    /// The node with the largest milestone overrun (ties broken toward the
    /// earlier node), if any node overran at all.
    pub fn top_culprit(&self) -> Option<&NodeSlackUse> {
        self.culprits
            .iter()
            .max_by_key(|c| (c.overrun_slots, std::cmp::Reverse(c.node)))
    }
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Per-job outcomes.
    pub jobs: Vec<JobOutcome>,
    /// Per-workflow outcomes.
    pub workflows: Vec<WorkflowOutcome>,
    /// Resource usage per simulated slot.
    pub slot_loads: Vec<ResourceVec>,
    /// Capacity in force per simulated slot (tracks time-varying windows).
    pub slot_capacities: Vec<ResourceVec>,
    /// Base cluster capacity.
    pub capacity: ResourceVec,
    /// Slot duration in seconds (for wall-clock conversions).
    pub slot_seconds: f64,
}

impl Metrics {
    /// Number of completed jobs. On a horizon-exhausted run only the jobs
    /// that did finish appear here; the rest are listed in
    /// [`crate::SimOutcome::in_flight`].
    pub fn completed_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Outcomes of deadline-class jobs with tracked milestones.
    pub fn deadline_jobs(&self) -> impl Iterator<Item = &JobOutcome> {
        self.jobs.iter().filter(|j| j.deadline_slot.is_some())
    }

    /// Outcomes of ad-hoc jobs.
    pub fn adhoc_jobs(&self) -> impl Iterator<Item = &JobOutcome> {
        self.jobs.iter().filter(|j| j.class.is_adhoc())
    }

    /// Number of milestone jobs that missed their deadline
    /// (paper Fig. 4(b) / 5(b)).
    pub fn job_deadline_misses(&self) -> usize {
        self.deadline_jobs().filter(|j| j.missed_deadline()).count()
    }

    /// Signed completion-minus-deadline deltas in **seconds**
    /// (paper Fig. 4(a) / 5(a)).
    pub fn job_deadline_deltas_seconds(&self) -> Vec<f64> {
        self.deadline_jobs()
            .filter_map(JobOutcome::deadline_delta)
            .map(|d| d as f64 * self.slot_seconds)
            .collect()
    }

    /// Number of workflows that missed their deadline.
    pub fn workflow_deadline_misses(&self) -> usize {
        self.workflows
            .iter()
            .filter(|w| w.missed_deadline())
            .count()
    }

    /// Average ad-hoc job turnaround in slots; `None` if there were none.
    pub fn avg_adhoc_turnaround_slots(&self) -> Option<f64> {
        let mut count = 0usize;
        let mut total = 0u64;
        for j in self.adhoc_jobs() {
            count += 1;
            total += j.turnaround_slots();
        }
        (count > 0).then(|| total as f64 / count as f64)
    }

    /// Average ad-hoc job turnaround in seconds (paper Fig. 4(c) / 5(c)).
    pub fn avg_adhoc_turnaround_seconds(&self) -> Option<f64> {
        self.avg_adhoc_turnaround_slots()
            .map(|s| s * self.slot_seconds)
    }

    fn capacity_of_slot(&self, t: usize) -> ResourceVec {
        self.slot_capacities
            .get(t)
            .copied()
            .unwrap_or(self.capacity)
    }

    /// Mean normalized cluster utilization over the run
    /// (`max_r used/capacity-in-force`, averaged over simulated slots).
    pub fn avg_peak_utilization(&self) -> f64 {
        if self.slot_loads.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .slot_loads
            .iter()
            .enumerate()
            .map(|(t, l)| l.max_normalized_by(&self.capacity_of_slot(t)))
            .sum();
        sum / self.slot_loads.len() as f64
    }

    /// Peak normalized utilization over the whole run.
    pub fn max_peak_utilization(&self) -> f64 {
        self.slot_loads
            .iter()
            .enumerate()
            .map(|(t, l)| l.max_normalized_by(&self.capacity_of_slot(t)))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(arrival: u64, completion: u64, deadline: Option<u64>, adhoc: bool) -> JobOutcome {
        JobOutcome {
            id: JobId::new(arrival * 100 + completion),
            class: if adhoc {
                JobClass::AdHoc
            } else {
                JobClass::Deadline {
                    workflow: WorkflowId::new(1),
                    node: 0,
                }
            },
            arrival_slot: arrival,
            ready_slot: arrival,
            completion_slot: completion,
            deadline_slot: deadline,
            retries: 0,
            wasted_work: 0,
        }
    }

    fn metrics(jobs: Vec<JobOutcome>) -> Metrics {
        Metrics {
            jobs,
            workflows: vec![
                WorkflowOutcome {
                    id: WorkflowId::new(1),
                    deadline_slot: 10,
                    completion_slot: 9,
                },
                WorkflowOutcome {
                    id: WorkflowId::new(2),
                    deadline_slot: 10,
                    completion_slot: 12,
                },
            ],
            slot_loads: vec![ResourceVec::new([5, 50]), ResourceVec::new([10, 20])],
            slot_capacities: vec![ResourceVec::new([10, 100]), ResourceVec::new([10, 100])],
            capacity: ResourceVec::new([10, 100]),
            slot_seconds: 10.0,
        }
    }

    #[test]
    fn deadline_accounting() {
        let m = metrics(vec![
            outcome(0, 8, Some(10), false),
            outcome(0, 12, Some(10), false),
            outcome(0, 10, Some(10), false),
        ]);
        assert_eq!(m.job_deadline_misses(), 1);
        assert_eq!(m.job_deadline_deltas_seconds(), vec![-20.0, 20.0, 0.0]);
        assert_eq!(m.workflow_deadline_misses(), 1);
    }

    #[test]
    fn turnaround_accounting() {
        let m = metrics(vec![
            outcome(0, 10, None, true),
            outcome(5, 10, None, true),
            outcome(0, 100, Some(50), false),
        ]);
        assert_eq!(m.avg_adhoc_turnaround_slots(), Some(7.5));
        assert_eq!(m.avg_adhoc_turnaround_seconds(), Some(75.0));
    }

    #[test]
    fn no_adhoc_jobs_is_none() {
        let m = metrics(vec![outcome(0, 10, Some(20), false)]);
        assert_eq!(m.avg_adhoc_turnaround_slots(), None);
    }

    #[test]
    fn utilization_summaries() {
        let m = metrics(vec![]);
        // slot 0: max(0.5, 0.5) = 0.5; slot 1: max(1.0, 0.2) = 1.0
        assert!((m.avg_peak_utilization() - 0.75).abs() < 1e-12);
        assert!((m.max_peak_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outcome_helpers() {
        let j = outcome(2, 9, Some(7), false);
        assert_eq!(j.turnaround_slots(), 7);
        assert_eq!(j.deadline_delta(), Some(2));
        assert!(j.missed_deadline());
        assert!(!outcome(0, 7, Some(7), false).missed_deadline());
        assert_eq!(outcome(0, 7, None, true).deadline_delta(), None);
    }
}
