//! Deterministic causal diagnosis of workflow deadline misses.
//!
//! The paper's slack decomposition makes misses *attributable*: every
//! workflow deadline is split into per-node milestones, so a miss can be
//! traced to the exact node set that consumed the reserved slack. The
//! [`crate::audit`] module already recomputes that attribution
//! independently ([`MissAttribution`]); this module turns the recount plus
//! the recorded decision trace into *answers* — a typed causal chain per
//! missed workflow, in the style of deterministic-diagnostics RFCs.
//!
//! # The `E00x` diagnostic catalogue
//!
//! Diagnostics mirror the auditor's violation codes: each has a stable
//! identifier, a slot, an optional job/node anchor, a slack figure, and a
//! list of [`EventRef`] citations into the trace. The catalogue:
//!
//! | code | level | meaning |
//! |------|-------|---------|
//! | `E001` | node | **node-overrun** — the node finished past its decomposed milestone; `slack_slots` is the overrun. The anchor diagnostic: per workflow, the `E001` slack figures sum exactly to the auditor's [`MissAttribution::total_overrun_slots`]. |
//! | `E002` | node | **straggler-inflation** — a mid-run straggler inflated the node's ground-truth work at first grant. |
//! | `E003` | node | **retry-chain** — attempts killed by seed-derived task failures discarded progress. |
//! | `E004` | node | **crash-window** — attempts killed because a node-crash capacity window caught them in flight. Distinguished from `E003` only when the [`RecoverySetup`] is available to replay [`RuntimeFaultPlan::crash_kills`]; without it every kill reports as `E003`. |
//! | `E005` | node | **queue-wait** — the node waited one or more slots between becoming ready and its first capacity grant. |
//! | `E006` | node | **dependency-wait** — the node became ready *after* its own milestone: upstream overruns doomed it before it could run. |
//! | `E007` | node | **preemption** — the node was left unallocated while incomplete after having run. |
//! | `E008` | workflow | **fault-injection** — pre-run fault injection rewrote the scenario (submit delays, misestimates, capacity churn, bursts). |
//! | `E009` | workflow | **placement** — the workflow ran inside a pod of a sharded cluster; the pod/placer stamp from the trace header is quoted. |
//! | `E010` | workflow | **admission-interference** — admission control shed or deferred ad-hoc arrivals before the workflow completed, changing the contention it faced. |
//!
//! Within one workflow the chain order is deterministic: workflow-level
//! context first (`E008`, `E009`, `E010`), then per culprit node in
//! [`MissAttribution::culprits`] order: `E001` followed by `E002`–`E007`
//! in code order.
//!
//! # Certification
//!
//! [`explain`] refuses to diagnose an uncertified run: it runs
//! [`certify_with_recovery`] internally and returns
//! [`ExplainError::Uncertified`] if any check fails. The chains are then
//! built from the **auditor's** independent attribution recount, never
//! from the engine's own `deadline_attribution`, and the module
//! self-checks that every chain's `E001` slack figures balance to the
//! recount ([`ExplainError::AttributionImbalance`] otherwise — which would
//! indicate a bug here, not in the run).

use std::collections::BTreeMap;

use flowtime_dag::{JobId, WorkflowId};
use serde::{Deserialize, Serialize};

use crate::audit::{certify_log, certify_with_recovery, AuditReport};
use crate::cluster::{CapacityWindow, ClusterConfig};
use crate::engine::SimOutcome;
use crate::faults::{runtime_fault_horizon, RecoverySetup, RuntimeFaultPlan};
use crate::job::SimWorkload;
use crate::metrics::MissAttribution;
use crate::submission::SubmissionLog;
use crate::trace::{DecisionTrace, TraceEvent};

/// A citation into the decision trace: the event a diagnostic rests on.
///
/// `index` is the event's position in the trace's logical event order
/// (i.e. the enumeration of [`DecisionTrace::events`]), so a report is
/// checkable against the exact trace it was built from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRef {
    /// Position in the trace's logical event order.
    pub index: u64,
    /// Slot of the cited event.
    pub slot: u64,
    /// Event kind (see [`event_kind`]).
    pub kind: String,
    /// Job of the cited event, if it is job-scoped.
    pub job: Option<JobId>,
}

impl EventRef {
    fn new(index: usize, ev: &TraceEvent) -> Self {
        EventRef {
            index: index as u64,
            slot: ev.slot(),
            kind: event_kind(ev).to_string(),
            job: ev.job(),
        }
    }
}

/// The stable kind label of a trace event, as cited by [`EventRef`].
pub fn event_kind(ev: &TraceEvent) -> &'static str {
    match ev {
        TraceEvent::Arrival { .. } => "arrival",
        TraceEvent::Ready { .. } => "ready",
        TraceEvent::Replan { .. } => "replan",
        TraceEvent::PolicyTag { .. } => "policy-tag",
        TraceEvent::Preempt { .. } => "preempt",
        TraceEvent::Start { .. } => "start",
        TraceEvent::Grant { .. } => "grant",
        TraceEvent::Finish { .. } => "finish",
        TraceEvent::Straggler { .. } => "straggler",
        TraceEvent::Kill { .. } => "kill",
        TraceEvent::Shed { .. } => "shed",
        TraceEvent::Defer { .. } => "defer",
    }
}

/// One typed diagnostic in a workflow's causal chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Catalogue code (`E001`–`E010`, see the [module docs](self)).
    pub code: String,
    /// The job concerned, for node-level diagnostics.
    pub job: Option<JobId>,
    /// DAG node index within the workflow, for node-level diagnostics.
    pub node: Option<u64>,
    /// The slot the diagnosis anchors to.
    pub slot: u64,
    /// Slack consumed, in slots. Non-zero only on `E001`; per workflow
    /// these sum to the auditor's recounted total overrun.
    #[serde(default, skip_serializing_if = "crate::serde_skip::zero_u64")]
    pub slack_slots: u64,
    /// Human-readable explanation.
    pub detail: String,
    /// Trace events this diagnosis rests on. Every entry indexes an event
    /// present in the trace; workflow-level context diagnostics built from
    /// the fault log or the header cite no events.
    #[serde(default, skip_serializing_if = "crate::serde_skip::empty_vec")]
    pub evidence: Vec<EventRef>,
}

/// The causal chain for one missed workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowExplanation {
    /// Workflow id.
    pub workflow: WorkflowId,
    /// The workflow deadline `wd`.
    pub deadline_slot: u64,
    /// Completion slot of the last constituent job.
    pub completion_slot: u64,
    /// Slots past the deadline (`completion - deadline`).
    pub miss_slots: u64,
    /// The auditor's recounted total milestone overrun across culprit
    /// nodes; zero when the workflow carries no decomposed milestones.
    pub total_overrun_slots: u64,
    /// True when the chain fully accounts for the miss: the auditor
    /// produced an attribution with at least one culprit node and the
    /// chain's `E001` slack figures balance to the recounted total.
    pub complete: bool,
    /// The diagnostics, in catalogue order (see the [module docs](self)).
    pub chain: Vec<Diagnostic>,
}

/// A full diagnosis: one causal chain per missed workflow, built from a
/// certified run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainReport {
    /// Scheduler that produced the run (from the trace header).
    pub scheduler: String,
    /// Trace events examined by the certifying audit.
    pub events_checked: u64,
    /// One chain per missed workflow, in workflow outcome order.
    pub workflows: Vec<WorkflowExplanation>,
}

impl ExplainReport {
    /// Number of missed workflows diagnosed.
    pub fn missed_workflows(&self) -> usize {
        self.workflows.len()
    }

    /// Number of missed workflows with a complete causal chain.
    pub fn complete_chains(&self) -> usize {
        self.workflows.iter().filter(|w| w.complete).count()
    }

    /// Total diagnostics across all chains.
    pub fn diagnostics(&self) -> usize {
        self.workflows.iter().map(|w| w.chain.len()).sum()
    }
}

/// Why a diagnosis could not be produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ExplainError {
    /// The run failed certification; diagnosing an unverified run would
    /// launder its violations into "explanations".
    Uncertified {
        /// The auditor's one-line summary.
        summary: String,
        /// Every violation, rendered `code: detail`.
        violations: Vec<String>,
    },
    /// A built chain's `E001` slack figures did not balance to the
    /// auditor's recount — an internal invariant breach in this module.
    AttributionImbalance {
        /// The workflow whose chain failed to balance.
        workflow: WorkflowId,
        /// Sum of the chain's `E001` slack figures.
        chain_slots: u64,
        /// The auditor's recounted total overrun.
        audited_slots: u64,
    },
}

impl std::fmt::Display for ExplainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExplainError::Uncertified { summary, .. } => {
                write!(f, "run is not certified: {summary}")
            }
            ExplainError::AttributionImbalance {
                workflow,
                chain_slots,
                audited_slots,
            } => write!(
                f,
                "chain for {workflow} accounts {chain_slots} slack slots, auditor recounted {audited_slots}"
            ),
        }
    }
}

impl std::error::Error for ExplainError {}

/// Diagnoses every missed workflow of a certified scenario run.
///
/// Certifies `(outcome, trace)` against the scenario via
/// [`certify_with_recovery`] first, then builds the chains from the
/// auditor's independent [`MissAttribution`] recount. `recovery` must be
/// the setup the engine was armed with (or `None`), exactly as for the
/// audit — it is additionally used to split crash-window kills (`E004`)
/// from task-failure kills (`E003`).
pub fn explain(
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    outcome: &SimOutcome,
    trace: &DecisionTrace,
    recovery: Option<&RecoverySetup>,
) -> Result<ExplainReport, ExplainError> {
    let audit = certify_with_recovery(cluster, workload, outcome, trace, recovery);
    let crash = recovery.map(|setup| {
        let plan = RuntimeFaultPlan::new(setup.faults.clone());
        let windows = plan.crash_windows(cluster.capacity(), runtime_fault_horizon(workload));
        (plan, windows)
    });
    build_report(
        outcome,
        trace,
        &audit,
        crash.as_ref().map(|(p, w)| (p, w.as_slice())),
    )
}

/// Diagnoses a run recorded as a [`SubmissionLog`] (the daemon's online
/// path), certifying via [`certify_log`]. Online sessions carry no
/// recovery setup, so every kill reports as `E003`.
pub fn explain_log(
    cluster: &ClusterConfig,
    log: &SubmissionLog,
    outcome: &SimOutcome,
    trace: &DecisionTrace,
) -> Result<ExplainReport, ExplainError> {
    let audit = certify_log(cluster, log, outcome, trace);
    build_report(outcome, trace, &audit, None)
}

fn build_report(
    outcome: &SimOutcome,
    trace: &DecisionTrace,
    audit: &AuditReport,
    crash: Option<(&RuntimeFaultPlan, &[CapacityWindow])>,
) -> Result<ExplainReport, ExplainError> {
    if !audit.is_certified() {
        return Err(ExplainError::Uncertified {
            summary: audit.summary(),
            violations: audit
                .violations
                .iter()
                .map(|v| format!("{}: {}", v.code, v.detail))
                .collect(),
        });
    }

    // Index the trace once: per-job event lists in logical order, plus the
    // admission-control events for E010.
    let mut by_job: BTreeMap<JobId, Vec<(usize, &TraceEvent)>> = BTreeMap::new();
    let mut admission: Vec<(usize, &TraceEvent)> = Vec::new();
    for (idx, ev) in trace.events().enumerate() {
        if let Some(job) = ev.job() {
            by_job.entry(job).or_default().push((idx, ev));
        }
        if matches!(ev, TraceEvent::Shed { .. } | TraceEvent::Defer { .. }) {
            admission.push((idx, ev));
        }
    }
    let ready_of: BTreeMap<JobId, u64> = outcome
        .metrics
        .jobs
        .iter()
        .map(|j| (j.id, j.ready_slot))
        .collect();
    let attr_of: BTreeMap<WorkflowId, &MissAttribution> =
        audit.attribution.iter().map(|a| (a.workflow, a)).collect();

    let mut workflows = Vec::new();
    for wf in outcome
        .metrics
        .workflows
        .iter()
        .filter(|w| w.missed_deadline())
    {
        let attr = attr_of.get(&wf.id).copied();
        let mut chain = Vec::new();

        // Workflow-level context: pre-run fault injection (E008).
        if !trace.faults.is_empty() {
            let kinds: Vec<&str> = trace.faults.iter().map(|f| f.kind.as_str()).collect();
            chain.push(Diagnostic {
                code: "E008".into(),
                job: None,
                node: None,
                slot: trace.faults.iter().map(|f| f.slot).min().unwrap_or(0),
                slack_slots: 0,
                detail: format!(
                    "{} pre-run fault injection(s) rewrote the scenario: {}",
                    trace.faults.len(),
                    kinds.join(", ")
                ),
                evidence: Vec::new(),
            });
        }
        // Placement context (E009): the pod/placer stamp from a sharded run.
        if trace.header.pods > 1 {
            chain.push(Diagnostic {
                code: "E009".into(),
                job: None,
                node: None,
                slot: 0,
                slack_slots: 0,
                detail: format!(
                    "workflow ran on pod {} of {} (placer `{}`): its contention set was fixed by placement, not scheduling",
                    trace.header.pod, trace.header.pods, trace.header.placer
                ),
                evidence: Vec::new(),
            });
        }
        // Admission interference (E010): shed/defer decisions before the
        // workflow completed changed the contention it faced.
        let interfering: Vec<EventRef> = admission
            .iter()
            .filter(|(_, ev)| ev.slot() < wf.completion_slot)
            .map(|&(idx, ev)| EventRef::new(idx, ev))
            .collect();
        if !interfering.is_empty() {
            let (sheds, defers) =
                interfering
                    .iter()
                    .fold((0u64, 0u64), |(s, d), e| match e.kind.as_str() {
                        "shed" => (s + 1, d),
                        _ => (s, d + 1),
                    });
            chain.push(Diagnostic {
                code: "E010".into(),
                job: None,
                node: None,
                slot: interfering[0].slot,
                slack_slots: 0,
                detail: format!(
                    "admission control shed {sheds} and deferred {defers} ad-hoc arrival(s) before the workflow completed"
                ),
                evidence: interfering,
            });
        }

        let mut chain_slots = 0u64;
        if let Some(attr) = attr {
            for culprit in &attr.culprits {
                let events = by_job.get(&culprit.job).map(Vec::as_slice).unwrap_or(&[]);
                chain_slots += culprit.overrun_slots;
                diagnose_node(&mut chain, culprit, events, &ready_of, crash);
            }
        }

        let total = attr.map(|a| a.total_overrun_slots).unwrap_or(0);
        if chain_slots != total {
            return Err(ExplainError::AttributionImbalance {
                workflow: wf.id,
                chain_slots,
                audited_slots: total,
            });
        }
        let complete = attr.map(|a| !a.culprits.is_empty()).unwrap_or(false);
        workflows.push(WorkflowExplanation {
            workflow: wf.id,
            deadline_slot: wf.deadline_slot,
            completion_slot: wf.completion_slot,
            miss_slots: wf.completion_slot - wf.deadline_slot,
            total_overrun_slots: total,
            complete,
            chain,
        });
    }

    Ok(ExplainReport {
        scheduler: trace.header.scheduler.clone(),
        events_checked: audit.events_checked,
        workflows,
    })
}

/// Appends the node-level diagnostics for one culprit: the `E001` anchor,
/// then `E002`–`E007` in code order.
fn diagnose_node(
    chain: &mut Vec<Diagnostic>,
    culprit: &crate::metrics::NodeSlackUse,
    events: &[(usize, &TraceEvent)],
    ready_of: &BTreeMap<JobId, u64>,
    crash: Option<(&RuntimeFaultPlan, &[CapacityWindow])>,
) {
    let job = culprit.job;
    let node_diag = |code: &str, slot, slack, detail, evidence| Diagnostic {
        code: code.into(),
        job: Some(job),
        node: Some(culprit.node),
        slot,
        slack_slots: slack,
        detail,
        evidence,
    };

    // E001 node-overrun: the anchor carrying the slack figure.
    let finish: Vec<EventRef> = events
        .iter()
        .filter(|(_, ev)| matches!(ev, TraceEvent::Finish { .. }))
        .map(|&(idx, ev)| EventRef::new(idx, ev))
        .collect();
    chain.push(node_diag(
        "E001",
        culprit.completion_slot,
        culprit.overrun_slots,
        format!(
            "node {} finished at slot {}, {} slot(s) past its decomposed milestone {}",
            culprit.node, culprit.completion_slot, culprit.overrun_slots, culprit.milestone_slot
        ),
        finish,
    ));

    // E002 straggler-inflation.
    let stragglers: Vec<(usize, &TraceEvent)> = events
        .iter()
        .filter(|(_, ev)| matches!(ev, TraceEvent::Straggler { .. }))
        .copied()
        .collect();
    if !stragglers.is_empty() {
        let extra: u64 = stragglers
            .iter()
            .map(|(_, ev)| match ev {
                TraceEvent::Straggler { extra, .. } => *extra,
                _ => 0,
            })
            .sum();
        chain.push(node_diag(
            "E002",
            stragglers[0].1.slot(),
            0,
            format!("straggler inflated the ground truth by {extra} task-slot(s) at first grant"),
            stragglers
                .iter()
                .map(|&(i, e)| EventRef::new(i, e))
                .collect(),
        ));
    }

    // E003 retry-chain / E004 crash-window. A kill is a crash kill when a
    // crash window opens at its slot and the fault plan says that window
    // catches this job; classification needs the recovery setup.
    let kills: Vec<(usize, &TraceEvent)> = events
        .iter()
        .filter(|(_, ev)| matches!(ev, TraceEvent::Kill { .. }))
        .copied()
        .collect();
    if !kills.is_empty() {
        let is_crash = |slot: u64| -> bool {
            crash.is_some_and(|(plan, windows)| {
                windows
                    .iter()
                    .enumerate()
                    .any(|(i, w)| w.from_slot == slot && plan.crash_kills(i as u64, job))
            })
        };
        let (crash_kills, task_kills): (Vec<_>, Vec<_>) =
            kills.iter().partition(|(_, ev)| is_crash(ev.slot()));
        for (code, set, cause) in [
            ("E003", task_kills, "task failure(s)"),
            ("E004", crash_kills, "node-crash window(s)"),
        ] {
            if set.is_empty() {
                continue;
            }
            let wasted: u64 = set
                .iter()
                .map(|(_, ev)| match ev {
                    TraceEvent::Kill { wasted, .. } => *wasted,
                    _ => 0,
                })
                .sum();
            chain.push(node_diag(
                code,
                set[0].1.slot(),
                0,
                format!(
                    "{} attempt(s) killed by {cause} discarded {wasted} task-slot(s) of progress",
                    set.len()
                ),
                set.iter().map(|&(i, e)| EventRef::new(i, e)).collect(),
            ));
        }
    }

    // E005 queue-wait: gap between ready and first grant.
    let ready_slot = ready_of.get(&job).copied();
    let first_grant = events
        .iter()
        .find(|(_, ev)| matches!(ev, TraceEvent::Grant { .. }))
        .copied();
    if let (Some(ready), Some((gidx, gev))) = (ready_slot, first_grant) {
        if gev.slot() > ready {
            let mut evidence: Vec<EventRef> = events
                .iter()
                .filter(|(_, ev)| matches!(ev, TraceEvent::Ready { .. }))
                .map(|&(i, e)| EventRef::new(i, e))
                .collect();
            evidence.push(EventRef::new(gidx, gev));
            chain.push(node_diag(
                "E005",
                gev.slot(),
                0,
                format!(
                    "waited {} slot(s) from ready (slot {ready}) to first grant (slot {})",
                    gev.slot() - ready,
                    gev.slot()
                ),
                evidence,
            ));
        }
    }

    // E006 dependency-wait: ready only after the node's own milestone.
    if let Some(ready) = ready_slot {
        if ready > culprit.milestone_slot {
            chain.push(node_diag(
                "E006",
                ready,
                0,
                format!(
                    "became ready at slot {ready}, after its milestone {}: upstream overruns doomed the node before it could run",
                    culprit.milestone_slot
                ),
                events
                    .iter()
                    .filter(|(_, ev)| matches!(ev, TraceEvent::Ready { .. }))
                    .map(|&(i, e)| EventRef::new(i, e))
                    .collect(),
            ));
        }
    }

    // E007 preemption.
    let preempts: Vec<EventRef> = events
        .iter()
        .filter(|(_, ev)| matches!(ev, TraceEvent::Preempt { .. }))
        .map(|&(i, e)| EventRef::new(i, e))
        .collect();
    if !preempts.is_empty() {
        chain.push(node_diag(
            "E007",
            preempts[0].slot,
            0,
            format!("preempted {} time(s) while incomplete", preempts.len()),
            preempts,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::engine::Engine;
    use crate::faults::{RecoveryPolicy, RuntimeFaultConfig};
    use crate::job::{AdhocSubmission, SimWorkload, WorkflowSubmission};
    use crate::scheduler::{Allocation, Scheduler};
    use crate::state::SimState;
    use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder};

    struct Greedy;
    impl Scheduler for Greedy {
        fn name(&self) -> &'static str {
            "greedy"
        }
        fn plan_slot(&mut self, state: &SimState) -> Allocation {
            let mut alloc = Allocation::new();
            let mut free = state.capacity();
            for job in state.runnable_jobs() {
                let fit = job
                    .per_task
                    .times_fitting(&free)
                    .min(job.max_tasks_this_slot);
                if fit > 0 {
                    alloc.assign(job.id, fit);
                    free -= job.per_task * fit;
                }
            }
            alloc
        }
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::new(ResourceVec::new([8, 65_536]), 10.0)
    }

    /// A two-node chain a→b that cannot meet its milestones under the
    /// tight window: node b overruns its milestone, missing the deadline.
    fn missing_workload() -> SimWorkload {
        let mut b = WorkflowBuilder::new(flowtime_dag::WorkflowId::new(1), "wf");
        let spec = |n: &str| JobSpec::new(n, 8, 2, ResourceVec::new([1, 1024]));
        let x = b.add_job(spec("a"));
        let y = b.add_job(spec("b"));
        b.add_dep(x, y).unwrap();
        let wf = b.window(0, 3).build().unwrap();
        let mut workload = SimWorkload::default();
        workload
            .workflows
            .push(WorkflowSubmission::new(wf).with_job_deadlines(vec![1, 3]));
        workload.adhoc.push(AdhocSubmission::new(
            JobSpec::new("adhoc", 4, 2, ResourceVec::new([1, 512])),
            0,
        ));
        workload
    }

    fn run(workload: &SimWorkload) -> (SimOutcome, DecisionTrace) {
        let (engine, handle) = Engine::new(cluster(), workload.clone(), 300)
            .unwrap()
            .with_trace(4096);
        let outcome = engine.run(&mut Greedy).unwrap();
        (outcome, handle.take())
    }

    #[test]
    fn missed_workflow_gets_balanced_chain() {
        let workload = missing_workload();
        let (outcome, trace) = run(&workload);
        let report = explain(&cluster(), &workload, &outcome, &trace, None).unwrap();
        assert_eq!(report.scheduler, "greedy");
        assert_eq!(report.missed_workflows(), 1);
        let wf = &report.workflows[0];
        assert!(wf.complete, "chain should be complete: {wf:?}");
        assert!(wf.miss_slots > 0);
        let e001: u64 = wf
            .chain
            .iter()
            .filter(|d| d.code == "E001")
            .map(|d| d.slack_slots)
            .sum();
        assert_eq!(e001, wf.total_overrun_slots);
        // Every citation points at a real trace event.
        let events: Vec<&TraceEvent> = trace.events().collect();
        for d in &wf.chain {
            for e in &d.evidence {
                let ev = events[e.index as usize];
                assert_eq!(e.slot, ev.slot());
                assert_eq!(e.kind, event_kind(ev));
                assert_eq!(e.job, ev.job());
            }
        }
    }

    #[test]
    fn clean_feasible_run_yields_no_chains() {
        let mut b = WorkflowBuilder::new(flowtime_dag::WorkflowId::new(1), "wf");
        b.add_job(JobSpec::new("a", 4, 4, ResourceVec::new([1, 1024])));
        let wf = b.window(0, 20).build().unwrap();
        let mut workload = SimWorkload::default();
        workload.workflows.push(WorkflowSubmission::new(wf));
        let (outcome, trace) = run(&workload);
        let report = explain(&cluster(), &workload, &outcome, &trace, None).unwrap();
        assert_eq!(report.missed_workflows(), 0);
        assert_eq!(report.diagnostics(), 0);
    }

    #[test]
    fn uncertified_run_is_refused() {
        let workload = missing_workload();
        let (outcome, mut trace) = run(&workload);
        // Corrupt the trace: drop a Finish event.
        let pos = trace
            .events()
            .position(|e| matches!(e, TraceEvent::Finish { .. }))
            .unwrap();
        trace.events_mut().remove(pos);
        let err = explain(&cluster(), &workload, &outcome, &trace, None).unwrap_err();
        match err {
            ExplainError::Uncertified { violations, .. } => assert!(!violations.is_empty()),
            other => panic!("expected Uncertified, got {other:?}"),
        }
    }

    #[test]
    fn recovery_kills_classified_and_balanced() {
        let workload = missing_workload();
        let setup = RecoverySetup::new(
            RuntimeFaultConfig::none(7)
                .with_task_failures(0.6)
                .with_crashes(0.5)
                .with_crash_period(6)
                .with_stragglers(0.5, 1.0),
            RecoveryPolicy::default(),
        );
        let (engine, handle) = Engine::new(cluster(), workload.clone(), 300)
            .unwrap()
            .with_recovery(setup.clone())
            .with_trace(4096);
        let outcome = engine.run(&mut Greedy).unwrap();
        let trace = handle.take();
        let report = explain(&cluster(), &workload, &outcome, &trace, Some(&setup)).unwrap();
        for wf in &report.workflows {
            let e001: u64 = wf
                .chain
                .iter()
                .filter(|d| d.code == "E001")
                .map(|d| d.slack_slots)
                .sum();
            assert_eq!(e001, wf.total_overrun_slots);
        }
        // Byte-determinism: a second diagnosis of the same artifacts is
        // identical.
        let again = explain(&cluster(), &workload, &outcome, &trace, Some(&setup)).unwrap();
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }
}
