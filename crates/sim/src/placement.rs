//! Node-level container placement (bin-packing diagnostics).
//!
//! The schedulers — like YARN's resource manager — reason about *aggregate*
//! capacity: `Σ tasks × per-task ≤ C`. A physical cluster is a set of
//! nodes, and an aggregate-feasible allocation can still be unplaceable
//! when no single node has room for another container (fragmentation).
//!
//! This module measures that gap: [`NodePool::pack`] first-fit-decreasing
//! packs one slot's allocation onto nodes and reports what failed to
//! place. The engine can record it per slot ([`crate::Engine::with_nodes`])
//! so experiments can quantify how much fragmentation their allocation
//! patterns would induce — measured, not enforced, matching the
//! reproduction's aggregate capacity model (DESIGN.md).

use flowtime_dag::{JobId, ResourceVec};
use serde::{Deserialize, Serialize};

/// A homogeneous pool of nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePool {
    /// Per-node capacity.
    pub node_capacity: ResourceVec,
    /// Number of nodes.
    pub nodes: usize,
}

/// The outcome of packing one slot's allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackResult {
    /// Tasks successfully placed, per job.
    pub placed: Vec<(JobId, u64)>,
    /// Tasks that did not fit on any node, per job.
    pub unplaced: Vec<(JobId, u64)>,
    /// Nodes with at least one container.
    pub nodes_used: usize,
}

impl PackResult {
    /// True if every requested task found a node.
    pub fn is_complete(&self) -> bool {
        self.unplaced.is_empty()
    }

    /// Total unplaced tasks.
    pub fn unplaced_tasks(&self) -> u64 {
        self.unplaced.iter().map(|&(_, q)| q).sum()
    }
}

impl NodePool {
    /// Creates a pool of `nodes` identical nodes.
    pub fn new(nodes: usize, node_capacity: ResourceVec) -> Self {
        NodePool {
            node_capacity,
            nodes,
        }
    }

    /// Aggregate capacity of the pool.
    pub fn total_capacity(&self) -> ResourceVec {
        self.node_capacity * self.nodes as u64
    }

    /// First-fit-decreasing packs `requests` — `(job, per-task shape,
    /// tasks)` triples — onto the pool. Requests are sorted by descending
    /// dominant share so large containers place first (the classic FFD
    /// heuristic, within 22% of optimal bin count).
    pub fn pack(&self, requests: &[(JobId, ResourceVec, u64)]) -> PackResult {
        let mut free: Vec<ResourceVec> = vec![self.node_capacity; self.nodes];
        let mut order: Vec<usize> = (0..requests.len()).collect();
        let share = |shape: &ResourceVec| shape.max_normalized_by(&self.node_capacity);
        order.sort_by(|&a, &b| {
            share(&requests[b].1)
                .partial_cmp(&share(&requests[a].1))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(requests[a].0.cmp(&requests[b].0))
        });
        let mut placed = vec![0u64; requests.len()];
        for &idx in &order {
            let (_, shape, tasks) = &requests[idx];
            for _ in 0..*tasks {
                let Some(node) = free.iter_mut().find(|f| shape.fits_within(f)) else {
                    break;
                };
                *node -= *shape;
                placed[idx] += 1;
            }
        }
        let nodes_used = free.iter().filter(|f| **f != self.node_capacity).count();
        let mut placed_out = Vec::new();
        let mut unplaced_out = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            if placed[i] > 0 {
                placed_out.push((req.0, placed[i]));
            }
            if placed[i] < req.2 {
                unplaced_out.push((req.0, req.2 - placed[i]));
            }
        }
        PackResult {
            placed: placed_out,
            unplaced: unplaced_out,
            nodes_used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> JobId {
        JobId::new(raw)
    }

    #[test]
    fn everything_fits_when_aggregate_is_loose() {
        let pool = NodePool::new(4, ResourceVec::new([4, 16_384]));
        let result = pool.pack(&[
            (id(1), ResourceVec::new([1, 2048]), 6),
            (id(2), ResourceVec::new([2, 4096]), 3),
        ]);
        assert!(result.is_complete());
        assert_eq!(result.unplaced_tasks(), 0);
        assert!(result.nodes_used >= 3);
    }

    #[test]
    fn fragmentation_leaves_tasks_unplaced() {
        // Aggregate capacity is 8 cores, and the request needs 8 — but no
        // single node can host a 3-core container once the 2-core ones land
        // poorly... with FFD, large first: two 3-core tasks take node1+node2
        // (1 core free each), then 2-core tasks don't fit anywhere.
        let pool = NodePool::new(2, ResourceVec::new([4, 16_384]));
        let result = pool.pack(&[
            (id(1), ResourceVec::new([2, 1024]), 1),
            (id(2), ResourceVec::new([3, 1024]), 2),
        ]);
        // FFD places the 3-core tasks first (one per node), then the 2-core
        // task cannot fit in the remaining 1+1 cores.
        assert!(!result.is_complete());
        assert_eq!(result.unplaced_tasks(), 1);
        assert_eq!(result.nodes_used, 2);
    }

    #[test]
    fn ffd_places_large_containers_first() {
        let pool = NodePool::new(1, ResourceVec::new([4, 4096]));
        let result = pool.pack(&[
            (id(1), ResourceVec::new([1, 1024]), 4),
            (id(2), ResourceVec::new([3, 3072]), 1),
        ]);
        // Big container first (3 cores), then one small (1 core): 3 small
        // tasks spill.
        let placed_big = result
            .placed
            .iter()
            .find(|&&(j, _)| j == id(2))
            .map(|&(_, q)| q);
        assert_eq!(placed_big, Some(1));
        assert_eq!(result.unplaced_tasks(), 3);
    }

    #[test]
    fn empty_requests_trivial() {
        let pool = NodePool::new(3, ResourceVec::new([4, 4096]));
        let result = pool.pack(&[]);
        assert!(result.is_complete());
        assert_eq!(result.nodes_used, 0);
    }

    #[test]
    fn total_capacity_scales() {
        let pool = NodePool::new(10, ResourceVec::new([8, 32_768]));
        assert_eq!(pool.total_capacity(), ResourceVec::new([80, 327_680]));
    }
}
