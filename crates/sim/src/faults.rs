//! Deterministic fault injection.
//!
//! The paper's robustness discussion (Section III-A) asks how schedulers
//! behave when reality diverges from the model: task runtimes are
//! mis-estimated, nodes churn in and out of the cluster, and ad-hoc load
//! arrives in bursts rather than smoothly. [`FaultPlan`] materializes all
//! of those divergences from a single `u64` seed, by rewriting a
//! [`SimWorkload`] / [`ClusterConfig`] pair *before* the simulation starts:
//!
//! * **Runtime misestimation** — each workflow job's ground-truth
//!   `actual_work` is scaled by a log-normal factor around its estimate, so
//!   schedulers plan against systematically wrong numbers.
//! * **Capacity churn** — maintenance-style [`crate::cluster::CapacityWindow`]s
//!   periodically remove a fraction of the cluster, exercising the paper's
//!   time-varying cap `C_t^r`.
//! * **Arrival bursts** — extra ad-hoc jobs are injected in tight clusters,
//!   the adversarial counterpart of the generator's smooth Poisson stream.
//! * **Delayed submissions** — whole workflows slip to later submit slots
//!   (window length preserved, milestones shifted with them), modelling
//!   upstream pipeline delays.
//!
//! Because the plan only rewrites inputs and the engine itself is
//! deterministic, the same `(workload, cluster, seed)` triple always yields
//! a bit-identical [`crate::SimOutcome`] — which is what makes differential
//! testing across schedulers sound. A plan built from
//! [`FaultConfig::none`] (all intensities zero) is the identity.

use crate::cluster::ClusterConfig;
use crate::job::{AdhocSubmission, SimWorkload};
use crate::trace::FaultRecord;
use flowtime_dag::JobSpec;
use serde::{Deserialize, Serialize};

/// Intensities of each fault class. All-zero (the [`FaultConfig::none`]
/// default) disables injection entirely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed from which every random choice below is derived.
    pub seed: u64,
    /// Log-normal σ of the `actual / estimated` work factor for workflow
    /// jobs. `0.0` leaves ground truth untouched; `0.3` yields roughly
    /// ±35% runtime errors.
    pub misestimate_sigma: f64,
    /// Fraction of base capacity removed during each churn window, in
    /// `[0, 1)`. `0.0` disables churn.
    pub churn_severity: f64,
    /// Mean slots between churn windows (each window lasts about a quarter
    /// of this). Ignored when `churn_severity` is zero.
    pub churn_period: u64,
    /// Number of extra ad-hoc jobs injected as bursts. `0` disables bursts.
    pub burst_jobs: usize,
    /// Upper bound on the random submission delay applied to each
    /// workflow, in slots. `0` disables delays.
    pub max_submit_delay: u64,
}

impl FaultConfig {
    /// No faults: applying the resulting plan changes nothing.
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            misestimate_sigma: 0.0,
            churn_severity: 0.0,
            churn_period: 200,
            burst_jobs: 0,
            max_submit_delay: 0,
        }
    }

    /// A moderate all-of-the-above mix, the default of the differential
    /// test suite and the `robustness` sweep.
    pub fn mixed(seed: u64) -> Self {
        FaultConfig {
            seed,
            misestimate_sigma: 0.25,
            churn_severity: 0.2,
            churn_period: 150,
            burst_jobs: 6,
            max_submit_delay: 20,
        }
    }

    /// Sets the misestimation σ.
    #[must_use]
    pub fn with_misestimate(mut self, sigma: f64) -> Self {
        self.misestimate_sigma = sigma.max(0.0);
        self
    }

    /// Sets churn severity (fraction of capacity removed per window).
    #[must_use]
    pub fn with_churn(mut self, severity: f64) -> Self {
        self.churn_severity = severity.clamp(0.0, 0.95);
        self
    }

    /// Sets the number of injected burst jobs.
    #[must_use]
    pub fn with_bursts(mut self, jobs: usize) -> Self {
        self.burst_jobs = jobs;
        self
    }

    /// Sets the maximum workflow submission delay.
    #[must_use]
    pub fn with_submit_delay(mut self, max_slots: u64) -> Self {
        self.max_submit_delay = max_slots;
        self
    }
}

/// A concrete, seeded injection plan. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// Builds a plan from a config.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Rewrites `workload` and `cluster` in place. `horizon` bounds where
    /// churn windows and bursts may land (pass the experiment's interesting
    /// range, e.g. the ad-hoc horizon — *not* the engine's `max_slots`
    /// safety bound).
    ///
    /// Deterministic: identical inputs and config produce identical
    /// rewrites, independent of platform.
    pub fn apply(&self, workload: &mut SimWorkload, cluster: &mut ClusterConfig, horizon: u64) {
        let _ = self.apply_recorded(workload, cluster, horizon);
    }

    /// Like [`Self::apply`], additionally returning one [`FaultRecord`]
    /// per concrete injection for the decision-trace layer. Recording only
    /// *observes* the rewrite — RNG consumption and the resulting
    /// workload/cluster are bit-identical to [`Self::apply`].
    pub fn apply_recorded(
        &self,
        workload: &mut SimWorkload,
        cluster: &mut ClusterConfig,
        horizon: u64,
    ) -> Vec<FaultRecord> {
        let mut rng = SplitMix64::new(self.config.seed);
        let mut records = Vec::new();
        self.delay_submissions(workload, &mut rng, &mut records);
        self.misestimate_runtimes(workload, &mut rng, &mut records);
        self.degrade_capacity(cluster, horizon, &mut rng, &mut records);
        self.inject_bursts(workload, horizon, &mut rng, &mut records);
        records
    }

    /// Shifts each workflow to a later submit slot (window length and
    /// milestone offsets preserved), uniformly in `[0, max_submit_delay]`.
    fn delay_submissions(
        &self,
        workload: &mut SimWorkload,
        rng: &mut SplitMix64,
        records: &mut Vec<FaultRecord>,
    ) {
        if self.config.max_submit_delay == 0 {
            return;
        }
        for sub in &mut workload.workflows {
            let delay = rng.below(self.config.max_submit_delay + 1);
            if delay == 0 {
                continue;
            }
            let wf = &sub.workflow;
            sub.workflow = wf.recur_at(wf.id(), wf.submit_slot() + delay);
            if let Some(milestones) = &mut sub.job_deadlines {
                for m in milestones.iter_mut() {
                    *m += delay;
                }
            }
            records.push(FaultRecord {
                kind: "submit-delay".into(),
                slot: sub.workflow.submit_slot(),
                detail: format!("{} delayed {delay} slots", sub.workflow.id()),
            });
        }
    }

    /// Replaces each workflow job's ground-truth work with
    /// `estimate * exp(σ·z)`, `z` standard normal — schedulers keep seeing
    /// the estimate. Submissions that already carry explicit `actual_work`
    /// are scaled from that ground truth instead.
    fn misestimate_runtimes(
        &self,
        workload: &mut SimWorkload,
        rng: &mut SplitMix64,
        records: &mut Vec<FaultRecord>,
    ) {
        let sigma = self.config.misestimate_sigma;
        if sigma <= 0.0 {
            return;
        }
        for sub in &mut workload.workflows {
            let base: Vec<u64> = match &sub.actual_work {
                Some(actual) => actual.clone(),
                None => sub.workflow.jobs().iter().map(JobSpec::work).collect(),
            };
            let faulted: Vec<u64> = base
                .iter()
                .map(|&w| {
                    let factor = (sigma * rng.standard_normal()).exp();
                    ((w as f64) * factor).round().max(1.0) as u64
                })
                .collect();
            records.push(FaultRecord {
                kind: "misestimate".into(),
                slot: sub.workflow.submit_slot(),
                detail: format!(
                    "{} ground truth rewritten across {} nodes",
                    sub.workflow.id(),
                    faulted.len()
                ),
            });
            sub.actual_work = Some(faulted);
        }
    }

    /// Adds capacity windows that remove `churn_severity` of the base
    /// capacity, spaced about `churn_period` slots apart within
    /// `[0, horizon)`, each lasting about a quarter period.
    fn degrade_capacity(
        &self,
        cluster: &mut ClusterConfig,
        horizon: u64,
        rng: &mut SplitMix64,
        records: &mut Vec<FaultRecord>,
    ) {
        let severity = self.config.churn_severity;
        if severity <= 0.0 || horizon == 0 {
            return;
        }
        let period = self.config.churn_period.max(4);
        let keep = 1.0 - severity.clamp(0.0, 0.95);
        let degraded = flowtime_dag::ResourceVec::new(
            cluster
                .capacity()
                .as_array()
                .map(|c| (((c as f64) * keep).floor() as u64).max(1)),
        );
        let mut start = rng.below(period);
        while start < horizon {
            let len = 1 + rng.below(period / 2).max(period / 4);
            let mut degraded_cluster = cluster.clone();
            degraded_cluster = degraded_cluster.with_capacity_window(start, start + len, degraded);
            *cluster = degraded_cluster;
            records.push(FaultRecord {
                kind: "capacity-churn".into(),
                slot: start,
                detail: format!("capacity degraded to {degraded:?} for {len} slots"),
            });
            start += period / 2 + rng.below(period);
        }
    }

    /// Injects `burst_jobs` extra ad-hoc jobs in tight clusters around a
    /// few burst centres in `[0, horizon)`. Container shape follows the
    /// existing ad-hoc jobs when present, else a 1-core task.
    fn inject_bursts(
        &self,
        workload: &mut SimWorkload,
        horizon: u64,
        rng: &mut SplitMix64,
        records: &mut Vec<FaultRecord>,
    ) {
        let n = self.config.burst_jobs;
        if n == 0 || horizon == 0 {
            return;
        }
        let template = workload
            .adhoc
            .first()
            .map(|s| (s.spec.per_task(), s.spec.max_parallel().unwrap_or(8)))
            .unwrap_or((flowtime_dag::ResourceVec::new([1, 1024]), 8));
        let per_burst = 3usize;
        let mut injected = 0usize;
        let mut burst_idx = 0u64;
        while injected < n {
            let centre = rng.below(horizon);
            for _ in 0..per_burst.min(n - injected) {
                let arrival = centre + rng.below(3);
                // Log-normal-ish work: median 8 task-slots, heavy tail.
                let work = ((8.0 * (0.9 * rng.standard_normal()).exp()).round() as u64).max(1);
                let tasks = work.min(template.1.max(1));
                let spec = JobSpec::new(
                    format!("burst-{burst_idx}-{injected}"),
                    tasks,
                    work.div_ceil(tasks),
                    template.0,
                )
                .with_max_parallel(template.1.max(1));
                records.push(FaultRecord {
                    kind: "burst".into(),
                    slot: arrival,
                    detail: spec.name().to_string(),
                });
                workload.adhoc.push(AdhocSubmission::new(spec, arrival));
                injected += 1;
            }
            burst_idx += 1;
        }
        // Engine semantics do not require sorted arrivals, but generators
        // emit them sorted; keep that property for downstream consumers.
        workload.adhoc.sort_by(|a, b| {
            a.arrival_slot
                .cmp(&b.arrival_slot)
                .then_with(|| a.spec.name().cmp(b.spec.name()))
        });
    }
}

/// SplitMix64: tiny, seedable, platform-independent PRNG. Kept private to
/// this crate so `flowtime-sim` stays dependency-free.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; returns 0 for `bound == 0`.
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is negligible for the bounds used here.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform in `(0, 1)`.
    fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) * (1.0 / ((1u64 << 53) as f64 + 1.0))
    }

    /// Standard normal via Box-Muller.
    fn standard_normal(&mut self) -> f64 {
        let u1 = self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{ResourceVec, WorkflowBuilder, WorkflowId};

    fn workload() -> SimWorkload {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "wf");
        let a = b.add_job(JobSpec::new("a", 4, 2, ResourceVec::new([1, 1024])));
        let c = b.add_job(JobSpec::new("c", 4, 2, ResourceVec::new([1, 1024])));
        b.add_dep(a, c).unwrap();
        let wf = b.window(5, 60).build().unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows
            .push(crate::job::WorkflowSubmission::new(wf).with_job_deadlines(vec![30, 60]));
        wl.adhoc.push(AdhocSubmission::new(
            JobSpec::new("adhoc-0", 2, 2, ResourceVec::new([1, 512])),
            3,
        ));
        wl
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::new(ResourceVec::new([16, 65_536]), 10.0)
    }

    #[test]
    fn zero_config_is_identity() {
        let mut wl = workload();
        let mut cl = cluster();
        FaultPlan::new(FaultConfig::none(99)).apply(&mut wl, &mut cl, 500);
        assert_eq!(wl, workload());
        assert_eq!(cl, cluster());
    }

    #[test]
    fn same_seed_same_rewrite() {
        let (mut wl_a, mut cl_a) = (workload(), cluster());
        let (mut wl_b, mut cl_b) = (workload(), cluster());
        let plan = FaultPlan::new(FaultConfig::mixed(7));
        plan.apply(&mut wl_a, &mut cl_a, 500);
        plan.apply(&mut wl_b, &mut cl_b, 500);
        assert_eq!(wl_a, wl_b);
        assert_eq!(cl_a, cl_b);
    }

    #[test]
    fn different_seeds_diverge() {
        let (mut wl_a, mut cl_a) = (workload(), cluster());
        let (mut wl_b, mut cl_b) = (workload(), cluster());
        FaultPlan::new(FaultConfig::mixed(1)).apply(&mut wl_a, &mut cl_a, 500);
        FaultPlan::new(FaultConfig::mixed(2)).apply(&mut wl_b, &mut cl_b, 500);
        assert_ne!((wl_a, cl_a), (wl_b, cl_b));
    }

    #[test]
    fn misestimation_sets_actual_work() {
        let mut wl = workload();
        let mut cl = cluster();
        FaultPlan::new(FaultConfig::none(3).with_misestimate(0.4)).apply(&mut wl, &mut cl, 500);
        let actual = wl.workflows[0].actual_work.as_ref().expect("injected");
        assert_eq!(actual.len(), 2);
        assert!(actual.iter().all(|&w| w >= 1));
        // Cluster untouched by this fault class.
        assert_eq!(cl, cluster());
    }

    #[test]
    fn churn_adds_degraded_windows() {
        let mut wl = workload();
        let mut cl = cluster();
        FaultPlan::new(FaultConfig::none(3).with_churn(0.5)).apply(&mut wl, &mut cl, 1_000);
        assert!(cl.has_capacity_windows());
        let base = cluster().capacity();
        let mut saw_degraded = false;
        for slot in 0..1_000 {
            let cap = cl.capacity_at(slot);
            assert!(cap.fits_within(&base));
            if cap != base {
                saw_degraded = true;
                assert_eq!(cap, ResourceVec::new([8, 32_768]));
            }
        }
        assert!(saw_degraded);
    }

    #[test]
    fn bursts_add_adhoc_jobs_within_horizon() {
        let mut wl = workload();
        let mut cl = cluster();
        let before = wl.adhoc.len();
        FaultPlan::new(FaultConfig::none(3).with_bursts(9)).apply(&mut wl, &mut cl, 400);
        assert_eq!(wl.adhoc.len(), before + 9);
        for sub in &wl.adhoc {
            assert!(sub.arrival_slot < 400 + 3);
            assert!(sub.spec.work() >= 1);
        }
        // Sorted by arrival.
        for w in wl.adhoc.windows(2) {
            assert!(w[0].arrival_slot <= w[1].arrival_slot);
        }
    }

    #[test]
    fn recorded_apply_matches_apply_and_reports_each_injection() {
        let (mut wl_a, mut cl_a) = (workload(), cluster());
        let (mut wl_b, mut cl_b) = (workload(), cluster());
        let plan = FaultPlan::new(FaultConfig::mixed(7));
        plan.apply(&mut wl_a, &mut cl_a, 500);
        let records = plan.apply_recorded(&mut wl_b, &mut cl_b, 500);
        // Recording observes; it never perturbs the rewrite.
        assert_eq!(wl_a, wl_b);
        assert_eq!(cl_a, cl_b);
        assert!(records.iter().any(|r| r.kind == "misestimate"));
        assert!(records.iter().any(|r| r.kind == "capacity-churn"));
        assert_eq!(records.iter().filter(|r| r.kind == "burst").count(), 6);
        // The identity plan has nothing to report.
        let none = FaultPlan::new(FaultConfig::none(7)).apply_recorded(
            &mut workload(),
            &mut cluster(),
            500,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn delays_shift_window_and_milestones_together() {
        let mut wl = workload();
        let mut cl = cluster();
        FaultPlan::new(FaultConfig::none(12345).with_submit_delay(40)).apply(&mut wl, &mut cl, 500);
        let sub = &wl.workflows[0];
        let delay = sub.workflow.submit_slot() - 5;
        assert!(delay <= 40);
        assert_eq!(sub.workflow.window_slots(), 55);
        assert_eq!(
            sub.job_deadlines.as_ref().unwrap(),
            &vec![30 + delay, 60 + delay]
        );
    }
}
