//! Deterministic fault injection.
//!
//! The paper's robustness discussion (Section III-A) asks how schedulers
//! behave when reality diverges from the model: task runtimes are
//! mis-estimated, nodes churn in and out of the cluster, and ad-hoc load
//! arrives in bursts rather than smoothly. [`FaultPlan`] materializes all
//! of those divergences from a single `u64` seed, by rewriting a
//! [`SimWorkload`] / [`ClusterConfig`] pair *before* the simulation starts:
//!
//! * **Runtime misestimation** — each workflow job's ground-truth
//!   `actual_work` is scaled by a log-normal factor around its estimate, so
//!   schedulers plan against systematically wrong numbers.
//! * **Capacity churn** — maintenance-style [`crate::cluster::CapacityWindow`]s
//!   periodically remove a fraction of the cluster, exercising the paper's
//!   time-varying cap `C_t^r`.
//! * **Arrival bursts** — extra ad-hoc jobs are injected in tight clusters,
//!   the adversarial counterpart of the generator's smooth Poisson stream.
//! * **Delayed submissions** — whole workflows slip to later submit slots
//!   (window length preserved, milestones shifted with them), modelling
//!   upstream pipeline delays.
//!
//! Because the plan only rewrites inputs and the engine itself is
//! deterministic, the same `(workload, cluster, seed)` triple always yields
//! a bit-identical [`crate::SimOutcome`] — which is what makes differential
//! testing across schedulers sound. A plan built from
//! [`FaultConfig::none`] (all intensities zero) is the identity.
//!
//! # Mid-run faults
//!
//! [`FaultPlan`] perturbs *inputs*; nothing can go wrong once the engine
//! starts. [`RuntimeFaultPlan`] closes that gap with deterministic,
//! seed-derived *mid-run* events the engine consults while running:
//!
//! * **Task-attempt failures** — an attempt fails once its cumulative work
//!   crosses a seed-derived threshold; the job's progress is discarded and
//!   it re-executes after a deterministic backoff.
//! * **Node crash/recovery windows** — capacity shrinks mid-flight; jobs
//!   running on the lost capacity may be killed and retried. Unlike the
//!   static churn of [`FaultConfig::with_static_churn`], these windows are
//!   *not* visible to schedulers ahead of time.
//! * **Straggler inflation** — a job's ground-truth work grows beyond its
//!   estimate the moment it first runs, modelling slow containers.
//!
//! Every decision is a pure function of `(seed, job, attempt)` — no RNG
//! state threads through the engine loop — so outcomes stay bit-identical
//! across thread counts and replayable by the offline auditor.
//! [`RecoveryPolicy`] bounds the retries and governs graceful degradation
//! under sustained overload (shedding or delaying ad-hoc arrivals).

use crate::cluster::{CapacityWindow, ClusterConfig};
use crate::job::{AdhocSubmission, SimWorkload};
use crate::trace::FaultRecord;
use flowtime_dag::{JobId, JobSpec, ResourceVec};
use serde::{Deserialize, Serialize};

/// Intensities of each fault class. All-zero (the [`FaultConfig::none`]
/// default) disables injection entirely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed from which every random choice below is derived.
    pub seed: u64,
    /// Log-normal σ of the `actual / estimated` work factor for workflow
    /// jobs. `0.0` leaves ground truth untouched; `0.3` yields roughly
    /// ±35% runtime errors.
    pub misestimate_sigma: f64,
    /// Fraction of base capacity removed during each churn window, in
    /// `[0, 1)`. `0.0` disables churn.
    pub churn_severity: f64,
    /// Mean slots between churn windows (each window lasts about a quarter
    /// of this). Ignored when `churn_severity` is zero.
    pub churn_period: u64,
    /// Number of extra ad-hoc jobs injected as bursts. `0` disables bursts.
    pub burst_jobs: usize,
    /// Upper bound on the random submission delay applied to each
    /// workflow, in slots. `0` disables delays.
    pub max_submit_delay: u64,
}

impl FaultConfig {
    /// No faults: applying the resulting plan changes nothing.
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            misestimate_sigma: 0.0,
            churn_severity: 0.0,
            churn_period: 200,
            burst_jobs: 0,
            max_submit_delay: 0,
        }
    }

    /// A moderate all-of-the-above mix, the default of the differential
    /// test suite and the `robustness` sweep.
    pub fn mixed(seed: u64) -> Self {
        FaultConfig {
            seed,
            misestimate_sigma: 0.25,
            churn_severity: 0.2,
            churn_period: 150,
            burst_jobs: 6,
            max_submit_delay: 20,
        }
    }

    /// Sets the misestimation σ.
    #[must_use]
    pub fn with_misestimate(mut self, sigma: f64) -> Self {
        self.misestimate_sigma = sigma.max(0.0);
        self
    }

    /// Sets *static* churn severity (fraction of capacity removed per
    /// window). Static churn is applied **once, before the run**: the
    /// degraded [`CapacityWindow`]s land in the [`ClusterConfig`], so
    /// planning schedulers can see them coming via `capacity_at`. For
    /// churn that surprises running jobs mid-flight, use
    /// [`RuntimeFaultConfig::with_crashes`] instead — that is the default
    /// churn path for new experiments.
    #[must_use]
    pub fn with_static_churn(mut self, severity: f64) -> Self {
        self.churn_severity = severity.clamp(0.0, 0.95);
        self
    }

    /// Deprecated-in-spirit alias for [`Self::with_static_churn`], kept so
    /// existing configs and goldens stay byte-identical. The name predates
    /// the mid-run [`RuntimeFaultPlan`] crash windows; "churn" here means
    /// the static, pre-run variant.
    #[must_use]
    pub fn with_churn(self, severity: f64) -> Self {
        self.with_static_churn(severity)
    }

    /// Sets the number of injected burst jobs.
    #[must_use]
    pub fn with_bursts(mut self, jobs: usize) -> Self {
        self.burst_jobs = jobs;
        self
    }

    /// Sets the maximum workflow submission delay.
    #[must_use]
    pub fn with_submit_delay(mut self, max_slots: u64) -> Self {
        self.max_submit_delay = max_slots;
        self
    }
}

/// A concrete, seeded injection plan. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// Builds a plan from a config.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Rewrites `workload` and `cluster` in place. `horizon` bounds where
    /// churn windows and bursts may land (pass the experiment's interesting
    /// range, e.g. the ad-hoc horizon — *not* the engine's `max_slots`
    /// safety bound).
    ///
    /// Deterministic: identical inputs and config produce identical
    /// rewrites, independent of platform.
    pub fn apply(&self, workload: &mut SimWorkload, cluster: &mut ClusterConfig, horizon: u64) {
        let _ = self.apply_recorded(workload, cluster, horizon);
    }

    /// Like [`Self::apply`], additionally returning one [`FaultRecord`]
    /// per concrete injection for the decision-trace layer. Recording only
    /// *observes* the rewrite — RNG consumption and the resulting
    /// workload/cluster are bit-identical to [`Self::apply`].
    pub fn apply_recorded(
        &self,
        workload: &mut SimWorkload,
        cluster: &mut ClusterConfig,
        horizon: u64,
    ) -> Vec<FaultRecord> {
        let mut rng = SplitMix64::new(self.config.seed);
        let mut records = Vec::new();
        self.delay_submissions(workload, &mut rng, &mut records);
        self.misestimate_runtimes(workload, &mut rng, &mut records);
        self.degrade_capacity(cluster, horizon, &mut rng, &mut records);
        self.inject_bursts(workload, horizon, &mut rng, &mut records);
        records
    }

    /// Shifts each workflow to a later submit slot (window length and
    /// milestone offsets preserved), uniformly in `[0, max_submit_delay]`.
    fn delay_submissions(
        &self,
        workload: &mut SimWorkload,
        rng: &mut SplitMix64,
        records: &mut Vec<FaultRecord>,
    ) {
        if self.config.max_submit_delay == 0 {
            return;
        }
        for sub in &mut workload.workflows {
            let delay = rng.below(self.config.max_submit_delay + 1);
            if delay == 0 {
                continue;
            }
            let wf = &sub.workflow;
            sub.workflow = wf.recur_at(wf.id(), wf.submit_slot() + delay);
            if let Some(milestones) = &mut sub.job_deadlines {
                for m in milestones.iter_mut() {
                    *m += delay;
                }
            }
            records.push(FaultRecord {
                kind: "submit-delay".into(),
                slot: sub.workflow.submit_slot(),
                detail: format!("{} delayed {delay} slots", sub.workflow.id()),
            });
        }
    }

    /// Replaces each workflow job's ground-truth work with
    /// `estimate * exp(σ·z)`, `z` standard normal — schedulers keep seeing
    /// the estimate. Submissions that already carry explicit `actual_work`
    /// are scaled from that ground truth instead.
    fn misestimate_runtimes(
        &self,
        workload: &mut SimWorkload,
        rng: &mut SplitMix64,
        records: &mut Vec<FaultRecord>,
    ) {
        let sigma = self.config.misestimate_sigma;
        if sigma <= 0.0 {
            return;
        }
        for sub in &mut workload.workflows {
            let base: Vec<u64> = match &sub.actual_work {
                Some(actual) => actual.clone(),
                None => sub.workflow.jobs().iter().map(JobSpec::work).collect(),
            };
            let faulted: Vec<u64> = base
                .iter()
                .map(|&w| {
                    let factor = (sigma * rng.standard_normal()).exp();
                    ((w as f64) * factor).round().max(1.0) as u64
                })
                .collect();
            records.push(FaultRecord {
                kind: "misestimate".into(),
                slot: sub.workflow.submit_slot(),
                detail: format!(
                    "{} ground truth rewritten across {} nodes",
                    sub.workflow.id(),
                    faulted.len()
                ),
            });
            sub.actual_work = Some(faulted);
        }
    }

    /// Adds capacity windows that remove `churn_severity` of the base
    /// capacity, spaced about `churn_period` slots apart within
    /// `[0, horizon)`, each lasting about a quarter period.
    fn degrade_capacity(
        &self,
        cluster: &mut ClusterConfig,
        horizon: u64,
        rng: &mut SplitMix64,
        records: &mut Vec<FaultRecord>,
    ) {
        let severity = self.config.churn_severity;
        if severity <= 0.0 || horizon == 0 {
            return;
        }
        let period = self.config.churn_period.max(4);
        let keep = 1.0 - severity.clamp(0.0, 0.95);
        let degraded = flowtime_dag::ResourceVec::new(
            cluster
                .capacity()
                .as_array()
                .map(|c| (((c as f64) * keep).floor() as u64).max(1)),
        );
        let mut start = rng.below(period);
        while start < horizon {
            let len = 1 + rng.below(period / 2).max(period / 4);
            let mut degraded_cluster = cluster.clone();
            degraded_cluster = degraded_cluster.with_capacity_window(start, start + len, degraded);
            *cluster = degraded_cluster;
            records.push(FaultRecord {
                kind: "capacity-churn".into(),
                slot: start,
                detail: format!("capacity degraded to {degraded:?} for {len} slots"),
            });
            start += period / 2 + rng.below(period);
        }
    }

    /// Injects `burst_jobs` extra ad-hoc jobs in tight clusters around a
    /// few burst centres in `[0, horizon)`. Container shape follows the
    /// existing ad-hoc jobs when present, else a 1-core task.
    fn inject_bursts(
        &self,
        workload: &mut SimWorkload,
        horizon: u64,
        rng: &mut SplitMix64,
        records: &mut Vec<FaultRecord>,
    ) {
        let n = self.config.burst_jobs;
        if n == 0 || horizon == 0 {
            return;
        }
        let template = workload
            .adhoc
            .first()
            .map(|s| (s.spec.per_task(), s.spec.max_parallel().unwrap_or(8)))
            .unwrap_or((flowtime_dag::ResourceVec::new([1, 1024]), 8));
        let per_burst = 3usize;
        let mut injected = 0usize;
        let mut burst_idx = 0u64;
        while injected < n {
            let centre = rng.below(horizon);
            for _ in 0..per_burst.min(n - injected) {
                let arrival = centre + rng.below(3);
                // Log-normal-ish work: median 8 task-slots, heavy tail.
                let work = ((8.0 * (0.9 * rng.standard_normal()).exp()).round() as u64).max(1);
                let tasks = work.min(template.1.max(1));
                let spec = JobSpec::new(
                    format!("burst-{burst_idx}-{injected}"),
                    tasks,
                    work.div_ceil(tasks),
                    template.0,
                )
                .with_max_parallel(template.1.max(1));
                records.push(FaultRecord {
                    kind: "burst".into(),
                    slot: arrival,
                    detail: spec.name().to_string(),
                });
                workload.adhoc.push(AdhocSubmission::new(spec, arrival));
                injected += 1;
            }
            burst_idx += 1;
        }
        // Engine semantics do not require sorted arrivals, but generators
        // emit them sorted; keep that property for downstream consumers.
        workload.adhoc.sort_by(|a, b| {
            a.arrival_slot
                .cmp(&b.arrival_slot)
                .then_with(|| a.spec.name().cmp(b.spec.name()))
        });
    }
}

/// Distinct salts keep the runtime-fault decision streams independent: the
/// same `(job, attempt)` pair feeds several unrelated questions (does the
/// attempt fail? where? is the job a straggler?) and must get uncorrelated
/// answers.
const TASK_SALT: u64 = 0x5157_4641_494C_0001;
const TASK_POINT_SALT: u64 = 0x5157_4641_494C_0002;
const CRASH_SALT: u64 = 0x5157_4641_494C_0003;
const CRASH_KILL_SALT: u64 = 0x5157_4641_494C_0004;
const STRAGGLER_SALT: u64 = 0x5157_4641_494C_0005;

/// Stateless hash-to-`(0,1)` used by every runtime-fault decision: a
/// SplitMix64 seeded from `(seed, a, b)`, burned once, then sampled. Pure
/// and platform-independent, so the engine and the offline auditor
/// recompute identical verdicts.
fn hash_unit(seed: u64, a: u64, b: u64) -> f64 {
    let mut rng = SplitMix64::new(
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9),
    );
    rng.next_u64();
    rng.unit()
}

/// Intensities of each *mid-run* fault class. All-zero rates (the
/// [`RuntimeFaultConfig::none`] default) make the plan inert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeFaultConfig {
    /// Seed from which every mid-run decision is derived.
    pub seed: u64,
    /// Probability that a given `(job, attempt)` pair fails before
    /// completing, in `[0, 1]`. `0.0` disables task failures.
    pub task_fail_rate: f64,
    /// Fraction of base capacity lost during each node-crash window, in
    /// `[0, 1)`. `0.0` disables crash windows.
    pub crash_severity: f64,
    /// Mean slots between crash windows (each lasts about a quarter of
    /// this). Ignored when `crash_severity` is zero.
    pub crash_period: u64,
    /// Probability that a job is a straggler, in `[0, 1]`. `0.0` disables
    /// straggler inflation.
    pub straggler_rate: f64,
    /// Fractional work inflation applied to a straggler's ground truth
    /// (e.g. `0.5` adds 50% extra work).
    pub straggler_factor: f64,
}

impl RuntimeFaultConfig {
    /// No mid-run faults: the resulting plan never fires.
    pub fn none(seed: u64) -> Self {
        RuntimeFaultConfig {
            seed,
            task_fail_rate: 0.0,
            crash_severity: 0.0,
            crash_period: 120,
            straggler_rate: 0.0,
            straggler_factor: 0.5,
        }
    }

    /// `true` when every rate is zero — the plan cannot change a run.
    pub fn is_inert(&self) -> bool {
        self.task_fail_rate <= 0.0 && self.crash_severity <= 0.0 && self.straggler_rate <= 0.0
    }

    /// Sets the per-attempt task failure probability.
    #[must_use]
    pub fn with_task_failures(mut self, rate: f64) -> Self {
        self.task_fail_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the node-crash severity (fraction of capacity lost per
    /// window). Crash windows are the mid-run counterpart of
    /// [`FaultConfig::with_static_churn`]: schedulers cannot foresee them.
    #[must_use]
    pub fn with_crashes(mut self, severity: f64) -> Self {
        self.crash_severity = severity.clamp(0.0, 0.95);
        self
    }

    /// Sets the mean slots between crash windows.
    #[must_use]
    pub fn with_crash_period(mut self, period: u64) -> Self {
        self.crash_period = period.max(4);
        self
    }

    /// Sets the straggler probability and work-inflation factor.
    #[must_use]
    pub fn with_stragglers(mut self, rate: f64, factor: f64) -> Self {
        self.straggler_rate = rate.clamp(0.0, 1.0);
        self.straggler_factor = factor.max(0.0);
        self
    }
}

/// How many ad-hoc arrivals to drop or defer under sustained overload.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Admit everything (no degradation).
    #[default]
    None,
    /// Drop ad-hoc arrivals outright while overloaded.
    Shed,
    /// Defer ad-hoc arrivals by a fixed number of slots while overloaded.
    Delay {
        /// Slots to push the arrival back by.
        slots: u64,
    },
}

/// Bounds on retries and the graceful-degradation rules applied when
/// mid-run faults fire. The [`Default`] gives three retries with a linear
/// one-slot backoff and no admission control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Maximum retries per job. The final permitted attempt always runs to
    /// completion (no lost jobs); `0` disables kills entirely.
    pub max_retries: u32,
    /// Backoff slots per retry: attempt `a` becomes runnable
    /// `1 + backoff_base * a` slots after its kill.
    pub backoff_base: u64,
    /// Admission control applied to ad-hoc arrivals under sustained
    /// overload.
    pub shed: ShedPolicy,
    /// Overload threshold: the ad-hoc backlog (remaining ground-truth
    /// work) must exceed `overload_factor x` current core capacity for a
    /// slot to count as overloaded.
    pub overload_factor: f64,
    /// Consecutive overloaded slots required before shedding/delaying
    /// starts. Clamped to at least 1, so arrivals at slot 0 are never
    /// shed.
    pub sustain_slots: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_base: 1,
            shed: ShedPolicy::None,
            overload_factor: 4.0,
            sustain_slots: 10,
        }
    }
}

impl RecoveryPolicy {
    /// Sets the retry bound.
    #[must_use]
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the per-retry backoff base.
    #[must_use]
    pub fn with_backoff(mut self, base: u64) -> Self {
        self.backoff_base = base;
        self
    }

    /// Sets the shed policy.
    #[must_use]
    pub fn with_shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = shed;
        self
    }

    /// Sets the overload detector (backlog factor and sustain slots).
    #[must_use]
    pub fn with_overload(mut self, factor: f64, sustain_slots: u64) -> Self {
        self.overload_factor = factor.max(0.0);
        self.sustain_slots = sustain_slots.max(1);
        self
    }
}

/// A mid-run fault plan plus the recovery policy that answers it — the
/// single value handed to [`crate::Engine::with_recovery`] and to the
/// auditor's [`crate::audit::certify_with_recovery`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverySetup {
    /// The mid-run fault intensities.
    pub faults: RuntimeFaultConfig,
    /// Retry bounds and degradation rules.
    pub policy: RecoveryPolicy,
}

impl RecoverySetup {
    /// Pairs a fault config with a recovery policy.
    pub fn new(faults: RuntimeFaultConfig, policy: RecoveryPolicy) -> Self {
        RecoverySetup { faults, policy }
    }

    /// `true` when the fault side can never fire; the engine then behaves
    /// byte-identically to a run without recovery.
    pub fn is_inert(&self) -> bool {
        self.faults.is_inert()
    }
}

/// The horizon within which crash windows are materialized for a
/// workload: the latest workflow deadline or ad-hoc arrival. The engine
/// and the auditor both use this, so their window lists agree.
pub fn runtime_fault_horizon(workload: &SimWorkload) -> u64 {
    let wf = workload
        .workflows
        .iter()
        .map(|s| s.workflow.submit_slot() + s.workflow.window_slots())
        .max()
        .unwrap_or(0);
    let adhoc = workload
        .adhoc
        .iter()
        .map(|s| s.arrival_slot + 1)
        .max()
        .unwrap_or(0);
    wf.max(adhoc).max(1)
}

/// A concrete, seeded mid-run injection plan. Every method is a pure
/// function of the config and its arguments — the engine consults it
/// during the run and the auditor replays the identical verdicts offline.
#[derive(Debug, Clone)]
pub struct RuntimeFaultPlan {
    config: RuntimeFaultConfig,
}

impl RuntimeFaultPlan {
    /// Builds a plan from a config.
    pub fn new(config: RuntimeFaultConfig) -> Self {
        RuntimeFaultPlan { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &RuntimeFaultConfig {
        &self.config
    }

    /// Materializes the node-crash windows over `[0, horizon)` against
    /// `base` capacity. Same spacing shape as the static churn path, but
    /// these windows live *outside* the [`ClusterConfig`]: the engine
    /// overlays them on `capacity_now` only, so planners never foresee
    /// them.
    pub fn crash_windows(&self, base: ResourceVec, horizon: u64) -> Vec<CapacityWindow> {
        let severity = self.config.crash_severity;
        if severity <= 0.0 || horizon == 0 {
            return Vec::new();
        }
        let period = self.config.crash_period.max(4);
        let keep = 1.0 - severity.clamp(0.0, 0.95);
        let degraded = ResourceVec::new(
            base.as_array()
                .map(|c| (((c as f64) * keep).floor() as u64).max(1)),
        );
        let mut rng = SplitMix64::new(self.config.seed ^ CRASH_SALT);
        let mut windows = Vec::new();
        let mut start = rng.below(period);
        while start < horizon {
            let len = 1 + rng.below(period / 2).max(period / 4);
            windows.push(CapacityWindow {
                from_slot: start,
                to_slot: start + len,
                capacity: degraded,
            });
            start += period / 2 + rng.below(period);
        }
        windows
    }

    /// Whether `job`, caught in flight when crash window `window_idx`
    /// opens, is on the lost capacity and killed. Probability equals the
    /// crash severity.
    pub fn crash_kills(&self, window_idx: u64, job: JobId) -> bool {
        let severity = self.config.crash_severity.clamp(0.0, 0.95);
        severity > 0.0
            && hash_unit(self.config.seed ^ CRASH_KILL_SALT, window_idx, job.as_u64()) < severity
    }

    /// Whether attempt `attempt` of `job` fails, and if so after how much
    /// cumulative work: returns the failure threshold in
    /// `[1, actual_work]` — the attempt dies in the slot its `done_work`
    /// first reaches it.
    pub fn attempt_failure(&self, job: JobId, attempt: u32, actual_work: u64) -> Option<u64> {
        let rate = self.config.task_fail_rate;
        if rate <= 0.0 || actual_work == 0 {
            return None;
        }
        if hash_unit(self.config.seed ^ TASK_SALT, job.as_u64(), attempt as u64) >= rate {
            return None;
        }
        let frac = hash_unit(
            self.config.seed ^ TASK_POINT_SALT,
            job.as_u64(),
            attempt as u64,
        );
        Some(1 + (frac * (actual_work - 1) as f64) as u64)
    }

    /// Extra ground-truth work a straggler `job` gains the first time it
    /// runs; `0` for non-stragglers.
    pub fn straggler_extra(&self, job: JobId, actual_work: u64) -> u64 {
        let rate = self.config.straggler_rate;
        if rate <= 0.0 || actual_work == 0 {
            return 0;
        }
        if hash_unit(self.config.seed ^ STRAGGLER_SALT, job.as_u64(), 0) >= rate {
            return 0;
        }
        (((actual_work as f64) * self.config.straggler_factor).round() as u64).max(1)
    }
}

/// SplitMix64: tiny, seedable, platform-independent PRNG. Kept private to
/// this crate so `flowtime-sim` stays dependency-free.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; returns 0 for `bound == 0`.
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is negligible for the bounds used here.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform in `(0, 1)`.
    fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) * (1.0 / ((1u64 << 53) as f64 + 1.0))
    }

    /// Standard normal via Box-Muller.
    fn standard_normal(&mut self) -> f64 {
        let u1 = self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{ResourceVec, WorkflowBuilder, WorkflowId};

    fn workload() -> SimWorkload {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "wf");
        let a = b.add_job(JobSpec::new("a", 4, 2, ResourceVec::new([1, 1024])));
        let c = b.add_job(JobSpec::new("c", 4, 2, ResourceVec::new([1, 1024])));
        b.add_dep(a, c).unwrap();
        let wf = b.window(5, 60).build().unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows
            .push(crate::job::WorkflowSubmission::new(wf).with_job_deadlines(vec![30, 60]));
        wl.adhoc.push(AdhocSubmission::new(
            JobSpec::new("adhoc-0", 2, 2, ResourceVec::new([1, 512])),
            3,
        ));
        wl
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::new(ResourceVec::new([16, 65_536]), 10.0)
    }

    #[test]
    fn zero_config_is_identity() {
        let mut wl = workload();
        let mut cl = cluster();
        FaultPlan::new(FaultConfig::none(99)).apply(&mut wl, &mut cl, 500);
        assert_eq!(wl, workload());
        assert_eq!(cl, cluster());
    }

    #[test]
    fn same_seed_same_rewrite() {
        let (mut wl_a, mut cl_a) = (workload(), cluster());
        let (mut wl_b, mut cl_b) = (workload(), cluster());
        let plan = FaultPlan::new(FaultConfig::mixed(7));
        plan.apply(&mut wl_a, &mut cl_a, 500);
        plan.apply(&mut wl_b, &mut cl_b, 500);
        assert_eq!(wl_a, wl_b);
        assert_eq!(cl_a, cl_b);
    }

    #[test]
    fn different_seeds_diverge() {
        let (mut wl_a, mut cl_a) = (workload(), cluster());
        let (mut wl_b, mut cl_b) = (workload(), cluster());
        FaultPlan::new(FaultConfig::mixed(1)).apply(&mut wl_a, &mut cl_a, 500);
        FaultPlan::new(FaultConfig::mixed(2)).apply(&mut wl_b, &mut cl_b, 500);
        assert_ne!((wl_a, cl_a), (wl_b, cl_b));
    }

    #[test]
    fn misestimation_sets_actual_work() {
        let mut wl = workload();
        let mut cl = cluster();
        FaultPlan::new(FaultConfig::none(3).with_misestimate(0.4)).apply(&mut wl, &mut cl, 500);
        let actual = wl.workflows[0].actual_work.as_ref().expect("injected");
        assert_eq!(actual.len(), 2);
        assert!(actual.iter().all(|&w| w >= 1));
        // Cluster untouched by this fault class.
        assert_eq!(cl, cluster());
    }

    #[test]
    fn churn_adds_degraded_windows() {
        let mut wl = workload();
        let mut cl = cluster();
        FaultPlan::new(FaultConfig::none(3).with_churn(0.5)).apply(&mut wl, &mut cl, 1_000);
        assert!(cl.has_capacity_windows());
        let base = cluster().capacity();
        let mut saw_degraded = false;
        for slot in 0..1_000 {
            let cap = cl.capacity_at(slot);
            assert!(cap.fits_within(&base));
            if cap != base {
                saw_degraded = true;
                assert_eq!(cap, ResourceVec::new([8, 32_768]));
            }
        }
        assert!(saw_degraded);
    }

    #[test]
    fn bursts_add_adhoc_jobs_within_horizon() {
        let mut wl = workload();
        let mut cl = cluster();
        let before = wl.adhoc.len();
        FaultPlan::new(FaultConfig::none(3).with_bursts(9)).apply(&mut wl, &mut cl, 400);
        assert_eq!(wl.adhoc.len(), before + 9);
        for sub in &wl.adhoc {
            assert!(sub.arrival_slot < 400 + 3);
            assert!(sub.spec.work() >= 1);
        }
        // Sorted by arrival.
        for w in wl.adhoc.windows(2) {
            assert!(w[0].arrival_slot <= w[1].arrival_slot);
        }
    }

    #[test]
    fn recorded_apply_matches_apply_and_reports_each_injection() {
        let (mut wl_a, mut cl_a) = (workload(), cluster());
        let (mut wl_b, mut cl_b) = (workload(), cluster());
        let plan = FaultPlan::new(FaultConfig::mixed(7));
        plan.apply(&mut wl_a, &mut cl_a, 500);
        let records = plan.apply_recorded(&mut wl_b, &mut cl_b, 500);
        // Recording observes; it never perturbs the rewrite.
        assert_eq!(wl_a, wl_b);
        assert_eq!(cl_a, cl_b);
        assert!(records.iter().any(|r| r.kind == "misestimate"));
        assert!(records.iter().any(|r| r.kind == "capacity-churn"));
        assert_eq!(records.iter().filter(|r| r.kind == "burst").count(), 6);
        // The identity plan has nothing to report.
        let none = FaultPlan::new(FaultConfig::none(7)).apply_recorded(
            &mut workload(),
            &mut cluster(),
            500,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn static_churn_alias_matches_with_churn() {
        let a = FaultConfig::none(3).with_churn(0.5);
        let b = FaultConfig::none(3).with_static_churn(0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn inert_runtime_plan_never_fires() {
        let plan = RuntimeFaultPlan::new(RuntimeFaultConfig::none(42));
        assert!(plan.config().is_inert());
        assert!(plan
            .crash_windows(ResourceVec::new([16, 65_536]), 1_000)
            .is_empty());
        for raw in 0..50u64 {
            let id = JobId::new(raw);
            assert_eq!(plan.attempt_failure(id, 0, 100), None);
            assert_eq!(plan.straggler_extra(id, 100), 0);
            assert!(!plan.crash_kills(0, id));
        }
    }

    #[test]
    fn attempt_failure_is_deterministic_and_bounded() {
        let plan = RuntimeFaultPlan::new(RuntimeFaultConfig::none(9).with_task_failures(0.5));
        let mut fired = 0usize;
        for raw in 0..200u64 {
            let id = JobId::new(raw);
            let a = plan.attempt_failure(id, 1, 37);
            assert_eq!(a, plan.attempt_failure(id, 1, 37));
            if let Some(fail_at) = a {
                fired += 1;
                assert!((1..=37).contains(&fail_at));
            }
        }
        // Roughly half of 200 jobs should fail at rate 0.5.
        assert!((60..=140).contains(&fired), "fired {fired}");
        // Different attempts of the same job draw independently.
        let id = JobId::new(7);
        let per_attempt: Vec<_> = (0..20).map(|a| plan.attempt_failure(id, a, 37)).collect();
        assert!(per_attempt.iter().any(Option::is_some));
        assert!(per_attempt.iter().any(Option::is_none));
    }

    #[test]
    fn crash_windows_are_seeded_and_degraded() {
        let plan = RuntimeFaultPlan::new(
            RuntimeFaultConfig::none(5)
                .with_crashes(0.5)
                .with_crash_period(50),
        );
        let base = ResourceVec::new([16, 65_536]);
        let windows = plan.crash_windows(base, 1_000);
        assert!(!windows.is_empty());
        for w in &windows {
            assert!(w.from_slot < w.to_slot);
            assert!(w.from_slot < 1_000);
            assert_eq!(w.capacity, ResourceVec::new([8, 32_768]));
        }
        for pair in windows.windows(2) {
            assert!(pair[0].from_slot < pair[1].from_slot);
        }
        assert_eq!(windows, plan.crash_windows(base, 1_000));
        // Some in-flight jobs are killed, some survive, deterministically.
        let kills: Vec<bool> = (0..40)
            .map(|r| plan.crash_kills(0, JobId::new(r)))
            .collect();
        assert!(kills.iter().any(|&k| k));
        assert!(kills.iter().any(|&k| !k));
        assert_eq!(
            kills,
            (0..40)
                .map(|r| plan.crash_kills(0, JobId::new(r)))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn straggler_extra_scales_with_factor() {
        let plan = RuntimeFaultPlan::new(RuntimeFaultConfig::none(11).with_stragglers(0.3, 0.5));
        let mut hit = 0usize;
        for raw in 0..200u64 {
            let id = JobId::new(raw);
            let extra = plan.straggler_extra(id, 40);
            assert_eq!(extra, plan.straggler_extra(id, 40));
            if extra > 0 {
                hit += 1;
                assert_eq!(extra, 20);
            }
        }
        assert!((30..=90).contains(&hit), "hit {hit}");
    }

    #[test]
    fn runtime_horizon_covers_deadlines_and_arrivals() {
        let wl = workload();
        // Workflow submits at 5 with a 55-slot window; ad-hoc arrival 3.
        assert_eq!(runtime_fault_horizon(&wl), 60);
        assert_eq!(runtime_fault_horizon(&SimWorkload::default()), 1);
    }

    #[test]
    fn delays_shift_window_and_milestones_together() {
        let mut wl = workload();
        let mut cl = cluster();
        FaultPlan::new(FaultConfig::none(12345).with_submit_delay(40)).apply(&mut wl, &mut cl, 500);
        let sub = &wl.workflows[0];
        let delay = sub.workflow.submit_slot() - 5;
        assert!(delay <= 40);
        assert_eq!(sub.workflow.window_slots(), 55);
        assert_eq!(
            sub.job_deadlines.as_ref().unwrap(),
            &vec![30 + delay, 60 + delay]
        );
    }
}
