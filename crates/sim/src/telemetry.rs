//! Per-run solver and engine telemetry.
//!
//! Schedulers that re-solve an optimization problem on every replan (the
//! FlowTime LP path) expose counters describing how much solver work the
//! run cost and how much of it was avoided by warm starts and plan
//! caching. The engine snapshots these counters into
//! [`crate::SimOutcome::solver_telemetry`] at the end of a run, and the
//! CLI/bench layers render them next to the scheduling metrics.
//!
//! [`EngineTelemetry`] is the engine's own effort report: event-queue
//! traffic, peak live-job population, and wall time of the run loop. It
//! lands in [`crate::SimOutcome::engine_telemetry`] and is what the sweep
//! runner rolls up to show what a many-run sweep cost.
//!
//! All counter fields are deterministic functions of the (workload,
//! cluster, scheduler-config) triple, so they serialize into golden
//! fixtures. The nondeterministic fields — accumulated wall-clock time —
//! are deliberately excluded from serialization *and* equality so
//! byte-identity assertions over serialized outcomes stay meaningful
//! across machines and thread counts.

use serde::{DeError, Deserialize, Serialize, Value};

/// Counters describing solver effort across all replans of one run.
///
/// `PartialEq` and serde intentionally ignore [`replan_wall_nanos`]
/// (wall-clock time is machine-dependent); every other field participates.
///
/// [`replan_wall_nanos`]: SolverTelemetry::replan_wall_nanos
#[derive(Debug, Clone, Default)]
pub struct SolverTelemetry {
    /// Full replans performed (LP or flow re-solved, or cache hit).
    pub replans: u64,
    /// Simplex solves that ran the cold two-phase path.
    pub cold_solves: u64,
    /// Simplex solves warm-started from a previous optimal basis.
    pub warm_solves: u64,
    /// Warm-start attempts that fell back to a cold solve (basis
    /// incompatible or repair failed). Counted in `cold_solves` too.
    pub warm_fallbacks: u64,
    /// Simplex pivots spent in cold solves.
    pub cold_pivots: u64,
    /// Simplex pivots spent in (successful) warm-started solves.
    pub warm_pivots: u64,
    /// Replans answered verbatim by the plan cache (identical problem).
    pub cache_hits_exact: u64,
    /// Replans answered by time-shifting the cached plan (pure elapsed-time
    /// relabel of the previous problem).
    pub cache_hits_shift: u64,
    /// Replans that had to re-solve because no cached plan applied.
    pub cache_misses: u64,
    /// Replans solved by the parametric-flow backend (no simplex).
    pub flow_solves: u64,
    /// Replans whose solve failed, degrading the scheduler to greedy mode.
    pub degraded_replans: u64,
    /// Accumulated wall-clock nanoseconds spent inside replans. Excluded
    /// from serialization and equality: wall time is not deterministic.
    pub replan_wall_nanos: u64,
}

impl SolverTelemetry {
    /// Total simplex solves, cold and warm.
    pub fn total_solves(&self) -> u64 {
        self.cold_solves + self.warm_solves
    }

    /// Adds `other`'s counters into `self` (sweep rollups). Wall time
    /// accumulates too, though it stays invisible to serde and equality.
    pub fn accumulate(&mut self, other: &SolverTelemetry) {
        self.replans += other.replans;
        self.cold_solves += other.cold_solves;
        self.warm_solves += other.warm_solves;
        self.warm_fallbacks += other.warm_fallbacks;
        self.cold_pivots += other.cold_pivots;
        self.warm_pivots += other.warm_pivots;
        self.cache_hits_exact += other.cache_hits_exact;
        self.cache_hits_shift += other.cache_hits_shift;
        self.cache_misses += other.cache_misses;
        self.flow_solves += other.flow_solves;
        self.degraded_replans += other.degraded_replans;
        self.replan_wall_nanos += other.replan_wall_nanos;
    }

    /// Total cache hits of either kind.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits_exact + self.cache_hits_shift
    }

    /// One-line human summary for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "replans {} | simplex cold/warm {}/{} (fallbacks {}) | pivots cold/warm {}/{} | \
             cache hits {} (exact {}, shift {}) misses {} | flow solves {} | degraded {} | \
             replan wall {:.3} ms",
            self.replans,
            self.cold_solves,
            self.warm_solves,
            self.warm_fallbacks,
            self.cold_pivots,
            self.warm_pivots,
            self.cache_hits(),
            self.cache_hits_exact,
            self.cache_hits_shift,
            self.cache_misses,
            self.flow_solves,
            self.degraded_replans,
            self.replan_wall_nanos as f64 / 1e6,
        )
    }
}

/// Field order for the serialized map (and the golden fixture).
const FIELDS: [&str; 11] = [
    "replans",
    "cold_solves",
    "warm_solves",
    "warm_fallbacks",
    "cold_pivots",
    "warm_pivots",
    "cache_hits_exact",
    "cache_hits_shift",
    "cache_misses",
    "flow_solves",
    "degraded_replans",
];

impl SolverTelemetry {
    fn field(&self, name: &str) -> u64 {
        match name {
            "replans" => self.replans,
            "cold_solves" => self.cold_solves,
            "warm_solves" => self.warm_solves,
            "warm_fallbacks" => self.warm_fallbacks,
            "cold_pivots" => self.cold_pivots,
            "warm_pivots" => self.warm_pivots,
            "cache_hits_exact" => self.cache_hits_exact,
            "cache_hits_shift" => self.cache_hits_shift,
            "cache_misses" => self.cache_misses,
            "flow_solves" => self.flow_solves,
            "degraded_replans" => self.degraded_replans,
            _ => unreachable!("unknown telemetry field {name}"),
        }
    }
}

// Manual impls rather than derives: `replan_wall_nanos` must stay out of
// both the serialized form and equality (see the module docs).
impl PartialEq for SolverTelemetry {
    fn eq(&self, other: &Self) -> bool {
        FIELDS.iter().all(|f| self.field(f) == other.field(f))
    }
}

impl Serialize for SolverTelemetry {
    fn to_value(&self) -> Value {
        Value::Map(
            FIELDS
                .iter()
                .map(|&f| (f.to_string(), Value::U64(self.field(f))))
                .collect(),
        )
    }
}

impl Deserialize for SolverTelemetry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v.as_map().ok_or_else(|| DeError::expected("object", v))?;
        let get = |name: &str| -> Result<u64, DeError> {
            match serde::find(map, name) {
                Some(value) => u64::from_value(value),
                None => Err(DeError::custom(format!(
                    "missing field `SolverTelemetry.{name}`"
                ))),
            }
        };
        Ok(SolverTelemetry {
            replans: get("replans")?,
            cold_solves: get("cold_solves")?,
            warm_solves: get("warm_solves")?,
            warm_fallbacks: get("warm_fallbacks")?,
            cold_pivots: get("cold_pivots")?,
            warm_pivots: get("warm_pivots")?,
            cache_hits_exact: get("cache_hits_exact")?,
            cache_hits_shift: get("cache_hits_shift")?,
            cache_misses: get("cache_misses")?,
            flow_solves: get("flow_solves")?,
            degraded_replans: get("degraded_replans")?,
            replan_wall_nanos: 0,
        })
    }
}

/// Counters describing the engine's own per-run effort (as opposed to the
/// scheduler's solver effort in [`SolverTelemetry`]).
///
/// `PartialEq` and serde intentionally ignore [`wall_nanos`] — wall-clock
/// time is machine-dependent, and excluding it is what lets serialized
/// [`crate::SimOutcome`]s be compared byte-for-byte across thread counts
/// and hosts.
///
/// [`wall_nanos`]: EngineTelemetry::wall_nanos
#[derive(Debug, Clone, Default)]
pub struct EngineTelemetry {
    /// Slots the run loop simulated (= `slots_elapsed` for complete runs).
    pub slots_simulated: u64,
    /// Arrival/ready events popped off the event heap.
    pub events_processed: u64,
    /// Total event-heap operations (pushes plus pops).
    pub heap_ops: u64,
    /// Peak number of live (arrived, incomplete) jobs observed in any slot.
    pub peak_live_jobs: u64,
    /// Wall-clock nanoseconds spent inside the run loop. Excluded from
    /// serialization and equality: wall time is not deterministic.
    pub wall_nanos: u64,
}

/// Field order for the serialized map (and the golden fixtures).
const ENGINE_FIELDS: [&str; 4] = [
    "slots_simulated",
    "events_processed",
    "heap_ops",
    "peak_live_jobs",
];

impl EngineTelemetry {
    fn field(&self, name: &str) -> u64 {
        match name {
            "slots_simulated" => self.slots_simulated,
            "events_processed" => self.events_processed,
            "heap_ops" => self.heap_ops,
            "peak_live_jobs" => self.peak_live_jobs,
            _ => unreachable!("unknown engine telemetry field {name}"),
        }
    }

    /// Adds `other`'s counters into `self` (sweep rollups). Wall time
    /// accumulates too; peak live jobs takes the maximum across runs.
    pub fn accumulate(&mut self, other: &EngineTelemetry) {
        self.slots_simulated += other.slots_simulated;
        self.events_processed += other.events_processed;
        self.heap_ops += other.heap_ops;
        self.peak_live_jobs = self.peak_live_jobs.max(other.peak_live_jobs);
        self.wall_nanos += other.wall_nanos;
    }

    /// One-line human summary for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "slots {} | events {} | heap ops {} | peak live jobs {} | wall {:.3} ms",
            self.slots_simulated,
            self.events_processed,
            self.heap_ops,
            self.peak_live_jobs,
            self.wall_nanos as f64 / 1e6,
        )
    }
}

// Manual impls rather than derives: `wall_nanos` must stay out of both the
// serialized form and equality (see the struct docs).
impl PartialEq for EngineTelemetry {
    fn eq(&self, other: &Self) -> bool {
        ENGINE_FIELDS
            .iter()
            .all(|f| self.field(f) == other.field(f))
    }
}

impl Serialize for EngineTelemetry {
    fn to_value(&self) -> Value {
        Value::Map(
            ENGINE_FIELDS
                .iter()
                .map(|&f| (f.to_string(), Value::U64(self.field(f))))
                .collect(),
        )
    }
}

impl Deserialize for EngineTelemetry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v.as_map().ok_or_else(|| DeError::expected("object", v))?;
        let get = |name: &str| -> Result<u64, DeError> {
            match serde::find(map, name) {
                Some(value) => u64::from_value(value),
                None => Err(DeError::custom(format!(
                    "missing field `EngineTelemetry.{name}`"
                ))),
            }
        };
        Ok(EngineTelemetry {
            slots_simulated: get("slots_simulated")?,
            events_processed: get("events_processed")?,
            heap_ops: get("heap_ops")?,
            peak_live_jobs: get("peak_live_jobs")?,
            wall_nanos: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SolverTelemetry {
        SolverTelemetry {
            replans: 9,
            cold_solves: 3,
            warm_solves: 12,
            warm_fallbacks: 1,
            cold_pivots: 140,
            warm_pivots: 22,
            cache_hits_exact: 2,
            cache_hits_shift: 1,
            cache_misses: 6,
            flow_solves: 0,
            degraded_replans: 0,
            replan_wall_nanos: 123_456,
        }
    }

    #[test]
    fn wall_time_is_invisible_to_equality_and_serde() {
        let a = sample();
        let mut b = sample();
        b.replan_wall_nanos = 999_999_999;
        assert_eq!(a, b);
        assert_eq!(a.to_value(), b.to_value());
        let back = SolverTelemetry::from_value(&a.to_value()).unwrap();
        assert_eq!(back.replan_wall_nanos, 0);
        assert_eq!(back, a);
    }

    #[test]
    fn counters_round_trip() {
        let t = sample();
        let back = SolverTelemetry::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.total_solves(), 15);
        assert_eq!(back.cache_hits(), 3);
    }

    #[test]
    fn counter_differences_break_equality() {
        let a = sample();
        let mut b = sample();
        b.warm_solves += 1;
        assert_ne!(a, b);
    }

    #[test]
    fn summary_mentions_every_headline_number() {
        let s = sample().summary();
        for needle in ["replans 9", "3/12", "140/22", "hits 3", "misses 6"] {
            assert!(s.contains(needle), "`{s}` missing `{needle}`");
        }
    }

    #[test]
    fn missing_counter_fields_are_rejected() {
        let v = Value::Map(vec![("replans".to_string(), Value::U64(1))]);
        assert!(SolverTelemetry::from_value(&v).is_err());
    }

    fn engine_sample() -> EngineTelemetry {
        EngineTelemetry {
            slots_simulated: 40,
            events_processed: 12,
            heap_ops: 25,
            peak_live_jobs: 7,
            wall_nanos: 555,
        }
    }

    #[test]
    fn engine_wall_time_is_invisible_to_equality_and_serde() {
        let a = engine_sample();
        let mut b = engine_sample();
        b.wall_nanos = 1_000_000_000;
        assert_eq!(a, b);
        assert_eq!(a.to_value(), b.to_value());
        let back = EngineTelemetry::from_value(&a.to_value()).unwrap();
        assert_eq!(back.wall_nanos, 0);
        assert_eq!(back, a);
    }

    #[test]
    fn engine_counters_round_trip_and_differ() {
        let a = engine_sample();
        let back = EngineTelemetry::from_value(&a.to_value()).unwrap();
        assert_eq!(back, a);
        let mut b = engine_sample();
        b.heap_ops += 1;
        assert_ne!(a, b);
        assert!(EngineTelemetry::from_value(&Value::U64(3)).is_err());
    }

    #[test]
    fn accumulate_sums_counters_and_maxes_peak() {
        let mut solver = sample();
        solver.accumulate(&sample());
        assert_eq!(solver.replans, 18);
        assert_eq!(solver.cold_pivots, 280);
        assert_eq!(solver.replan_wall_nanos, 246_912);

        let mut engine = engine_sample();
        let mut other = engine_sample();
        other.peak_live_jobs = 3;
        engine.accumulate(&other);
        assert_eq!(engine.slots_simulated, 80);
        assert_eq!(engine.peak_live_jobs, 7);
        assert_eq!(engine.wall_nanos, 1110);
        let s = engine.summary();
        assert!(s.contains("slots 80"), "{s}");
    }
}
