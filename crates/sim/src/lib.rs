//! Slot-based discrete-event cluster simulator.
//!
//! The paper evaluates FlowTime on a YARN cluster plus trace-driven
//! simulation. This crate is the simulation substrate: a deterministic,
//! slot-based cluster model against which every scheduling algorithm in the
//! reproduction (FlowTime and the five baselines) runs under identical
//! workloads.
//!
//! # Model
//!
//! * Time advances in discrete **slots** (the paper uses 10 s slots). Each
//!   slot, the active [`Scheduler`] is asked for an allocation: how many
//!   concurrent tasks of each runnable job to run during that slot.
//! * A job is a batch of identical tasks ([`flowtime_dag::JobSpec`]);
//!   running `q` tasks for one slot performs `q` task-slots of **work** and
//!   occupies `q ×` the job's per-task [`flowtime_dag::ResourceVec`]. The
//!   job completes when accumulated work reaches its *actual* work, which
//!   may differ from the scheduler-visible estimate (estimation error,
//!   Section III-A "robustness").
//! * **Deadline jobs** belong to workflows and become ready when their DAG
//!   predecessors complete. **Ad-hoc jobs** arrive at any slot and their
//!   size is invisible to schedulers ([`state::JobView::estimated_remaining`]
//!   is `None`), exactly as in the paper's system model (Section II-A).
//! * The engine validates every allocation (capacity, readiness,
//!   parallelism caps) and rejects schedulers that cheat with a
//!   [`SimError`].
//!
//! # Example
//!
//! ```
//! use flowtime_sim::prelude::*;
//! use flowtime_dag::prelude::*;
//!
//! /// A trivial scheduler: run every ready job at full parallelism FIFO.
//! struct Greedy;
//! impl Scheduler for Greedy {
//!     fn name(&self) -> &'static str { "greedy" }
//!     fn plan_slot(&mut self, state: &SimState) -> Allocation {
//!         let mut alloc = Allocation::new();
//!         let mut free = state.capacity();
//!         for job in state.runnable_jobs() {
//!             let fit = job.per_task.times_fitting(&free).min(job.max_tasks_this_slot);
//!             if fit > 0 {
//!                 alloc.assign(job.id, fit);
//!                 free -= job.per_task * fit;
//!             }
//!         }
//!         alloc
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut workload = SimWorkload::default();
//! workload.adhoc.push(AdhocSubmission::new(
//!     JobSpec::new("adhoc", 8, 2, ResourceVec::new([1, 1024])),
//!     0,
//! ));
//! let cluster = ClusterConfig::new(ResourceVec::new([8, 65536]), 10.0);
//! let outcome = Engine::new(cluster, workload, 1_000)?.run(&mut Greedy)?;
//! assert_eq!(outcome.metrics.completed_jobs(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cluster;
pub mod engine;
pub mod error;
pub mod explain;
pub mod faults;
pub mod invariants;
pub mod job;
pub mod metrics;
pub mod online;
#[cfg(any(test, feature = "oracle"))]
pub mod oracle;
pub mod placement;
pub mod scheduler;
pub mod shard;
pub mod state;
pub mod submission;
pub mod sweep;
pub mod telemetry;
pub mod timeline;
pub mod trace;
pub mod whatif;

pub use audit::{
    certify, certify_log, certify_sharded, certify_with_recovery, AuditReport, AuditViolation,
};
pub use cluster::ClusterConfig;
pub use engine::{Engine, SimOutcome, StepOutcome};
pub use error::SimError;
pub use explain::{
    explain, explain_log, Diagnostic, EventRef, ExplainError, ExplainReport, WorkflowExplanation,
};
pub use faults::{
    runtime_fault_horizon, FaultConfig, FaultPlan, RecoveryPolicy, RecoverySetup,
    RuntimeFaultConfig, RuntimeFaultPlan, ShedPolicy,
};
pub use invariants::InvariantChecker;
pub use job::{AdhocSubmission, JobClass, SimWorkload, WorkflowSubmission};
pub use metrics::{
    InFlightJob, JobOutcome, Metrics, MissAttribution, NodeSlackUse, RecoveryStats, ShedJob,
};
pub use online::{OnlineEngine, OnlineStatus};
#[cfg(any(test, feature = "oracle"))]
pub use oracle::OracleEngine;
pub use placement::{NodePool, PackResult};
pub use scheduler::{Allocation, Scheduler};
pub use shard::{
    place, place_log, pod_cluster, run_sharded, run_sharded_traced, split_capacity, PlacementLog,
    Placer, PlacerState, PodAssignment, RebalanceEvent, ShardClass, ShardSpec, ShardedOutcome,
};
pub use state::{JobView, SimState, WorkflowView};
pub use submission::{EffectiveSubmission, LogEntry, SubmissionLog};
pub use sweep::run_cells;
pub use telemetry::{EngineTelemetry, SolverTelemetry};
pub use timeline::{Timeline, TimelineEntry};
pub use trace::{
    DecisionTrace, FaultRecord, TraceError, TraceEvent, TraceHandle, TraceHeader, TraceJobMeta,
    DEFAULT_TRACE_CAPACITY,
};
pub use whatif::{
    certified_diff, certified_sharded_diff, diff_runs, run_policy, DiffRow, DiffSummary,
    Divergence, JobFate, RunArtifacts, ShardedRunArtifacts, WhatIfDiff, WhatIfError,
    WorkflowDiffRow,
};

/// Serde `skip_serializing_if` predicates shared by the outcome types:
/// every recovery-era field is skipped at its default so outcomes from
/// runs without mid-run faults stay byte-identical to older ones.
pub mod serde_skip {
    /// True for zero (skip the field).
    pub fn zero_u64(v: &u64) -> bool {
        *v == 0
    }

    /// True for an empty vector (skip the field).
    pub fn empty_vec<T>(v: &[T]) -> bool {
        v.is_empty()
    }
}

/// Convenience re-exports for schedulers and experiment harnesses.
pub mod prelude {
    pub use crate::job::SimWorkload;
    pub use crate::{
        certify, certify_with_recovery, AdhocSubmission, Allocation, AuditReport, ClusterConfig,
        DecisionTrace, Engine, EngineTelemetry, FaultConfig, FaultPlan, InFlightJob, JobClass,
        JobView, Metrics, MissAttribution, RecoveryPolicy, RecoverySetup, RecoveryStats,
        RuntimeFaultConfig, RuntimeFaultPlan, Scheduler, ShedPolicy, SimError, SimOutcome,
        SimState, SolverTelemetry, TraceHandle, WorkflowSubmission, WorkflowView,
    };
}
