//! Allocation timelines and ASCII Gantt rendering.
//!
//! When enabled ([`crate::Engine::with_timeline`]), the engine records every
//! `(slot, job, tasks)` allocation triple. [`render_gantt`] turns the
//! recording into a terminal Gantt chart — the fastest way to *see* the
//! difference between EDF's monolithic blocks and FlowTime's leveled
//! profile (the shapes of the paper's Fig. 1).

use crate::metrics::Metrics;
use flowtime_dag::JobId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One allocation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Slot the allocation applied to.
    pub slot: u64,
    /// The job allocated to.
    pub job: JobId,
    /// Concurrent tasks granted.
    pub tasks: u64,
}

/// A complete allocation recording.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// Entries in slot order (ties in job-id order).
    pub entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Total task-slots allocated to `job` over the run.
    pub fn total_for(&self, job: JobId) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.job == job)
            .map(|e| e.tasks)
            .sum()
    }

    /// The last slot with any allocation (0 for empty recordings).
    pub fn horizon(&self) -> u64 {
        self.entries.iter().map(|e| e.slot + 1).max().unwrap_or(0)
    }
}

/// Intensity ramp used for cells: blank → full block.
const RAMP: [char; 5] = [' ', '░', '▒', '▓', '█'];

/// Renders the recording as an ASCII Gantt chart of at most `width`
/// columns, one row per job (labelled with the job id and, from `metrics`,
/// its class). Each cell's shade is the job's allocation in that time
/// bucket relative to its own peak.
///
/// # Example
///
/// ```
/// use flowtime_sim::timeline::{render_gantt, Timeline, TimelineEntry};
/// use flowtime_dag::JobId;
/// let tl = Timeline {
///     entries: vec![
///         TimelineEntry { slot: 0, job: JobId::new(0), tasks: 4 },
///         TimelineEntry { slot: 1, job: JobId::new(0), tasks: 2 },
///     ],
/// };
/// let chart = render_gantt(&tl, None, 10);
/// assert!(chart.contains("job-0"));
/// ```
pub fn render_gantt(timeline: &Timeline, metrics: Option<&Metrics>, width: usize) -> String {
    let horizon = timeline.horizon().max(1);
    let width = width.clamp(1, 400) as u64;
    let bucket = horizon.div_ceil(width);
    // job -> bucket -> tasks
    let mut rows: BTreeMap<JobId, Vec<u64>> = BTreeMap::new();
    let cols = horizon.div_ceil(bucket) as usize;
    for e in &timeline.entries {
        let row = rows.entry(e.job).or_insert_with(|| vec![0; cols]);
        row[(e.slot / bucket) as usize] += e.tasks;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "one column = {bucket} slot(s); shade = share of the job's peak rate"
    );
    for (job, buckets) in &rows {
        let peak = buckets.iter().copied().max().unwrap_or(0).max(1);
        let label = metrics
            .and_then(|m| m.jobs.iter().find(|j| j.id == *job))
            .map(|j| {
                if j.class.is_adhoc() {
                    format!("{job} (ad-hoc)")
                } else {
                    format!("{job}")
                }
            })
            .unwrap_or_else(|| format!("{job}"));
        let _ = write!(out, "{label:<18}|");
        for &b in buckets {
            let idx = if b == 0 {
                0
            } else {
                1 + (b * (RAMP.len() as u64 - 2) / peak) as usize
            };
            out.push(RAMP[idx.min(RAMP.len() - 1)]);
        }
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(slot: u64, job: u64, tasks: u64) -> TimelineEntry {
        TimelineEntry {
            slot,
            job: JobId::new(job),
            tasks,
        }
    }

    #[test]
    fn totals_and_horizon() {
        let tl = Timeline {
            entries: vec![entry(0, 1, 3), entry(1, 1, 2), entry(5, 2, 7)],
        };
        assert_eq!(tl.total_for(JobId::new(1)), 5);
        assert_eq!(tl.total_for(JobId::new(2)), 7);
        assert_eq!(tl.total_for(JobId::new(9)), 0);
        assert_eq!(tl.horizon(), 6);
        assert_eq!(Timeline::default().horizon(), 0);
    }

    #[test]
    fn gantt_renders_one_row_per_job() {
        let tl = Timeline {
            entries: vec![entry(0, 1, 4), entry(1, 1, 4), entry(0, 2, 1)],
        };
        let chart = render_gantt(&tl, None, 20);
        let rows: Vec<&str> = chart.lines().skip(1).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("job-1"));
        assert!(rows[1].starts_with("job-2"));
        // Full-intensity cells for job 1's peak slots.
        assert!(rows[0].contains('█'));
    }

    #[test]
    fn gantt_buckets_long_horizons() {
        let entries: Vec<TimelineEntry> = (0..1000).map(|s| entry(s, 1, 2)).collect();
        let tl = Timeline { entries };
        let chart = render_gantt(&tl, None, 50);
        let row = chart.lines().nth(1).unwrap();
        // 1000 slots into <= 50 columns plus label and frame.
        assert!(row.chars().count() < 80, "{row}");
    }

    #[test]
    fn empty_timeline_renders() {
        let chart = render_gantt(&Timeline::default(), None, 10);
        assert!(chart.contains("one column"));
    }
}
