//! Work-stealing parallel execution of independent simulation cells.
//!
//! Experiment sweeps run many `(scheduler × seed × scenario)` cells, each a
//! fully isolated simulation: no shared mutable state, no ordering
//! dependence. [`run_cells`] fans such cells out over `std::thread` scoped
//! workers with a shared atomic cursor as the work queue — a worker that
//! finishes early steals the next unclaimed cell, so stragglers never
//! serialize the sweep — and reassembles results **by cell index**, not by
//! completion order.
//!
//! # Determinism contract
//!
//! The output of [`run_cells`] is a pure function of `(cells, run)` and is
//! byte-for-byte independent of the thread count:
//!
//! 1. every cell is computed by exactly one worker, from only the cell's
//!    own input (the closure gets `&T`, shared immutably);
//! 2. results travel back tagged with their cell index and are placed into
//!    a pre-sized slot table, so arrival order is irrelevant;
//! 3. nothing about scheduling (thread id, steal order, timing) feeds into
//!    any cell's computation.
//!
//! Anything nondeterministic a cell *measures* (e.g. wall time) must be
//! excluded from serialized output by the cell type itself — the same rule
//! [`crate::telemetry`] already applies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs `run` over every cell, using up to `threads` worker threads, and
/// returns the results in cell order.
///
/// `threads <= 1` runs sequentially on the calling thread — the reference
/// path the parallel path is property-tested against. Worker count is
/// capped at the cell count; a panic inside any cell propagates to the
/// caller (the scope joins all workers first).
pub fn run_cells<T, R, F>(cells: &[T], threads: usize, run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || cells.len() <= 1 {
        return cells.iter().enumerate().map(|(i, c)| run(i, c)).collect();
    }
    let workers = threads.min(cells.len());
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let run = &run;
            scope.spawn(move || loop {
                // Claim the next unworked cell; this atomic is the entire
                // work-stealing queue.
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else {
                    return;
                };
                if tx.send((i, run(i, cell))).is_err() {
                    return;
                }
            });
        }
        drop(tx);
        // Reduce in cell order regardless of completion order.
        let mut slots: Vec<Option<R>> = Vec::with_capacity(cells.len());
        slots.resize_with(cells.len(), || None);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every claimed cell sends exactly one result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_cell_order_for_any_thread_count() {
        let cells: Vec<u64> = (0..97).collect();
        let slow = |i: usize, &c: &u64| {
            // Uneven cell costs exercise the stealing path.
            if i.is_multiple_of(7) {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            c * c + 1
        };
        let sequential = run_cells(&cells, 1, slow);
        for threads in [2, 3, 8] {
            assert_eq!(run_cells(&cells, threads, slow), sequential);
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let none: Vec<u32> = Vec::new();
        assert!(run_cells(&none, 8, |_, &c| c).is_empty());
        assert_eq!(run_cells(&[5u32], 8, |i, &c| (i, c)), vec![(0, 5)]);
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let hits: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let cells: Vec<usize> = (0..64).collect();
        run_cells(&cells, 8, |i, _| hits[i].fetch_add(1, Ordering::SeqCst));
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn worker_panics_propagate() {
        let cells: Vec<u32> = (0..16).collect();
        let res = std::panic::catch_unwind(|| {
            run_cells(&cells, 4, |_, &c| {
                assert!(c != 9, "boom");
                c
            })
        });
        assert!(res.is_err());
    }
}
