//! Offline certifying auditor for decision traces.
//!
//! [`certify`] replays a [`DecisionTrace`] against the scenario that
//! produced it (cluster + workload) and independently re-verifies the run:
//! DAG precedence, capacity conservation, parallelism caps, work
//! accounting, completion/readiness/turnaround arithmetic, the
//! deadline-decomposition metrics, and the deadline-miss attribution
//! report. Unlike the in-engine [`crate::InvariantChecker`], the auditor
//! shares **no state** with the engine: it rebuilds the job table from the
//! workload alone (using the documented id-assignment contract of
//! [`crate::Engine::new`]: workflow jobs first, in submission order and
//! node order, then ad-hoc jobs) and trusts nothing but the scenario
//! files. An engine bug that corrupts its own bookkeeping is invisible to
//! the engine's checker but not to this one.
//!
//! # Violation catalogue
//!
//! Each failed check yields an [`AuditViolation`] with a stable `code`:
//!
//! | code | meaning |
//! |------|---------|
//! | `trace-truncated` | the ring buffer dropped events; replay impossible |
//! | `header-mismatch` | trace header disagrees with the scenario |
//! | `event-order` | event slots are not non-decreasing |
//! | `unknown-job` | an event names a job the scenario does not define |
//! | `arrival-violation` | a grant or arrival precedes the submission slot |
//! | `precedence-inversion` | a grant precedes a DAG predecessor's finish |
//! | `capacity-overflow` | a slot's grants exceed the capacity in force |
//! | `parallelism-exceeded` | a grant exceeds the job's concurrency cap |
//! | `work-mismatch` | granted work disagrees with the finish accounting |
//! | `preempt-mismatch` | a preempt event contradicts the grant record |
//! | `finish-missing` | a completed job has no finish event |
//! | `finish-spurious` | a finish event is duplicated, premature, or for an unfinished job |
//! | `completion-mismatch` | outcome completion slots disagree with the trace |
//! | `ready-mismatch` | readiness disagrees with predecessor finishes |
//! | `turnaround-mismatch` | turnaround arithmetic is inconsistent |
//! | `deadline-drift` | recorded deadlines drifted from the scenario's |
//! | `deadline-accounting` | job deadline-miss counts do not recount |
//! | `workflow-accounting` | workflow outcomes do not recount |
//! | `attribution-mismatch` | the attribution report does not recompute |
//! | `load-mismatch` | per-slot loads/capacities disagree with the grants |
//! | `in-flight-mismatch` | drained-job progress disagrees with the trace |
//! | `kill-invalid` | a kill matches no seeded fault, or a due kill is missing |
//! | `kill-accounting` | a kill's attempt/wasted fields disagree with the replay |
//! | `retry-accounting` | retry counters, backoff gates, or wasted-work totals do not recount |
//! | `shed-violation` | admission-control events/records contradict the policy or replay |
//! | `straggler-mismatch` | straggler inflation disagrees with the seeded expectation |
//! | `shard-pod-count` | sharded artifacts disagree on the pod count, or a pod stamp is wrong |
//! | `shard-capacity-sum` | per-pod capacity slices do not sum to the cluster capacity |
//! | `shard-double-place` | a submission is placed on more than one pod |
//! | `shard-unplaced-job` | a submission is placed on no pod |
//! | `shard-placement-mismatch` | the recorded placement does not recompute from the scenario (e.g. a dropped rebalance event) |
//!
//! Runs recorded with the mid-run failure/recovery subsystem armed
//! ([`crate::Engine::with_recovery`]) are certified via
//! [`certify_with_recovery`], which re-derives every seeded fault verdict
//! (kill thresholds, crash windows, straggler inflation) from the
//! [`crate::faults::RecoverySetup`] alone and demands the trace match —
//! both directions: recorded faults must be seeded, and seeded faults
//! must be recorded. [`certify`] is the recovery-free special case: any
//! recovery event or counter then rejects the run.

use crate::cluster::{CapacityWindow, ClusterConfig};
use crate::engine::SimOutcome;
use crate::faults::{
    runtime_fault_horizon, RecoveryPolicy, RecoverySetup, RuntimeFaultPlan, ShedPolicy,
};
use crate::job::{AdhocSubmission, JobClass, SimWorkload, WorkflowSubmission};
use crate::metrics::{MissAttribution, NodeSlackUse, RecoveryStats};
use crate::shard::{place, pod_cluster, ShardClass, ShardSpec, ShardedOutcome};
use crate::submission::{EffectiveSubmission, SubmissionLog};
use crate::trace::{DecisionTrace, TraceEvent};
use flowtime_dag::{JobId, ResourceVec};
use std::collections::BTreeMap;

/// One failed audit check.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// Stable check identifier (see the [module docs](self)).
    pub code: &'static str,
    /// Slot the violation concerns (0 for run-level checks).
    pub slot: u64,
    /// The job concerned, when the check is per-job.
    pub job: Option<JobId>,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.job {
            Some(job) => write!(
                f,
                "[{}] slot {} {}: {}",
                self.code, self.slot, job, self.detail
            ),
            None => write!(f, "[{}] slot {}: {}", self.code, self.slot, self.detail),
        }
    }
}

/// Result of auditing one run.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Every failed check, in detection order.
    pub violations: Vec<AuditViolation>,
    /// The deadline-miss attribution recomputed independently from the
    /// scenario and the certified completions.
    pub attribution: Vec<MissAttribution>,
    /// Number of trace events examined.
    pub events_checked: u64,
}

impl AuditReport {
    /// True when every check passed.
    pub fn is_certified(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when a violation with the given code was detected.
    pub fn has(&self, code: &str) -> bool {
        self.violations.iter().any(|v| v.code == code)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.is_certified() {
            format!("certified: {} events checked", self.events_checked)
        } else {
            format!(
                "REJECTED: {} violation(s) over {} events (first: {})",
                self.violations.len(),
                self.events_checked,
                self.violations[0]
            )
        }
    }
}

/// The auditor's independent view of one job, rebuilt from the workload.
struct AuditJob {
    id: JobId,
    class: JobClass,
    per_task: ResourceVec,
    parallel_cap: u64,
    actual_work: u64,
    arrival_slot: u64,
    deadline_slot: Option<u64>,
    /// Indices (into the audit table) of DAG predecessors.
    preds: Vec<usize>,
}

/// The auditor's view of one workflow submission.
struct AuditWorkflow {
    id: flowtime_dag::WorkflowId,
    deadline_slot: u64,
    job_idxs: Vec<usize>,
    milestones: Option<Vec<u64>>,
}

/// Replayed per-job dynamic state. `done_work` is the *current attempt's*
/// progress: kills reset it (into `wasted`), matching the engine.
#[derive(Default, Clone)]
struct Replay {
    arrival_event: Option<u64>,
    ready_event: Option<u64>,
    first_grant: Option<u64>,
    done_work: u64,
    finish: Option<(u64, u64)>, // (slot, done_work at finish)
    /// Zero-based attempt, bumped by each certified kill.
    attempt: u32,
    /// Task-slots discarded by certified kills.
    wasted: u64,
    /// Straggler inflation applied to the ground truth (0 until the first
    /// grant of a seeded straggler).
    extra_work: u64,
    /// Seeded straggler inflation awaiting its matching trace event:
    /// `(slot, extra)`.
    pending_straggler: Option<(u64, u64)>,
    /// Earliest slot the current attempt may be granted (backoff gate).
    retry_gate: u64,
    /// Slot at which a seeded task failure became due and must be killed.
    pending_task_kill: Option<u64>,
    /// Slot of a crash-window opening that must kill this running job.
    expected_crash_kill: Option<u64>,
    /// Slot the admission controller shed the job, per the trace.
    shed: Option<u64>,
    /// Deferred arrival slot assigned by the delay policy.
    deferred_until: Option<u64>,
}

/// The auditor's independent recovery context, rebuilt from the setup.
struct RecoveryAudit {
    plan: RuntimeFaultPlan,
    policy: RecoveryPolicy,
    /// Crash windows materialized exactly as the engine did.
    windows: Vec<CapacityWindow>,
    next_window: usize,
}

/// Marks the jobs a correct engine must kill as crash windows with
/// `from_slot <= upto` open, advancing `next_window`. Windows at or past
/// `run_end` never fired (the run had already ended).
fn expect_crash_kills(
    rc: &mut RecoveryAudit,
    jobs: &[AuditJob],
    replays: &mut [Replay],
    upto: u64,
    run_end: u64,
) {
    while rc.next_window < rc.windows.len() && rc.windows[rc.next_window].from_slot <= upto {
        let w_start = rc.windows[rc.next_window].from_slot;
        let w_idx = rc.next_window as u64;
        rc.next_window += 1;
        if w_start >= run_end {
            continue;
        }
        for (i, r) in replays.iter_mut().enumerate() {
            let finished_before = r.finish.is_some_and(|(f, _)| f < w_start);
            if !finished_before
                && r.shed.is_none()
                && r.done_work > 0
                && r.attempt < rc.policy.max_retries
                && rc.plan.crash_kills(w_idx, jobs[i].id)
            {
                r.expected_crash_kill = Some(w_start);
            }
        }
    }
}

/// Replays `trace` against the scenario and re-verifies `outcome`,
/// assuming no mid-run faults were armed. Equivalent to
/// [`certify_with_recovery`] with `None`.
///
/// The scenario must be the exact post-fault-injection input the engine
/// ran (the same `(cluster, workload)` pair passed to
/// [`crate::Engine::new`]).
pub fn certify(
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    outcome: &SimOutcome,
    trace: &DecisionTrace,
) -> AuditReport {
    certify_with_recovery(cluster, workload, outcome, trace, None)
}

/// Replays `trace` against the scenario and re-verifies `outcome`,
/// including every mid-run fault and recovery decision when `recovery`
/// matches the [`crate::faults::RecoverySetup`] the engine was armed
/// with. With `None`, any recovery event or non-zero recovery counter is
/// itself a violation.
pub fn certify_with_recovery(
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    outcome: &SimOutcome,
    trace: &DecisionTrace,
    recovery: Option<&RecoverySetup>,
) -> AuditReport {
    certify_table(
        cluster,
        build_table(workload),
        outcome,
        trace,
        recovery,
        runtime_fault_horizon(workload),
    )
}

/// Replays `trace` against a recorded [`SubmissionLog`] and re-verifies
/// `outcome` — the offline certification path for daemon sessions. The
/// job table is rebuilt from the log alone using the `(arrival slot,
/// sequence)` id contract of [`crate::Engine::from_log`], so a certified
/// online run and a certified batch replay of the same log verified the
/// same dense table. Mid-run recovery is not supported on the online
/// path, so any recovery event or counter is itself a violation.
pub fn certify_log(
    cluster: &ClusterConfig,
    log: &SubmissionLog,
    outcome: &SimOutcome,
    trace: &DecisionTrace,
) -> AuditReport {
    certify_table(cluster, build_table_from_log(log), outcome, trace, None, 0)
}

/// Certifies a sharded run ([`crate::shard::run_sharded_traced`]): the
/// cross-pod conservation checks below, then a full
/// [`certify_with_recovery`] of every pod against its own capacity slice
/// and sub-workload (violations prefixed `pod N:`).
///
/// Cross-pod checks, all recomputed from the scenario alone:
///
/// * **pod count** — placement, outcomes, traces, and pod stamps must
///   all agree with `spec.pods` (`shard-pod-count`);
/// * **capacity conservation** — the per-pod capacities the traces were
///   recorded against must sum exactly to the cluster capacity
///   (`shard-capacity-sum`);
/// * **exactly-once placement** — no submission on two pods
///   (`shard-double-place`) or on none (`shard-unplaced-job`);
/// * **placement replay** — recomputing [`place`] from
///   `(cluster, workload, spec)` must reproduce the recorded
///   [`crate::shard::PlacementLog`] byte-for-byte, so a tampered
///   assignment or a dropped rebalance event is caught
///   (`shard-placement-mismatch`).
pub fn certify_sharded(
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    spec: &ShardSpec,
    outcome: &ShardedOutcome,
    traces: &[DecisionTrace],
    recovery: Option<&RecoverySetup>,
) -> AuditReport {
    let mut report = AuditReport {
        violations: Vec::new(),
        attribution: Vec::new(),
        events_checked: 0,
    };
    let push = |r: &mut AuditReport, code: &'static str, detail: String| {
        r.violations.push(AuditViolation {
            code,
            slot: 0,
            job: None,
            detail,
        });
    };

    // ---- Pod-count agreement across every sharded artifact. -------------
    for (what, got) in [
        ("placement", outcome.placement.pods),
        ("outcome", outcome.pods.len()),
        ("trace set", traces.len()),
    ] {
        if got != spec.pods {
            push(
                &mut report,
                "shard-pod-count",
                format!("{what} covers {got} pod(s), spec says {}", spec.pods),
            );
        }
    }
    for (i, pod) in outcome.pods.iter().enumerate() {
        if pod.pod != i as u64 {
            push(
                &mut report,
                "shard-pod-count",
                format!("outcome at position {i} is stamped pod {}", pod.pod),
            );
        }
    }
    // Trace headers carry the same provenance stamp (pods/pod/placer) for
    // K > 1 runs — and must stay unstamped for K = 1, whose bytes are
    // pinned to the unsharded engine's.
    for (i, t) in traces.iter().enumerate() {
        let h = &t.header;
        let expect_stamp = spec.pods > 1;
        let stamped =
            (h.pods, h.pod, h.placer.as_str()) == (spec.pods as u64, i as u64, spec.placer.name());
        let unstamped = h.pods == 0 && h.pod == 0 && h.placer.is_empty();
        if (expect_stamp && !stamped) || (!expect_stamp && !unstamped) {
            push(
                &mut report,
                "shard-pod-count",
                format!(
                    "trace at position {i} records pods={} pod={} placer=`{}`, \
                     spec is pods={} placer=`{}`",
                    h.pods,
                    h.pod,
                    h.placer,
                    spec.pods,
                    spec.placer.name()
                ),
            );
        }
    }

    // ---- Capacity conservation: trace headers record the capacity each
    // pod actually ran against; their sum must be the whole cluster.
    if traces.len() == spec.pods {
        let mut sum = ResourceVec::zero();
        for t in traces {
            sum += t.header.capacity;
        }
        if sum != cluster.capacity() {
            push(
                &mut report,
                "shard-capacity-sum",
                format!(
                    "pod capacities sum to {sum}, cluster has {}",
                    cluster.capacity()
                ),
            );
        }
    }

    // ---- Exactly-once placement over the recorded assignments. ----------
    let mut seen_wf = vec![0usize; workload.workflows.len()];
    let mut seen_ah = vec![0usize; workload.adhoc.len()];
    for a in &outcome.placement.assignments {
        let seen = match a.class {
            ShardClass::Workflow => seen_wf.get_mut(a.index),
            ShardClass::Adhoc => seen_ah.get_mut(a.index),
        };
        match seen {
            Some(n) => *n += 1,
            None => push(
                &mut report,
                "shard-unplaced-job",
                format!(
                    "assignment references {:?} submission {} outside the workload",
                    a.class, a.index
                ),
            ),
        }
    }
    for (class, seen) in [
        (ShardClass::Workflow, &seen_wf),
        (ShardClass::Adhoc, &seen_ah),
    ] {
        for (i, &n) in seen.iter().enumerate() {
            if n > 1 {
                push(
                    &mut report,
                    "shard-double-place",
                    format!("{class:?} submission {i} is placed {n} times"),
                );
            } else if n == 0 {
                push(
                    &mut report,
                    "shard-unplaced-job",
                    format!("{class:?} submission {i} is placed on no pod"),
                );
            }
        }
    }

    // ---- Placement replay: the log is a pure function of the scenario.
    let expected = place(cluster, workload, spec);
    if expected != outcome.placement {
        push(
            &mut report,
            "shard-placement-mismatch",
            format!(
                "recorded placement ({} assignment(s), {} rebalance(s)) does not \
                 recompute from the scenario ({} assignment(s), {} rebalance(s))",
                outcome.placement.assignments.len(),
                outcome.placement.rebalances.len(),
                expected.assignments.len(),
                expected.rebalances.len(),
            ),
        );
    }

    // ---- Per-pod certification against each pod's own slice. ------------
    // Only meaningful when the placement splits cleanly; the structural
    // violations above already reject corrupt placements.
    if let Ok(workloads) = outcome.placement.pod_workloads(workload) {
        if workloads.len() == outcome.pods.len() && workloads.len() == traces.len() {
            for (i, (pod_workload, (pod_outcome, trace))) in workloads
                .iter()
                .zip(outcome.pods.iter().zip(traces.iter()))
                .enumerate()
            {
                let pc = pod_cluster(cluster, spec.pods, i);
                let sub = certify_with_recovery(&pc, pod_workload, pod_outcome, trace, recovery);
                report
                    .violations
                    .extend(sub.violations.into_iter().map(|mut v| {
                        v.detail = format!("pod {i}: {}", v.detail);
                        v
                    }));
                report.attribution.extend(sub.attribution);
                report.events_checked += sub.events_checked;
            }
        }
    }
    report
}

/// Shared certification core: every check below runs against the
/// independently-rebuilt `table`, regardless of whether it came from a
/// batch workload or a submission log. `fault_horizon` is only read when
/// `recovery` is armed.
fn certify_table(
    cluster: &ClusterConfig,
    table: Result<(Vec<AuditJob>, Vec<AuditWorkflow>), String>,
    outcome: &SimOutcome,
    trace: &DecisionTrace,
    recovery: Option<&RecoverySetup>,
    fault_horizon: u64,
) -> AuditReport {
    let mut v: Vec<AuditViolation> = Vec::new();
    let mut push = |code: &'static str, slot: u64, job: Option<JobId>, detail: String| {
        v.push(AuditViolation {
            code,
            slot,
            job,
            detail,
        });
    };

    // ---- Independent job table from the submissions alone. -------------
    let (jobs, workflows) = match table {
        Ok(t) => t,
        Err(reason) => {
            push("header-mismatch", 0, None, reason);
            return AuditReport {
                violations: v,
                attribution: Vec::new(),
                events_checked: 0,
            };
        }
    };
    let index_of = |id: JobId| -> Option<usize> {
        let raw = id.as_u64() as usize;
        (raw < jobs.len() && jobs[raw].id == id).then_some(raw)
    };

    // ---- Independent recovery context from the setup alone. -------------
    let mut rec_ctx: Option<RecoveryAudit> = recovery.map(|setup| {
        let mut policy = setup.policy.clone();
        // Same clamp as `Engine::with_recovery`.
        policy.sustain_slots = policy.sustain_slots.max(1);
        let plan = RuntimeFaultPlan::new(setup.faults.clone());
        let windows = plan.crash_windows(cluster.capacity(), fault_horizon);
        RecoveryAudit {
            plan,
            policy,
            windows,
            next_window: 0,
        }
    });
    // Effective capacity in force at a slot: the cluster's own windows
    // capped by any open crash window — what the engine validated against.
    let overlay: Vec<CapacityWindow> = rec_ctx
        .as_ref()
        .map(|rc| rc.windows.clone())
        .unwrap_or_default();
    let cap_at = |slot: u64| -> ResourceVec {
        let base = cluster.capacity_at(slot);
        overlay
            .iter()
            .rev()
            .find(|w| w.from_slot <= slot && slot < w.to_slot)
            .map_or(base, |w| base.min(&w.capacity))
    };
    // Recovery counters recomputed during replay (infeasible flags are an
    // engine-side heuristic over time and deliberately not audited).
    let mut rstats = RecoveryStats::default();

    // ---- Header consistency. -------------------------------------------
    let h = &trace.header;
    if h.capacity != cluster.capacity() {
        push(
            "header-mismatch",
            0,
            None,
            format!(
                "header capacity {:?} != cluster {:?}",
                h.capacity,
                cluster.capacity()
            ),
        );
    }
    if h.slot_seconds != cluster.slot_seconds() {
        push(
            "header-mismatch",
            0,
            None,
            format!(
                "header slot_seconds {:?} != cluster {:?}",
                h.slot_seconds,
                cluster.slot_seconds()
            ),
        );
    }
    if h.jobs.len() != jobs.len() {
        push(
            "header-mismatch",
            0,
            None,
            format!(
                "header lists {} jobs, scenario {}",
                h.jobs.len(),
                jobs.len()
            ),
        );
    }
    for (meta, job) in h.jobs.iter().zip(&jobs) {
        if meta.id != job.id
            || meta.class != job.class
            || meta.arrival_slot != job.arrival_slot
            || meta.actual_work != job.actual_work
        {
            push(
                "header-mismatch",
                0,
                Some(job.id),
                "header job metadata disagrees with the scenario".into(),
            );
        }
        if meta.deadline_slot != job.deadline_slot {
            push(
                "deadline-drift",
                0,
                Some(job.id),
                format!(
                    "header deadline {:?} != scenario {:?}",
                    meta.deadline_slot, job.deadline_slot
                ),
            );
        }
    }

    // ---- Event replay. --------------------------------------------------
    let mut replays: Vec<Replay> = vec![Replay::default(); jobs.len()];
    let mut usage: BTreeMap<u64, ResourceVec> = BTreeMap::new();
    let mut grants: BTreeMap<(u64, JobId), u64> = BTreeMap::new();
    let mut preempts: Vec<(u64, JobId)> = Vec::new();
    let truncated = trace.dropped() > 0;
    if truncated {
        push(
            "trace-truncated",
            0,
            None,
            format!("{} events dropped by the ring bound", trace.dropped()),
        );
    } else {
        let mut prev_slot = 0u64;
        for event in trace.events() {
            let slot = event.slot();
            // Crash windows opening at or before this slot mark the jobs a
            // correct engine must kill; the Kill events of this slot (which
            // come after the boundary) discharge them.
            if let Some(rc) = &mut rec_ctx {
                expect_crash_kills(rc, &jobs, &mut replays, slot, outcome.slots_elapsed);
            }
            if slot < prev_slot {
                push(
                    "event-order",
                    slot,
                    event.job(),
                    format!("event at slot {slot} after slot {prev_slot}"),
                );
            }
            prev_slot = prev_slot.max(slot);
            let idx = match event.job() {
                Some(id) => match index_of(id) {
                    Some(i) => Some(i),
                    None => {
                        push("unknown-job", slot, Some(id), "not in the scenario".into());
                        continue;
                    }
                },
                None => None,
            };
            match *event {
                TraceEvent::Arrival { slot, job } => {
                    let i = idx.expect("job events carry an id");
                    if replays[i].shed.is_some() {
                        push(
                            "shed-violation",
                            slot,
                            Some(job),
                            "arrival recorded after the job was shed".into(),
                        );
                    }
                    let expected = replays[i].deferred_until.unwrap_or(jobs[i].arrival_slot);
                    if slot != expected {
                        push(
                            "arrival-violation",
                            slot,
                            Some(job),
                            format!("arrival recorded at {slot}, submitted {expected}"),
                        );
                    }
                    replays[i].arrival_event = Some(slot);
                }
                TraceEvent::Ready { slot, job } => {
                    let i = idx.expect("job events carry an id");
                    replays[i].ready_event = Some(slot);
                    match derived_ready(&jobs, &replays, i) {
                        Some(expected) if expected == slot => {}
                        Some(expected) => push(
                            "ready-mismatch",
                            slot,
                            Some(job),
                            format!("ready recorded at {slot}, derived {expected}"),
                        ),
                        None => push(
                            "precedence-inversion",
                            slot,
                            Some(job),
                            "ready before every predecessor finished".into(),
                        ),
                    }
                }
                TraceEvent::Grant { slot, job, tasks } => {
                    let i = idx.expect("job events carry an id");
                    let j = &jobs[i];
                    if slot < j.arrival_slot {
                        push(
                            "arrival-violation",
                            slot,
                            Some(job),
                            format!("granted before submission slot {}", j.arrival_slot),
                        );
                    }
                    if replays[i].shed.is_some() {
                        push(
                            "shed-violation",
                            slot,
                            Some(job),
                            "granted after the job was shed".into(),
                        );
                    }
                    if slot < replays[i].retry_gate {
                        push(
                            "retry-accounting",
                            slot,
                            Some(job),
                            format!("granted before the backoff slot {}", replays[i].retry_gate),
                        );
                    }
                    for &p in &j.preds {
                        match replays[p].finish {
                            Some((f, _)) if f < slot => {}
                            _ => push(
                                "precedence-inversion",
                                slot,
                                Some(job),
                                format!("granted before predecessor {} finished", jobs[p].id),
                            ),
                        }
                    }
                    if replays[i].finish.is_some() {
                        push(
                            "work-mismatch",
                            slot,
                            Some(job),
                            "granted after its finish event".into(),
                        );
                    }
                    // The engine's parallelism cap was computed at plan
                    // time, before any straggler inflation of this slot.
                    let effective = j.actual_work + replays[i].extra_work;
                    let cap = j
                        .parallel_cap
                        .min(effective.saturating_sub(replays[i].done_work));
                    if tasks > cap {
                        push(
                            "parallelism-exceeded",
                            slot,
                            Some(job),
                            format!("granted {tasks} tasks, cap {cap}"),
                        );
                    }
                    if let Some(rc) = &rec_ctx {
                        // First-ever grant of a seeded straggler: the
                        // ground truth inflates now, and a matching
                        // Straggler event must follow within this slot.
                        if replays[i].attempt == 0
                            && replays[i].done_work == 0
                            && replays[i].first_grant.is_none()
                        {
                            let extra = rc.plan.straggler_extra(job, j.actual_work);
                            if extra > 0 {
                                replays[i].extra_work = extra;
                                replays[i].pending_straggler = Some((slot, extra));
                                rstats.stragglers += 1;
                                rstats.straggler_extra_work += extra;
                            }
                        }
                    }
                    replays[i].first_grant.get_or_insert(slot);
                    replays[i].done_work += tasks;
                    if let Some(rc) = &rec_ctx {
                        // Seeded task failure due: the attempt's progress
                        // reached its threshold, so a Kill must follow.
                        let r = &mut replays[i];
                        if r.attempt < rc.policy.max_retries {
                            let effective = j.actual_work + r.extra_work;
                            if rc
                                .plan
                                .attempt_failure(job, r.attempt, effective)
                                .is_some_and(|fail_at| r.done_work >= fail_at)
                            {
                                r.pending_task_kill = Some(slot);
                            }
                        }
                    }
                    *usage.entry(slot).or_insert_with(ResourceVec::zero) += j.per_task * tasks;
                    *grants.entry((slot, job)).or_insert(0) += tasks;
                }
                TraceEvent::Start { slot, job } => {
                    let i = idx.expect("job events carry an id");
                    if replays[i].done_work > 0 {
                        push(
                            "work-mismatch",
                            slot,
                            Some(job),
                            "start event after work was already granted".into(),
                        );
                    }
                }
                TraceEvent::Preempt { slot, job } => preempts.push((slot, job)),
                TraceEvent::Finish {
                    slot,
                    job,
                    done_work,
                } => {
                    let i = idx.expect("job events carry an id");
                    if replays[i].finish.is_some() {
                        push(
                            "finish-spurious",
                            slot,
                            Some(job),
                            "duplicate finish".into(),
                        );
                    }
                    if replays[i].done_work != done_work {
                        push(
                            "work-mismatch",
                            slot,
                            Some(job),
                            format!(
                                "finish claims {done_work} done, grants sum to {}",
                                replays[i].done_work
                            ),
                        );
                    }
                    let effective = jobs[i].actual_work + replays[i].extra_work;
                    if replays[i].done_work < effective {
                        push(
                            "finish-spurious",
                            slot,
                            Some(job),
                            format!(
                                "finished with {} of {} task-slots done",
                                replays[i].done_work, effective
                            ),
                        );
                    }
                    if replays[i].shed.is_some() {
                        push(
                            "shed-violation",
                            slot,
                            Some(job),
                            "finish event for a shed job".into(),
                        );
                    }
                    replays[i].finish = Some((slot, done_work));
                }
                TraceEvent::Kill {
                    slot,
                    job,
                    attempt,
                    wasted,
                } => {
                    let i = idx.expect("job events carry an id");
                    let Some(rc) = &rec_ctx else {
                        push(
                            "kill-invalid",
                            slot,
                            Some(job),
                            "kill event without a recovery setup".into(),
                        );
                        continue;
                    };
                    let r = &mut replays[i];
                    if attempt != r.attempt {
                        push(
                            "kill-accounting",
                            slot,
                            Some(job),
                            format!("killed attempt {attempt}, replay is at {}", r.attempt),
                        );
                    }
                    if wasted != r.done_work {
                        push(
                            "kill-accounting",
                            slot,
                            Some(job),
                            format!("kill wasted {wasted}, attempt progress is {}", r.done_work),
                        );
                    }
                    if r.attempt >= rc.policy.max_retries {
                        push(
                            "kill-invalid",
                            slot,
                            Some(job),
                            "killed the final permitted attempt".into(),
                        );
                    }
                    // Cause: the kill must be the seeded crash window that
                    // caught the job running, or a seeded task failure
                    // whose threshold the attempt's progress reached.
                    let effective = jobs[i].actual_work + r.extra_work;
                    let crash_cause = r.expected_crash_kill == Some(slot);
                    let task_cause = rc
                        .plan
                        .attempt_failure(job, r.attempt, effective)
                        .is_some_and(|fail_at| r.done_work >= fail_at);
                    if crash_cause {
                        r.expected_crash_kill = None;
                        rstats.crash_kills += 1;
                    } else if task_cause {
                        rstats.task_failures += 1;
                    } else {
                        push(
                            "kill-invalid",
                            slot,
                            Some(job),
                            "kill matches neither a seeded task failure nor a crash window".into(),
                        );
                    }
                    r.pending_task_kill = None;
                    rstats.retries += 1;
                    rstats.wasted_work += r.done_work;
                    r.wasted += r.done_work;
                    r.done_work = 0;
                    r.attempt += 1;
                    r.retry_gate = slot + 1 + rc.policy.backoff_base * r.attempt as u64;
                }
                TraceEvent::Shed { slot, job } => {
                    let i = idx.expect("job events carry an id");
                    let Some(rc) = &rec_ctx else {
                        push(
                            "shed-violation",
                            slot,
                            Some(job),
                            "shed event without a recovery setup".into(),
                        );
                        continue;
                    };
                    let r = &mut replays[i];
                    if rc.policy.shed != ShedPolicy::Shed || !jobs[i].class.is_adhoc() {
                        push(
                            "shed-violation",
                            slot,
                            Some(job),
                            "shed outside the shed policy, or of a workflow job".into(),
                        );
                    }
                    if slot != jobs[i].arrival_slot {
                        push(
                            "shed-violation",
                            slot,
                            Some(job),
                            format!("shed at {slot}, arrival is {}", jobs[i].arrival_slot),
                        );
                    }
                    if r.first_grant.is_some() || r.shed.is_some() {
                        push(
                            "shed-violation",
                            slot,
                            Some(job),
                            "shed after the job ran, or shed twice".into(),
                        );
                    }
                    r.shed = Some(slot);
                    rstats.shed_jobs += 1;
                }
                TraceEvent::Defer { slot, job, until } => {
                    let i = idx.expect("job events carry an id");
                    let Some(rc) = &rec_ctx else {
                        push(
                            "shed-violation",
                            slot,
                            Some(job),
                            "defer event without a recovery setup".into(),
                        );
                        continue;
                    };
                    let r = &mut replays[i];
                    let expected = match rc.policy.shed {
                        ShedPolicy::Delay { slots } => Some(slot + slots.max(1)),
                        _ => None,
                    };
                    if expected != Some(until)
                        || slot != jobs[i].arrival_slot
                        || !jobs[i].class.is_adhoc()
                        || r.deferred_until.is_some()
                    {
                        push(
                            "shed-violation",
                            slot,
                            Some(job),
                            format!("defer to {until} contradicts the delay policy"),
                        );
                    }
                    r.deferred_until = Some(until);
                    rstats.delayed_jobs += 1;
                }
                TraceEvent::Straggler { slot, job, extra } => {
                    let i = idx.expect("job events carry an id");
                    if rec_ctx.is_none() {
                        push(
                            "straggler-mismatch",
                            slot,
                            Some(job),
                            "straggler event without a recovery setup".into(),
                        );
                        continue;
                    }
                    match replays[i].pending_straggler.take() {
                        Some((s, e)) if s == slot && e == extra => {}
                        _ => push(
                            "straggler-mismatch",
                            slot,
                            Some(job),
                            format!("straggler (+{extra}) does not match the seeded expectation"),
                        ),
                    }
                }
                TraceEvent::Replan { .. } | TraceEvent::PolicyTag { .. } => {}
            }
        }

        // Windows opening after the last event but before the run ended
        // still fire; then every due kill and straggler must have been
        // discharged by a matching trace event.
        if let Some(rc) = &mut rec_ctx {
            expect_crash_kills(rc, &jobs, &mut replays, u64::MAX, outcome.slots_elapsed);
            for (i, r) in replays.iter().enumerate() {
                if let Some(s) = r.expected_crash_kill {
                    push(
                        "kill-invalid",
                        s,
                        Some(jobs[i].id),
                        "crash window caught the job running but no kill was recorded".into(),
                    );
                }
                if let Some(s) = r.pending_task_kill {
                    push(
                        "kill-invalid",
                        s,
                        Some(jobs[i].id),
                        "seeded task failure became due but no kill was recorded".into(),
                    );
                }
                if let Some((s, extra)) = r.pending_straggler {
                    push(
                        "straggler-mismatch",
                        s,
                        Some(jobs[i].id),
                        format!("seeded straggler inflation (+{extra}) was not recorded"),
                    );
                }
            }
        }

        // Per-slot capacity conservation against the capacity in force
        // (including any open crash window).
        for (&slot, &used) in &usage {
            let cap = cap_at(slot);
            if !used.fits_within(&cap) {
                push(
                    "capacity-overflow",
                    slot,
                    None,
                    format!("granted {used:?} exceeds capacity {cap:?}"),
                );
            }
        }

        // Preempt events must match the grant record: granted in the
        // previous slot, unallocated in this one, not yet finished.
        for (slot, job) in preempts {
            let legit = slot > 0
                && grants.contains_key(&(slot - 1, job))
                && !grants.contains_key(&(slot, job))
                && index_of(job)
                    .and_then(|i| replays[i].finish)
                    .is_none_or(|(f, _)| f >= slot);
            if !legit {
                push(
                    "preempt-mismatch",
                    slot,
                    Some(job),
                    "preempt contradicts the grant record".into(),
                );
            }
        }
    }

    // ---- Outcome cross-checks (independent of engine state). -----------
    let mut seen = vec![false; jobs.len()];
    for out in &outcome.metrics.jobs {
        let Some(i) = index_of(out.id) else {
            push(
                "completion-mismatch",
                0,
                Some(out.id),
                "completed job not in the scenario".into(),
            );
            continue;
        };
        seen[i] = true;
        let j = &jobs[i];
        if out.arrival_slot != j.arrival_slot {
            push(
                "turnaround-mismatch",
                out.completion_slot,
                Some(out.id),
                format!(
                    "outcome arrival {} != scenario {}",
                    out.arrival_slot, j.arrival_slot
                ),
            );
        }
        if out.deadline_slot != j.deadline_slot {
            push(
                "deadline-drift",
                out.completion_slot,
                Some(out.id),
                format!(
                    "outcome deadline {:?} != scenario {:?}",
                    out.deadline_slot, j.deadline_slot
                ),
            );
        }
        if !truncated {
            match replays[i].finish {
                Some((f, _)) => {
                    if out.completion_slot != f + 1 {
                        push(
                            "completion-mismatch",
                            out.completion_slot,
                            Some(out.id),
                            format!(
                                "completion {} but trace finished at end of {f}",
                                out.completion_slot
                            ),
                        );
                    }
                    if out.turnaround_slots() != (f + 1).saturating_sub(j.arrival_slot) {
                        push(
                            "turnaround-mismatch",
                            out.completion_slot,
                            Some(out.id),
                            format!(
                                "turnaround {} != trace-derived {}",
                                out.turnaround_slots(),
                                (f + 1).saturating_sub(j.arrival_slot)
                            ),
                        );
                    }
                }
                None => push(
                    "finish-missing",
                    out.completion_slot,
                    Some(out.id),
                    "completed without a finish event".into(),
                ),
            }
            match derived_ready(&jobs, &replays, i) {
                Some(expected) if expected == out.ready_slot => {}
                Some(expected) => push(
                    "ready-mismatch",
                    out.ready_slot,
                    Some(out.id),
                    format!("outcome ready {} != derived {expected}", out.ready_slot),
                ),
                None => push(
                    "precedence-inversion",
                    out.ready_slot,
                    Some(out.id),
                    "completed although a predecessor never finished".into(),
                ),
            }
            if out.retries != replays[i].attempt as u64 || out.wasted_work != replays[i].wasted {
                push(
                    "retry-accounting",
                    out.completion_slot,
                    Some(out.id),
                    format!(
                        "outcome reports {} retries / {} wasted, replay has {} / {}",
                        out.retries, out.wasted_work, replays[i].attempt, replays[i].wasted
                    ),
                );
            }
        }
    }
    for inf in &outcome.in_flight {
        let Some(i) = index_of(inf.id) else {
            push(
                "in-flight-mismatch",
                0,
                Some(inf.id),
                "in-flight job not in the scenario".into(),
            );
            continue;
        };
        if seen[i] {
            push(
                "completion-mismatch",
                0,
                Some(inf.id),
                "job is both completed and in flight".into(),
            );
        }
        seen[i] = true;
        if !truncated {
            if let Some((f, _)) = replays[i].finish {
                push(
                    "finish-spurious",
                    f,
                    Some(inf.id),
                    "finish event for a job reported in flight".into(),
                );
            }
            let effective = jobs[i].actual_work + replays[i].extra_work;
            if inf.done_work != replays[i].done_work
                || inf.remaining_work != effective.saturating_sub(replays[i].done_work)
            {
                push(
                    "in-flight-mismatch",
                    0,
                    Some(inf.id),
                    format!(
                        "reported {}/{} done, grants sum to {}/{}",
                        inf.done_work,
                        inf.done_work + inf.remaining_work,
                        replays[i].done_work,
                        effective
                    ),
                );
            }
            if inf.retries != replays[i].attempt as u64 || inf.wasted_work != replays[i].wasted {
                push(
                    "retry-accounting",
                    0,
                    Some(inf.id),
                    format!(
                        "in-flight reports {} retries / {} wasted, replay has {} / {}",
                        inf.retries, inf.wasted_work, replays[i].attempt, replays[i].wasted
                    ),
                );
            }
            let expected_ready = if jobs[i].preds.is_empty() {
                Some(jobs[i].arrival_slot)
            } else if jobs[i].preds.iter().all(|&p| replays[p].finish.is_some()) {
                derived_ready(&jobs, &replays, i)
            } else {
                None
            };
            if inf.ready_slot != expected_ready {
                push(
                    "ready-mismatch",
                    0,
                    Some(inf.id),
                    format!(
                        "in-flight ready {:?} != derived {:?}",
                        inf.ready_slot, expected_ready
                    ),
                );
            }
        }
    }
    for sj in &outcome.shed {
        let Some(i) = index_of(sj.id) else {
            push(
                "shed-violation",
                sj.shed_slot,
                Some(sj.id),
                "shed job not in the scenario".into(),
            );
            continue;
        };
        if seen[i] {
            push(
                "shed-violation",
                sj.shed_slot,
                Some(sj.id),
                "job is shed and also completed or in flight".into(),
            );
        }
        seen[i] = true;
        if sj.arrival_slot != jobs[i].arrival_slot {
            push(
                "shed-violation",
                sj.shed_slot,
                Some(sj.id),
                format!(
                    "shed record arrival {} != scenario {}",
                    sj.arrival_slot, jobs[i].arrival_slot
                ),
            );
        }
        if !truncated && replays[i].shed != Some(sj.shed_slot) {
            push(
                "shed-violation",
                sj.shed_slot,
                Some(sj.id),
                format!(
                    "outcome sheds at {}, trace sheds at {:?}",
                    sj.shed_slot, replays[i].shed
                ),
            );
        }
    }
    for (i, covered) in seen.iter().enumerate() {
        if !covered {
            if replays[i].shed.is_some() {
                push(
                    "shed-violation",
                    replays[i].shed.unwrap_or(0),
                    Some(jobs[i].id),
                    "shed in the trace but missing from the outcome's shed list".into(),
                );
            } else {
                push(
                    "completion-mismatch",
                    0,
                    Some(jobs[i].id),
                    "job appears in neither outcomes, in-flight, nor shed".into(),
                );
            }
        }
    }

    // ---- Recovery counter recount. --------------------------------------
    if !truncated {
        match &rec_ctx {
            Some(_) => {
                // Infeasibility flags are an engine-side heuristic the
                // auditor deliberately does not replay.
                rstats.infeasible_flags = outcome.recovery.infeasible_flags;
                if rstats != outcome.recovery {
                    push(
                        "retry-accounting",
                        0,
                        None,
                        format!(
                            "recovery counters do not recount: outcome {:?}, replay {:?}",
                            outcome.recovery, rstats
                        ),
                    );
                }
            }
            None => {
                if !outcome.recovery.is_inert() {
                    push(
                        "retry-accounting",
                        0,
                        None,
                        "recovery counters recorded without a recovery setup".into(),
                    );
                }
                if !outcome.shed.is_empty() {
                    push(
                        "shed-violation",
                        0,
                        None,
                        "shed jobs recorded without a recovery setup".into(),
                    );
                }
            }
        }
    }

    // ---- Per-slot load records. ----------------------------------------
    if outcome.metrics.slot_loads.len() as u64 != outcome.slots_elapsed
        || outcome.metrics.slot_capacities.len() != outcome.metrics.slot_loads.len()
    {
        push(
            "load-mismatch",
            0,
            None,
            format!(
                "{} load / {} capacity records for {} slots",
                outcome.metrics.slot_loads.len(),
                outcome.metrics.slot_capacities.len(),
                outcome.slots_elapsed
            ),
        );
    }
    if !truncated {
        for (s, load) in outcome.metrics.slot_loads.iter().enumerate() {
            let computed = usage
                .get(&(s as u64))
                .copied()
                .unwrap_or_else(ResourceVec::zero);
            if *load != computed {
                push(
                    "load-mismatch",
                    s as u64,
                    None,
                    format!("recorded load {load:?}, grants sum to {computed:?}"),
                );
            }
        }
        if let Some((&slot, _)) = usage
            .iter()
            .find(|(&s, _)| s >= outcome.metrics.slot_loads.len() as u64)
        {
            push(
                "load-mismatch",
                slot,
                None,
                "grants recorded beyond the simulated range".into(),
            );
        }
    }
    for (s, cap) in outcome.metrics.slot_capacities.iter().enumerate() {
        if *cap != cap_at(s as u64) {
            push(
                "load-mismatch",
                s as u64,
                None,
                format!(
                    "recorded capacity {cap:?} != effective {:?}",
                    cap_at(s as u64)
                ),
            );
        }
    }

    // ---- Deadline-decomposition accounting. -----------------------------
    let recount_job_misses = outcome
        .metrics
        .jobs
        .iter()
        .filter(|o| {
            index_of(o.id)
                .and_then(|i| jobs[i].deadline_slot)
                .is_some_and(|d| o.completion_slot > d)
        })
        .count();
    if recount_job_misses != outcome.metrics.job_deadline_misses() {
        push(
            "deadline-accounting",
            0,
            None,
            format!(
                "recounted {} job misses, metrics claim {}",
                recount_job_misses,
                outcome.metrics.job_deadline_misses()
            ),
        );
    }
    let completion_of = |i: usize| -> Option<u64> {
        outcome
            .metrics
            .jobs
            .iter()
            .find(|o| o.id == jobs[i].id)
            .map(|o| o.completion_slot)
    };
    let mut recount_wf_misses = 0usize;
    let mut complete_wfs = 0usize;
    for wf in &workflows {
        let completions: Option<Vec<u64>> = wf.job_idxs.iter().map(|&i| completion_of(i)).collect();
        let Some(completions) = completions else {
            if outcome.metrics.workflows.iter().any(|o| o.id == wf.id) {
                push(
                    "workflow-accounting",
                    0,
                    None,
                    format!("{} reported complete with unfinished nodes", wf.id),
                );
            }
            continue;
        };
        complete_wfs += 1;
        let completion = *completions.iter().max().expect("workflows are non-empty");
        if completion > wf.deadline_slot {
            recount_wf_misses += 1;
        }
        match outcome.metrics.workflows.iter().find(|o| o.id == wf.id) {
            Some(o) => {
                if o.completion_slot != completion || o.deadline_slot != wf.deadline_slot {
                    push(
                        "workflow-accounting",
                        completion,
                        None,
                        format!(
                            "{}: outcome ({}, dl {}) != recomputed ({completion}, dl {})",
                            wf.id, o.completion_slot, o.deadline_slot, wf.deadline_slot
                        ),
                    );
                }
            }
            None => push(
                "workflow-accounting",
                completion,
                None,
                format!("{} completed but missing from outcomes", wf.id),
            ),
        }
    }
    if outcome.metrics.workflows.len() != complete_wfs {
        push(
            "workflow-accounting",
            0,
            None,
            format!(
                "{} workflow outcomes, {} workflows fully completed",
                outcome.metrics.workflows.len(),
                complete_wfs
            ),
        );
    } else if recount_wf_misses != outcome.metrics.workflow_deadline_misses() {
        push(
            "deadline-accounting",
            0,
            None,
            format!(
                "recounted {} workflow misses, metrics claim {}",
                recount_wf_misses,
                outcome.metrics.workflow_deadline_misses()
            ),
        );
    }

    // ---- Attribution recompute. -----------------------------------------
    let attribution = recompute_attribution(&jobs, &workflows, &completion_of);
    if outcome.deadline_attribution != attribution {
        push(
            "attribution-mismatch",
            0,
            None,
            format!(
                "outcome lists {} attribution rows, recomputed {}",
                outcome.deadline_attribution.len(),
                attribution.len()
            ),
        );
    }

    AuditReport {
        violations: v,
        attribution,
        events_checked: trace.recorded(),
    }
}

/// The slot a job becomes runnable, derived from its predecessors' finish
/// events: arrival for sources and ad-hoc jobs, max predecessor finish
/// `+ 1` otherwise. `None` when a predecessor has no finish event.
fn derived_ready(jobs: &[AuditJob], replays: &[Replay], i: usize) -> Option<u64> {
    let j = &jobs[i];
    if j.preds.is_empty() {
        // Deferred ad-hoc jobs become runnable at their deferred arrival.
        return Some(replays[i].deferred_until.unwrap_or(j.arrival_slot));
    }
    j.preds
        .iter()
        .map(|&p| replays[p].finish.map(|(f, _)| f + 1))
        .collect::<Option<Vec<u64>>>()
        .map(|rs| {
            rs.into_iter()
                .max()
                .expect("preds non-empty")
                .max(j.arrival_slot)
        })
}

/// Rebuilds the engine's dense job table from the workload alone,
/// mirroring [`crate::Engine::new`]'s workflows-then-adhoc id order.
fn build_table(workload: &SimWorkload) -> Result<(Vec<AuditJob>, Vec<AuditWorkflow>), String> {
    let mut jobs: Vec<AuditJob> = Vec::new();
    let mut workflows: Vec<AuditWorkflow> = Vec::new();
    for sub in &workload.workflows {
        push_workflow_table(&mut jobs, &mut workflows, sub)?;
    }
    for adhoc in &workload.adhoc {
        push_adhoc_table(&mut jobs, adhoc);
    }
    Ok((jobs, workflows))
}

/// Rebuilds the dense job table from a submission log, mirroring
/// [`crate::Engine::from_log`]'s `(arrival slot, sequence)` id order.
fn build_table_from_log(
    log: &SubmissionLog,
) -> Result<(Vec<AuditJob>, Vec<AuditWorkflow>), String> {
    let mut jobs: Vec<AuditJob> = Vec::new();
    let mut workflows: Vec<AuditWorkflow> = Vec::new();
    let effective = log.effective().map_err(|e| e.to_string())?;
    for entry in effective {
        match entry {
            EffectiveSubmission::Workflow(sub) => {
                push_workflow_table(&mut jobs, &mut workflows, sub)?;
            }
            EffectiveSubmission::Adhoc(sub) => push_adhoc_table(&mut jobs, sub),
        }
    }
    Ok((jobs, workflows))
}

/// Appends one workflow submission's nodes to the audit table.
fn push_workflow_table(
    jobs: &mut Vec<AuditJob>,
    workflows: &mut Vec<AuditWorkflow>,
    sub: &WorkflowSubmission,
) -> Result<(), String> {
    let wf = &sub.workflow;
    let n = wf.len();
    if sub.actual_work.as_ref().is_some_and(|v| v.len() != n)
        || sub.job_deadlines.as_ref().is_some_and(|v| v.len() != n)
    {
        return Err(format!("{}: malformed submission vectors", wf.id()));
    }
    let base = jobs.len();
    for (node, spec) in wf.jobs().iter().enumerate() {
        jobs.push(AuditJob {
            id: JobId::new(jobs.len() as u64),
            class: JobClass::Deadline {
                workflow: wf.id(),
                node,
            },
            per_task: spec.per_task(),
            parallel_cap: spec.effective_parallel(),
            actual_work: sub
                .actual_work
                .as_ref()
                .map_or_else(|| spec.work(), |v| v[node]),
            arrival_slot: wf.submit_slot(),
            deadline_slot: sub.job_deadlines.as_ref().map(|v| v[node]),
            preds: wf
                .dag()
                .predecessors(node)
                .iter()
                .map(|&p| base + p)
                .collect(),
        });
    }
    workflows.push(AuditWorkflow {
        id: wf.id(),
        deadline_slot: wf.deadline_slot(),
        job_idxs: (base..base + n).collect(),
        milestones: sub.job_deadlines.clone(),
    });
    Ok(())
}

/// Appends one ad-hoc submission to the audit table.
fn push_adhoc_table(jobs: &mut Vec<AuditJob>, adhoc: &AdhocSubmission) {
    jobs.push(AuditJob {
        id: JobId::new(jobs.len() as u64),
        class: JobClass::AdHoc,
        per_task: adhoc.spec.per_task(),
        parallel_cap: adhoc.spec.effective_parallel(),
        actual_work: adhoc.spec.work(),
        arrival_slot: adhoc.arrival_slot,
        deadline_slot: None,
        preds: Vec::new(),
    });
}

/// Recomputes the deadline-miss attribution from scenario milestones and
/// certified completions — the same semantics as the engine's report, but
/// derived with zero shared state.
fn recompute_attribution(
    jobs: &[AuditJob],
    workflows: &[AuditWorkflow],
    completion_of: &dyn Fn(usize) -> Option<u64>,
) -> Vec<MissAttribution> {
    let mut out = Vec::new();
    for wf in workflows {
        let Some(milestones) = &wf.milestones else {
            continue;
        };
        let completions: Option<Vec<u64>> = wf.job_idxs.iter().map(|&i| completion_of(i)).collect();
        let Some(completions) = completions else {
            continue;
        };
        let culprits: Vec<NodeSlackUse> = completions
            .iter()
            .enumerate()
            .filter_map(|(node, &c)| {
                let m = milestones[node];
                (c > m).then(|| NodeSlackUse {
                    job: jobs[wf.job_idxs[node]].id,
                    node: node as u64,
                    milestone_slot: m,
                    completion_slot: c,
                    overrun_slots: c - m,
                })
            })
            .collect();
        let completion = *completions.iter().max().expect("workflows are non-empty");
        out.push(MissAttribution {
            workflow: wf.id,
            deadline_slot: wf.deadline_slot,
            completion_slot: completion,
            total_overrun_slots: culprits.iter().map(|c| c.overrun_slots).sum(),
            culprits,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::faults::RuntimeFaultConfig;
    use crate::job::{AdhocSubmission, WorkflowSubmission};
    use crate::scheduler::{Allocation, Scheduler};
    use crate::state::SimState;
    use crate::trace::TraceEvent;
    use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};

    struct Greedy;
    impl Scheduler for Greedy {
        fn name(&self) -> &str {
            "greedy"
        }
        fn plan_slot(&mut self, state: &SimState) -> Allocation {
            let mut alloc = Allocation::new();
            let mut free = state.capacity();
            for job in state.runnable_jobs() {
                let fit = job
                    .per_task
                    .times_fitting(&free)
                    .min(job.max_tasks_this_slot);
                if fit > 0 {
                    alloc.assign(job.id, fit);
                    free -= job.per_task * fit;
                }
            }
            alloc
        }
    }

    fn scenario() -> (ClusterConfig, SimWorkload) {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "wf");
        let spec = |n: &str| JobSpec::new(n, 4, 2, ResourceVec::new([1, 1024]));
        let a = b.add_job(spec("a"));
        let c = b.add_job(spec("c"));
        b.add_dep(a, c).unwrap();
        let wf = b.window(0, 3).build().unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows
            .push(WorkflowSubmission::new(wf).with_job_deadlines(vec![1, 3]));
        wl.adhoc.push(AdhocSubmission::new(
            JobSpec::new("adhoc-0", 2, 3, ResourceVec::new([1, 512])),
            2,
        ));
        (ClusterConfig::new(ResourceVec::new([8, 65_536]), 10.0), wl)
    }

    fn traced_run(max_slots: u64) -> (ClusterConfig, SimWorkload, SimOutcome, DecisionTrace) {
        let (cluster, wl) = scenario();
        let (engine, handle) = Engine::new(cluster.clone(), wl.clone(), max_slots)
            .unwrap()
            .with_trace(4096);
        let out = engine.run(&mut Greedy).unwrap();
        (cluster, wl, out, handle.take())
    }

    #[test]
    fn clean_run_certifies_and_attributes() {
        let (cluster, wl, out, trace) = traced_run(100);
        let report = certify(&cluster, &wl, &out, &trace);
        assert!(report.is_certified(), "{}", report.summary());
        assert!(report.events_checked > 0);
        // The first chain job needed 2 slots against a milestone of 1,
        // pushing node 1 past its own milestone too; both are culprits and
        // the overrun tie breaks toward the earlier node.
        assert_eq!(report.attribution.len(), 1);
        let attr = &report.attribution[0];
        assert!(attr.missed());
        assert_eq!(attr.culprits.len(), 2);
        assert_eq!(attr.top_culprit().unwrap().node, 0);
        assert!(attr.total_overrun_slots > 0);
        assert_eq!(out.deadline_attribution, report.attribution);
    }

    #[test]
    fn drained_run_certifies() {
        let (cluster, wl, out, trace) = traced_run(3);
        assert!(!out.is_complete());
        let report = certify(&cluster, &wl, &out, &trace);
        assert!(report.is_certified(), "{}", report.summary());
    }

    #[test]
    fn inflated_grant_is_rejected() {
        let (cluster, wl, out, mut trace) = traced_run(100);
        let ev = trace
            .events_mut()
            .iter_mut()
            .find_map(|e| match e {
                TraceEvent::Grant { tasks, .. } => Some(tasks),
                _ => None,
            })
            .expect("some grant");
        *ev += 1_000;
        let report = certify(&cluster, &wl, &out, &trace);
        assert!(report.has("capacity-overflow"), "{}", report.summary());
    }

    #[test]
    fn truncated_trace_is_rejected() {
        let (cluster, wl, out, _) = traced_run(100);
        let (engine, handle) = Engine::new(cluster.clone(), wl.clone(), 100)
            .unwrap()
            .with_trace(4);
        let out2 = engine.run(&mut Greedy).unwrap();
        assert_eq!(out, out2);
        let trace = handle.take();
        assert!(trace.dropped() > 0);
        let report = certify(&cluster, &wl, &out2, &trace);
        assert!(report.has("trace-truncated"));
    }

    #[test]
    fn wrong_scenario_is_rejected() {
        let (cluster, wl, out, trace) = traced_run(100);
        let mut other = wl.clone();
        other.adhoc[0].arrival_slot += 1;
        let report = certify(&cluster, &other, &out, &trace);
        assert!(!report.is_certified());
        assert!(report.has("header-mismatch"));
    }

    fn chaos_setup() -> RecoverySetup {
        RecoverySetup::new(
            RuntimeFaultConfig::none(7)
                .with_task_failures(0.6)
                .with_crashes(0.5)
                .with_crash_period(6)
                .with_stragglers(0.5, 1.0),
            RecoveryPolicy::default(),
        )
    }

    fn traced_recovery_run(
        setup: &RecoverySetup,
        workload: Option<SimWorkload>,
    ) -> (ClusterConfig, SimWorkload, SimOutcome, DecisionTrace) {
        let (cluster, default_wl) = scenario();
        let wl = workload.unwrap_or(default_wl);
        let (engine, handle) = Engine::new(cluster.clone(), wl.clone(), 300)
            .unwrap()
            .with_recovery(setup.clone())
            .with_trace(4096);
        let out = engine.run(&mut Greedy).unwrap();
        (cluster, wl, out, handle.take())
    }

    fn overload_workload() -> SimWorkload {
        let mut wl = SimWorkload::default();
        for i in 0..5u64 {
            wl.adhoc.push(AdhocSubmission::new(
                JobSpec::new(format!("a{i}"), 40, 4, ResourceVec::new([1, 512])),
                i,
            ));
        }
        wl
    }

    #[test]
    fn chaos_run_certifies() {
        let setup = chaos_setup();
        let (cluster, wl, out, trace) = traced_recovery_run(&setup, None);
        assert!(
            out.recovery.task_failures + out.recovery.crash_kills + out.recovery.stragglers > 0,
            "chaos seed produced no faults: {:?}",
            out.recovery
        );
        let report = certify_with_recovery(&cluster, &wl, &out, &trace, Some(&setup));
        assert!(report.is_certified(), "{}", report.summary());
    }

    #[test]
    fn recovery_with_inert_faults_matches_baseline_bytes() {
        // A feasible workload: the infeasibility flag (which is allowed to
        // fire with recovery attached even when faults are inert) stays
        // quiet, so the outcome must serialize byte-for-byte identically.
        let (cluster, _) = scenario();
        let wl = overload_workload();
        let base = Engine::new(cluster.clone(), wl.clone(), 300)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        let setup = RecoverySetup::new(RuntimeFaultConfig::none(7), RecoveryPolicy::default());
        let recovered = Engine::new(cluster, wl, 300)
            .unwrap()
            .with_recovery(setup)
            .run(&mut Greedy)
            .unwrap();
        assert_eq!(
            serde_json::to_string(&base).unwrap(),
            serde_json::to_string(&recovered).unwrap()
        );
    }

    #[test]
    fn shed_policy_run_certifies() {
        let setup = RecoverySetup::new(
            RuntimeFaultConfig::none(3),
            RecoveryPolicy::default()
                .with_shed(ShedPolicy::Shed)
                .with_overload(0.5, 1),
        );
        let (cluster, wl, out, trace) = traced_recovery_run(&setup, Some(overload_workload()));
        assert!(out.recovery.shed_jobs > 0, "{:?}", out.recovery);
        assert_eq!(out.shed.len() as u64, out.recovery.shed_jobs);
        let report = certify_with_recovery(&cluster, &wl, &out, &trace, Some(&setup));
        assert!(report.is_certified(), "{}", report.summary());
    }

    #[test]
    fn delay_policy_run_certifies() {
        let setup = RecoverySetup::new(
            RuntimeFaultConfig::none(3),
            RecoveryPolicy::default()
                .with_shed(ShedPolicy::Delay { slots: 2 })
                .with_overload(0.5, 1),
        );
        let (cluster, wl, out, trace) = traced_recovery_run(&setup, Some(overload_workload()));
        assert!(out.recovery.delayed_jobs > 0, "{:?}", out.recovery);
        let report = certify_with_recovery(&cluster, &wl, &out, &trace, Some(&setup));
        assert!(report.is_certified(), "{}", report.summary());
    }

    #[test]
    fn kill_without_setup_is_rejected() {
        let setup = chaos_setup();
        let (cluster, wl, out, trace) = traced_recovery_run(&setup, None);
        assert!(
            trace.events().any(|e| matches!(e, TraceEvent::Kill { .. })),
            "chaos run produced no kills"
        );
        // Auditing the same run *without* the recovery setup must fail.
        let report = certify(&cluster, &wl, &out, &trace);
        assert!(report.has("kill-invalid"), "{}", report.summary());
    }

    #[test]
    fn corrupted_kill_wasted_is_rejected() {
        let setup = chaos_setup();
        let (cluster, wl, out, mut trace) = traced_recovery_run(&setup, None);
        let ev = trace
            .events_mut()
            .iter_mut()
            .find_map(|e| match e {
                TraceEvent::Kill { wasted, .. } => Some(wasted),
                _ => None,
            })
            .expect("some kill");
        *ev += 1;
        let report = certify_with_recovery(&cluster, &wl, &out, &trace, Some(&setup));
        assert!(report.has("kill-accounting"), "{}", report.summary());
    }

    #[test]
    fn corrupted_recovery_counter_is_rejected() {
        let setup = chaos_setup();
        let (cluster, wl, mut out, trace) = traced_recovery_run(&setup, None);
        out.recovery.retries += 1;
        let report = certify_with_recovery(&cluster, &wl, &out, &trace, Some(&setup));
        assert!(report.has("retry-accounting"), "{}", report.summary());
    }

    #[test]
    fn injected_shed_is_rejected() {
        let setup = chaos_setup();
        let (cluster, wl, out, mut trace) = traced_recovery_run(&setup, None);
        let job = trace.events().find_map(|e| e.job()).expect("a job");
        trace
            .events_mut()
            .insert(0, TraceEvent::Shed { slot: 0, job });
        let report = certify_with_recovery(&cluster, &wl, &out, &trace, Some(&setup));
        assert!(report.has("shed-violation"), "{}", report.summary());
    }

    #[test]
    fn injected_straggler_is_rejected() {
        let setup = chaos_setup();
        let (cluster, wl, out, mut trace) = traced_recovery_run(&setup, None);
        let job = trace.events().find_map(|e| e.job()).expect("a job");
        trace.events_mut().insert(
            0,
            TraceEvent::Straggler {
                slot: 0,
                job,
                extra: 5,
            },
        );
        let report = certify_with_recovery(&cluster, &wl, &out, &trace, Some(&setup));
        assert!(report.has("straggler-mismatch"), "{}", report.summary());
    }
}
