//! Offline certifying auditor for decision traces.
//!
//! [`certify`] replays a [`DecisionTrace`] against the scenario that
//! produced it (cluster + workload) and independently re-verifies the run:
//! DAG precedence, capacity conservation, parallelism caps, work
//! accounting, completion/readiness/turnaround arithmetic, the
//! deadline-decomposition metrics, and the deadline-miss attribution
//! report. Unlike the in-engine [`crate::InvariantChecker`], the auditor
//! shares **no state** with the engine: it rebuilds the job table from the
//! workload alone (using the documented id-assignment contract of
//! [`crate::Engine::new`]: workflow jobs first, in submission order and
//! node order, then ad-hoc jobs) and trusts nothing but the scenario
//! files. An engine bug that corrupts its own bookkeeping is invisible to
//! the engine's checker but not to this one.
//!
//! # Violation catalogue
//!
//! Each failed check yields an [`AuditViolation`] with a stable `code`:
//!
//! | code | meaning |
//! |------|---------|
//! | `trace-truncated` | the ring buffer dropped events; replay impossible |
//! | `header-mismatch` | trace header disagrees with the scenario |
//! | `event-order` | event slots are not non-decreasing |
//! | `unknown-job` | an event names a job the scenario does not define |
//! | `arrival-violation` | a grant or arrival precedes the submission slot |
//! | `precedence-inversion` | a grant precedes a DAG predecessor's finish |
//! | `capacity-overflow` | a slot's grants exceed the capacity in force |
//! | `parallelism-exceeded` | a grant exceeds the job's concurrency cap |
//! | `work-mismatch` | granted work disagrees with the finish accounting |
//! | `preempt-mismatch` | a preempt event contradicts the grant record |
//! | `finish-missing` | a completed job has no finish event |
//! | `finish-spurious` | a finish event is duplicated, premature, or for an unfinished job |
//! | `completion-mismatch` | outcome completion slots disagree with the trace |
//! | `ready-mismatch` | readiness disagrees with predecessor finishes |
//! | `turnaround-mismatch` | turnaround arithmetic is inconsistent |
//! | `deadline-drift` | recorded deadlines drifted from the scenario's |
//! | `deadline-accounting` | job deadline-miss counts do not recount |
//! | `workflow-accounting` | workflow outcomes do not recount |
//! | `attribution-mismatch` | the attribution report does not recompute |
//! | `load-mismatch` | per-slot loads/capacities disagree with the grants |
//! | `in-flight-mismatch` | drained-job progress disagrees with the trace |

use crate::cluster::ClusterConfig;
use crate::engine::SimOutcome;
use crate::job::{JobClass, SimWorkload};
use crate::metrics::{MissAttribution, NodeSlackUse};
use crate::trace::{DecisionTrace, TraceEvent};
use flowtime_dag::{JobId, ResourceVec};
use std::collections::BTreeMap;

/// One failed audit check.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// Stable check identifier (see the [module docs](self)).
    pub code: &'static str,
    /// Slot the violation concerns (0 for run-level checks).
    pub slot: u64,
    /// The job concerned, when the check is per-job.
    pub job: Option<JobId>,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.job {
            Some(job) => write!(
                f,
                "[{}] slot {} {}: {}",
                self.code, self.slot, job, self.detail
            ),
            None => write!(f, "[{}] slot {}: {}", self.code, self.slot, self.detail),
        }
    }
}

/// Result of auditing one run.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Every failed check, in detection order.
    pub violations: Vec<AuditViolation>,
    /// The deadline-miss attribution recomputed independently from the
    /// scenario and the certified completions.
    pub attribution: Vec<MissAttribution>,
    /// Number of trace events examined.
    pub events_checked: u64,
}

impl AuditReport {
    /// True when every check passed.
    pub fn is_certified(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when a violation with the given code was detected.
    pub fn has(&self, code: &str) -> bool {
        self.violations.iter().any(|v| v.code == code)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.is_certified() {
            format!("certified: {} events checked", self.events_checked)
        } else {
            format!(
                "REJECTED: {} violation(s) over {} events (first: {})",
                self.violations.len(),
                self.events_checked,
                self.violations[0]
            )
        }
    }
}

/// The auditor's independent view of one job, rebuilt from the workload.
struct AuditJob {
    id: JobId,
    class: JobClass,
    per_task: ResourceVec,
    parallel_cap: u64,
    actual_work: u64,
    arrival_slot: u64,
    deadline_slot: Option<u64>,
    /// Indices (into the audit table) of DAG predecessors.
    preds: Vec<usize>,
}

/// The auditor's view of one workflow submission.
struct AuditWorkflow {
    id: flowtime_dag::WorkflowId,
    deadline_slot: u64,
    job_idxs: Vec<usize>,
    milestones: Option<Vec<u64>>,
}

/// Replayed per-job dynamic state.
#[derive(Default, Clone)]
struct Replay {
    arrival_event: Option<u64>,
    ready_event: Option<u64>,
    first_grant: Option<u64>,
    done_work: u64,
    finish: Option<(u64, u64)>, // (slot, done_work at finish)
}

/// Replays `trace` against the scenario and re-verifies `outcome`.
///
/// The scenario must be the exact post-fault-injection input the engine
/// ran (the same `(cluster, workload)` pair passed to
/// [`crate::Engine::new`]).
pub fn certify(
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    outcome: &SimOutcome,
    trace: &DecisionTrace,
) -> AuditReport {
    let mut v: Vec<AuditViolation> = Vec::new();
    let mut push = |code: &'static str, slot: u64, job: Option<JobId>, detail: String| {
        v.push(AuditViolation {
            code,
            slot,
            job,
            detail,
        });
    };

    // ---- Independent job table from the workload alone. ----------------
    let (jobs, workflows) = match build_table(workload) {
        Ok(t) => t,
        Err(reason) => {
            push("header-mismatch", 0, None, reason);
            return AuditReport {
                violations: v,
                attribution: Vec::new(),
                events_checked: 0,
            };
        }
    };
    let index_of = |id: JobId| -> Option<usize> {
        let raw = id.as_u64() as usize;
        (raw < jobs.len() && jobs[raw].id == id).then_some(raw)
    };

    // ---- Header consistency. -------------------------------------------
    let h = &trace.header;
    if h.capacity != cluster.capacity() {
        push(
            "header-mismatch",
            0,
            None,
            format!(
                "header capacity {:?} != cluster {:?}",
                h.capacity,
                cluster.capacity()
            ),
        );
    }
    if h.slot_seconds != cluster.slot_seconds() {
        push(
            "header-mismatch",
            0,
            None,
            format!(
                "header slot_seconds {:?} != cluster {:?}",
                h.slot_seconds,
                cluster.slot_seconds()
            ),
        );
    }
    if h.jobs.len() != jobs.len() {
        push(
            "header-mismatch",
            0,
            None,
            format!(
                "header lists {} jobs, scenario {}",
                h.jobs.len(),
                jobs.len()
            ),
        );
    }
    for (meta, job) in h.jobs.iter().zip(&jobs) {
        if meta.id != job.id
            || meta.class != job.class
            || meta.arrival_slot != job.arrival_slot
            || meta.actual_work != job.actual_work
        {
            push(
                "header-mismatch",
                0,
                Some(job.id),
                "header job metadata disagrees with the scenario".into(),
            );
        }
        if meta.deadline_slot != job.deadline_slot {
            push(
                "deadline-drift",
                0,
                Some(job.id),
                format!(
                    "header deadline {:?} != scenario {:?}",
                    meta.deadline_slot, job.deadline_slot
                ),
            );
        }
    }

    // ---- Event replay. --------------------------------------------------
    let mut replays: Vec<Replay> = vec![Replay::default(); jobs.len()];
    let mut usage: BTreeMap<u64, ResourceVec> = BTreeMap::new();
    let mut grants: BTreeMap<(u64, JobId), u64> = BTreeMap::new();
    let mut preempts: Vec<(u64, JobId)> = Vec::new();
    let truncated = trace.dropped() > 0;
    if truncated {
        push(
            "trace-truncated",
            0,
            None,
            format!("{} events dropped by the ring bound", trace.dropped()),
        );
    } else {
        let mut prev_slot = 0u64;
        for event in trace.events() {
            let slot = event.slot();
            if slot < prev_slot {
                push(
                    "event-order",
                    slot,
                    event.job(),
                    format!("event at slot {slot} after slot {prev_slot}"),
                );
            }
            prev_slot = prev_slot.max(slot);
            let idx = match event.job() {
                Some(id) => match index_of(id) {
                    Some(i) => Some(i),
                    None => {
                        push("unknown-job", slot, Some(id), "not in the scenario".into());
                        continue;
                    }
                },
                None => None,
            };
            match *event {
                TraceEvent::Arrival { slot, job } => {
                    let i = idx.expect("job events carry an id");
                    if slot != jobs[i].arrival_slot {
                        push(
                            "arrival-violation",
                            slot,
                            Some(job),
                            format!(
                                "arrival recorded at {slot}, submitted {}",
                                jobs[i].arrival_slot
                            ),
                        );
                    }
                    replays[i].arrival_event = Some(slot);
                }
                TraceEvent::Ready { slot, job } => {
                    let i = idx.expect("job events carry an id");
                    replays[i].ready_event = Some(slot);
                    match derived_ready(&jobs, &replays, i) {
                        Some(expected) if expected == slot => {}
                        Some(expected) => push(
                            "ready-mismatch",
                            slot,
                            Some(job),
                            format!("ready recorded at {slot}, derived {expected}"),
                        ),
                        None => push(
                            "precedence-inversion",
                            slot,
                            Some(job),
                            "ready before every predecessor finished".into(),
                        ),
                    }
                }
                TraceEvent::Grant { slot, job, tasks } => {
                    let i = idx.expect("job events carry an id");
                    let j = &jobs[i];
                    if slot < j.arrival_slot {
                        push(
                            "arrival-violation",
                            slot,
                            Some(job),
                            format!("granted before submission slot {}", j.arrival_slot),
                        );
                    }
                    for &p in &j.preds {
                        match replays[p].finish {
                            Some((f, _)) if f < slot => {}
                            _ => push(
                                "precedence-inversion",
                                slot,
                                Some(job),
                                format!("granted before predecessor {} finished", jobs[p].id),
                            ),
                        }
                    }
                    if replays[i].finish.is_some() {
                        push(
                            "work-mismatch",
                            slot,
                            Some(job),
                            "granted after its finish event".into(),
                        );
                    }
                    let cap = j
                        .parallel_cap
                        .min(j.actual_work - replays[i].done_work.min(j.actual_work));
                    if tasks > cap {
                        push(
                            "parallelism-exceeded",
                            slot,
                            Some(job),
                            format!("granted {tasks} tasks, cap {cap}"),
                        );
                    }
                    replays[i].first_grant.get_or_insert(slot);
                    replays[i].done_work += tasks;
                    *usage.entry(slot).or_insert_with(ResourceVec::zero) += j.per_task * tasks;
                    *grants.entry((slot, job)).or_insert(0) += tasks;
                }
                TraceEvent::Start { slot, job } => {
                    let i = idx.expect("job events carry an id");
                    if replays[i].done_work > 0 {
                        push(
                            "work-mismatch",
                            slot,
                            Some(job),
                            "start event after work was already granted".into(),
                        );
                    }
                }
                TraceEvent::Preempt { slot, job } => preempts.push((slot, job)),
                TraceEvent::Finish {
                    slot,
                    job,
                    done_work,
                } => {
                    let i = idx.expect("job events carry an id");
                    if replays[i].finish.is_some() {
                        push(
                            "finish-spurious",
                            slot,
                            Some(job),
                            "duplicate finish".into(),
                        );
                    }
                    if replays[i].done_work != done_work {
                        push(
                            "work-mismatch",
                            slot,
                            Some(job),
                            format!(
                                "finish claims {done_work} done, grants sum to {}",
                                replays[i].done_work
                            ),
                        );
                    }
                    if replays[i].done_work < jobs[i].actual_work {
                        push(
                            "finish-spurious",
                            slot,
                            Some(job),
                            format!(
                                "finished with {} of {} task-slots done",
                                replays[i].done_work, jobs[i].actual_work
                            ),
                        );
                    }
                    replays[i].finish = Some((slot, done_work));
                }
                TraceEvent::Replan { .. } | TraceEvent::PolicyTag { .. } => {}
            }
        }

        // Per-slot capacity conservation against the capacity in force.
        for (&slot, &used) in &usage {
            let cap = cluster.capacity_at(slot);
            if !used.fits_within(&cap) {
                push(
                    "capacity-overflow",
                    slot,
                    None,
                    format!("granted {used:?} exceeds capacity {cap:?}"),
                );
            }
        }

        // Preempt events must match the grant record: granted in the
        // previous slot, unallocated in this one, not yet finished.
        for (slot, job) in preempts {
            let legit = slot > 0
                && grants.contains_key(&(slot - 1, job))
                && !grants.contains_key(&(slot, job))
                && index_of(job)
                    .and_then(|i| replays[i].finish)
                    .is_none_or(|(f, _)| f >= slot);
            if !legit {
                push(
                    "preempt-mismatch",
                    slot,
                    Some(job),
                    "preempt contradicts the grant record".into(),
                );
            }
        }
    }

    // ---- Outcome cross-checks (independent of engine state). -----------
    let mut seen = vec![false; jobs.len()];
    for out in &outcome.metrics.jobs {
        let Some(i) = index_of(out.id) else {
            push(
                "completion-mismatch",
                0,
                Some(out.id),
                "completed job not in the scenario".into(),
            );
            continue;
        };
        seen[i] = true;
        let j = &jobs[i];
        if out.arrival_slot != j.arrival_slot {
            push(
                "turnaround-mismatch",
                out.completion_slot,
                Some(out.id),
                format!(
                    "outcome arrival {} != scenario {}",
                    out.arrival_slot, j.arrival_slot
                ),
            );
        }
        if out.deadline_slot != j.deadline_slot {
            push(
                "deadline-drift",
                out.completion_slot,
                Some(out.id),
                format!(
                    "outcome deadline {:?} != scenario {:?}",
                    out.deadline_slot, j.deadline_slot
                ),
            );
        }
        if !truncated {
            match replays[i].finish {
                Some((f, _)) => {
                    if out.completion_slot != f + 1 {
                        push(
                            "completion-mismatch",
                            out.completion_slot,
                            Some(out.id),
                            format!(
                                "completion {} but trace finished at end of {f}",
                                out.completion_slot
                            ),
                        );
                    }
                    if out.turnaround_slots() != (f + 1).saturating_sub(j.arrival_slot) {
                        push(
                            "turnaround-mismatch",
                            out.completion_slot,
                            Some(out.id),
                            format!(
                                "turnaround {} != trace-derived {}",
                                out.turnaround_slots(),
                                (f + 1).saturating_sub(j.arrival_slot)
                            ),
                        );
                    }
                }
                None => push(
                    "finish-missing",
                    out.completion_slot,
                    Some(out.id),
                    "completed without a finish event".into(),
                ),
            }
            match derived_ready(&jobs, &replays, i) {
                Some(expected) if expected == out.ready_slot => {}
                Some(expected) => push(
                    "ready-mismatch",
                    out.ready_slot,
                    Some(out.id),
                    format!("outcome ready {} != derived {expected}", out.ready_slot),
                ),
                None => push(
                    "precedence-inversion",
                    out.ready_slot,
                    Some(out.id),
                    "completed although a predecessor never finished".into(),
                ),
            }
        }
    }
    for inf in &outcome.in_flight {
        let Some(i) = index_of(inf.id) else {
            push(
                "in-flight-mismatch",
                0,
                Some(inf.id),
                "in-flight job not in the scenario".into(),
            );
            continue;
        };
        if seen[i] {
            push(
                "completion-mismatch",
                0,
                Some(inf.id),
                "job is both completed and in flight".into(),
            );
        }
        seen[i] = true;
        if !truncated {
            if let Some((f, _)) = replays[i].finish {
                push(
                    "finish-spurious",
                    f,
                    Some(inf.id),
                    "finish event for a job reported in flight".into(),
                );
            }
            if inf.done_work != replays[i].done_work
                || inf.remaining_work != jobs[i].actual_work.saturating_sub(replays[i].done_work)
            {
                push(
                    "in-flight-mismatch",
                    0,
                    Some(inf.id),
                    format!(
                        "reported {}/{} done, grants sum to {}/{}",
                        inf.done_work,
                        inf.done_work + inf.remaining_work,
                        replays[i].done_work,
                        jobs[i].actual_work
                    ),
                );
            }
            let expected_ready = if jobs[i].preds.is_empty() {
                Some(jobs[i].arrival_slot)
            } else if jobs[i].preds.iter().all(|&p| replays[p].finish.is_some()) {
                derived_ready(&jobs, &replays, i)
            } else {
                None
            };
            if inf.ready_slot != expected_ready {
                push(
                    "ready-mismatch",
                    0,
                    Some(inf.id),
                    format!(
                        "in-flight ready {:?} != derived {:?}",
                        inf.ready_slot, expected_ready
                    ),
                );
            }
        }
    }
    for (i, covered) in seen.iter().enumerate() {
        if !covered {
            push(
                "completion-mismatch",
                0,
                Some(jobs[i].id),
                "job appears in neither outcomes nor in-flight".into(),
            );
        }
    }

    // ---- Per-slot load records. ----------------------------------------
    if outcome.metrics.slot_loads.len() as u64 != outcome.slots_elapsed
        || outcome.metrics.slot_capacities.len() != outcome.metrics.slot_loads.len()
    {
        push(
            "load-mismatch",
            0,
            None,
            format!(
                "{} load / {} capacity records for {} slots",
                outcome.metrics.slot_loads.len(),
                outcome.metrics.slot_capacities.len(),
                outcome.slots_elapsed
            ),
        );
    }
    if !truncated {
        for (s, load) in outcome.metrics.slot_loads.iter().enumerate() {
            let computed = usage
                .get(&(s as u64))
                .copied()
                .unwrap_or_else(ResourceVec::zero);
            if *load != computed {
                push(
                    "load-mismatch",
                    s as u64,
                    None,
                    format!("recorded load {load:?}, grants sum to {computed:?}"),
                );
            }
        }
        if let Some((&slot, _)) = usage
            .iter()
            .find(|(&s, _)| s >= outcome.metrics.slot_loads.len() as u64)
        {
            push(
                "load-mismatch",
                slot,
                None,
                "grants recorded beyond the simulated range".into(),
            );
        }
    }
    for (s, cap) in outcome.metrics.slot_capacities.iter().enumerate() {
        if *cap != cluster.capacity_at(s as u64) {
            push(
                "load-mismatch",
                s as u64,
                None,
                format!(
                    "recorded capacity {cap:?} != cluster {:?}",
                    cluster.capacity_at(s as u64)
                ),
            );
        }
    }

    // ---- Deadline-decomposition accounting. -----------------------------
    let recount_job_misses = outcome
        .metrics
        .jobs
        .iter()
        .filter(|o| {
            index_of(o.id)
                .and_then(|i| jobs[i].deadline_slot)
                .is_some_and(|d| o.completion_slot > d)
        })
        .count();
    if recount_job_misses != outcome.metrics.job_deadline_misses() {
        push(
            "deadline-accounting",
            0,
            None,
            format!(
                "recounted {} job misses, metrics claim {}",
                recount_job_misses,
                outcome.metrics.job_deadline_misses()
            ),
        );
    }
    let completion_of = |i: usize| -> Option<u64> {
        outcome
            .metrics
            .jobs
            .iter()
            .find(|o| o.id == jobs[i].id)
            .map(|o| o.completion_slot)
    };
    let mut recount_wf_misses = 0usize;
    let mut complete_wfs = 0usize;
    for wf in &workflows {
        let completions: Option<Vec<u64>> = wf.job_idxs.iter().map(|&i| completion_of(i)).collect();
        let Some(completions) = completions else {
            if outcome.metrics.workflows.iter().any(|o| o.id == wf.id) {
                push(
                    "workflow-accounting",
                    0,
                    None,
                    format!("{} reported complete with unfinished nodes", wf.id),
                );
            }
            continue;
        };
        complete_wfs += 1;
        let completion = *completions.iter().max().expect("workflows are non-empty");
        if completion > wf.deadline_slot {
            recount_wf_misses += 1;
        }
        match outcome.metrics.workflows.iter().find(|o| o.id == wf.id) {
            Some(o) => {
                if o.completion_slot != completion || o.deadline_slot != wf.deadline_slot {
                    push(
                        "workflow-accounting",
                        completion,
                        None,
                        format!(
                            "{}: outcome ({}, dl {}) != recomputed ({completion}, dl {})",
                            wf.id, o.completion_slot, o.deadline_slot, wf.deadline_slot
                        ),
                    );
                }
            }
            None => push(
                "workflow-accounting",
                completion,
                None,
                format!("{} completed but missing from outcomes", wf.id),
            ),
        }
    }
    if outcome.metrics.workflows.len() != complete_wfs {
        push(
            "workflow-accounting",
            0,
            None,
            format!(
                "{} workflow outcomes, {} workflows fully completed",
                outcome.metrics.workflows.len(),
                complete_wfs
            ),
        );
    } else if recount_wf_misses != outcome.metrics.workflow_deadline_misses() {
        push(
            "deadline-accounting",
            0,
            None,
            format!(
                "recounted {} workflow misses, metrics claim {}",
                recount_wf_misses,
                outcome.metrics.workflow_deadline_misses()
            ),
        );
    }

    // ---- Attribution recompute. -----------------------------------------
    let attribution = recompute_attribution(&jobs, &workflows, &completion_of);
    if outcome.deadline_attribution != attribution {
        push(
            "attribution-mismatch",
            0,
            None,
            format!(
                "outcome lists {} attribution rows, recomputed {}",
                outcome.deadline_attribution.len(),
                attribution.len()
            ),
        );
    }

    AuditReport {
        violations: v,
        attribution,
        events_checked: trace.recorded(),
    }
}

/// The slot a job becomes runnable, derived from its predecessors' finish
/// events: arrival for sources and ad-hoc jobs, max predecessor finish
/// `+ 1` otherwise. `None` when a predecessor has no finish event.
fn derived_ready(jobs: &[AuditJob], replays: &[Replay], i: usize) -> Option<u64> {
    let j = &jobs[i];
    if j.preds.is_empty() {
        return Some(j.arrival_slot);
    }
    j.preds
        .iter()
        .map(|&p| replays[p].finish.map(|(f, _)| f + 1))
        .collect::<Option<Vec<u64>>>()
        .map(|rs| {
            rs.into_iter()
                .max()
                .expect("preds non-empty")
                .max(j.arrival_slot)
        })
}

/// Rebuilds the engine's dense job table from the workload alone.
fn build_table(workload: &SimWorkload) -> Result<(Vec<AuditJob>, Vec<AuditWorkflow>), String> {
    let mut jobs: Vec<AuditJob> = Vec::new();
    let mut workflows: Vec<AuditWorkflow> = Vec::new();
    for sub in &workload.workflows {
        let wf = &sub.workflow;
        let n = wf.len();
        if sub.actual_work.as_ref().is_some_and(|v| v.len() != n)
            || sub.job_deadlines.as_ref().is_some_and(|v| v.len() != n)
        {
            return Err(format!("{}: malformed submission vectors", wf.id()));
        }
        let base = jobs.len();
        for (node, spec) in wf.jobs().iter().enumerate() {
            jobs.push(AuditJob {
                id: JobId::new(jobs.len() as u64),
                class: JobClass::Deadline {
                    workflow: wf.id(),
                    node,
                },
                per_task: spec.per_task(),
                parallel_cap: spec.effective_parallel(),
                actual_work: sub
                    .actual_work
                    .as_ref()
                    .map_or_else(|| spec.work(), |v| v[node]),
                arrival_slot: wf.submit_slot(),
                deadline_slot: sub.job_deadlines.as_ref().map(|v| v[node]),
                preds: wf
                    .dag()
                    .predecessors(node)
                    .iter()
                    .map(|&p| base + p)
                    .collect(),
            });
        }
        workflows.push(AuditWorkflow {
            id: wf.id(),
            deadline_slot: wf.deadline_slot(),
            job_idxs: (base..base + n).collect(),
            milestones: sub.job_deadlines.clone(),
        });
    }
    for adhoc in &workload.adhoc {
        jobs.push(AuditJob {
            id: JobId::new(jobs.len() as u64),
            class: JobClass::AdHoc,
            per_task: adhoc.spec.per_task(),
            parallel_cap: adhoc.spec.effective_parallel(),
            actual_work: adhoc.spec.work(),
            arrival_slot: adhoc.arrival_slot,
            deadline_slot: None,
            preds: Vec::new(),
        });
    }
    Ok((jobs, workflows))
}

/// Recomputes the deadline-miss attribution from scenario milestones and
/// certified completions — the same semantics as the engine's report, but
/// derived with zero shared state.
fn recompute_attribution(
    jobs: &[AuditJob],
    workflows: &[AuditWorkflow],
    completion_of: &dyn Fn(usize) -> Option<u64>,
) -> Vec<MissAttribution> {
    let mut out = Vec::new();
    for wf in workflows {
        let Some(milestones) = &wf.milestones else {
            continue;
        };
        let completions: Option<Vec<u64>> = wf.job_idxs.iter().map(|&i| completion_of(i)).collect();
        let Some(completions) = completions else {
            continue;
        };
        let culprits: Vec<NodeSlackUse> = completions
            .iter()
            .enumerate()
            .filter_map(|(node, &c)| {
                let m = milestones[node];
                (c > m).then(|| NodeSlackUse {
                    job: jobs[wf.job_idxs[node]].id,
                    node: node as u64,
                    milestone_slot: m,
                    completion_slot: c,
                    overrun_slots: c - m,
                })
            })
            .collect();
        let completion = *completions.iter().max().expect("workflows are non-empty");
        out.push(MissAttribution {
            workflow: wf.id,
            deadline_slot: wf.deadline_slot,
            completion_slot: completion,
            total_overrun_slots: culprits.iter().map(|c| c.overrun_slots).sum(),
            culprits,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::job::{AdhocSubmission, WorkflowSubmission};
    use crate::scheduler::{Allocation, Scheduler};
    use crate::state::SimState;
    use crate::trace::TraceEvent;
    use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};

    struct Greedy;
    impl Scheduler for Greedy {
        fn name(&self) -> &str {
            "greedy"
        }
        fn plan_slot(&mut self, state: &SimState) -> Allocation {
            let mut alloc = Allocation::new();
            let mut free = state.capacity();
            for job in state.runnable_jobs() {
                let fit = job
                    .per_task
                    .times_fitting(&free)
                    .min(job.max_tasks_this_slot);
                if fit > 0 {
                    alloc.assign(job.id, fit);
                    free -= job.per_task * fit;
                }
            }
            alloc
        }
    }

    fn scenario() -> (ClusterConfig, SimWorkload) {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "wf");
        let spec = |n: &str| JobSpec::new(n, 4, 2, ResourceVec::new([1, 1024]));
        let a = b.add_job(spec("a"));
        let c = b.add_job(spec("c"));
        b.add_dep(a, c).unwrap();
        let wf = b.window(0, 3).build().unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows
            .push(WorkflowSubmission::new(wf).with_job_deadlines(vec![1, 3]));
        wl.adhoc.push(AdhocSubmission::new(
            JobSpec::new("adhoc-0", 2, 3, ResourceVec::new([1, 512])),
            2,
        ));
        (ClusterConfig::new(ResourceVec::new([8, 65_536]), 10.0), wl)
    }

    fn traced_run(max_slots: u64) -> (ClusterConfig, SimWorkload, SimOutcome, DecisionTrace) {
        let (cluster, wl) = scenario();
        let (engine, handle) = Engine::new(cluster.clone(), wl.clone(), max_slots)
            .unwrap()
            .with_trace(4096);
        let out = engine.run(&mut Greedy).unwrap();
        (cluster, wl, out, handle.take())
    }

    #[test]
    fn clean_run_certifies_and_attributes() {
        let (cluster, wl, out, trace) = traced_run(100);
        let report = certify(&cluster, &wl, &out, &trace);
        assert!(report.is_certified(), "{}", report.summary());
        assert!(report.events_checked > 0);
        // The first chain job needed 2 slots against a milestone of 1,
        // pushing node 1 past its own milestone too; both are culprits and
        // the overrun tie breaks toward the earlier node.
        assert_eq!(report.attribution.len(), 1);
        let attr = &report.attribution[0];
        assert!(attr.missed());
        assert_eq!(attr.culprits.len(), 2);
        assert_eq!(attr.top_culprit().unwrap().node, 0);
        assert!(attr.total_overrun_slots > 0);
        assert_eq!(out.deadline_attribution, report.attribution);
    }

    #[test]
    fn drained_run_certifies() {
        let (cluster, wl, out, trace) = traced_run(3);
        assert!(!out.is_complete());
        let report = certify(&cluster, &wl, &out, &trace);
        assert!(report.is_certified(), "{}", report.summary());
    }

    #[test]
    fn inflated_grant_is_rejected() {
        let (cluster, wl, out, mut trace) = traced_run(100);
        let ev = trace
            .events_mut()
            .iter_mut()
            .find_map(|e| match e {
                TraceEvent::Grant { tasks, .. } => Some(tasks),
                _ => None,
            })
            .expect("some grant");
        *ev += 1_000;
        let report = certify(&cluster, &wl, &out, &trace);
        assert!(report.has("capacity-overflow"), "{}", report.summary());
    }

    #[test]
    fn truncated_trace_is_rejected() {
        let (cluster, wl, out, _) = traced_run(100);
        let (engine, handle) = Engine::new(cluster.clone(), wl.clone(), 100)
            .unwrap()
            .with_trace(4);
        let out2 = engine.run(&mut Greedy).unwrap();
        assert_eq!(out, out2);
        let trace = handle.take();
        assert!(trace.dropped() > 0);
        let report = certify(&cluster, &wl, &out2, &trace);
        assert!(report.has("trace-truncated"));
    }

    #[test]
    fn wrong_scenario_is_rejected() {
        let (cluster, wl, out, trace) = traced_run(100);
        let mut other = wl.clone();
        other.adhoc[0].arrival_slot += 1;
        let report = certify(&cluster, &other, &out, &trace);
        assert!(!report.is_certified());
        assert!(report.has("header-mismatch"));
    }
}
