//! Cluster description.

use flowtime_dag::ResourceVec;
use serde::{Deserialize, Serialize};

/// A time-bounded capacity override: during `[from_slot, to_slot)` the
/// cluster offers `capacity` instead of its base capacity.
///
/// This models the paper's time-varying cap `C_t^r` (Eq. (4): "the
/// resource cap could vary with time to provide more flexibility") —
/// maintenance windows, co-tenant reservations, or elastic expansion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityWindow {
    /// First slot the override applies to (inclusive).
    pub from_slot: u64,
    /// First slot after the override (exclusive).
    pub to_slot: u64,
    /// The capacity in force during the window.
    pub capacity: ResourceVec,
}

/// Static description of the simulated cluster.
///
/// Base capacity is constant; optional [`CapacityWindow`]s override it for
/// slot ranges (later windows win where they overlap).
///
/// # Example
///
/// ```
/// use flowtime_sim::ClusterConfig;
/// use flowtime_dag::ResourceVec;
/// let c = ClusterConfig::new(ResourceVec::new([500, 1_048_576]), 10.0)
///     // half the cluster is down for maintenance during slots 100..160
///     .with_capacity_window(100, 160, ResourceVec::new([250, 524_288]));
/// assert_eq!(c.capacity_at(99), ResourceVec::new([500, 1_048_576]));
/// assert_eq!(c.capacity_at(100), ResourceVec::new([250, 524_288]));
/// assert_eq!(c.capacity_at(160), ResourceVec::new([500, 1_048_576]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    capacity: ResourceVec,
    slot_seconds: f64,
    #[serde(default)]
    windows: Vec<CapacityWindow>,
}

impl ClusterConfig {
    /// Creates a cluster with the given base capacity and slot duration in
    /// seconds (used only for converting metrics to wall-clock units).
    pub fn new(capacity: ResourceVec, slot_seconds: f64) -> Self {
        ClusterConfig {
            capacity,
            slot_seconds,
            windows: Vec::new(),
        }
    }

    /// Adds a capacity override for `[from_slot, to_slot)`. Overlapping
    /// windows resolve in favour of the one added last.
    #[must_use]
    pub fn with_capacity_window(
        mut self,
        from_slot: u64,
        to_slot: u64,
        capacity: ResourceVec,
    ) -> Self {
        self.windows.push(CapacityWindow {
            from_slot,
            to_slot,
            capacity,
        });
        self
    }

    /// Base (default) capacity of the cluster.
    pub fn capacity(&self) -> ResourceVec {
        self.capacity
    }

    /// The capacity in force during `slot` (base capacity unless a window
    /// covers the slot).
    pub fn capacity_at(&self, slot: u64) -> ResourceVec {
        self.windows
            .iter()
            .rev()
            .find(|w| w.from_slot <= slot && slot < w.to_slot)
            .map_or(self.capacity, |w| w.capacity)
    }

    /// True if any capacity override is configured.
    pub fn has_capacity_windows(&self) -> bool {
        !self.windows.is_empty()
    }

    /// The configured capacity overrides, in insertion order.
    pub fn windows(&self) -> &[CapacityWindow] {
        &self.windows
    }

    /// Duration of one slot in seconds.
    pub fn slot_seconds(&self) -> f64 {
        self.slot_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = ClusterConfig::new(ResourceVec::new([10, 100]), 5.0);
        assert_eq!(c.capacity(), ResourceVec::new([10, 100]));
        assert_eq!(c.slot_seconds(), 5.0);
        assert!(!c.has_capacity_windows());
        assert_eq!(c.capacity_at(12345), ResourceVec::new([10, 100]));
    }

    #[test]
    fn windows_override_in_range_only() {
        let c = ClusterConfig::new(ResourceVec::new([10, 100]), 5.0).with_capacity_window(
            5,
            8,
            ResourceVec::new([4, 40]),
        );
        assert!(c.has_capacity_windows());
        assert_eq!(c.capacity_at(4), ResourceVec::new([10, 100]));
        assert_eq!(c.capacity_at(5), ResourceVec::new([4, 40]));
        assert_eq!(c.capacity_at(7), ResourceVec::new([4, 40]));
        assert_eq!(c.capacity_at(8), ResourceVec::new([10, 100]));
    }

    #[test]
    fn later_windows_win_on_overlap() {
        let c = ClusterConfig::new(ResourceVec::new([10, 100]), 5.0)
            .with_capacity_window(0, 10, ResourceVec::new([4, 40]))
            .with_capacity_window(5, 10, ResourceVec::new([2, 20]));
        assert_eq!(c.capacity_at(3), ResourceVec::new([4, 40]));
        assert_eq!(c.capacity_at(6), ResourceVec::new([2, 20]));
    }

    #[test]
    fn serde_round_trip_without_windows_field() {
        // Older traces serialized ClusterConfig before windows existed.
        let json = r#"{"capacity":[8,64],"slot_seconds":10.0}"#;
        let c: ClusterConfig = serde_json::from_str(json).unwrap();
        assert_eq!(c.capacity(), ResourceVec::new([8, 64]));
        assert!(!c.has_capacity_windows());
    }
}
