//! Recorded submission logs — the bridge between online and batch runs.
//!
//! A [`SubmissionLog`] is the daemon's append-only record of every
//! *accepted* request that affects the workload: workflow submissions,
//! ad-hoc submissions, and cancellations of still-pending submissions.
//! It is the unit of determinism for the online path:
//!
//! - the live daemon materializes jobs from the log incrementally as
//!   virtual time reaches each arrival slot ([`crate::OnlineEngine`]);
//! - [`crate::Engine::from_log`] materializes the *same* dense job table
//!   in one shot for a batch replay;
//! - snapshots persist the log (plus the virtual clock) and restore by
//!   replaying it through a fresh engine.
//!
//! The shared contract is the **id order**: effective (non-cancelled)
//! submissions are materialized in ascending `(arrival_slot, seq)` order,
//! workflow jobs expanding to one job per DAG node in node order. The
//! online engine never injects a submission before its arrival slot, so
//! injection order equals that sort order and both paths assign identical
//! dense [`flowtime_dag::JobId`]s — the precondition for byte-identical
//! [`crate::SimOutcome`]s.

use crate::error::SimError;
use crate::job::{AdhocSubmission, SimWorkload, WorkflowSubmission};
use serde::{Deserialize, Serialize};

/// One accepted request, stamped with the virtual slot (`at`) the daemon
/// accepted it in and a session-unique sequence number (`seq`). `at` is
/// informational (transcripts, debugging): replay depends only on `seq`
/// and the payload's own arrival slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogEntry {
    /// A workflow submission; its arrival slot is the workflow's
    /// `submit_slot`.
    Workflow {
        /// Session-unique sequence number.
        seq: u64,
        /// Virtual slot the request was accepted in.
        at: u64,
        /// The submission payload.
        submission: WorkflowSubmission,
    },
    /// An ad-hoc job submission.
    Adhoc {
        /// Session-unique sequence number.
        seq: u64,
        /// Virtual slot the request was accepted in.
        at: u64,
        /// The submission payload.
        submission: AdhocSubmission,
    },
    /// Cancellation of the still-pending submission with sequence number
    /// `target`. A cancelled submission never materializes into jobs.
    Cancel {
        /// Session-unique sequence number of the cancel request itself.
        seq: u64,
        /// Virtual slot the request was accepted in.
        at: u64,
        /// Sequence number of the submission being cancelled.
        target: u64,
    },
}

impl LogEntry {
    /// The entry's own sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            LogEntry::Workflow { seq, .. }
            | LogEntry::Adhoc { seq, .. }
            | LogEntry::Cancel { seq, .. } => *seq,
        }
    }
}

/// A borrowed view of one effective (non-cancelled) submission, in
/// materialization order.
#[derive(Debug, Clone, Copy)]
pub enum EffectiveSubmission<'a> {
    /// A workflow submission that survived cancellation.
    Workflow(&'a WorkflowSubmission),
    /// An ad-hoc submission that survived cancellation.
    Adhoc(&'a AdhocSubmission),
}

impl EffectiveSubmission<'_> {
    /// The slot this submission's jobs arrive at.
    pub fn arrival_slot(&self) -> u64 {
        match self {
            EffectiveSubmission::Workflow(sub) => sub.workflow.submit_slot(),
            EffectiveSubmission::Adhoc(sub) => sub.arrival_slot,
        }
    }
}

/// Append-only record of accepted submission-affecting requests.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SubmissionLog {
    /// Entries in acceptance order (ascending `seq`).
    pub entries: Vec<LogEntry>,
}

impl SubmissionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a log from a batch workload: every submission is logged at
    /// virtual slot 0, workflows first, then ad-hoc jobs — the shape the
    /// differential harness feeds to a daemon session.
    pub fn from_workload(workload: &SimWorkload) -> Self {
        let mut log = SubmissionLog::new();
        let mut seq = 0u64;
        for sub in &workload.workflows {
            log.entries.push(LogEntry::Workflow {
                seq,
                at: 0,
                submission: sub.clone(),
            });
            seq += 1;
        }
        for sub in &workload.adhoc {
            log.entries.push(LogEntry::Adhoc {
                seq,
                at: 0,
                submission: sub.clone(),
            });
            seq += 1;
        }
        log
    }

    /// Resolves cancellations and returns the surviving submissions
    /// sorted by `(arrival_slot, seq)` — the materialization order both
    /// the batch and online paths assign job ids in.
    ///
    /// # Errors
    ///
    /// [`SimError::MalformedSubmission`] when a cancel entry targets an
    /// unknown sequence number, a non-submission entry, or a submission
    /// that was already cancelled.
    pub fn effective(&self) -> Result<Vec<EffectiveSubmission<'_>>, SimError> {
        let mut cancelled: Vec<u64> = Vec::new();
        for entry in &self.entries {
            if let LogEntry::Cancel { target, .. } = entry {
                let hit = self
                    .entries
                    .iter()
                    .any(|e| e.seq() == *target && !matches!(e, LogEntry::Cancel { .. }));
                if !hit {
                    return Err(SimError::MalformedSubmission {
                        reason: "cancel targets an unknown submission",
                    });
                }
                if cancelled.contains(target) {
                    return Err(SimError::MalformedSubmission {
                        reason: "submission cancelled twice",
                    });
                }
                cancelled.push(*target);
            }
        }
        let mut keyed: Vec<(u64, u64, EffectiveSubmission<'_>)> = Vec::new();
        for entry in &self.entries {
            match entry {
                LogEntry::Workflow {
                    seq, submission, ..
                } if !cancelled.contains(seq) => {
                    keyed.push((
                        submission.workflow.submit_slot(),
                        *seq,
                        EffectiveSubmission::Workflow(submission),
                    ));
                }
                LogEntry::Adhoc {
                    seq, submission, ..
                } if !cancelled.contains(seq) => {
                    keyed.push((
                        submission.arrival_slot,
                        *seq,
                        EffectiveSubmission::Adhoc(submission),
                    ));
                }
                _ => {}
            }
        }
        keyed.sort_by_key(|&(arrival, seq, _)| (arrival, seq));
        Ok(keyed.into_iter().map(|(_, _, sub)| sub).collect())
    }

    /// Number of entries in the log.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no request has been logged yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{JobSpec, ResourceVec};

    fn adhoc(arrival: u64, tasks: u64) -> AdhocSubmission {
        AdhocSubmission {
            spec: JobSpec::new("a", tasks, 1, ResourceVec::new([1, 1024])),
            arrival_slot: arrival,
        }
    }

    #[test]
    fn effective_sorts_by_arrival_then_seq() {
        let mut log = SubmissionLog::new();
        log.entries.push(LogEntry::Adhoc {
            seq: 0,
            at: 0,
            submission: adhoc(7, 1),
        });
        log.entries.push(LogEntry::Adhoc {
            seq: 1,
            at: 0,
            submission: adhoc(3, 2),
        });
        log.entries.push(LogEntry::Adhoc {
            seq: 2,
            at: 1,
            submission: adhoc(3, 3),
        });
        let eff = log.effective().unwrap();
        let arrivals: Vec<u64> = eff.iter().map(|e| e.arrival_slot()).collect();
        assert_eq!(arrivals, vec![3, 3, 7]);
        // Ties broken by seq: the seq-1 job (2 tasks) before seq-2 (3).
        match eff[0] {
            EffectiveSubmission::Adhoc(sub) => assert_eq!(sub.spec.tasks(), 2),
            _ => panic!("expected adhoc"),
        }
    }

    #[test]
    fn cancel_removes_target() {
        let mut log = SubmissionLog::new();
        log.entries.push(LogEntry::Adhoc {
            seq: 0,
            at: 0,
            submission: adhoc(5, 1),
        });
        log.entries.push(LogEntry::Cancel {
            seq: 1,
            at: 2,
            target: 0,
        });
        assert!(log.effective().unwrap().is_empty());
    }

    #[test]
    fn bad_cancels_are_typed_errors() {
        let mut log = SubmissionLog::new();
        log.entries.push(LogEntry::Cancel {
            seq: 0,
            at: 0,
            target: 99,
        });
        assert!(matches!(
            log.effective(),
            Err(SimError::MalformedSubmission { .. })
        ));
        let mut log = SubmissionLog::new();
        log.entries.push(LogEntry::Adhoc {
            seq: 0,
            at: 0,
            submission: adhoc(5, 1),
        });
        log.entries.push(LogEntry::Cancel {
            seq: 1,
            at: 0,
            target: 0,
        });
        log.entries.push(LogEntry::Cancel {
            seq: 2,
            at: 0,
            target: 0,
        });
        assert!(matches!(
            log.effective(),
            Err(SimError::MalformedSubmission { .. })
        ));
    }

    #[test]
    fn log_round_trips_through_serde() {
        let mut log = SubmissionLog::new();
        log.entries.push(LogEntry::Adhoc {
            seq: 0,
            at: 0,
            submission: adhoc(5, 1),
        });
        log.entries.push(LogEntry::Cancel {
            seq: 1,
            at: 3,
            target: 0,
        });
        let json = serde_json::to_string(&log).unwrap();
        let back: SubmissionLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }
}
