//! The scheduler interface.

use crate::state::SimState;
use flowtime_dag::JobId;
use std::collections::BTreeMap;

/// A per-slot allocation decision: how many concurrent tasks each job runs
/// during the coming slot.
///
/// Backed by a `BTreeMap` so iteration order — and therefore engine
/// behaviour — is deterministic regardless of how the scheduler inserted
/// entries.
///
/// # Example
///
/// ```
/// use flowtime_sim::Allocation;
/// use flowtime_dag::JobId;
/// let mut alloc = Allocation::new();
/// alloc.assign(JobId::new(1), 3);
/// alloc.assign(JobId::new(1), 2); // accumulates
/// assert_eq!(alloc.get(JobId::new(1)), 5);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allocation {
    tasks: BTreeMap<JobId, u64>,
}

impl Allocation {
    /// An empty allocation (cluster idles this slot).
    pub fn new() -> Self {
        Allocation::default()
    }

    /// Adds `tasks` concurrent tasks for `job` (accumulating with prior
    /// assignments). Zero-task assignments are ignored.
    pub fn assign(&mut self, job: JobId, tasks: u64) {
        if tasks > 0 {
            *self.tasks.entry(job).or_insert(0) += tasks;
        }
    }

    /// The tasks assigned to `job` (zero if unassigned).
    pub fn get(&self, job: JobId) -> u64 {
        self.tasks.get(&job).copied().unwrap_or(0)
    }

    /// Iterates `(job, tasks)` pairs in job-id order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, u64)> + '_ {
        self.tasks.iter().map(|(&id, &q)| (id, q))
    }

    /// Number of jobs with a positive assignment.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

impl FromIterator<(JobId, u64)> for Allocation {
    fn from_iter<I: IntoIterator<Item = (JobId, u64)>>(iter: I) -> Self {
        let mut alloc = Allocation::new();
        for (id, q) in iter {
            alloc.assign(id, q);
        }
        alloc
    }
}

impl Extend<(JobId, u64)> for Allocation {
    fn extend<I: IntoIterator<Item = (JobId, u64)>>(&mut self, iter: I) {
        for (id, q) in iter {
            self.assign(id, q);
        }
    }
}

/// A scheduling algorithm under test.
///
/// The engine calls [`Scheduler::plan_slot`] once per slot with the current
/// [`SimState`]; the returned [`Allocation`] is validated (capacity,
/// readiness, parallelism caps) and applied for that slot. Schedulers carry
/// their own persistent state (plans, decomposed deadlines, histories)
/// across calls.
pub trait Scheduler {
    /// Short algorithm name used in reports (e.g. `"FlowTime"`, `"EDF"`).
    fn name(&self) -> &str;

    /// Decides the allocation for the slot `state.now()`.
    fn plan_slot(&mut self, state: &SimState) -> Allocation;

    /// Solver-effort counters accumulated so far, for schedulers that
    /// re-solve an optimization problem per replan. The engine snapshots
    /// this into [`crate::SimOutcome::solver_telemetry`] when the run
    /// ends. Schedulers with no solver (the default) report `None`.
    fn telemetry(&self) -> Option<crate::telemetry::SolverTelemetry> {
        None
    }

    /// Notification that an attempt of `job` was killed by a mid-run
    /// fault (task failure or node crash) and the job will re-execute as
    /// attempt `attempt` after its backoff. Called after the kill has been
    /// applied to `state`, so the job already shows zero done work.
    /// Plan-driven schedulers should invalidate any plan that counted the
    /// killed attempt's progress; the default (for greedy schedulers that
    /// re-derive decisions each slot) does nothing.
    fn on_failure(&mut self, _state: &SimState, _job: JobId, _attempt: u32) {}

    /// Short tag describing the decision regime currently in force (e.g.
    /// `"lp-plan"` vs `"degraded-greedy"` for a solver-backed scheduler
    /// that fell back). Polled by the decision-trace layer, which records
    /// a [`crate::trace::TraceEvent::PolicyTag`] whenever the tag changes;
    /// never consulted when tracing is off. The default suits greedy
    /// single-regime schedulers.
    fn decision_tag(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_accumulates_and_ignores_zero() {
        let mut a = Allocation::new();
        a.assign(JobId::new(3), 0);
        assert!(a.is_empty());
        a.assign(JobId::new(3), 2);
        a.assign(JobId::new(1), 1);
        a.assign(JobId::new(3), 1);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(JobId::new(3)), 3);
        assert_eq!(a.get(JobId::new(9)), 0);
        let order: Vec<_> = a.iter().map(|(id, _)| id).collect();
        assert_eq!(order, vec![JobId::new(1), JobId::new(3)]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut a: Allocation = [(JobId::new(1), 2), (JobId::new(2), 3)]
            .into_iter()
            .collect();
        a.extend([(JobId::new(1), 1)]);
        assert_eq!(a.get(JobId::new(1)), 3);
        assert_eq!(a.get(JobId::new(2)), 3);
    }
}
