//! Workload submissions and runtime job state.

use flowtime_dag::{JobId, JobSpec, Workflow, WorkflowId};
use serde::{Deserialize, Serialize};

/// Which workload class a job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobClass {
    /// A node of a deadline-aware workflow.
    Deadline {
        /// The owning workflow.
        workflow: WorkflowId,
        /// The DAG node index within that workflow.
        node: usize,
    },
    /// A best-effort ad-hoc job (unknown size, no deadline).
    AdHoc,
}

impl JobClass {
    /// True for ad-hoc jobs.
    pub fn is_adhoc(&self) -> bool {
        matches!(self, JobClass::AdHoc)
    }
}

/// An ad-hoc job submission: a spec (the *actual* shape; schedulers never
/// see its size) and an arrival slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdhocSubmission {
    /// The true job shape used by the engine to run it.
    pub spec: JobSpec,
    /// Slot at which the job is submitted.
    pub arrival_slot: u64,
}

impl AdhocSubmission {
    /// Creates an ad-hoc submission.
    pub fn new(spec: JobSpec, arrival_slot: u64) -> Self {
        AdhocSubmission { spec, arrival_slot }
    }
}

/// A deadline-aware workflow submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSubmission {
    /// The workflow description (what schedulers see: estimated specs).
    pub workflow: Workflow,
    /// Ground-truth per-node work in task-slots, when it differs from the
    /// estimate in the spec (estimation error). `None` = estimates are
    /// exact.
    pub actual_work: Option<Vec<u64>>,
    /// Scheduler-independent per-node deadline milestones, in slots, used
    /// for the per-job miss metrics of Fig. 4(a)/(b). Computed once by the
    /// experiment harness (via the FlowTime decomposer) so every algorithm
    /// is judged against identical milestones. `None` = only the workflow
    /// deadline is tracked.
    pub job_deadlines: Option<Vec<u64>>,
}

impl WorkflowSubmission {
    /// Submission with exact estimates and no per-job milestones.
    pub fn new(workflow: Workflow) -> Self {
        WorkflowSubmission {
            workflow,
            actual_work: None,
            job_deadlines: None,
        }
    }

    /// Attaches ground-truth work (estimation error injection).
    #[must_use]
    pub fn with_actual_work(mut self, actual: Vec<u64>) -> Self {
        self.actual_work = Some(actual);
        self
    }

    /// Attaches per-node deadline milestones.
    #[must_use]
    pub fn with_job_deadlines(mut self, deadlines: Vec<u64>) -> Self {
        self.job_deadlines = Some(deadlines);
        self
    }
}

/// A complete workload: deadline workflows plus an ad-hoc stream.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimWorkload {
    /// Deadline-aware workflows.
    pub workflows: Vec<WorkflowSubmission>,
    /// Ad-hoc jobs.
    pub adhoc: Vec<AdhocSubmission>,
}

/// Runtime state of one job inside the engine.
#[derive(Debug, Clone)]
pub(crate) struct JobRuntime {
    pub id: JobId,
    pub class: JobClass,
    /// The estimate schedulers may inspect (for deadline jobs).
    pub estimate: JobSpec,
    /// Ground truth work in task-slots.
    pub actual_work: u64,
    pub arrival_slot: u64,
    /// Slot at which dependencies were all satisfied (= arrival for ad-hoc
    /// and for workflow sources).
    pub ready_slot: Option<u64>,
    pub done_work: u64,
    pub completion_slot: Option<u64>,
    /// Per-job milestone deadline (absolute slot), if tracked.
    pub deadline_slot: Option<u64>,
    /// Zero-based execution attempt (bumped on each mid-run kill).
    pub attempt: u32,
    /// Task-slots of work discarded by killed attempts.
    pub wasted: u64,
    /// Earliest slot the current attempt may run (retry backoff); `0`
    /// until the job is first killed.
    pub retry_at: u64,
    /// Slot the admission controller dropped this job, if it was shed —
    /// the job never runs and never completes.
    pub shed_slot: Option<u64>,
    /// Arrival already deferred once by the delay shed policy.
    pub deferred: bool,
}

impl JobRuntime {
    pub fn is_complete(&self) -> bool {
        self.completion_slot.is_some()
    }

    pub fn is_runnable(&self, now: u64) -> bool {
        !self.is_complete()
            && self.shed_slot.is_none()
            && now >= self.retry_at
            && self.ready_slot.is_some_and(|r| r <= now)
    }

    pub fn remaining_actual(&self) -> u64 {
        self.actual_work.saturating_sub(self.done_work)
    }

    /// The scheduler-visible remaining work: estimated total minus work
    /// done. A job that overruns its estimate is *re-estimated* at 10% over
    /// the original (the standard practice for recurring jobs — e.g.
    /// Morpheus's SLO inference pads history the same way), floored at 1
    /// while actually incomplete.
    pub fn estimated_remaining(&self) -> u64 {
        let est_total = self.estimate.work();
        let remaining = est_total.saturating_sub(self.done_work);
        if remaining == 0 && !self.is_complete() {
            let padded = est_total + est_total.div_ceil(10);
            padded.saturating_sub(self.done_work).max(1)
        } else {
            remaining
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::ResourceVec;

    fn runtime(actual: u64, est: u64) -> JobRuntime {
        JobRuntime {
            id: JobId::new(1),
            class: JobClass::AdHoc,
            estimate: JobSpec::new("j", est, 1, ResourceVec::new([1, 1])),
            actual_work: actual,
            arrival_slot: 0,
            ready_slot: Some(0),
            done_work: 0,
            completion_slot: None,
            deadline_slot: None,
            attempt: 0,
            wasted: 0,
            retry_at: 0,
            shed_slot: None,
            deferred: false,
        }
    }

    #[test]
    fn runnable_transitions() {
        let mut j = runtime(5, 5);
        assert!(j.is_runnable(0));
        j.ready_slot = Some(3);
        assert!(!j.is_runnable(2));
        assert!(j.is_runnable(3));
        j.completion_slot = Some(4);
        assert!(!j.is_runnable(5));
        assert!(j.is_complete());
    }

    #[test]
    fn estimated_remaining_floors_at_one_on_overrun() {
        let mut j = runtime(10, 6);
        j.done_work = 6;
        assert_eq!(j.remaining_actual(), 4);
        assert_eq!(j.estimated_remaining(), 1);
        j.done_work = 3;
        assert_eq!(j.estimated_remaining(), 3);
    }

    #[test]
    fn class_predicates() {
        assert!(JobClass::AdHoc.is_adhoc());
        assert!(!JobClass::Deadline {
            workflow: WorkflowId::new(1),
            node: 0
        }
        .is_adhoc());
    }
}
