//! Simulator error types.

use flowtime_dag::JobId;
use std::error::Error;
use std::fmt;

/// Errors produced while constructing or running a simulation.
///
/// Scheduler-misbehaviour variants ([`SimError::CapacityExceeded`] etc.) are
/// deliberately hard failures: a scheduling experiment whose algorithm
/// over-allocates silently would invalidate every reported metric.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The scheduler allocated more resources than the cluster has.
    CapacityExceeded {
        /// Slot at which the violation occurred.
        slot: u64,
    },
    /// The scheduler allocated to a job id the engine does not know.
    UnknownJob {
        /// The offending id.
        job: JobId,
    },
    /// The scheduler allocated to a job that is not ready (dependencies
    /// pending, not yet arrived, or already complete).
    JobNotRunnable {
        /// The offending id.
        job: JobId,
        /// Slot of the attempt.
        slot: u64,
    },
    /// The scheduler exceeded a job's concurrency cap.
    ParallelismExceeded {
        /// The offending id.
        job: JobId,
        /// Requested concurrent tasks.
        requested: u64,
        /// The cap that applies this slot.
        cap: u64,
    },
    /// The simulation hit its slot bound with incomplete jobs.
    ///
    /// [`crate::Engine::run`] no longer returns this: an exhausted run now
    /// drains unfinished jobs into [`crate::SimOutcome::in_flight`]. The
    /// variant is kept for harnesses that want to surface exhaustion as a
    /// hard error after checking [`crate::SimOutcome::is_complete`].
    HorizonExhausted {
        /// The configured bound.
        max_slots: u64,
        /// Number of jobs still incomplete.
        incomplete: usize,
    },
    /// A workflow submission was internally inconsistent (e.g. a per-job
    /// deadline vector of the wrong length).
    MalformedSubmission {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An accounting invariant failed inside the engine — see
    /// [`crate::invariants`] for the rule catalogue. Unlike the
    /// scheduler-misbehaviour variants above, this indicates a bug in the
    /// simulator (or deliberately corrupted state in tests), never in the
    /// scheduler under test.
    InvariantViolation {
        /// Slot at which the violation was detected.
        slot: u64,
        /// The offending job, when the rule is per-job.
        job: Option<JobId>,
        /// Stable rule name (e.g. `work-conservation`).
        rule: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CapacityExceeded { slot } => {
                write!(f, "allocation exceeds cluster capacity at slot {slot}")
            }
            SimError::UnknownJob { job } => write!(f, "allocation to unknown job {job}"),
            SimError::JobNotRunnable { job, slot } => {
                write!(f, "allocation to non-runnable job {job} at slot {slot}")
            }
            SimError::ParallelismExceeded {
                job,
                requested,
                cap,
            } => {
                write!(f, "job {job} allocated {requested} tasks, cap is {cap}")
            }
            SimError::HorizonExhausted {
                max_slots,
                incomplete,
            } => {
                write!(f, "simulation horizon of {max_slots} slots exhausted with {incomplete} incomplete jobs")
            }
            SimError::MalformedSubmission { reason } => {
                write!(f, "malformed submission: {reason}")
            }
            SimError::InvariantViolation { slot, job, rule } => match job {
                Some(job) => {
                    write!(f, "invariant '{rule}' violated at slot {slot} by job {job}")
                }
                None => write!(f, "invariant '{rule}' violated at slot {slot}"),
            },
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        for e in [
            SimError::CapacityExceeded { slot: 1 },
            SimError::UnknownJob { job: JobId::new(1) },
            SimError::JobNotRunnable {
                job: JobId::new(1),
                slot: 2,
            },
            SimError::ParallelismExceeded {
                job: JobId::new(1),
                requested: 5,
                cap: 2,
            },
            SimError::HorizonExhausted {
                max_slots: 10,
                incomplete: 3,
            },
            SimError::MalformedSubmission { reason: "x" },
            SimError::InvariantViolation {
                slot: 4,
                job: None,
                rule: "work-conservation",
            },
            SimError::InvariantViolation {
                slot: 4,
                job: Some(JobId::new(9)),
                rule: "completion-accounting",
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
