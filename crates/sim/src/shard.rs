//! Sharded pod-level scheduling: partition the cluster into K pods, place
//! submissions onto pods with a cheap top-level bin-packer, and run one
//! independent per-pod engine (and per-pod LP solver) per pod — in
//! parallel on the work-stealing [`crate::run_cells`] runner.
//!
//! The paper solves one allocation LP over the whole cluster per replan;
//! that cannot serve very large clusters. DAGPS-style systems show a
//! lightweight global placer above locally-packed partitions captures
//! most of the monolithic optimum. This module is that two-level shape:
//!
//! * [`split_capacity`] slices cluster capacity into K pod slices that
//!   sum **exactly** to the cluster capacity (remainders go to the first
//!   pods), including every [`crate::cluster::CapacityWindow`].
//! * A [`Placer`] assigns each workflow / ad-hoc submission to a pod by
//!   bin-packing its decomposed demand rate ([`PlacerState`]).
//! * A bounded rebalance pass moves ad-hoc load off pods whose projected
//!   backlog exceeds `overload_factor ×` their cores — the same
//!   backpressure signal the [`crate::faults::RecoveryPolicy`] admission
//!   controller uses — and records every move in the [`PlacementLog`].
//! * [`run_sharded`] runs the per-pod engines on up to `threads` workers
//!   and returns a [`ShardedOutcome`].
//!
//! # Determinism and the K=1 contract
//!
//! The placement is a **pure function** of `(cluster, workload, spec)`:
//! the auditor ([`crate::audit::certify_sharded`]) recomputes it from
//! scratch and rejects any divergence. Each pod is a self-contained
//! deterministic simulation, and reduction happens in pod order, so a
//! sharded run is byte-identical for any thread count. With `pods = 1`
//! every submission lands on pod 0 in its original order and the pod
//! cluster *is* the cluster, so pod 0's [`SimOutcome`] and decision
//! trace are byte-for-byte the unsharded engine's — the property
//! `tests/shard_props.rs` pins across all six schedulers.

use crate::cluster::ClusterConfig;
use crate::engine::{Engine, SimOutcome};
use crate::error::SimError;
use crate::faults::RecoverySetup;
use crate::job::{AdhocSubmission, SimWorkload, WorkflowSubmission};
use crate::scheduler::Scheduler;
use crate::submission::{LogEntry, SubmissionLog};
use crate::sweep::run_cells;
use crate::trace::DecisionTrace;
use flowtime_dag::{ResourceVec, NUM_RESOURCES};
use serde::{Deserialize, Serialize};

/// Top-level placement policy: how a submission picks its pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placer {
    /// First pod whose projected load stays within its slice; falls back
    /// to the least-loaded pod when none fits.
    FirstFit,
    /// Pod with the most headroom *before* placement (classic worst-fit).
    WorstFit,
    /// Pod minimizing the *post-placement* peak normalized demand across
    /// resource dimensions (the default: demand-aware worst-fit).
    Demand,
}

impl Placer {
    /// Canonical CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Placer::FirstFit => "firstfit",
            Placer::WorstFit => "worstfit",
            Placer::Demand => "demand",
        }
    }

    /// Parses a CLI name, ignoring case and separators (`first-fit`,
    /// `FirstFit`, and `firstfit` all resolve).
    pub fn parse(name: &str) -> Option<Placer> {
        let norm: String = name
            .chars()
            .filter(char::is_ascii_alphanumeric)
            .collect::<String>()
            .to_ascii_lowercase();
        match norm.as_str() {
            "firstfit" => Some(Placer::FirstFit),
            "worstfit" => Some(Placer::WorstFit),
            "demand" => Some(Placer::Demand),
            _ => None,
        }
    }
}

/// The shard configuration: how many pods and how to place onto them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Number of pods (≥ 1). `1` degenerates to the unsharded engine.
    pub pods: usize,
    /// Placement policy.
    pub placer: Placer,
    /// Rebalance threshold: a pod whose projected ad-hoc backlog exceeds
    /// `overload_factor ×` its core slice sheds load to the least-loaded
    /// pod. Mirrors [`crate::faults::RecoveryPolicy::overload_factor`].
    pub overload_factor: f64,
}

impl ShardSpec {
    /// `pods` pods with the default demand placer and the default
    /// overload threshold (matching [`crate::faults::RecoveryPolicy`]).
    pub fn new(pods: usize) -> Self {
        ShardSpec {
            pods: pods.max(1),
            placer: Placer::Demand,
            overload_factor: 4.0,
        }
    }

    /// Replaces the placement policy.
    #[must_use]
    pub fn with_placer(mut self, placer: Placer) -> Self {
        self.placer = placer;
        self
    }

    /// Replaces the rebalance threshold.
    #[must_use]
    pub fn with_overload_factor(mut self, factor: f64) -> Self {
        self.overload_factor = factor.max(0.0);
        self
    }
}

/// Which workload class a placement entry refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardClass {
    /// `index` is into [`SimWorkload::workflows`].
    Workflow,
    /// `index` is into [`SimWorkload::adhoc`].
    Adhoc,
}

/// One initial placement decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodAssignment {
    /// Workload class of the placed submission.
    pub class: ShardClass,
    /// Index within its class's submission vector.
    pub index: usize,
    /// The pod it was assigned to.
    pub pod: usize,
}

/// One cross-pod rebalance move (applied after the initial placement, in
/// order; the last move for an item wins).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebalanceEvent {
    /// Workload class of the moved submission.
    pub class: ShardClass,
    /// Index within its class's submission vector.
    pub index: usize,
    /// Pod the item was on before the move.
    pub from_pod: usize,
    /// Pod the item moved to.
    pub to_pod: usize,
}

/// The complete, replayable record of a placement: initial assignments
/// plus every rebalance move. A pure function of
/// `(cluster, workload, spec)` — the auditor recomputes it and flags any
/// divergence (including a *dropped* rebalance event).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementLog {
    /// Number of pods placed onto.
    pub pods: usize,
    /// The policy that produced the assignments.
    pub placer: Placer,
    /// Initial placements, workflows first (in submission order), then
    /// ad-hoc jobs (in submission order).
    pub assignments: Vec<PodAssignment>,
    /// Rebalance moves, in the order they were applied.
    #[serde(default, skip_serializing_if = "crate::serde_skip::empty_vec")]
    pub rebalances: Vec<RebalanceEvent>,
}

impl PlacementLog {
    /// The final pod of an item after all rebalances, or `None` when the
    /// item was never assigned.
    pub fn final_pod(&self, class: ShardClass, index: usize) -> Option<usize> {
        let mut pod = None;
        for a in &self.assignments {
            if a.class == class && a.index == index {
                pod = Some(a.pod);
            }
        }
        for r in &self.rebalances {
            if r.class == class && r.index == index {
                pod = Some(r.to_pod);
            }
        }
        pod
    }

    /// Splits `workload` into one per-pod workload according to the final
    /// placement, preserving submission order within each pod.
    ///
    /// # Errors
    ///
    /// [`SimError::MalformedSubmission`] when an item is unassigned,
    /// assigned more than once, or assigned to a pod out of range.
    pub fn pod_workloads(&self, workload: &SimWorkload) -> Result<Vec<SimWorkload>, SimError> {
        let mut seen_wf = vec![0usize; workload.workflows.len()];
        let mut seen_ah = vec![0usize; workload.adhoc.len()];
        for a in &self.assignments {
            let seen = match a.class {
                ShardClass::Workflow => seen_wf.get_mut(a.index),
                ShardClass::Adhoc => seen_ah.get_mut(a.index),
            };
            match seen {
                Some(n) => *n += 1,
                None => {
                    return Err(SimError::MalformedSubmission {
                        reason: "placement references a submission outside the workload",
                    })
                }
            }
        }
        if seen_wf.iter().chain(seen_ah.iter()).any(|&n| n > 1) {
            return Err(SimError::MalformedSubmission {
                reason: "a submission is placed on more than one pod",
            });
        }
        if seen_wf.iter().chain(seen_ah.iter()).any(|&n| n == 0) {
            return Err(SimError::MalformedSubmission {
                reason: "a submission is placed on no pod",
            });
        }
        let mut out = vec![SimWorkload::default(); self.pods];
        for (i, sub) in workload.workflows.iter().enumerate() {
            let pod = self
                .final_pod(ShardClass::Workflow, i)
                .filter(|&p| p < self.pods)
                .ok_or(SimError::MalformedSubmission {
                    reason: "a submission is placed on a pod out of range",
                })?;
            out[pod].workflows.push(sub.clone());
        }
        for (i, sub) in workload.adhoc.iter().enumerate() {
            let pod = self
                .final_pod(ShardClass::Adhoc, i)
                .filter(|&p| p < self.pods)
                .ok_or(SimError::MalformedSubmission {
                    reason: "a submission is placed on a pod out of range",
                })?;
            out[pod].adhoc.push(sub.clone());
        }
        Ok(out)
    }
}

/// Splits `total` into `pods` slices, per resource dimension: every pod
/// gets `total / pods` and the first `total % pods` pods one extra unit,
/// so the slices **sum exactly** to `total`.
pub fn split_capacity(total: ResourceVec, pods: usize) -> Vec<ResourceVec> {
    let pods = pods.max(1);
    let k = pods as u64;
    let mut dims = vec![[0u64; NUM_RESOURCES]; pods];
    for r in 0..NUM_RESOURCES {
        let base = total.dim(r) / k;
        let rem = (total.dim(r) % k) as usize;
        for (i, d) in dims.iter_mut().enumerate() {
            d[r] = base + u64::from(i < rem);
        }
    }
    dims.into_iter().map(ResourceVec::new).collect()
}

/// The cluster slice pod `pod` of `pods` runs against: split base
/// capacity plus every capacity window split the same way. With
/// `pods = 1` this is a clone of `cluster` (the K=1 identity contract).
pub fn pod_cluster(cluster: &ClusterConfig, pods: usize, pod: usize) -> ClusterConfig {
    if pods <= 1 {
        return cluster.clone();
    }
    let mut out = ClusterConfig::new(
        split_capacity(cluster.capacity(), pods)[pod],
        cluster.slot_seconds(),
    );
    for w in cluster.windows() {
        out = out.with_capacity_window(
            w.from_slot,
            w.to_slot,
            split_capacity(w.capacity, pods)[pod],
        );
    }
    out
}

/// The incremental placement engine: tracks each pod's projected demand
/// rate and scores candidate pods for the configured [`Placer`].
///
/// Demand model (per resource dimension `r`):
/// * a workflow contributes its total demand spread over its deadline
///   window — the sustained rate needed to finish on time;
/// * an ad-hoc job contributes its peak concurrent footprint
///   (`per_task × effective_parallel`), since its size is invisible to
///   schedulers and only its shape is known at admission.
///
/// All decisions are pure integer/f64 arithmetic over a fixed order, so
/// a placement is reproducible from the submission sequence alone — the
/// property both the batch [`place`] and the daemon's online injection
/// path rely on.
#[derive(Debug, Clone)]
pub struct PlacerState {
    placer: Placer,
    caps: Vec<ResourceVec>,
    load: Vec<[f64; NUM_RESOURCES]>,
}

impl PlacerState {
    /// A fresh state over the given per-pod capacity slices.
    pub fn new(placer: Placer, caps: Vec<ResourceVec>) -> Self {
        let pods = caps.len().max(1);
        PlacerState {
            placer,
            caps,
            load: vec![[0.0; NUM_RESOURCES]; pods],
        }
    }

    /// Convenience: state over the canonical capacity split of `cluster`.
    pub fn for_cluster(spec: &ShardSpec, cluster: &ClusterConfig) -> Self {
        PlacerState::new(spec.placer, split_capacity(cluster.capacity(), spec.pods))
    }

    /// Number of pods.
    pub fn pods(&self) -> usize {
        self.caps.len()
    }

    /// Peak normalized load of `pod`, optionally with `extra` added.
    fn score(&self, pod: usize, extra: Option<&[f64; NUM_RESOURCES]>) -> f64 {
        let mut worst = 0.0f64;
        for r in 0..NUM_RESOURCES {
            let cap = self.caps[pod].dim(r) as f64;
            if cap <= 0.0 {
                continue;
            }
            let mut load = self.load[pod][r];
            if let Some(e) = extra {
                load += e[r];
            }
            let norm = load / cap;
            if norm > worst {
                worst = norm;
            }
        }
        worst
    }

    /// Places a raw demand rate, committing it to the chosen pod. Ties
    /// resolve to the lowest pod index, so placement is deterministic.
    pub fn place_rate(&mut self, rate: [f64; NUM_RESOURCES]) -> usize {
        let pods = self.pods();
        let chosen = match self.placer {
            Placer::FirstFit => (0..pods)
                .find(|&p| self.score(p, Some(&rate)) <= 1.0)
                .unwrap_or_else(|| argmin(pods, |p| self.score(p, Some(&rate)))),
            Placer::WorstFit => argmin(pods, |p| self.score(p, None)),
            Placer::Demand => argmin(pods, |p| self.score(p, Some(&rate))),
        };
        for (load, add) in self.load[chosen].iter_mut().zip(rate) {
            *load += add;
        }
        chosen
    }

    /// Places a workflow submission.
    pub fn place_workflow(&mut self, sub: &WorkflowSubmission) -> usize {
        self.place_rate(workflow_rate(sub))
    }

    /// Places an ad-hoc submission.
    pub fn place_adhoc(&mut self, sub: &AdhocSubmission) -> usize {
        self.place_rate(adhoc_rate(sub))
    }
}

/// Index of the minimum of `f` over `0..n`, first minimum on ties.
fn argmin<F: Fn(usize) -> f64>(n: usize, f: F) -> usize {
    let mut best = 0usize;
    let mut best_v = f64::INFINITY;
    for i in 0..n {
        let v = f(i);
        if v < best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Sustained demand rate of a workflow: total demand over its window.
fn workflow_rate(sub: &WorkflowSubmission) -> [f64; NUM_RESOURCES] {
    let demand = sub.workflow.total_demand();
    let window = sub.workflow.window_slots().max(1) as f64;
    let mut rate = [0.0; NUM_RESOURCES];
    for (r, v) in rate.iter_mut().enumerate() {
        *v = demand.dim(r) as f64 / window;
    }
    rate
}

/// Peak concurrent footprint of an ad-hoc job.
fn adhoc_rate(sub: &AdhocSubmission) -> [f64; NUM_RESOURCES] {
    let per_task = sub.spec.per_task();
    let width = sub.spec.effective_parallel() as f64;
    let mut rate = [0.0; NUM_RESOURCES];
    for (r, v) in rate.iter_mut().enumerate() {
        *v = per_task.dim(r) as f64 * width;
    }
    rate
}

/// Core-slot backlog an ad-hoc job projects onto its pod (ground-truth
/// work × per-task cores) — the static analogue of the admission
/// controller's runtime backlog signal.
fn adhoc_backlog_cores(sub: &AdhocSubmission) -> f64 {
    (sub.spec.work() * sub.spec.per_task().dim(0)) as f64
}

/// Computes the full batch placement: workflows first (in submission
/// order), then ad-hoc jobs (in submission order), each through the
/// spec's [`Placer`]; then bounded rebalance passes move the most
/// recently placed ad-hoc jobs off overloaded pods (projected ad-hoc
/// backlog `> overload_factor ×` core slice) onto the least-loaded pod.
/// Every decision is recorded in the returned [`PlacementLog`].
pub fn place(cluster: &ClusterConfig, workload: &SimWorkload, spec: &ShardSpec) -> PlacementLog {
    let mut st = PlacerState::for_cluster(spec, cluster);
    let mut log = PlacementLog {
        pods: spec.pods,
        placer: spec.placer,
        assignments: Vec::with_capacity(workload.workflows.len() + workload.adhoc.len()),
        rebalances: Vec::new(),
    };
    for (i, sub) in workload.workflows.iter().enumerate() {
        log.assignments.push(PodAssignment {
            class: ShardClass::Workflow,
            index: i,
            pod: st.place_workflow(sub),
        });
    }
    for (i, sub) in workload.adhoc.iter().enumerate() {
        log.assignments.push(PodAssignment {
            class: ShardClass::Adhoc,
            index: i,
            pod: st.place_adhoc(sub),
        });
    }
    if spec.pods > 1 {
        rebalance(cluster, workload, spec, &mut log);
    }
    log
}

/// The bounded rebalance pass. Moves at most one ad-hoc item per
/// iteration (most recently placed on the most overloaded pod → least
/// loaded pod) and stops when no pod is overloaded, a move would not
/// strictly improve, or every ad-hoc item has moved once.
fn rebalance(
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    spec: &ShardSpec,
    log: &mut PlacementLog,
) {
    let caps = split_capacity(cluster.capacity(), spec.pods);
    let cores: Vec<f64> = caps.iter().map(|c| c.dim(0).max(1) as f64).collect();
    // Final pod of each ad-hoc item so far (rebalances has only our own
    // entries, applied in order).
    let mut pod_of: Vec<usize> = (0..workload.adhoc.len())
        .map(|i| log.final_pod(ShardClass::Adhoc, i).unwrap_or(0))
        .collect();
    let mut backlog: Vec<f64> = vec![0.0; spec.pods];
    for (i, sub) in workload.adhoc.iter().enumerate() {
        backlog[pod_of[i]] += adhoc_backlog_cores(sub);
    }
    let mut moved = vec![false; workload.adhoc.len()];
    for _ in 0..workload.adhoc.len() {
        // Most overloaded source by backlog-per-core, first on ties.
        let mut src = None;
        let mut src_ratio = 0.0;
        for p in 0..spec.pods {
            let ratio = backlog[p] / cores[p];
            if ratio > spec.overload_factor && ratio > src_ratio {
                src_ratio = ratio;
                src = Some(p);
            }
        }
        let Some(src) = src else { break };
        let dst = argmin(spec.pods, |p| backlog[p] / cores[p]);
        if dst == src {
            break;
        }
        // Most recently placed movable item on the source pod.
        let Some(item) = (0..workload.adhoc.len())
            .rev()
            .find(|&i| pod_of[i] == src && !moved[i])
        else {
            break;
        };
        let weight = adhoc_backlog_cores(&workload.adhoc[item]);
        // Only move if the destination stays strictly below the source's
        // pre-move pressure; otherwise the pass would oscillate.
        if (backlog[dst] + weight) / cores[dst] >= src_ratio {
            break;
        }
        backlog[src] -= weight;
        backlog[dst] += weight;
        pod_of[item] = dst;
        moved[item] = true;
        log.rebalances.push(RebalanceEvent {
            class: ShardClass::Adhoc,
            index: item,
            from_pod: src,
            to_pod: dst,
        });
    }
}

/// Places the effective submissions of a recorded [`SubmissionLog`] in
/// materialization order (`(arrival, seq)` — exactly the order the
/// daemon injects them) and splits the log into one sub-log per pod,
/// preserving entry order. Cancelled submissions and cancel requests are
/// dropped (they never materialize, so they are never placed).
///
/// This is the batch replay contract of a **sharded daemon session**:
/// running [`Engine::from_log`] over each returned sub-log reproduces
/// the session's per-pod outcomes byte-for-byte. No rebalance pass runs
/// here — online placement is final.
///
/// # Errors
///
/// [`SimError::MalformedSubmission`] when the log's cancellations do not
/// resolve (see [`SubmissionLog::effective`]).
pub fn place_log(
    cluster: &ClusterConfig,
    log: &SubmissionLog,
    spec: &ShardSpec,
) -> Result<Vec<SubmissionLog>, SimError> {
    // Surface malformed cancellations with the same error `from_log` would.
    log.effective()?;
    let mut cancelled: Vec<u64> = Vec::new();
    for entry in &log.entries {
        if let LogEntry::Cancel { target, .. } = entry {
            cancelled.push(*target);
        }
    }
    // (arrival, seq) over surviving submissions = injection order.
    let mut keyed: Vec<(u64, u64, usize)> = Vec::new();
    for (idx, entry) in log.entries.iter().enumerate() {
        match entry {
            LogEntry::Workflow {
                seq, submission, ..
            } if !cancelled.contains(seq) => {
                keyed.push((submission.workflow.submit_slot(), *seq, idx));
            }
            LogEntry::Adhoc {
                seq, submission, ..
            } if !cancelled.contains(seq) => {
                keyed.push((submission.arrival_slot, *seq, idx));
            }
            _ => {}
        }
    }
    keyed.sort_by_key(|&(arrival, seq, _)| (arrival, seq));
    let mut st = PlacerState::for_cluster(spec, cluster);
    let mut pod_of_entry: Vec<Option<usize>> = vec![None; log.entries.len()];
    for &(_, _, idx) in &keyed {
        let pod = match &log.entries[idx] {
            LogEntry::Workflow { submission, .. } => st.place_workflow(submission),
            LogEntry::Adhoc { submission, .. } => st.place_adhoc(submission),
            LogEntry::Cancel { .. } => unreachable!("cancels are never keyed"),
        };
        pod_of_entry[idx] = Some(pod);
    }
    let mut out = vec![SubmissionLog::new(); spec.pods];
    for (idx, entry) in log.entries.iter().enumerate() {
        if let Some(pod) = pod_of_entry[idx] {
            out[pod].entries.push(entry.clone());
        }
    }
    Ok(out)
}

/// The result of a sharded run: the placement that shaped it plus one
/// [`SimOutcome`] per pod (each stamped with its pod index; pod 0's
/// stamp serializes away, keeping the K=1 bytes unsharded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedOutcome {
    /// The placement the run executed.
    pub placement: PlacementLog,
    /// Per-pod outcomes, in pod order.
    pub pods: Vec<SimOutcome>,
}

impl ShardedOutcome {
    /// True when every pod finished its whole sub-workload.
    pub fn is_complete(&self) -> bool {
        self.pods.iter().all(SimOutcome::is_complete)
    }

    /// Jobs completed across all pods.
    pub fn completed_jobs(&self) -> usize {
        self.pods.iter().map(|o| o.metrics.completed_jobs()).sum()
    }

    /// Per-job milestone misses across all pods.
    pub fn job_deadline_misses(&self) -> usize {
        self.pods
            .iter()
            .map(|o| o.metrics.job_deadline_misses())
            .sum()
    }

    /// Workflow deadline misses across all pods.
    pub fn workflow_deadline_misses(&self) -> usize {
        self.pods
            .iter()
            .map(|o| o.metrics.workflow_deadline_misses())
            .sum()
    }

    /// Longest per-pod makespan (the cluster is done when the slowest
    /// pod is).
    pub fn slots_elapsed(&self) -> u64 {
        self.pods.iter().map(|o| o.slots_elapsed).max().unwrap_or(0)
    }
}

/// Runs `workload` sharded across `spec.pods` pods on up to `threads`
/// workers. `factory` builds the per-pod scheduler from the pod index
/// and the pod's cluster slice — each pod gets its **own** scheduler
/// instance (and therefore its own plan cache / warm-start state).
/// `recovery`, when armed, applies to every pod with the same seed; its
/// fault plan is derived per pod from the pod's sub-workload.
///
/// The returned outcome is byte-identical for any `threads` value.
///
/// # Errors
///
/// The first per-pod engine error, in pod order.
pub fn run_sharded<F>(
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    spec: &ShardSpec,
    max_slots: u64,
    threads: usize,
    recovery: Option<&RecoverySetup>,
    factory: F,
) -> Result<ShardedOutcome, SimError>
where
    F: Fn(usize, &ClusterConfig) -> Box<dyn Scheduler> + Sync,
{
    run_sharded_inner(
        cluster, workload, spec, max_slots, threads, recovery, None, factory,
    )
    .map(|(outcome, _)| outcome)
}

/// [`run_sharded`] with one bounded [`DecisionTrace`] per pod, for
/// auditing via [`crate::audit::certify_sharded`]. Recording is
/// observation-only: the outcome bytes are identical to an untraced run.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_traced<F>(
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    spec: &ShardSpec,
    max_slots: u64,
    threads: usize,
    recovery: Option<&RecoverySetup>,
    trace_capacity: usize,
    factory: F,
) -> Result<(ShardedOutcome, Vec<DecisionTrace>), SimError>
where
    F: Fn(usize, &ClusterConfig) -> Box<dyn Scheduler> + Sync,
{
    let (outcome, traces) = run_sharded_inner(
        cluster,
        workload,
        spec,
        max_slots,
        threads,
        recovery,
        Some(trace_capacity),
        factory,
    )?;
    Ok((outcome, traces.expect("traced run returns traces")))
}

#[allow(clippy::too_many_arguments)]
fn run_sharded_inner<F>(
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    spec: &ShardSpec,
    max_slots: u64,
    threads: usize,
    recovery: Option<&RecoverySetup>,
    trace_capacity: Option<usize>,
    factory: F,
) -> Result<(ShardedOutcome, Option<Vec<DecisionTrace>>), SimError>
where
    F: Fn(usize, &ClusterConfig) -> Box<dyn Scheduler> + Sync,
{
    let placement = place(cluster, workload, spec);
    let workloads = placement.pod_workloads(workload)?;
    let cells: Vec<(usize, SimWorkload)> = workloads.into_iter().enumerate().collect();
    let results = run_cells(&cells, threads, |_, (pod, pod_workload)| {
        run_pod(
            cluster,
            spec,
            *pod,
            pod_workload.clone(),
            max_slots,
            recovery,
            trace_capacity,
            &factory,
        )
    });
    let mut pods = Vec::with_capacity(spec.pods);
    let mut traces = trace_capacity.map(|_| Vec::with_capacity(spec.pods));
    for result in results {
        let (outcome, trace) = result?;
        pods.push(outcome);
        if let (Some(traces), Some(trace)) = (traces.as_mut(), trace) {
            traces.push(trace);
        }
    }
    Ok((ShardedOutcome { placement, pods }, traces))
}

/// Builds and runs one pod's engine, fully isolated from its siblings.
#[allow(clippy::too_many_arguments)]
fn run_pod<F>(
    cluster: &ClusterConfig,
    spec: &ShardSpec,
    pod: usize,
    pod_workload: SimWorkload,
    max_slots: u64,
    recovery: Option<&RecoverySetup>,
    trace_capacity: Option<usize>,
    factory: &F,
) -> Result<(SimOutcome, Option<DecisionTrace>), SimError>
where
    F: Fn(usize, &ClusterConfig) -> Box<dyn Scheduler>,
{
    let pc = pod_cluster(cluster, spec.pods, pod);
    let mut engine = Engine::new(pc.clone(), pod_workload, max_slots)?;
    if let Some(setup) = recovery {
        engine = engine.with_recovery(setup.clone());
    }
    let mut scheduler = factory(pod, &pc);
    let (mut outcome, mut trace) = match trace_capacity {
        Some(capacity) => {
            let (engine, handle) = engine.with_trace(capacity);
            let outcome = engine.run(scheduler.as_mut())?;
            (outcome, Some(handle.take()))
        }
        None => (engine.run(scheduler.as_mut())?, None),
    };
    outcome.pod = pod as u64;
    // Stamp pod provenance into the trace header so offline consumers
    // (audit CLI, explain) can re-derive the shard spec from the trace
    // alone. K = 1 stays unstamped: its bytes must remain identical to an
    // unsharded run's.
    if spec.pods > 1 {
        if let Some(trace) = trace.as_mut() {
            trace.header.pods = spec.pods as u64;
            trace.header.pod = pod as u64;
            trace.header.placer = spec.placer.name().to_string();
        }
    }
    Ok((outcome, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::JobSpec;

    fn adhoc(tasks: u64, dur: u64, arrival: u64) -> AdhocSubmission {
        AdhocSubmission::new(
            JobSpec::new("a", tasks, dur, ResourceVec::new([1, 512])),
            arrival,
        )
    }

    fn workload(workflows: usize, adhocs: usize) -> SimWorkload {
        use flowtime_dag::{WorkflowBuilder, WorkflowId};
        let mut w = SimWorkload::default();
        for i in 0..workflows {
            let mut b = WorkflowBuilder::new(WorkflowId::new(i as u64 + 1), format!("wf-{i}"));
            let a = b.add_job(JobSpec::new("j0", 4, 2, ResourceVec::new([1, 512])));
            let c = b.add_job(JobSpec::new("j1", 2, 2, ResourceVec::new([1, 512])));
            b.add_dep(a, c).unwrap();
            let wf = b.window(0, 60).build().unwrap();
            w.workflows.push(WorkflowSubmission::new(wf));
        }
        for i in 0..adhocs {
            w.adhoc.push(adhoc(2 + (i as u64 % 3), 2, i as u64));
        }
        w
    }

    #[test]
    fn split_sums_exactly_for_awkward_capacities() {
        for pods in 1..=9 {
            for cap in [
                ResourceVec::new([1, 1]),
                ResourceVec::new([80, 327_680]),
                ResourceVec::new([7, 13]),
                ResourceVec::new([0, 5]),
            ] {
                let slices = split_capacity(cap, pods);
                assert_eq!(slices.len(), pods);
                let mut sum = ResourceVec::zero();
                for s in &slices {
                    sum += *s;
                }
                assert_eq!(sum, cap, "pods={pods} cap={cap}");
                // Remainder goes to the first pods: slices are
                // non-increasing per dimension.
                for r in 0..NUM_RESOURCES {
                    for w in slices.windows(2) {
                        assert!(w[0].dim(r) >= w[1].dim(r));
                    }
                }
            }
        }
    }

    #[test]
    fn pod_cluster_splits_windows_too() {
        let cluster = ClusterConfig::new(ResourceVec::new([10, 100]), 10.0).with_capacity_window(
            5,
            8,
            ResourceVec::new([5, 50]),
        );
        let mut base_sum = ResourceVec::zero();
        let mut window_sum = ResourceVec::zero();
        for p in 0..3 {
            let pc = pod_cluster(&cluster, 3, p);
            base_sum += pc.capacity();
            window_sum += pc.capacity_at(6);
        }
        assert_eq!(base_sum, ResourceVec::new([10, 100]));
        assert_eq!(window_sum, ResourceVec::new([5, 50]));
        // K=1 is the cluster itself.
        assert_eq!(pod_cluster(&cluster, 1, 0), cluster);
    }

    #[test]
    fn placer_parse_round_trips_and_rejects_garbage() {
        for p in [Placer::FirstFit, Placer::WorstFit, Placer::Demand] {
            assert_eq!(Placer::parse(p.name()), Some(p));
        }
        assert_eq!(Placer::parse("First-Fit"), Some(Placer::FirstFit));
        assert_eq!(Placer::parse("WORSTFIT"), Some(Placer::WorstFit));
        assert_eq!(Placer::parse("banana"), None);
    }

    #[test]
    fn single_pod_placement_is_identity() {
        let cluster = ClusterConfig::new(ResourceVec::new([8, 8192]), 10.0);
        let w = workload(2, 3);
        let log = place(&cluster, &w, &ShardSpec::new(1));
        assert!(log.rebalances.is_empty());
        assert!(log.assignments.iter().all(|a| a.pod == 0));
        let pods = log.pod_workloads(&w).unwrap();
        assert_eq!(pods.len(), 1);
        assert_eq!(pods[0], w);
    }

    #[test]
    fn placement_covers_every_submission_exactly_once() {
        let cluster = ClusterConfig::new(ResourceVec::new([16, 16384]), 10.0);
        let w = workload(5, 11);
        for placer in [Placer::FirstFit, Placer::WorstFit, Placer::Demand] {
            let spec = ShardSpec::new(4).with_placer(placer);
            let log = place(&cluster, &w, &spec);
            let pods = log.pod_workloads(&w).unwrap();
            assert_eq!(pods.iter().map(|p| p.workflows.len()).sum::<usize>(), 5);
            assert_eq!(pods.iter().map(|p| p.adhoc.len()).sum::<usize>(), 11);
            // Deterministic: recomputation is identical.
            assert_eq!(place(&cluster, &w, &spec), log);
        }
    }

    #[test]
    fn demand_placer_spreads_load_across_pods() {
        let cluster = ClusterConfig::new(ResourceVec::new([16, 16384]), 10.0);
        let w = workload(4, 8);
        let log = place(&cluster, &w, &ShardSpec::new(4));
        let used: std::collections::BTreeSet<usize> =
            log.assignments.iter().map(|a| a.pod).collect();
        assert!(used.len() > 1, "demand placer left all load on one pod");
    }

    #[test]
    fn rebalance_fires_under_projected_overload_and_is_recorded() {
        let cluster = ClusterConfig::new(ResourceVec::new([8, 8192]), 10.0);
        // Eight jobs with the identical 1-wide footprint: first-fit packs
        // two per 2-core pod slice, blind to work. The first two — which
        // land together on pod 0 — carry enormous backlogs, so pod 0's
        // projected backlog blows past the threshold and the rebalancer
        // must shed from it.
        let mut w = SimWorkload::default();
        for i in 0..8u64 {
            let tasks = if i < 2 { 128 } else { 1 };
            w.adhoc.push(AdhocSubmission::new(
                JobSpec::new("a", tasks, 1, ResourceVec::new([1, 512])).with_max_parallel(1),
                i,
            ));
        }
        let spec = ShardSpec::new(4)
            .with_placer(Placer::FirstFit)
            .with_overload_factor(2.0);
        let log = place(&cluster, &w, &spec);
        assert!(
            !log.rebalances.is_empty(),
            "overloaded first-fit placement should rebalance"
        );
        // Moves are honored by the final split.
        let pods = log.pod_workloads(&w).unwrap();
        assert_eq!(pods.iter().map(|p| p.adhoc.len()).sum::<usize>(), 8);
        for ev in &log.rebalances {
            assert_ne!(ev.from_pod, ev.to_pod);
        }
    }

    #[test]
    fn pod_workloads_rejects_corrupt_placements() {
        let cluster = ClusterConfig::new(ResourceVec::new([8, 8192]), 10.0);
        let w = workload(2, 2);
        let good = place(&cluster, &w, &ShardSpec::new(2));

        let mut double = good.clone();
        double.assignments.push(double.assignments[0].clone());
        assert!(double.pod_workloads(&w).is_err());

        let mut missing = good.clone();
        missing.assignments.remove(0);
        assert!(missing.pod_workloads(&w).is_err());

        let mut out_of_range = good.clone();
        out_of_range.assignments[0].pod = 7;
        assert!(out_of_range.pod_workloads(&w).is_err());

        let mut alien = good;
        alien.assignments.push(PodAssignment {
            class: ShardClass::Adhoc,
            index: 99,
            pod: 0,
        });
        assert!(alien.pod_workloads(&w).is_err());
    }

    #[test]
    fn place_log_matches_injection_order_and_drops_cancelled() {
        let cluster = ClusterConfig::new(ResourceVec::new([8, 8192]), 10.0);
        let mut log = SubmissionLog::new();
        log.entries.push(LogEntry::Adhoc {
            seq: 0,
            at: 0,
            submission: adhoc(4, 4, 5),
        });
        log.entries.push(LogEntry::Adhoc {
            seq: 1,
            at: 0,
            submission: adhoc(4, 4, 2),
        });
        log.entries.push(LogEntry::Adhoc {
            seq: 2,
            at: 0,
            submission: adhoc(4, 4, 9),
        });
        log.entries.push(LogEntry::Cancel {
            seq: 3,
            at: 0,
            target: 2,
        });
        let spec = ShardSpec::new(2);
        let sublogs = place_log(&cluster, &log, &spec).unwrap();
        assert_eq!(sublogs.len(), 2);
        let total: usize = sublogs.iter().map(|l| l.len()).sum();
        assert_eq!(total, 2, "cancelled submission and cancel entry dropped");
        // Deterministic.
        let again = place_log(&cluster, &log, &spec).unwrap();
        assert_eq!(again, sublogs);
    }
}
