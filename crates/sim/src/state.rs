//! Scheduler-visible simulation state.
//!
//! [`SimState`] is the read-only interface handed to a
//! [`crate::Scheduler`] each slot. It enforces the paper's information
//! model: deadline-aware workflows are fully described (DAG, estimated
//! demands, estimated runtimes — they are recurring), while ad-hoc jobs
//! expose no size information ([`JobView::estimated_remaining`] is `None`).

use crate::cluster::ClusterConfig;
use crate::job::{JobClass, JobRuntime, WorkflowSubmission};
use flowtime_dag::{JobId, ResourceVec, Workflow, WorkflowId};
use std::collections::{BTreeSet, HashMap};

/// Scheduler-visible snapshot of one job.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Unique job id.
    pub id: JobId,
    /// Workload class and workflow linkage.
    pub class: JobClass,
    /// Resources per concurrent task.
    pub per_task: ResourceVec,
    /// Slot the job was submitted.
    pub arrival_slot: u64,
    /// Slot the job became runnable (dependencies met), if it has.
    pub ready_slot: Option<u64>,
    /// Estimated remaining work in task-slots; `None` for ad-hoc jobs,
    /// whose size is unknown to schedulers.
    pub estimated_remaining: Option<u64>,
    /// Estimated total work in task-slots; `None` for ad-hoc jobs.
    pub estimated_total: Option<u64>,
    /// Estimated duration of one task in slots; `None` for ad-hoc jobs.
    pub task_slots: Option<u64>,
    /// The most concurrent tasks the job can usefully run this slot
    /// (its parallelism cap, shrunk by its currently pending tasks — the
    /// analogue of a YARN application's outstanding container requests).
    pub max_tasks_this_slot: u64,
    /// Milestone deadline for this job, when tracked.
    pub deadline_slot: Option<u64>,
    /// Work completed so far, in task-slots.
    pub done_work: u64,
}

impl JobView {
    /// True if the job is an ad-hoc (best-effort) job.
    pub fn is_adhoc(&self) -> bool {
        self.class.is_adhoc()
    }
}

/// Scheduler-visible snapshot of one workflow.
#[derive(Debug, Clone)]
pub struct WorkflowView<'a> {
    /// The static description (DAG, estimated job specs, window).
    pub workflow: &'a Workflow,
    /// Engine job id of each DAG node.
    pub job_ids: &'a [JobId],
    /// Completion flag of each DAG node.
    pub completed: Vec<bool>,
}

impl WorkflowView<'_> {
    /// The workflow id.
    pub fn id(&self) -> WorkflowId {
        self.workflow.id()
    }

    /// True once every node has completed.
    pub fn is_complete(&self) -> bool {
        self.completed.iter().all(|&c| c)
    }
}

pub(crate) struct WorkflowInstance {
    pub submission: WorkflowSubmission,
    pub job_ids: Vec<JobId>,
}

/// The engine's world state, exposed read-only to schedulers.
pub struct SimState {
    pub(crate) now: u64,
    pub(crate) cluster: ClusterConfig,
    pub(crate) jobs: Vec<JobRuntime>,
    pub(crate) workflows: Vec<WorkflowInstance>,
    pub(crate) by_id: HashMap<JobId, usize>,
    /// Arrived, ready, incomplete jobs keyed `(arrival_slot, id)` — the
    /// iteration order [`Self::runnable_jobs`] has always promised.
    /// Maintained incrementally by the engine's event queue.
    pub(crate) runnable: BTreeSet<(u64, JobId)>,
    /// Arrived, incomplete jobs (superset of `runnable`), same key.
    pub(crate) visible: BTreeSet<(u64, JobId)>,
    /// Count of jobs not yet complete — lets the engine's run loop test
    /// for termination without scanning every job each slot.
    pub(crate) incomplete: usize,
    /// Mid-run node-crash windows ([`crate::faults::RuntimeFaultPlan`]).
    /// Unlike the cluster's own maintenance windows these are *revealed
    /// only*: they cap [`Self::capacity_now`] but never
    /// [`Self::capacity_at`], so planning schedulers cannot foresee them.
    pub(crate) crash_overlay: Vec<crate::cluster::CapacityWindow>,
}

impl SimState {
    /// The current slot index.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Base cluster capacity (ignoring time-varying windows).
    pub fn capacity(&self) -> ResourceVec {
        self.cluster.capacity()
    }

    /// The capacity in force during the *current* slot — what an
    /// allocation for this slot is validated against. Mid-run node
    /// crashes shrink this below [`Self::capacity_at`]`(now)`: the crash
    /// overlay is revealed slot by slot, never ahead of time.
    pub fn capacity_now(&self) -> ResourceVec {
        let base = self.cluster.capacity_at(self.now);
        self.crash_overlay
            .iter()
            .rev()
            .find(|w| w.from_slot <= self.now && self.now < w.to_slot)
            .map_or(base, |w| base.min(&w.capacity))
    }

    /// The capacity in force during an arbitrary slot (for planners that
    /// look ahead across maintenance windows). Deliberately excludes
    /// mid-run crash windows — schedulers must not foresee failures.
    pub fn capacity_at(&self, slot: u64) -> ResourceVec {
        self.cluster.capacity_at(slot)
    }

    /// Duration of one slot in seconds.
    pub fn slot_seconds(&self) -> f64 {
        self.cluster.slot_seconds()
    }

    fn view_of(&self, job: &JobRuntime) -> JobView {
        let (estimated_remaining, estimated_total, task_slots) = match job.class {
            JobClass::AdHoc => (None, None, None),
            JobClass::Deadline { .. } => (
                Some(job.estimated_remaining()),
                Some(job.estimate.work()),
                Some(job.estimate.task_slots()),
            ),
        };
        JobView {
            id: job.id,
            class: job.class,
            per_task: job.estimate.per_task(),
            arrival_slot: job.arrival_slot,
            ready_slot: job.ready_slot,
            estimated_remaining,
            estimated_total,
            task_slots,
            max_tasks_this_slot: job
                .estimate
                .effective_parallel()
                .min(job.remaining_actual()),
            deadline_slot: job.deadline_slot,
            done_work: job.done_work,
        }
    }

    /// Jobs that have arrived, are ready, and are incomplete — the set a
    /// scheduler may allocate to this slot. Ordered by arrival slot, then
    /// id, for determinism.
    pub fn runnable_jobs(&self) -> Vec<JobView> {
        self.runnable
            .iter()
            .map(|&(_, id)| self.view_of(&self.jobs[self.by_id[&id]]))
            .collect()
    }

    /// All arrived, incomplete jobs — including workflow jobs whose
    /// dependencies are still pending (useful for planning ahead).
    pub fn visible_jobs(&self) -> Vec<JobView> {
        self.visible
            .iter()
            .map(|&(_, id)| self.view_of(&self.jobs[self.by_id[&id]]))
            .collect()
    }

    /// Rebuilds the `runnable`/`visible` indices and the `incomplete`
    /// counter from a full scan of the job table. The heap engine keeps
    /// them incrementally; this is the reference path used by the
    /// linear-scan oracle (and by `Engine::new` to seed the counter).
    pub(crate) fn rebuild_indices(&mut self) {
        self.runnable.clear();
        self.visible.clear();
        self.incomplete = 0;
        for job in &self.jobs {
            if job.is_complete() || job.shed_slot.is_some() {
                continue;
            }
            self.incomplete += 1;
            if job.arrival_slot > self.now {
                continue;
            }
            self.visible.insert((job.arrival_slot, job.id));
            if job.is_runnable(self.now) {
                self.runnable.insert((job.arrival_slot, job.id));
            }
        }
    }

    /// Looks up one job by id (visible only once arrived).
    pub fn job(&self, id: JobId) -> Option<JobView> {
        self.by_id
            .get(&id)
            .map(|&idx| &self.jobs[idx])
            .filter(|j| j.arrival_slot <= self.now)
            .map(|j| self.view_of(j))
    }

    /// Workflows that have arrived, with per-node completion status.
    pub fn workflows(&self) -> Vec<WorkflowView<'_>> {
        self.workflows
            .iter()
            .filter(|w| w.submission.workflow.submit_slot() <= self.now)
            .map(|w| WorkflowView {
                workflow: &w.submission.workflow,
                job_ids: &w.job_ids,
                completed: w
                    .job_ids
                    .iter()
                    .map(|id| self.jobs[self.by_id[id]].is_complete())
                    .collect(),
            })
            .collect()
    }

    /// Sum of resources held by an allocation mapping `job → tasks`.
    pub(crate) fn allocation_usage(&self, pairs: &[(JobId, u64)]) -> ResourceVec {
        pairs.iter().fold(ResourceVec::zero(), |acc, &(id, q)| {
            let job = &self.jobs[self.by_id[&id]];
            acc + job.estimate.per_task() * q
        })
    }
}
