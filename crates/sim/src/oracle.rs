//! The historical linear-scan engine, preserved as a differential oracle.
//!
//! Before the event-heap overhaul, [`crate::Engine`] re-derived everything
//! per slot from full scans: the termination check walked every job, the
//! runnable/visible views filtered and re-sorted the whole job table, and
//! dependency release re-examined every workflow node. That loop is slow
//! (per-slot cost scales with total job count) but *obviously* faithful to
//! the model — so it lives on here, compiled only for tests (and for
//! integration suites via the `oracle` feature), as the ground truth the
//! optimized engine is differentially tested against: identical workload,
//! cluster and scheduler must yield an identical [`SimOutcome`] — timeline
//! included — modulo the engine-telemetry counters, which describe the
//! implementation rather than the simulation.

use crate::cluster::ClusterConfig;
use crate::error::SimError;
use crate::job::SimWorkload;
use crate::placement::NodePool;
use crate::scheduler::Scheduler;
use crate::state::SimState;
use crate::telemetry::EngineTelemetry;
use crate::timeline::TimelineEntry;
use crate::{Engine, SimOutcome};
use flowtime_dag::JobId;

/// Drop-in replacement for [`Engine`] running the pre-overhaul
/// linear-scan slot loop. See the [module docs](self).
pub struct OracleEngine {
    inner: Engine,
}

impl OracleEngine {
    /// Builds an oracle engine; same contract as [`Engine::new`].
    ///
    /// # Errors
    ///
    /// [`SimError::MalformedSubmission`], exactly as [`Engine::new`].
    pub fn new(
        cluster: ClusterConfig,
        workload: SimWorkload,
        max_slots: u64,
    ) -> Result<Self, SimError> {
        Ok(OracleEngine {
            inner: Engine::new(cluster, workload, max_slots)?,
        })
    }

    /// See [`Engine::with_invariants`].
    #[must_use]
    pub fn with_invariants(mut self, extended: bool) -> Self {
        self.inner = self.inner.with_invariants(extended);
        self
    }

    /// See [`Engine::with_timeline`].
    #[must_use]
    pub fn with_timeline(mut self) -> Self {
        self.inner = self.inner.with_timeline();
        self
    }

    /// See [`Engine::with_nodes`].
    #[must_use]
    pub fn with_nodes(mut self, pool: NodePool) -> Self {
        self.inner = self.inner.with_nodes(pool);
        self
    }

    /// Runs `scheduler` with the historical full-scan loop: every slot the
    /// view indices are rebuilt from scratch and dependents are released by
    /// scanning every workflow node. Semantics (and the drain-on-exhaustion
    /// contract) match [`Engine::run`].
    ///
    /// # Errors
    ///
    /// Same scheduler-misbehaviour and invariant errors as [`Engine::run`].
    pub fn run(mut self, scheduler: &mut dyn Scheduler) -> Result<SimOutcome, SimError> {
        let e = &mut self.inner;
        // The oracle reports no hot-path counters: zero them so the only
        // telemetry difference against the heap engine is intentional.
        e.telemetry = EngineTelemetry::default();
        while e.state.now < e.max_slots {
            e.state.rebuild_indices();
            if e.state.incomplete == 0 {
                e.checker.check_final(&e.state)?;
                return Ok(self.inner.finish(scheduler.telemetry()));
            }
            let allocation = scheduler.plan_slot(&e.state);
            let now = e.state.now;

            let pairs: Vec<(JobId, u64)> = allocation.iter().collect();
            e.checker.check_slot(&e.state, &pairs)?;
            let used = e.state.allocation_usage(&pairs);

            e.slot_loads.push(used);
            e.slot_capacities.push(e.state.capacity_now());
            if let Some(tl) = &mut e.timeline {
                for &(id, q) in &pairs {
                    tl.entries.push(TimelineEntry {
                        slot: now,
                        job: id,
                        tasks: q,
                    });
                }
            }
            if let Some(pool) = &e.nodes {
                let requests: Vec<_> = pairs
                    .iter()
                    .map(|&(id, q)| {
                        let shape = e.state.jobs[e.state.by_id[&id]].estimate.per_task();
                        (id, shape, q)
                    })
                    .collect();
                e.placement_shortfalls
                    .push(pool.pack(&requests).unplaced_tasks());
            }
            for (id, q) in pairs {
                let idx = e.state.by_id[&id];
                let job = &mut e.state.jobs[idx];
                job.done_work += q;
                if job.done_work >= job.actual_work {
                    job.completion_slot = Some(now + 1);
                }
            }
            release_dependents(&mut e.state, now);
            e.state.now += 1;
        }
        e.state.rebuild_indices();
        if e.state.incomplete == 0 {
            e.checker.check_final(&e.state)?;
        }
        Ok(self.inner.finish(scheduler.telemetry()))
    }
}

/// Marks workflow jobs ready once all their predecessors completed during
/// or before slot `now`; they become runnable from `now + 1`. The
/// pre-overhaul release rule, verbatim: a full scan over every node of
/// every workflow, every slot.
fn release_dependents(state: &mut SimState, now: u64) {
    for w in 0..state.workflows.len() {
        let n = state.workflows[w].job_ids.len();
        for node in 0..n {
            let id = state.workflows[w].job_ids[node];
            let idx = state.by_id[&id];
            if state.jobs[idx].ready_slot.is_some() {
                continue;
            }
            let dag = state.workflows[w].submission.workflow.dag();
            let all_done = dag.predecessors(node).iter().all(|&p| {
                let pid = state.workflows[w].job_ids[p];
                state.jobs[state.by_id[&pid]].is_complete()
            });
            if all_done {
                state.jobs[idx].ready_slot = Some(now + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AdhocSubmission, WorkflowSubmission};
    use crate::scheduler::Allocation;
    use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};

    struct Greedy;
    impl Scheduler for Greedy {
        fn name(&self) -> &str {
            "greedy"
        }
        fn plan_slot(&mut self, state: &SimState) -> Allocation {
            let mut alloc = Allocation::new();
            let mut free = state.capacity();
            for job in state.runnable_jobs() {
                let fit = job
                    .per_task
                    .times_fitting(&free)
                    .min(job.max_tasks_this_slot);
                if fit > 0 {
                    alloc.assign(job.id, fit);
                    free -= job.per_task * fit;
                }
            }
            alloc
        }
    }

    fn workload() -> SimWorkload {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "diamond");
        let s = b.add_job(JobSpec::new("s", 4, 2, ResourceVec::new([1, 4096])));
        let l = b.add_job(JobSpec::new("l", 2, 3, ResourceVec::new([1, 4096])));
        let r = b.add_job(JobSpec::new("r", 2, 2, ResourceVec::new([1, 4096])));
        let t = b.add_job(JobSpec::new("t", 4, 1, ResourceVec::new([1, 4096])));
        b.add_dep(s, l).unwrap();
        b.add_dep(s, r).unwrap();
        b.add_dep(l, t).unwrap();
        b.add_dep(r, t).unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows
            .push(WorkflowSubmission::new(b.window(0, 100).build().unwrap()));
        wl.adhoc.push(AdhocSubmission::new(
            JobSpec::new("a", 3, 4, ResourceVec::new([1, 4096])),
            2,
        ));
        wl
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::new(ResourceVec::new([8, 32_768]), 10.0)
    }

    #[test]
    fn oracle_and_heap_engine_agree_on_a_diamond_dag() {
        let heap = Engine::new(cluster(), workload(), 1_000)
            .unwrap()
            .with_timeline()
            .run(&mut Greedy)
            .unwrap();
        let oracle = OracleEngine::new(cluster(), workload(), 1_000)
            .unwrap()
            .with_timeline()
            .run(&mut Greedy)
            .unwrap();
        let mut normalized = heap.clone();
        normalized.engine_telemetry = EngineTelemetry::default();
        assert_eq!(normalized, oracle);
        assert!(heap.is_complete());
    }

    #[test]
    fn oracle_and_heap_engine_agree_on_horizon_drain() {
        let heap = Engine::new(cluster(), workload(), 4)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        let oracle = OracleEngine::new(cluster(), workload(), 4)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();
        assert!(!heap.is_complete());
        let mut normalized = heap.clone();
        normalized.engine_telemetry = EngineTelemetry::default();
        assert_eq!(normalized, oracle);
    }
}
