//! Online (incremental) driving of the simulation engine.
//!
//! [`OnlineEngine`] is the primitive under the `flowtimed` daemon: it
//! wraps an [`Engine`] whose job table starts empty and grows as
//! submissions are injected while virtual time advances one
//! [`Engine::step`] at a time. Its contract is **batch parity**: a
//! sequence of injections and steps that respects the arrival discipline
//! below produces a [`crate::SimOutcome`] (and decision trace) that is
//! byte-identical to [`Engine::from_log`] over the same
//! [`crate::SubmissionLog`] — including the engine telemetry counters
//! that serialize into the outcome.
//!
//! # Arrival discipline
//!
//! * A submission may only be injected at or before its arrival slot:
//!   `arrival_slot >= now`. Injections into already-simulated slots are
//!   rejected (the batch run would have seen them; the live run cannot).
//! * Callers that buffer future-dated submissions (the daemon session)
//!   must inject them in `(arrival_slot, seq)` order — injecting when
//!   virtual time reaches the arrival slot does this naturally — so the
//!   dense job ids match [`Engine::from_log`]'s sort order.
//! * While every *injected* job is complete but future-dated submissions
//!   are still queued upstream, the caller burns the gap with
//!   [`OnlineEngine::step_idle`]: the batch run simulates those same
//!   slots as idle (its not-yet-arrived jobs keep `incomplete` > 0), so
//!   the online run must simulate them too, not skip them.
//!
//! # Telemetry parity
//!
//! Batch construction pushes arrival/ready events for every job with
//! `arrival_slot > 0` at time zero; the online path pushes the identical
//! events at injection time. Slot-0 submissions are seeded directly into
//! the incremental indices on both paths (no heap traffic), so
//! `heap_ops` / `events_processed` / `slots_simulated` /
//! `peak_live_jobs` all agree at finish.

use crate::cluster::ClusterConfig;
use crate::engine::{Engine, StepOutcome, TableBuilder, EV_ARRIVAL, EV_READY};
use crate::error::SimError;
use crate::job::{AdhocSubmission, SimWorkload, WorkflowSubmission};
use crate::scheduler::Scheduler;
use crate::telemetry::EngineTelemetry;
use crate::trace::TraceHandle;
use crate::SimOutcome;
use flowtime_dag::JobId;
use serde::Serialize;
use std::cmp::Reverse;

/// Point-in-time view of an online engine, for `status` endpoints.
#[derive(Debug, Clone, Serialize)]
pub struct OnlineStatus {
    /// Current virtual slot (the next slot to be simulated).
    pub now: u64,
    /// Injected jobs not yet complete.
    pub incomplete: usize,
    /// Jobs arrived and visible to schedulers.
    pub visible: usize,
    /// Jobs currently runnable.
    pub runnable: usize,
    /// Total jobs materialized so far (complete or not).
    pub total_jobs: u64,
    /// Engine hot-path counters accumulated so far.
    pub engine_telemetry: EngineTelemetry,
}

/// Progress of a single materialized job, for `query` endpoints.
#[derive(Debug, Clone, Serialize)]
pub struct JobProgress {
    /// The job's dense id.
    pub id: JobId,
    /// Slot the job arrived (or will arrive) at.
    pub arrival_slot: u64,
    /// Task-slots of work applied so far.
    pub done_work: u64,
    /// Ground-truth work required.
    pub actual_work: u64,
    /// Completion slot, once finished.
    pub completion_slot: Option<u64>,
}

/// An [`Engine`] driven incrementally: submissions are injected between
/// steps while virtual time advances. See the module docs for the parity
/// contract.
pub struct OnlineEngine {
    engine: Engine,
    /// Set at the first step: the trace header and slot-0 seed events
    /// have been written, so the slot-0 job table is frozen.
    begun: bool,
}

impl OnlineEngine {
    /// An online engine over an initially-empty workload.
    pub fn new(cluster: ClusterConfig, max_slots: u64) -> Self {
        let engine = Engine::new(cluster, SimWorkload::default(), max_slots)
            .expect("empty workload is always well-formed");
        OnlineEngine {
            engine,
            begun: false,
        }
    }

    /// Enables decision-trace recording (see [`Engine::with_trace`]).
    /// The header is written lazily at the first step and its job table
    /// is refreshed at [`OnlineEngine::finish`], so late injections are
    /// covered.
    #[must_use]
    pub fn with_trace(mut self, capacity: usize) -> (Self, TraceHandle) {
        let (engine, handle) = self.engine.with_trace(capacity);
        self.engine = engine;
        (self, handle)
    }

    /// Current virtual slot — the next slot to be simulated.
    pub fn now(&self) -> u64 {
        self.engine.state.now
    }

    /// Number of injected jobs not yet complete.
    pub fn incomplete(&self) -> usize {
        self.engine.state.incomplete
    }

    /// Point-in-time status snapshot.
    pub fn status(&self) -> OnlineStatus {
        OnlineStatus {
            now: self.engine.state.now,
            incomplete: self.engine.state.incomplete,
            visible: self.engine.state.visible.len(),
            runnable: self.engine.state.runnable.len(),
            total_jobs: self.engine.state.jobs.len() as u64,
            engine_telemetry: self.engine.telemetry.clone(),
        }
    }

    /// Progress of one materialized job, if the id exists.
    pub fn job_progress(&self, id: JobId) -> Option<JobProgress> {
        let &idx = self.engine.state.by_id.get(&id)?;
        let job = &self.engine.state.jobs[idx];
        Some(JobProgress {
            id: job.id,
            arrival_slot: job.arrival_slot,
            done_work: job.done_work,
            actual_work: job.actual_work,
            completion_slot: job.completion_slot,
        })
    }

    /// Injects a workflow submission, materializing one job per DAG node
    /// with dense ids continuing the existing table. Returns the new ids
    /// in node order.
    ///
    /// # Errors
    ///
    /// [`SimError::MalformedSubmission`] for inconsistent per-node
    /// vectors or an arrival slot that has already been simulated.
    pub fn submit_workflow(
        &mut self,
        submission: WorkflowSubmission,
    ) -> Result<Vec<JobId>, SimError> {
        let arrival = submission.workflow.submit_slot();
        self.check_arrival(arrival)?;
        let mut table = TableBuilder::offset(
            self.engine.state.jobs.len() as u64,
            self.engine.state.workflows.len(),
        );
        table.push_workflow(submission)?;
        Ok(self.splice(table, arrival))
    }

    /// Injects an ad-hoc submission and returns its job id.
    ///
    /// # Errors
    ///
    /// [`SimError::MalformedSubmission`] if the arrival slot has already
    /// been simulated.
    pub fn submit_adhoc(&mut self, submission: AdhocSubmission) -> Result<JobId, SimError> {
        let arrival = submission.arrival_slot;
        self.check_arrival(arrival)?;
        let mut table = TableBuilder::offset(
            self.engine.state.jobs.len() as u64,
            self.engine.state.workflows.len(),
        );
        table.push_adhoc(submission);
        let ids = self.splice(table, arrival);
        Ok(ids[0])
    }

    /// Rejects arrivals into slots the engine has already simulated (or
    /// is past seeding for, in the slot-0 case).
    fn check_arrival(&self, arrival: u64) -> Result<(), SimError> {
        if arrival < self.engine.state.now {
            return Err(SimError::MalformedSubmission {
                reason: "arrival slot already simulated",
            });
        }
        if self.begun && arrival == 0 {
            // Slot-0 jobs bypass the event heap: they are seeded directly
            // into the indices and the trace header, both frozen at the
            // first step.
            return Err(SimError::MalformedSubmission {
                reason: "slot 0 already seeded",
            });
        }
        Ok(())
    }

    /// Splices freshly-built rows onto the live table and seeds indices
    /// or events exactly as batch construction would have.
    fn splice(&mut self, table: TableBuilder, arrival: u64) -> Vec<JobId> {
        let TableBuilder {
            jobs,
            workflows,
            job_nodes,
            pending_preds,
            ..
        } = table;
        let ids: Vec<JobId> = jobs.iter().map(|j| j.id).collect();
        let n_new = jobs.len();
        for job in jobs {
            let idx = self.engine.state.jobs.len();
            self.engine.state.by_id.insert(job.id, idx);
            self.engine.state.jobs.push(job);
        }
        self.engine.state.workflows.extend(workflows);
        self.engine.job_nodes.extend(job_nodes);
        self.engine.pending_preds.extend(pending_preds);
        if arrival == 0 {
            // Pre-run slot-0 injection: mirror `Engine::assemble`, which
            // seeds slot-0 jobs straight into the incremental indices
            // with no heap traffic.
            self.engine.state.rebuild_indices();
        } else {
            // Future arrival: queue the same events batch construction
            // queues, with the same heap-op accounting.
            self.engine.state.incomplete += n_new;
            for &id in &ids {
                let job = &self.engine.state.jobs[self.engine.state.by_id[&id]];
                debug_assert!(job.arrival_slot > 0);
                self.engine
                    .events
                    .push(Reverse((job.arrival_slot, EV_ARRIVAL, job.id)));
                self.engine.telemetry.heap_ops += 1;
                if let Some(r) = job.ready_slot {
                    if r > 0 {
                        self.engine.events.push(Reverse((r, EV_READY, job.id)));
                        self.engine.telemetry.heap_ops += 1;
                    }
                }
            }
        }
        ids
    }

    /// Advances by one run-loop iteration (see [`Engine::step`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::run`].
    pub fn step(&mut self, scheduler: &mut dyn Scheduler) -> Result<StepOutcome, SimError> {
        self.ensure_begun(scheduler);
        self.engine.step(scheduler, false)
    }

    /// Simulates one slot even if every injected job is complete — the
    /// gap-burning step used while future-dated submissions are queued
    /// upstream (see the module docs).
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::run`].
    pub fn step_idle(&mut self, scheduler: &mut dyn Scheduler) -> Result<StepOutcome, SimError> {
        self.ensure_begun(scheduler);
        self.engine.step(scheduler, true)
    }

    /// Writes the trace header and slot-0 seed events exactly once,
    /// freezing the slot-0 table.
    fn ensure_begun(&mut self, scheduler: &dyn Scheduler) {
        if !self.begun {
            self.begun = true;
            self.engine.begin_trace(scheduler.name());
        }
    }

    /// Consumes the engine into its outcome. The caller is responsible
    /// for having stepped to completion first (a drained daemon session
    /// has); an unfinished engine reports its partial progress in
    /// [`SimOutcome::in_flight`] just like a horizon-exhausted batch run.
    pub fn finish(mut self, scheduler: &mut dyn Scheduler) -> SimOutcome {
        self.ensure_begun(scheduler);
        if let Some(ctx) = &self.engine.trace {
            // Late injections extended the job table after the header was
            // written; refresh it so the trace is self-contained.
            ctx.buffer().header.jobs = self.engine.trace_job_metas();
        }
        self.engine.finish(scheduler.telemetry())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SimState;
    use crate::submission::{LogEntry, SubmissionLog};
    use crate::Allocation;
    use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};

    struct Greedy;
    impl Scheduler for Greedy {
        fn name(&self) -> &str {
            "greedy"
        }
        fn plan_slot(&mut self, state: &SimState) -> Allocation {
            let mut alloc = Allocation::new();
            let mut free = state.capacity();
            for job in state.runnable_jobs() {
                let fit = job
                    .per_task
                    .times_fitting(&free)
                    .min(job.max_tasks_this_slot);
                if fit > 0 {
                    alloc.assign(job.id, fit);
                    free -= job.per_task * fit;
                }
            }
            alloc
        }
    }

    fn cluster() -> ClusterConfig {
        ClusterConfig::new(ResourceVec::new([8, 65536]), 10.0)
    }

    fn adhoc(arrival: u64, tasks: u64, dur: u64) -> AdhocSubmission {
        AdhocSubmission {
            spec: JobSpec::new("a", tasks, dur, ResourceVec::new([1, 1024])),
            arrival_slot: arrival,
        }
    }

    fn chain_workflow(submit: u64, deadline: u64) -> WorkflowSubmission {
        let mut b = WorkflowBuilder::new(WorkflowId::new(7), "wf");
        let a = b.add_job(JobSpec::new("a", 4, 2, ResourceVec::new([1, 1024])));
        let c = b.add_job(JobSpec::new("c", 2, 2, ResourceVec::new([1, 1024])));
        b.add_dep(a, c).unwrap();
        WorkflowSubmission::new(b.window(submit, deadline).build().unwrap())
    }

    /// The parity contract, in miniature: inject-at-arrival + gap
    /// stepping equals `Engine::from_log` byte for byte.
    #[test]
    fn online_matches_from_log_bytes() {
        let mut log = SubmissionLog::new();
        log.entries.push(LogEntry::Workflow {
            seq: 0,
            at: 0,
            submission: chain_workflow(0, 40),
        });
        log.entries.push(LogEntry::Adhoc {
            seq: 1,
            at: 0,
            submission: adhoc(9, 3, 2),
        });

        let batch = Engine::from_log(cluster(), &log, 10_000)
            .unwrap()
            .run(&mut Greedy)
            .unwrap();

        let mut online = OnlineEngine::new(cluster(), 10_000);
        let mut sched = Greedy;
        online.submit_workflow(chain_workflow(0, 40)).unwrap();
        // The ad-hoc job arrives at slot 9: inject when time gets there.
        while online.now() < 9 {
            match online.step(&mut sched).unwrap() {
                StepOutcome::Advanced => {}
                // Gap between workflow completion and the arrival.
                StepOutcome::Complete => {
                    online.step_idle(&mut sched).unwrap();
                }
                StepOutcome::HorizonExhausted => panic!("horizon too small"),
            }
        }
        online.submit_adhoc(adhoc(9, 3, 2)).unwrap();
        loop {
            match online.step(&mut sched).unwrap() {
                StepOutcome::Advanced => {}
                StepOutcome::Complete => break,
                StepOutcome::HorizonExhausted => panic!("horizon too small"),
            }
        }
        let outcome = online.finish(&mut sched);
        assert_eq!(
            serde_json::to_string(&outcome).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
    }

    #[test]
    fn late_arrivals_are_rejected() {
        let mut online = OnlineEngine::new(cluster(), 100);
        let mut sched = Greedy;
        online.submit_adhoc(adhoc(0, 1, 1)).unwrap();
        while online.now() < 3 {
            if online.step(&mut sched).unwrap() == StepOutcome::Complete {
                online.step_idle(&mut sched).unwrap();
            }
        }
        assert!(matches!(
            online.submit_adhoc(adhoc(2, 1, 1)),
            Err(SimError::MalformedSubmission { .. })
        ));
        assert!(matches!(
            online.submit_adhoc(adhoc(0, 1, 1)),
            Err(SimError::MalformedSubmission { .. })
        ));
    }

    #[test]
    fn status_reports_progress() {
        let mut online = OnlineEngine::new(cluster(), 100);
        let mut sched = Greedy;
        let id = online.submit_adhoc(adhoc(0, 4, 2)).unwrap();
        let st = online.status();
        assert_eq!(st.now, 0);
        assert_eq!(st.incomplete, 1);
        online.step(&mut sched).unwrap();
        let p = online.job_progress(id).unwrap();
        assert!(p.done_work > 0);
        assert!(online.job_progress(JobId::new(99)).is_none());
    }
}
