//! Slot-by-slot invariant enforcement.
//!
//! [`InvariantChecker`] is the engine's single validation point. Every slot
//! it re-derives, from first principles, what a correct simulation must
//! satisfy, and fails the run with a structured [`SimError`] the moment
//! anything diverges. Two layers of rules:
//!
//! **Scheduler rules** (always enforced — a scheduling experiment whose
//! algorithm cheats silently would invalidate every reported metric):
//!
//! * every allocated job id exists ([`SimError::UnknownJob`]);
//! * no job runs before arrival/readiness or after completion
//!   ([`SimError::JobNotRunnable`]);
//! * per-job parallelism caps hold ([`SimError::ParallelismExceeded`]);
//! * the slot's total usage fits the capacity in force *this* slot,
//!   including time-varying windows ([`SimError::CapacityExceeded`]).
//!
//! **Accounting rules** (enabled by default, disabled via
//! [`crate::Engine::with_invariants`] — these guard the *engine's* own
//! bookkeeping and fail as [`SimError::InvariantViolation`] naming the
//! slot, job, and rule):
//!
//! * `work-conservation` — no job's completed work ever exceeds its
//!   ground-truth demand, and at the end of the run they are exactly equal;
//! * `completion-accounting` — a job is marked complete if and only if its
//!   accumulated work covers its demand;
//! * `monotone-completion` — the number of completed jobs and the total
//!   work performed (surviving progress plus work discarded by mid-run
//!   kills, which is how retries legally reset `done_work`) never
//!   decrease from slot to slot;
//! * `milestone-consistency` — per-workflow job deadlines are consistent
//!   with the decomposition windows they came from: inside the workflow's
//!   `[submit, deadline]` window and non-decreasing along DAG edges;
//! * `completion-ordering` — at the end of the run every job completed
//!   after it arrived and became ready.

use crate::error::SimError;
use crate::state::SimState;
use flowtime_dag::JobId;

/// Stateful checker driven by [`crate::Engine`] once per slot plus once at
/// the end of the run. See the [module docs](self) for the rule catalogue.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    /// When false, only the scheduler rules run (legacy behaviour).
    extended: bool,
    /// Completed-job count observed at the previous check.
    completed_prev: usize,
    /// Total done work observed at the previous check.
    done_prev: u64,
    /// Whether the one-time static checks have run.
    static_checked: bool,
}

impl InvariantChecker {
    /// Creates a checker; `extended` enables the accounting rules.
    pub fn new(extended: bool) -> Self {
        InvariantChecker {
            extended,
            completed_prev: 0,
            done_prev: 0,
            static_checked: false,
        }
    }

    /// True if the accounting rules are enabled.
    pub fn is_extended(&self) -> bool {
        self.extended
    }

    fn violation(slot: u64, job: Option<JobId>, rule: &'static str) -> SimError {
        SimError::InvariantViolation { slot, job, rule }
    }

    /// Validates one slot's allocation *before* the engine applies it.
    /// `pairs` is the scheduler's `job → tasks` mapping; `state` reflects
    /// the beginning of slot `state.now()`.
    ///
    /// # Errors
    ///
    /// Scheduler-rule failures use the legacy [`SimError`] variants;
    /// accounting-rule failures use [`SimError::InvariantViolation`].
    pub fn check_slot(&mut self, state: &SimState, pairs: &[(JobId, u64)]) -> Result<(), SimError> {
        let now = state.now();

        // Scheduler rules.
        for &(id, q) in pairs {
            let Some(&idx) = state.by_id.get(&id) else {
                return Err(SimError::UnknownJob { job: id });
            };
            let job = &state.jobs[idx];
            if job.arrival_slot > now || !job.is_runnable(now) {
                return Err(SimError::JobNotRunnable { job: id, slot: now });
            }
            let cap = job
                .estimate
                .effective_parallel()
                .min(job.remaining_actual());
            if q > cap {
                return Err(SimError::ParallelismExceeded {
                    job: id,
                    requested: q,
                    cap,
                });
            }
        }
        let used = state.allocation_usage(pairs);
        if !used.fits_within(&state.capacity_now()) {
            return Err(SimError::CapacityExceeded { slot: now });
        }

        if !self.extended {
            return Ok(());
        }

        // One-time static rules.
        if !self.static_checked {
            self.static_checked = true;
            self.check_milestone_consistency(state)?;
        }

        // Accounting rules over the whole job table.
        let mut completed = 0usize;
        let mut done_total = 0u64;
        for job in &state.jobs {
            if job.done_work > job.actual_work {
                return Err(Self::violation(now, Some(job.id), "work-conservation"));
            }
            if job.is_complete() != (job.done_work >= job.actual_work) {
                return Err(Self::violation(now, Some(job.id), "completion-accounting"));
            }
            if job.is_complete() {
                completed += 1;
            }
            // Wasted work from killed attempts counts toward the monotone
            // total: a kill moves progress from `done_work` to `wasted`
            // rather than destroying it, so the sum still never regresses.
            done_total += job.done_work + job.wasted;
        }
        if completed < self.completed_prev || done_total < self.done_prev {
            return Err(Self::violation(now, None, "monotone-completion"));
        }
        self.completed_prev = completed;
        self.done_prev = done_total;
        Ok(())
    }

    /// Per-workflow milestone consistency: each job deadline lies inside
    /// the workflow window and milestones never decrease along DAG edges
    /// (the shape the deadline decomposition guarantees).
    fn check_milestone_consistency(&self, state: &SimState) -> Result<(), SimError> {
        for w in &state.workflows {
            let Some(milestones) = &w.submission.job_deadlines else {
                continue;
            };
            let wf = &w.submission.workflow;
            for (node, &m) in milestones.iter().enumerate() {
                if m < wf.submit_slot() || m > wf.deadline_slot() {
                    return Err(Self::violation(
                        state.now(),
                        Some(w.job_ids[node]),
                        "milestone-consistency",
                    ));
                }
            }
            for (from, to) in wf.dag().edges() {
                if milestones[from] > milestones[to] {
                    return Err(Self::violation(
                        state.now(),
                        Some(w.job_ids[to]),
                        "milestone-consistency",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Validates the completed run: every job finished, with exact work
    /// conservation and sane orderings.
    ///
    /// # Errors
    ///
    /// [`SimError::InvariantViolation`] naming the offending job and rule.
    pub fn check_final(&self, state: &SimState) -> Result<(), SimError> {
        if !self.extended {
            return Ok(());
        }
        let now = state.now();
        for job in &state.jobs {
            // Shed jobs never ran and never complete; they are reported in
            // their own outcome bucket, not held to conservation.
            if job.shed_slot.is_some() {
                continue;
            }
            if job.done_work != job.actual_work {
                return Err(Self::violation(now, Some(job.id), "work-conservation"));
            }
            let Some(completion) = job.completion_slot else {
                return Err(Self::violation(now, Some(job.id), "completion-accounting"));
            };
            let ready = job.ready_slot.unwrap_or(u64::MAX);
            if ready > completion || job.arrival_slot > completion || completion > now {
                return Err(Self::violation(now, Some(job.id), "completion-ordering"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::engine::Engine;
    use crate::job::{AdhocSubmission, SimWorkload, WorkflowSubmission};
    use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};

    fn cluster() -> ClusterConfig {
        ClusterConfig::new(ResourceVec::new([8, 32_768]), 10.0)
    }

    fn spec(tasks: u64, dur: u64) -> JobSpec {
        JobSpec::new("j", tasks, dur, ResourceVec::new([1, 4096]))
    }

    fn engine_with_adhoc() -> Engine {
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(spec(4, 2), 0));
        Engine::new(cluster(), wl, 100).unwrap()
    }

    #[test]
    fn clean_state_passes() {
        let engine = engine_with_adhoc();
        let mut checker = InvariantChecker::new(true);
        let id = engine.state().jobs[0].id;
        checker.check_slot(engine.state(), &[(id, 2)]).unwrap();
        checker.check_slot(engine.state(), &[]).unwrap();
    }

    #[test]
    fn oversubscription_is_detected() {
        let engine = engine_with_adhoc();
        let mut checker = InvariantChecker::new(true);
        let id = engine.state().jobs[0].id;
        // 9 one-core tasks on an 8-core cluster — but the parallelism cap
        // (4 tasks) fires first; widen via a second fake pair instead.
        let err = checker.check_slot(engine.state(), &[(id, 9)]).unwrap_err();
        assert!(matches!(err, SimError::ParallelismExceeded { .. }));
    }

    #[test]
    fn capacity_rule_uses_windowed_capacity() {
        let mut wl = SimWorkload::default();
        wl.adhoc.push(AdhocSubmission::new(spec(8, 4), 0));
        let cl = cluster().with_capacity_window(0, 5, ResourceVec::new([2, 8192]));
        let engine = Engine::new(cl, wl, 100).unwrap();
        let id = engine.state().jobs[0].id;
        let mut checker = InvariantChecker::new(true);
        // 4 tasks fit the base capacity but not the degraded window.
        let err = checker.check_slot(engine.state(), &[(id, 4)]).unwrap_err();
        assert_eq!(err, SimError::CapacityExceeded { slot: 0 });
    }

    #[test]
    fn corrupted_done_work_fails_conservation() {
        let mut engine = engine_with_adhoc();
        engine.state_mut().jobs[0].done_work = 1_000;
        let mut checker = InvariantChecker::new(true);
        let err = checker.check_slot(engine.state(), &[]).unwrap_err();
        assert_eq!(
            err,
            SimError::InvariantViolation {
                slot: 0,
                job: Some(engine.state().jobs[0].id),
                rule: "work-conservation",
            }
        );
        // The same corruption passes a non-extended checker.
        let mut legacy = InvariantChecker::new(false);
        legacy.check_slot(engine.state(), &[]).unwrap();
    }

    #[test]
    fn unmarked_completion_fails_accounting() {
        let mut engine = engine_with_adhoc();
        let actual = engine.state().jobs[0].actual_work;
        engine.state_mut().jobs[0].done_work = actual; // done but not marked
        let mut checker = InvariantChecker::new(true);
        let err = checker.check_slot(engine.state(), &[]).unwrap_err();
        assert!(matches!(
            err,
            SimError::InvariantViolation {
                rule: "completion-accounting",
                ..
            }
        ));
    }

    #[test]
    fn regressing_completion_count_fails_monotonicity() {
        let mut engine = engine_with_adhoc();
        let actual = engine.state().jobs[0].actual_work;
        let mut checker = InvariantChecker::new(true);
        engine.state_mut().jobs[0].done_work = actual;
        engine.state_mut().jobs[0].completion_slot = Some(1);
        checker.check_slot(engine.state(), &[]).unwrap();
        // Un-complete the job: count and total work both regress.
        engine.state_mut().jobs[0].done_work = 0;
        engine.state_mut().jobs[0].completion_slot = None;
        let err = checker.check_slot(engine.state(), &[]).unwrap_err();
        assert!(matches!(
            err,
            SimError::InvariantViolation {
                rule: "monotone-completion",
                ..
            }
        ));
    }

    #[test]
    fn inconsistent_milestones_are_rejected() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "wf");
        let a = b.add_job(spec(2, 1));
        let c = b.add_job(spec(2, 1));
        b.add_dep(a, c).unwrap();
        let wf = b.window(0, 50).build().unwrap();
        // Successor milestone earlier than its predecessor's.
        let mut wl = SimWorkload::default();
        wl.workflows
            .push(WorkflowSubmission::new(wf).with_job_deadlines(vec![40, 10]));
        let engine = Engine::new(cluster(), wl, 100).unwrap();
        let mut checker = InvariantChecker::new(true);
        let err = checker.check_slot(engine.state(), &[]).unwrap_err();
        assert!(matches!(
            err,
            SimError::InvariantViolation {
                rule: "milestone-consistency",
                ..
            }
        ));
    }

    #[test]
    fn final_check_requires_exact_conservation() {
        let mut engine = engine_with_adhoc();
        let checker = InvariantChecker::new(true);
        // Jobs incomplete at the end of the run: done < actual.
        let err = checker.check_final(engine.state()).unwrap_err();
        assert!(matches!(
            err,
            SimError::InvariantViolation {
                rule: "work-conservation",
                ..
            }
        ));
        let actual = engine.state().jobs[0].actual_work;
        engine.state_mut().jobs[0].done_work = actual;
        engine.state_mut().jobs[0].completion_slot = Some(0);
        checker.check_final(engine.state()).unwrap();
    }
}
