//! Solver results.

use crate::problem::VarId;

/// Termination status of a successful solve.
///
/// Infeasibility, unboundedness, and iteration exhaustion are reported as
/// [`crate::LpError`] values instead, so a returned [`Solution`] always
/// carries a usable point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Proved optimal.
    Optimal,
}

/// An optimal solution to a [`crate::Problem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Termination status.
    pub status: Status,
    /// Objective value `cᵀx` at the solution.
    pub objective: f64,
    /// Variable values, indexed by [`VarId::index`].
    pub x: Vec<f64>,
    /// Number of simplex pivots performed (phases 1 and 2 combined).
    pub iterations: usize,
    /// Abstract work units spent by the engine — a deterministic count of
    /// arithmetic touched (tableau cells for the dense engine; nonzeros
    /// priced, factored, and solved for the sparse engine). Comparable
    /// within an engine across instance sizes, unlike wall-clock time.
    pub work: u64,
}

impl Solution {
    /// The value of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    pub fn value(&self, var: VarId) -> f64 {
        self.x[var.index()]
    }

    /// The value of `var` rounded to the nearest integer.
    ///
    /// The scheduling LPs have totally unimodular constraint matrices
    /// (paper Lemma 2), so optimal vertex solutions are integral and this
    /// rounding only removes floating-point noise.
    pub fn value_rounded(&self, var: VarId) -> i64 {
        self.x[var.index()].round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let sol = Solution {
            status: Status::Optimal,
            objective: 1.5,
            x: vec![0.0, 2.0000000001],
            iterations: 3,
            work: 12,
        };
        assert_eq!(sol.value(VarId(1)), 2.0000000001);
        assert_eq!(sol.value_rounded(VarId(1)), 2);
        assert_eq!(sol.status, Status::Optimal);
    }
}
