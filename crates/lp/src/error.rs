//! Error types for LP construction and solving.

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// A variable was declared with `lower > upper`, a non-finite lower
    /// bound, or a NaN bound. (Free variables are not supported: every
    /// quantity in the scheduling LPs is naturally lower-bounded.)
    InvalidBounds {
        /// Lower bound as given.
        lower: f64,
        /// Upper bound as given.
        upper: f64,
    },
    /// A coefficient, objective entry, or right-hand side was NaN/infinite.
    NonFiniteCoefficient,
    /// A constraint referenced a variable that does not exist.
    VarOutOfRange {
        /// The raw variable index.
        var: usize,
        /// Number of declared variables.
        len: usize,
    },
    /// The LP is infeasible (phase 1 terminated with positive residual).
    Infeasible,
    /// The LP is unbounded below.
    Unbounded,
    /// The iteration limit was exceeded before reaching optimality.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::InvalidBounds { lower, upper } => {
                write!(f, "invalid variable bounds [{lower}, {upper}]")
            }
            LpError::NonFiniteCoefficient => f.write_str("non-finite coefficient in problem data"),
            LpError::VarOutOfRange { var, len } => {
                write!(
                    f,
                    "variable {var} out of range for problem with {len} variables"
                )
            }
            LpError::Infeasible => f.write_str("linear program is infeasible"),
            LpError::Unbounded => f.write_str("linear program is unbounded"),
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} exceeded")
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        for e in [
            LpError::InvalidBounds {
                lower: 1.0,
                upper: 0.0,
            },
            LpError::NonFiniteCoefficient,
            LpError::VarOutOfRange { var: 4, len: 2 },
            LpError::Infeasible,
            LpError::Unbounded,
            LpError::IterationLimit { limit: 10 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<LpError>();
    }
}
