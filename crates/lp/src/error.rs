//! Error types for LP construction and solving.

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// A variable was declared with `lower > upper`, a non-finite lower
    /// bound, or a NaN bound. (Free variables are not supported: every
    /// quantity in the scheduling LPs is naturally lower-bounded.)
    InvalidBounds {
        /// Lower bound as given.
        lower: f64,
        /// Upper bound as given.
        upper: f64,
    },
    /// A coefficient, objective entry, or right-hand side was NaN/infinite.
    NonFiniteCoefficient,
    /// A constraint referenced a variable that does not exist.
    VarOutOfRange {
        /// The raw variable index.
        var: usize,
        /// Number of declared variables.
        len: usize,
    },
    /// The LP is infeasible (phase 1 terminated with positive residual).
    Infeasible,
    /// The LP is unbounded below.
    Unbounded,
    /// The iteration limit was exceeded before reaching optimality.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The simplex revisited a basis it had already seen while stalled,
    /// proving it is cycling on a degenerate vertex. Only reported when no
    /// anti-cycling rescue remains (under Bland's rule, or when the Bland
    /// fallback is disabled via `stall_limit = usize::MAX`).
    Cycling {
        /// Pivots performed before the repeat was detected.
        iterations: usize,
    },
    /// The candidate basis matrix is numerically singular: LU factorization
    /// found no acceptable pivot in some column, or an eta update's pivot
    /// element was zero.
    SingularBasis,
    /// The factorization self-check `‖B·x − b‖∞` exceeded tolerance after a
    /// refactorization, indicating corrupted factors or a missed update.
    /// Results are withheld rather than silently wrong.
    NumericalInstability {
        /// The residual that tripped the check.
        residual: f64,
    },
    /// The requested solver engine is not compiled into this build (the
    /// dense oracle requires the `oracle` feature outside of tests).
    EngineUnavailable,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::InvalidBounds { lower, upper } => {
                write!(f, "invalid variable bounds [{lower}, {upper}]")
            }
            LpError::NonFiniteCoefficient => f.write_str("non-finite coefficient in problem data"),
            LpError::VarOutOfRange { var, len } => {
                write!(
                    f,
                    "variable {var} out of range for problem with {len} variables"
                )
            }
            LpError::Infeasible => f.write_str("linear program is infeasible"),
            LpError::Unbounded => f.write_str("linear program is unbounded"),
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} exceeded")
            }
            LpError::Cycling { iterations } => {
                write!(f, "simplex cycling detected after {iterations} pivots")
            }
            LpError::SingularBasis => f.write_str("basis matrix is numerically singular"),
            LpError::NumericalInstability { residual } => {
                write!(
                    f,
                    "factorization residual {residual:e} exceeds tolerance; results withheld"
                )
            }
            LpError::EngineUnavailable => {
                f.write_str("requested LP engine is not compiled into this build")
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        for e in [
            LpError::InvalidBounds {
                lower: 1.0,
                upper: 0.0,
            },
            LpError::NonFiniteCoefficient,
            LpError::VarOutOfRange { var: 4, len: 2 },
            LpError::Infeasible,
            LpError::Unbounded,
            LpError::IterationLimit { limit: 10 },
            LpError::Cycling { iterations: 7 },
            LpError::SingularBasis,
            LpError::NumericalInstability { residual: 1e-3 },
            LpError::EngineUnavailable,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<LpError>();
    }
}
