//! Sparse LU factorization of the simplex basis with a product-form eta
//! file.
//!
//! The revised simplex never forms `B⁻¹`: it keeps `B = L̂·U` (computed by
//! a left-looking Gilbert–Peierls elimination) plus a short file of *eta*
//! columns recording each basis exchange since the last factorization.
//! `FTRAN` (solve `Bx = b`) and `BTRAN` (solve `Bᵀy = c`) run through the
//! factors in sparse-friendly column form.
//!
//! Pivoting is Markowitz-flavored: columns are eliminated in ascending
//! nonzero-count order (cheapest first, stable by basis position), and the
//! pivot row within a column is chosen by maximum magnitude (partial
//! pivoting, ties to the lowest row). On the Lemma 2 interval LPs the
//! basis is near-banded, so this ordering keeps fill-in close to zero.
//!
//! Rather than Forrest–Tomlin factor updates, basis exchanges append
//! product-form etas and the factorization is rebuilt from scratch every
//! [`REFACTOR_EVERY`] exchanges. Each rebuild is followed by a residual
//! self-check (`‖B·β − b‖∞`) in the solver, so a corrupted factor entry or
//! a skipped eta surfaces as a typed [`LpError::NumericalInstability`]
//! instead of a silently wrong plan (see the mutation tests below).

use crate::error::LpError;
use crate::sparse::CscMatrix;

/// Rebuild the factorization after this many eta updates.
pub(crate) const REFACTOR_EVERY: usize = 64;

/// Pivot entries at or below this magnitude are treated as zero during
/// elimination; a column with no admissible pivot makes the basis
/// singular. Matches the dense warm path's refactorization threshold so
/// both engines accept the same prescribed bases.
const PIVOT_TOL: f64 = 1e-7;

/// One product-form update: the basis column at position `r` was replaced,
/// and `E` differs from the identity only in column `r`, which holds
/// `w = B⁻¹·a_entering`.
#[derive(Debug, Clone)]
pub(crate) struct Eta {
    /// Basis position whose column was replaced.
    pub(crate) r: usize,
    /// `w[r]`, the pivot element.
    pub(crate) diag: f64,
    /// Remaining nonzeros of `w` (positions `i ≠ r`).
    pub(crate) col: Vec<(usize, f64)>,
}

/// `B = L̂·U` (times the pending eta file), with `L̂` unit-diagonal under
/// the elimination's row permutation and `U` upper-triangular in step
/// space.
#[derive(Debug, Clone)]
pub(crate) struct Factorization {
    /// Basis dimension.
    pub(crate) m: usize,
    /// Off-diagonal multipliers of `L̂`, per elimination step:
    /// `(original_row, multiplier)`, sorted by row.
    pub(crate) l_cols: Vec<Vec<(usize, f64)>>,
    /// Off-diagonal entries of `U`, per step: `(earlier_step, value)`.
    pub(crate) u_cols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U`, per step.
    pub(crate) u_diag: Vec<f64>,
    /// Elimination step → original row chosen as pivot.
    pub(crate) pivot_row: Vec<usize>,
    /// Elimination step → basis position eliminated at that step.
    pub(crate) col_of_step: Vec<usize>,
    /// Product-form updates since the last factorization.
    pub(crate) etas: Vec<Eta>,
    /// Operation counter (nonzeros touched), for scaling assertions.
    pub(crate) work: u64,
    /// Step-space scratch vector reused by `ftran`/`btran`.
    scratch: Vec<f64>,
}

impl Factorization {
    /// Factors the basis `B` whose column at position `r` is column
    /// `basis[r]` of `a` (in `a`'s *current* orientation).
    ///
    /// # Errors
    ///
    /// [`LpError::SingularBasis`] when elimination finds no pivot above
    /// [`PIVOT_TOL`] for some column.
    pub(crate) fn factor(a: &CscMatrix, basis: &[usize]) -> Result<Factorization, LpError> {
        let m = basis.len();
        debug_assert_eq!(a.m, m);
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&pos| (a.col_nnz(basis[pos]), pos));

        let mut lu = Factorization {
            m,
            l_cols: Vec::with_capacity(m),
            u_cols: Vec::with_capacity(m),
            u_diag: Vec::with_capacity(m),
            pivot_row: Vec::with_capacity(m),
            col_of_step: Vec::with_capacity(m),
            etas: Vec::new(),
            work: 0,
            scratch: vec![0.0; m],
        };
        // Dense scatter workspace with stamp-based sparse reset.
        let mut val = vec![0.0f64; m];
        let mut stamp = vec![0u32; m];
        let mut row_step: Vec<usize> = vec![usize::MAX; m];
        let mut touched: Vec<usize> = Vec::new();
        let mut steps: Vec<usize> = Vec::new();
        let mut dfs: Vec<usize> = Vec::new();

        for (k, &pos) in order.iter().enumerate() {
            let cur = (k + 1) as u32;
            touched.clear();
            steps.clear();
            // Scatter the column and collect the reachable pivotal steps
            // (symbolic phase): a row already eliminated at step `t`
            // scatters into the rows of `l_cols[t]`, transitively.
            for (r, v) in a.col(basis[pos]) {
                val[r] = v;
                if stamp[r] != cur {
                    stamp[r] = cur;
                    touched.push(r);
                    dfs.push(r);
                }
            }
            while let Some(r) = dfs.pop() {
                let t = row_step[r];
                if t == usize::MAX {
                    continue;
                }
                steps.push(t);
                for &(rr, _) in &lu.l_cols[t] {
                    if stamp[rr] != cur {
                        stamp[rr] = cur;
                        val[rr] = 0.0;
                        touched.push(rr);
                        dfs.push(rr);
                    }
                }
            }
            // Numeric phase: apply earlier eliminations in step order. Once
            // step `t` fires, `val[pivot_row[t]]` is final (later steps
            // never scatter into an already-pivotal row), so the value read
            // here is the `U` entry.
            steps.sort_unstable();
            let mut u_col: Vec<(usize, f64)> = Vec::with_capacity(steps.len());
            for &t in &steps {
                let pv = val[lu.pivot_row[t]];
                if pv != 0.0 {
                    u_col.push((t, pv));
                    for &(rr, l) in &lu.l_cols[t] {
                        val[rr] -= pv * l;
                    }
                    lu.work += lu.l_cols[t].len() as u64;
                }
            }
            // Partial pivoting over the not-yet-pivotal rows of the
            // pattern: maximum magnitude, ties to the lowest row.
            let mut pivot: Option<(usize, f64)> = None;
            for &r in &touched {
                if row_step[r] != usize::MAX {
                    continue;
                }
                let v = val[r];
                let better = match pivot {
                    None => v.abs() > PIVOT_TOL,
                    Some((pr, pv)) => {
                        v.abs() > pv.abs() || (v.abs() == pv.abs() && r < pr && v.abs() > PIVOT_TOL)
                    }
                };
                if better {
                    pivot = Some((r, v));
                }
            }
            let Some((pr, pv)) = pivot else {
                for &r in &touched {
                    val[r] = 0.0;
                }
                return Err(LpError::SingularBasis);
            };
            let mut l_col: Vec<(usize, f64)> = Vec::new();
            for &r in &touched {
                if r != pr && row_step[r] == usize::MAX && val[r] != 0.0 {
                    l_col.push((r, val[r] / pv));
                }
                val[r] = 0.0;
            }
            l_col.sort_unstable_by_key(|&(r, _)| r);
            lu.work += (touched.len() + u_col.len()) as u64;
            lu.l_cols.push(l_col);
            lu.u_cols.push(u_col);
            lu.u_diag.push(pv);
            lu.pivot_row.push(pr);
            lu.col_of_step.push(pos);
            row_step[pr] = k;
        }
        Ok(lu)
    }

    /// Solves `Bx = b` in place: `x` enters holding `b` (constraint-row
    /// space) and leaves holding the basic values by *position*.
    pub(crate) fn ftran(&mut self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        let y = &mut self.scratch;
        // L̂ solve (forward, row space).
        for k in 0..self.m {
            let v = x[self.pivot_row[k]];
            y[k] = v;
            if v != 0.0 {
                for &(r, l) in &self.l_cols[k] {
                    x[r] -= v * l;
                }
                self.work += self.l_cols[k].len() as u64;
            }
        }
        // U solve (backward, step space), scattered to positions. Every
        // position is written exactly once (col_of_step is a permutation),
        // so x needs no clearing.
        for k in (0..self.m).rev() {
            let z = y[k] / self.u_diag[k];
            if z != 0.0 {
                for &(t, u) in &self.u_cols[k] {
                    y[t] -= u * z;
                }
                self.work += self.u_cols[k].len() as u64;
            }
            x[self.col_of_step[k]] = z;
        }
        // Pending basis exchanges, oldest first.
        for eta in &self.etas {
            let t = x[eta.r] / eta.diag;
            if t != 0.0 {
                for &(i, w) in &eta.col {
                    x[i] -= w * t;
                }
                self.work += eta.col.len() as u64;
            }
            x[eta.r] = t;
        }
        self.work += 2 * self.m as u64;
    }

    /// Solves `Bᵀy = c` in place: `x` enters holding `c` (position space)
    /// and leaves holding the dual values by constraint row.
    pub(crate) fn btran(&mut self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        // Eta transposes, newest first.
        for eta in self.etas.iter().rev() {
            let mut s = x[eta.r];
            for &(i, w) in &eta.col {
                s -= w * x[i];
            }
            x[eta.r] = s / eta.diag;
            self.work += eta.col.len() as u64;
        }
        // Uᵀ solve (forward, step space).
        let y = &mut self.scratch;
        for k in 0..self.m {
            let mut s = x[self.col_of_step[k]];
            for &(t, u) in &self.u_cols[k] {
                s -= u * y[t];
            }
            y[k] = s / self.u_diag[k];
            self.work += self.u_cols[k].len() as u64;
        }
        // L̂ᵀ solve (backward): writes x[pivot_row[k]] in descending step
        // order; every row referenced by l_cols[k] pivots at a later step,
        // hence is already final.
        for k in (0..self.m).rev() {
            let mut s = y[k];
            for &(r, l) in &self.l_cols[k] {
                s -= l * x[r];
            }
            x[self.pivot_row[k]] = s;
            self.work += self.l_cols[k].len() as u64;
        }
        self.work += 2 * self.m as u64;
    }

    /// Appends the product-form eta for a basis exchange at position `r`
    /// with FTRAN'd entering column `w` (dense, position space).
    ///
    /// # Errors
    ///
    /// [`LpError::SingularBasis`] if the pivot element is numerically zero
    /// (the ratio tests guarantee it is not on the solver's own paths).
    pub(crate) fn update(&mut self, r: usize, w: &[f64]) -> Result<(), LpError> {
        let diag = w[r];
        if diag.abs() <= 1e-12 {
            return Err(LpError::SingularBasis);
        }
        let col: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.work += col.len() as u64 + 1;
        self.etas.push(Eta { r, diag, col });
        Ok(())
    }

    /// Whether enough etas have accumulated to warrant a rebuild.
    pub(crate) fn needs_refactor(&self) -> bool {
        self.etas.len() >= REFACTOR_EVERY
    }
}

/// `‖B·β − b‖∞` for the basis whose position-`r` column is `a`'s column
/// `basis[r]`: the solver's post-refactorization self-check. A corrupted
/// factor or a skipped eta update poisons the incrementally maintained `β`,
/// which this residual exposes.
pub(crate) fn basis_residual_inf(a: &CscMatrix, basis: &[usize], beta: &[f64], b: &[f64]) -> f64 {
    let mut r: Vec<f64> = b.iter().map(|&v| -v).collect();
    for (pos, &j) in basis.iter().enumerate() {
        if beta[pos] != 0.0 {
            a.scatter_col(j, beta[pos], &mut r);
        }
    }
    r.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4×4 test matrix with an interval-ish pattern; columns 0..4 are the
    /// basis in natural order.
    fn sample() -> (CscMatrix, Vec<usize>) {
        let cols = vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(0, 1.0), (1, 3.0), (2, 1.0)],
            vec![(2, 4.0), (3, 1.0)],
            vec![(1, 1.0), (3, 5.0)],
        ];
        (CscMatrix::from_columns(4, &cols), vec![0, 1, 2, 3])
    }

    fn mat_vec(a: &CscMatrix, basis: &[usize], x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; a.m];
        for (pos, &j) in basis.iter().enumerate() {
            a.scatter_col(j, x[pos], &mut out);
        }
        out
    }

    #[test]
    fn ftran_btran_solve_correctly() {
        let (a, basis) = sample();
        let mut lu = Factorization::factor(&a, &basis).unwrap();
        let b = vec![3.0, -1.0, 2.0, 7.0];
        let mut x = b.clone();
        lu.ftran(&mut x);
        let bx = mat_vec(&a, &basis, &x);
        for (got, want) in bx.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
        // BTRAN: Bᵀy = c  ⇔  yᵀB = cᵀ, i.e. y·(col of B at pos p) = c[p].
        let c = vec![1.0, 0.5, -2.0, 4.0];
        let mut y = c.clone();
        lu.btran(&mut y);
        for (pos, &j) in basis.iter().enumerate() {
            let dot = a.col_dot(j, &y);
            assert!((dot - c[pos]).abs() < 1e-10, "pos {pos}: {dot}");
        }
    }

    #[test]
    fn eta_update_tracks_column_replacement() {
        let (a, basis) = sample();
        let mut lu = Factorization::factor(&a, &basis).unwrap();
        // Replace the basis column at position 2 by a new column
        // [0, 1, 1, 2] appended to the matrix as column 4.
        let mut cols: Vec<Vec<(usize, f64)>> = (0..4).map(|j| a.col(j).collect()).collect();
        cols.push(vec![(1, 1.0), (2, 1.0), (3, 2.0)]);
        let a2 = CscMatrix::from_columns(4, &cols);
        let mut w = vec![0.0; 4];
        a2.scatter_col(4, 1.0, &mut w);
        lu.ftran(&mut w);
        lu.update(2, &w).unwrap();
        let new_basis = vec![0, 1, 4, 3];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut x = b.clone();
        lu.ftran(&mut x);
        let bx = mat_vec(&a2, &new_basis, &x);
        for (got, want) in bx.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
        // BTRAN through the eta too.
        let c = vec![2.0, -1.0, 1.0, 0.0];
        let mut y = c.clone();
        lu.btran(&mut y);
        for (pos, &j) in new_basis.iter().enumerate() {
            let dot = a2.col_dot(j, &y);
            assert!((dot - c[pos]).abs() < 1e-10, "pos {pos}: {dot}");
        }
    }

    #[test]
    fn singular_basis_detected() {
        // Two proportional columns.
        let cols = vec![vec![(0, 1.0), (1, 2.0)], vec![(0, 2.0), (1, 4.0)]];
        let a = CscMatrix::from_columns(2, &cols);
        assert_eq!(
            Factorization::factor(&a, &[0, 1]).unwrap_err(),
            LpError::SingularBasis
        );
    }

    #[test]
    fn refactor_counter_trips() {
        let (a, basis) = sample();
        let mut lu = Factorization::factor(&a, &basis).unwrap();
        assert!(!lu.needs_refactor());
        let mut w = vec![0.0; 4];
        for _ in 0..REFACTOR_EVERY {
            w.copy_from_slice(&[1.0, 0.0, 0.0, 0.0]);
            lu.ftran(&mut w);
            let w_snapshot = w.clone();
            // Re-enter the same column: harmless identity-ish etas.
            lu.update(0, &w_snapshot).unwrap();
        }
        assert!(lu.needs_refactor());
    }

    /// Mutation-negative: corrupting one stored factor entry must be caught
    /// by the residual self-check, not silently absorbed.
    #[test]
    fn corrupted_factor_entry_fails_residual_check() {
        let (a, basis) = sample();
        let mut lu = Factorization::factor(&a, &basis).unwrap();
        let b = vec![3.0, -1.0, 2.0, 7.0];
        // Baseline: a clean solve passes the check.
        let mut beta = b.clone();
        lu.ftran(&mut beta);
        assert!(basis_residual_inf(&a, &basis, &beta, &b) < 1e-9);
        // Mutate one U diagonal entry.
        lu.u_diag[1] += 0.5;
        let mut beta = b.clone();
        lu.ftran(&mut beta);
        let res = basis_residual_inf(&a, &basis, &beta, &b);
        assert!(res > 1e-3, "corruption slipped through: residual {res}");
    }

    /// Mutation-negative: skipping an eta update poisons every *later*
    /// FTRAN; the residual check on the incrementally maintained values
    /// catches it at the next refactorization point.
    #[test]
    fn skipped_eta_update_fails_residual_check() {
        let (a, basis) = sample();
        let mut lu = Factorization::factor(&a, &basis).unwrap();
        let mut cols: Vec<Vec<(usize, f64)>> = (0..4).map(|j| a.col(j).collect()).collect();
        cols.push(vec![(1, 1.0), (2, 1.0), (3, 2.0)]);
        let a2 = CscMatrix::from_columns(4, &cols);
        // Exchange position 2 for column 4 but "forget" lu.update(2, &w).
        let new_basis = vec![0, 1, 4, 3];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut beta = b.clone();
        lu.ftran(&mut beta); // stale factorization: solves the OLD basis
        let res = basis_residual_inf(&a2, &new_basis, &beta, &b);
        assert!(res > 1e-3, "skipped eta slipped through: residual {res}");
    }
}
