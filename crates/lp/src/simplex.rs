//! Simplex front end: engine selection, the shared warm-start contract,
//! and the dense tableau oracle.
//!
//! Two engines implement the bounded-variable two-phase primal simplex:
//!
//! * [`SimplexEngine::Sparse`] — the revised simplex over a sparse
//!   LU-factored basis ([`crate::revised`]), the default.
//! * [`SimplexEngine::Dense`] — [`DenseOracle`], the original dense
//!   tableau implementation, kept as a differential-testing oracle behind
//!   the `oracle` feature (always available inside this crate's tests).
//!
//! Both keep every non-basic variable at one of its bounds. Rather than
//! tracking "at upper bound" as a separate state, a variable at its upper
//! bound is *complemented* (`x ↦ u − x`, a column negation), so all
//! non-basic variables sit at zero in the working space — this makes the
//! ratio test and pivoting identical to the textbook simplex while still
//! supporting finite upper bounds without extra constraint rows. Bound
//! flips (the entering variable reaching its own opposite bound) cost one
//! column negation and no pivot.
//!
//! In the dense oracle, reduced costs are maintained incrementally (`O(n)`
//! per pivot) and refreshed from scratch periodically — and whenever
//! optimality is about to be declared — to bound numerical drift.
//! Anti-cycling in both engines: Dantzig pricing by default, switching to
//! Bland's rule (with a fresh cost vector) after `stall_limit` iterations
//! without objective improvement, plus basis-repeat detection that turns a
//! genuine cycle into a typed [`LpError::Cycling`] instead of a hang.

use crate::error::LpError;
use crate::problem::{Problem, Relation};
use crate::solution::Solution;
#[cfg(any(test, feature = "oracle"))]
use crate::solution::Status;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU8, Ordering};

/// Tuning knobs for [`solve`].
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on total pivots across both phases. `0` means "choose
    /// automatically from the problem size".
    pub max_iterations: usize,
    /// Feasibility / reduced-cost tolerance.
    pub tolerance: f64,
    /// Iterations without objective improvement before switching to
    /// Bland's rule. `usize::MAX` disables the Bland rescue, in which case
    /// a detected basis repeat reports [`LpError::Cycling`].
    pub stall_limit: usize,
    /// Engine override for this solve; `None` uses the process-wide
    /// default from [`default_engine`].
    pub engine: Option<SimplexEngine>,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 0,
            tolerance: 1e-9,
            stall_limit: 200,
            engine: None,
        }
    }
}

/// Selects which simplex implementation executes a solve.
///
/// Both engines walk the same pivot trajectory (same pricing, ratio test,
/// tolerances, and tie-breaks), so they are interchangeable — including
/// warm-start [`Basis`] hand-off between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimplexEngine {
    /// Sparse revised simplex with LU basis factorization (the default).
    Sparse,
    /// Dense tableau oracle. Outside this crate's own tests it requires
    /// the `oracle` cargo feature; without it, selecting `Dense` yields
    /// [`LpError::EngineUnavailable`].
    Dense,
}

/// Process-wide default engine, settable without threading options through
/// every call site (e.g. from a CLI flag). 0 = Sparse, 1 = Dense.
static DEFAULT_ENGINE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default [`SimplexEngine`] used when
/// [`SimplexOptions::engine`] is `None`.
pub fn set_default_engine(engine: SimplexEngine) {
    let v = match engine {
        SimplexEngine::Sparse => 0,
        SimplexEngine::Dense => 1,
    };
    DEFAULT_ENGINE.store(v, Ordering::SeqCst);
}

/// The current process-wide default [`SimplexEngine`].
pub fn default_engine() -> SimplexEngine {
    match DEFAULT_ENGINE.load(Ordering::SeqCst) {
        0 => SimplexEngine::Sparse,
        _ => SimplexEngine::Dense,
    }
}

/// The engine backend contract: a cold two-phase solve and a warm-start
/// attempt. `solve`/`solve_with_warm_start` layer the shared fallback
/// logic on top, so the two entry points behave identically across
/// engines.
pub(crate) trait SolverCore {
    fn solve_cold(
        &self,
        problem: &Problem,
        options: &SimplexOptions,
    ) -> Result<(Solution, Basis), LpError>;
    fn try_warm(
        &self,
        problem: &Problem,
        options: &SimplexOptions,
        start: &Basis,
    ) -> Option<(Solution, Basis)>;
}

fn core_for(engine: SimplexEngine) -> Result<&'static dyn SolverCore, LpError> {
    match engine {
        SimplexEngine::Sparse => Ok(&crate::revised::SparseRevised),
        #[cfg(any(test, feature = "oracle"))]
        SimplexEngine::Dense => Ok(&DenseOracle),
        #[cfg(not(any(test, feature = "oracle")))]
        SimplexEngine::Dense => Err(LpError::EngineUnavailable),
    }
}

/// Detects basis repeats during objective stalls. Two independently
/// seeded 64-bit FNV-style hashes of `(basis, flipped)` keep the false
/// positive probability negligible without storing full basis snapshots.
pub(crate) struct CycleDetector {
    seen: HashSet<(u64, u64)>,
}

impl CycleDetector {
    pub(crate) fn new() -> Self {
        CycleDetector {
            seen: HashSet::new(),
        }
    }

    /// Forget all recorded states (called when the objective improves: no
    /// cycle can span a strict improvement).
    pub(crate) fn clear(&mut self) {
        self.seen.clear();
    }

    /// Records the current basis state; `true` means it was seen before.
    pub(crate) fn record(&mut self, basis: &[usize], flipped: &[bool]) -> bool {
        let h1 = hash_state(basis, flipped, 0xcbf2_9ce4_8422_2325);
        let h2 = hash_state(basis, flipped, 0x9e37_79b9_7f4a_7c15);
        !self.seen.insert((h1, h2))
    }
}

fn hash_state(basis: &[usize], flipped: &[bool], seed: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = seed;
    for &b in basis {
        h = (h ^ (b as u64)).wrapping_mul(PRIME);
    }
    for &f in flipped {
        h = (h ^ (f as u64 + 2)).wrapping_mul(PRIME);
    }
    h ^ (h >> 31)
}

/// Which pricing rule is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pricing {
    Dantzig,
    Bland,
}

/// Relative tie window for Dantzig pricing. The two engines compute
/// reduced costs through different arithmetic (incrementally updated
/// tableau rows vs fresh BTRANs against the LU factors), so columns that
/// tie in exact arithmetic land a few ulps apart — and scheduling LPs are
/// full of exact ties (every allocation column costs zero). Treating
/// candidates within this window of the incumbent minimum as tied and
/// keeping the lowest-index column makes the pivot trajectory a function
/// of the instance, not of which engine's rounding noise is on top.
pub(crate) const PRICE_TIE: f64 = 1e-6;

/// Relative tie window for the ratio test, for the same reason as
/// [`PRICE_TIE`]: on degenerate vertices many rows tie at ratio zero, and
/// the computed ratios sit on accumulated-drift noise (up to ~1e-12 after
/// hundreds of tableau updates) rather than on zero exactly. Rows within
/// the window are tied; the scan keeps the earliest (under Bland, the
/// smallest basic index via `better_leave`), identically on both engines.
/// The window slightly relaxes the blocking test — a basic value may go
/// negative by up to `window × |pivot|`, well inside the 1e-7 feasibility
/// tolerance the engines already operate under.
pub(crate) const RATIO_TIE: f64 = 1e-6;

/// Degenerate-numerator snap for the ratio test. At a degenerate vertex
/// the blocking basic value is *exactly* zero in exact arithmetic, but the
/// incrementally maintained values carry accumulated drift (observed up to
/// ~1e-9 after a few hundred pivots, and different per engine). Numerators
/// below this threshold are treated as exact zeros so every degenerate row
/// prices a ratio of exactly 0.0 on both engines and ties resolve purely
/// by scan order. A genuinely tiny-but-nonzero basic value is driven
/// negative by at most this amount — inside the 1e-7 feasibility band.
pub(crate) const DEGEN_SNAP: f64 = 1e-7;

/// Snap an extracted solution value to a 1e-9 grid. After identical pivot
/// trajectories the two engines' final values still differ in the last
/// ulps; a value an ulp either side of a rounding boundary (e.g. 2.5)
/// would then round to different integers downstream. Quantizing both
/// engines' outputs to the same grid absorbs that noise (it is orders of
/// magnitude below solver tolerance) and makes rounded plans engine-exact.
pub(crate) fn quantize(v: f64) -> f64 {
    (v * 1e9).round() / 1e9
}

/// Outcome of one ratio test.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RatioOutcome {
    /// Entering variable reaches its own upper bound: flip, no pivot.
    Flip,
    /// Basic variable in this row reaches zero: standard pivot.
    LeaveLower(usize),
    /// Basic variable in this row reaches its upper bound: flip it, pivot.
    LeaveUpper(usize),
    /// No limit: the LP is unbounded in this direction.
    Unbounded,
}

#[cfg(any(test, feature = "oracle"))]
struct Tableau {
    m: usize,
    /// Structural + slack columns (artificials excluded).
    n_real: usize,
    /// Total columns including artificials.
    width: usize,
    /// Row-major `m × width` tableau `B⁻¹A`.
    t: Vec<f64>,
    /// Current values of basic variables (`B⁻¹b` adjusted for flips).
    beta: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Upper bound of each column in the working (shifted) space.
    upper: Vec<f64>,
    /// Whether each column is currently complemented.
    flipped: Vec<bool>,
    /// Phase-2 cost of each column, in *original* (unflipped) orientation.
    cost2: Vec<f64>,
    /// Accumulated phase-2 objective constant from flips.
    flip_const2: f64,
    /// First artificial column index.
    art_start: usize,
}

#[cfg(any(test, feature = "oracle"))]
impl Tableau {
    fn effective_cost2(&self, j: usize) -> f64 {
        if self.flipped[j] {
            -self.cost2[j]
        } else {
            self.cost2[j]
        }
    }

    fn effective_cost(&self, j: usize, phase1: bool) -> f64 {
        if phase1 {
            // Artificials never flip (infinite upper bound).
            if j >= self.art_start {
                1.0
            } else {
                0.0
            }
        } else {
            self.effective_cost2(j)
        }
    }

    /// Current phase objective value (including flip constants in phase 2).
    fn objective(&self, phase1: bool) -> f64 {
        let mut z = if phase1 { 0.0 } else { self.flip_const2 };
        for (i, &b) in self.basis.iter().enumerate() {
            z += self.effective_cost(b, phase1) * self.beta[i];
        }
        z
    }

    /// Reduced costs `d_j = c_j − c_B·(B⁻¹a_j)` for all columns.
    fn reduced_costs(&self, phase1: bool) -> Vec<f64> {
        let mut d: Vec<f64> = (0..self.width)
            .map(|j| self.effective_cost(j, phase1))
            .collect();
        for i in 0..self.m {
            let cb = self.effective_cost(self.basis[i], phase1);
            if cb != 0.0 {
                let row = &self.t[i * self.width..(i + 1) * self.width];
                for (dj, &a) in d.iter_mut().zip(row.iter()) {
                    *dj -= cb * a;
                }
            }
        }
        d
    }

    /// Complements non-basic column `j` (bound flip).
    fn flip_column(&mut self, j: usize) {
        let u = self.upper[j];
        debug_assert!(u.is_finite());
        self.flip_const2 += self.effective_cost2(j) * u;
        for i in 0..self.m {
            let a = self.t[i * self.width + j];
            if a != 0.0 {
                self.beta[i] -= a * u;
                self.t[i * self.width + j] = -a;
            }
        }
        self.flipped[j] = !self.flipped[j];
    }

    /// Complements *basic* variable of row `r` in place (it is about to
    /// leave at its upper bound): negates the row and rebases `beta`.
    fn flip_basic_row(&mut self, r: usize) {
        let k = self.basis[r];
        let u = self.upper[k];
        debug_assert!(u.is_finite());
        self.flip_const2 += self.effective_cost2(k) * u;
        let row = &mut self.t[r * self.width..(r + 1) * self.width];
        for (j, a) in row.iter_mut().enumerate() {
            if j != k {
                *a = -*a;
            }
        }
        self.beta[r] = u - self.beta[r];
        self.flipped[k] = !self.flipped[k];
    }

    /// Standard pivot: column `j` enters the basis in row `r`.
    fn pivot(&mut self, r: usize, j: usize) {
        let piv = self.t[r * self.width + j];
        debug_assert!(piv.abs() > 1e-12, "pivot on near-zero element");
        let inv = 1.0 / piv;
        for a in &mut self.t[r * self.width..(r + 1) * self.width] {
            *a *= inv;
        }
        self.beta[r] *= inv;
        // Exact unit column for the entering variable.
        self.t[r * self.width + j] = 1.0;
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let f = self.t[i * self.width + j];
            if f == 0.0 {
                continue;
            }
            let (head, tail) = self.t.split_at_mut(r.max(i) * self.width);
            let (row_i, row_r) = if i < r {
                (
                    &mut head[i * self.width..(i + 1) * self.width],
                    &tail[..self.width],
                )
            } else {
                (
                    &mut tail[..self.width],
                    &head[r * self.width..(r + 1) * self.width],
                )
            };
            for (a, &p) in row_i.iter_mut().zip(row_r.iter()) {
                *a -= f * p;
            }
            row_i[j] = 0.0;
            self.beta[i] -= f * self.beta[r];
            if self.beta[i] < 0.0 && self.beta[i] > -1e-9 {
                self.beta[i] = 0.0;
            }
        }
        self.basis[r] = j;
    }
}

/// An exported simplex basis: enough state to reconstruct the optimal
/// vertex of a solved [`Problem`] inside a *structurally identical*
/// problem (same variable count, same constraint count and senses) whose
/// coefficients, bounds, or right-hand sides have since been perturbed.
///
/// Obtained from [`solve_with_warm_start`] and fed back into a later call
/// to warm-start it. The representation is deliberately opaque: rows store
/// the basic column of each constraint row (in structural + slack
/// indexing; `None` marks a redundant row whose artificial stayed basic),
/// plus the at-upper-bound flip state of every non-basic column.
#[derive(Debug, Clone, PartialEq)]
pub struct Basis {
    /// Basic column of each row; `None` = artificial remained basic.
    pub(crate) rows: Vec<Option<usize>>,
    /// Bound-flip state per structural/slack column (true = at upper).
    /// Only meaningful for columns not in `rows`.
    pub(crate) flipped: Vec<bool>,
    /// Structural variable count of the originating problem.
    pub(crate) n_struct: usize,
    /// Slack column count of the originating problem.
    pub(crate) n_slack: usize,
}

impl Basis {
    /// Whether this basis is dimensionally compatible with `problem`
    /// (necessary, not sufficient, for a successful warm start).
    pub fn fits(&self, problem: &Problem) -> bool {
        self.n_struct == problem.num_vars()
            && self.rows.len() == problem.num_constraints()
            && self.n_slack == count_slacks(problem)
    }
}

/// Result of [`solve_with_warm_start`]: the solution, the optimal basis
/// (reusable as the next warm start), and whether the warm path was
/// actually taken or the solver fell back to a cold two-phase solve.
#[derive(Debug, Clone)]
pub struct WarmSolveResult {
    /// The optimal solution, identical in contract to [`solve`]'s.
    pub solution: Solution,
    /// The optimal basis, for warm-starting a subsequent solve.
    pub basis: Basis,
    /// True iff the provided basis was accepted and repaired in place;
    /// false on a cold solve (no basis given, or basis incompatible).
    pub warm_used: bool,
}

pub(crate) fn count_slacks(problem: &Problem) -> usize {
    problem
        .constraints
        .iter()
        .filter(|c| c.relation != Relation::Eq)
        .count()
}

/// Standard-form conversion shared by the cold and warm paths: shifts every
/// structural variable by its lower bound so domains are `[0, u]`, adds one
/// slack/surplus column per inequality and one artificial per row,
/// normalizes rows to `beta >= 0`, and installs the all-artificial basis.
#[cfg(any(test, feature = "oracle"))]
fn build_tableau(problem: &Problem) -> Result<Tableau, LpError> {
    let n_struct = problem.num_vars();
    let m = problem.num_constraints();
    let mut upper: Vec<f64> = Vec::with_capacity(n_struct + m);
    for j in 0..n_struct {
        let u = problem.upper[j] - problem.lower[j];
        if u < 0.0 {
            return Err(LpError::InvalidBounds {
                lower: problem.lower[j],
                upper: problem.upper[j],
            });
        }
        upper.push(u);
    }
    let n_slack = count_slacks(problem);
    let n_real = n_struct + n_slack;
    let width = n_real + m; // + one artificial per row
    let mut t = vec![0.0f64; m * width];
    let mut beta = vec![0.0f64; m];
    let mut slack_idx = n_struct;
    for (i, con) in problem.constraints.iter().enumerate() {
        let mut rhs = con.rhs;
        for &(v, a) in &con.terms {
            rhs -= a * problem.lower[v];
            t[i * width + v] = a;
        }
        match con.relation {
            Relation::Le => {
                t[i * width + slack_idx] = 1.0;
                slack_idx += 1;
            }
            Relation::Ge => {
                t[i * width + slack_idx] = -1.0;
                slack_idx += 1;
            }
            Relation::Eq => {}
        }
        beta[i] = rhs;
    }
    upper.resize(n_real, f64::INFINITY); // slacks unbounded above
                                         // Normalize rows to beta >= 0, then install artificial basis.
    for i in 0..m {
        if beta[i] < 0.0 {
            beta[i] = -beta[i];
            for a in &mut t[i * width..i * width + n_real] {
                *a = -*a;
            }
        }
        t[i * width + n_real + i] = 1.0;
    }
    upper.resize(width, f64::INFINITY); // artificials

    let mut cost2 = vec![0.0f64; width];
    cost2[..n_struct].copy_from_slice(&problem.objective);
    let flip_const2: f64 = problem
        .objective
        .iter()
        .zip(problem.lower.iter())
        .map(|(c, l)| c * l)
        .sum();

    Ok(Tableau {
        m,
        n_real,
        width,
        t,
        beta,
        basis: (n_real..width).collect(),
        upper,
        flipped: vec![false; width],
        cost2,
        flip_const2,
        art_start: n_real,
    })
}

pub(crate) fn auto_iteration_cap(options: &SimplexOptions, m: usize, n_real: usize) -> usize {
    if options.max_iterations > 0 {
        options.max_iterations
    } else {
        20_000 + 50 * (m + n_real)
    }
}

/// Reads the structural solution out of an optimal tableau.
#[cfg(any(test, feature = "oracle"))]
fn extract_solution(tab: &Tableau, problem: &Problem, iterations: usize) -> Solution {
    let n_struct = problem.num_vars();
    let mut shifted = vec![0.0f64; tab.n_real];
    for (r, &b) in tab.basis.iter().enumerate() {
        if b < tab.n_real {
            shifted[b] = tab.beta[r].max(0.0);
        }
    }
    let mut x = vec![0.0f64; n_struct];
    for j in 0..n_struct {
        let mut v = shifted[j];
        if tab.flipped[j] {
            v = tab.upper[j] - v;
        }
        x[j] = v + problem.lower[j];
        // Clean float fuzz against the original bounds and the grid.
        x[j] = quantize(x[j].clamp(problem.lower[j], problem.upper[j]));
    }
    let objective = problem.objective_at(&x);
    Solution {
        status: Status::Optimal,
        objective,
        x,
        iterations,
        // The dense tableau touches the full m×width sheet per pivot.
        work: (iterations as u64) * (tab.m as u64) * (tab.width as u64),
    }
}

/// Snapshots the basis of an optimal tableau. Flip state is recorded only
/// for non-basic columns: a basic column's flip history does not affect the
/// vertex (basic values are read off `beta` either way), and discarding it
/// keeps the basis a pure vertex description.
#[cfg(any(test, feature = "oracle"))]
fn export_basis(tab: &Tableau, n_struct: usize) -> Basis {
    let rows: Vec<Option<usize>> = tab
        .basis
        .iter()
        .map(|&b| (b < tab.art_start).then_some(b))
        .collect();
    let mut in_basis = vec![false; tab.n_real];
    for &b in &tab.basis {
        if b < tab.art_start {
            in_basis[b] = true;
        }
    }
    let flipped = (0..tab.n_real)
        .map(|j| tab.flipped[j] && !in_basis[j])
        .collect();
    Basis {
        rows,
        flipped,
        n_struct,
        n_slack: tab.n_real - n_struct,
    }
}

/// Solves `problem` by two-phase bounded-variable primal simplex, using
/// the engine from [`SimplexOptions::engine`] (or the process default).
///
/// # Errors
///
/// * [`LpError::Infeasible`] if no point satisfies the constraints.
/// * [`LpError::Unbounded`] if the objective is unbounded below.
/// * [`LpError::IterationLimit`] if the pivot budget is exhausted.
/// * [`LpError::InvalidBounds`] if some variable has an empty domain.
/// * [`LpError::Cycling`] if a basis repeat is detected with the Bland
///   rescue disabled (`stall_limit == usize::MAX`) or under Bland itself.
/// * [`LpError::EngineUnavailable`] if [`SimplexEngine::Dense`] is
///   selected without the `oracle` feature.
/// * [`LpError::NumericalInstability`] if the sparse engine's residual
///   self-check fails.
pub fn solve(problem: &Problem, options: &SimplexOptions) -> Result<Solution, LpError> {
    let engine = options.engine.unwrap_or_else(default_engine);
    core_for(engine)?
        .solve_cold(problem, options)
        .map(|(solution, _)| solution)
}

/// The dense tableau engine, preserved verbatim as a differential-testing
/// oracle (selected via [`SimplexEngine::Dense`]; compiled under the
/// `oracle` feature or in-crate tests).
#[cfg(any(test, feature = "oracle"))]
pub struct DenseOracle;

#[cfg(any(test, feature = "oracle"))]
impl SolverCore for DenseOracle {
    fn solve_cold(
        &self,
        problem: &Problem,
        options: &SimplexOptions,
    ) -> Result<(Solution, Basis), LpError> {
        dense_solve_cold(problem, options)
    }

    fn try_warm(
        &self,
        problem: &Problem,
        options: &SimplexOptions,
        start: &Basis,
    ) -> Option<(Solution, Basis)> {
        dense_try_warm(problem, options, start)
    }
}

/// Cold two-phase solve that also exports the optimal basis.
#[cfg(any(test, feature = "oracle"))]
fn dense_solve_cold(
    problem: &Problem,
    options: &SimplexOptions,
) -> Result<(Solution, Basis), LpError> {
    let tol = options.tolerance;
    let mut tab = build_tableau(problem)?;
    let max_iterations = auto_iteration_cap(options, tab.m, tab.n_real);
    let mut iterations = 0usize;

    // --- phase 1 --------------------------------------------------------
    run_phase(
        &mut tab,
        true,
        tol,
        max_iterations,
        options.stall_limit,
        &mut iterations,
    )?;
    if tab.objective(true) > 1e-6 {
        return Err(LpError::Infeasible);
    }
    // Drive artificials out of the basis where possible; redundant rows
    // keep a zero-valued artificial that is inert from here on.
    for r in 0..tab.m {
        if tab.basis[r] >= tab.art_start {
            let row_start = r * tab.width;
            if let Some(j) =
                (0..tab.n_real).find(|&j| tab.upper[j] > 0.0 && tab.t[row_start + j].abs() > 1e-7)
            {
                tab.pivot(r, j);
            }
        }
    }
    // Bar artificials from ever entering again.
    for j in tab.art_start..tab.width {
        tab.upper[j] = 0.0;
    }

    // --- phase 2 --------------------------------------------------------
    run_phase(
        &mut tab,
        false,
        tol,
        max_iterations,
        options.stall_limit,
        &mut iterations,
    )?;

    let solution = extract_solution(&tab, problem, iterations);
    let basis = export_basis(&tab, problem.num_vars());
    Ok((solution, basis))
}

/// Solves `problem`, warm-starting from `warm` when possible.
///
/// The warm path rebuilds the tableau for the *current* problem data,
/// refactorizes the supplied basis onto it, restores non-basic bound
/// flips, and then repairs primal infeasibility introduced by RHS/bound
/// perturbations with a bounded dual simplex before finishing with
/// ordinary phase-2 pivots. Any incompatibility — dimension mismatch,
/// (near-)singular prescribed basis, lost dual feasibility, stalled
/// repair, or a final point that fails feasibility checks — silently falls
/// back to the cold two-phase solve, so the result contract is identical
/// to [`solve`]: same errors, and an optimal solution with the same
/// objective value (the optimal *vertex* may differ between the warm and
/// cold paths when the optimum is degenerate).
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with_warm_start(
    problem: &Problem,
    options: &SimplexOptions,
    warm: Option<&Basis>,
) -> Result<WarmSolveResult, LpError> {
    let engine = options.engine.unwrap_or_else(default_engine);
    let core = core_for(engine)?;
    if let Some(start) = warm {
        if let Some((solution, basis)) = core.try_warm(problem, options, start) {
            return Ok(WarmSolveResult {
                solution,
                basis,
                warm_used: true,
            });
        }
    }
    let (solution, basis) = core.solve_cold(problem, options)?;
    Ok(WarmSolveResult {
        solution,
        basis,
        warm_used: false,
    })
}

/// Attempts the warm path; `None` means "fall back to a cold solve"
/// (covers both basis incompatibility and any in-flight solver error,
/// which the cold path will re-derive authoritatively).
#[cfg(any(test, feature = "oracle"))]
fn dense_try_warm(
    problem: &Problem,
    options: &SimplexOptions,
    start: &Basis,
) -> Option<(Solution, Basis)> {
    if !start.fits(problem) {
        return None;
    }
    let mut tab = build_tableau(problem).ok()?;
    if start.flipped.len() != tab.n_real {
        return None;
    }
    // Range/duplicate check on the prescribed basic columns.
    let mut prescribed = vec![false; tab.n_real];
    for &col in &start.rows {
        if let Some(j) = col {
            if j >= tab.n_real || prescribed[j] {
                return None;
            }
            prescribed[j] = true;
        }
    }
    // The warm path never runs phase 1: bar artificials immediately.
    // Rows whose artificial stays basic are handled by the dual repair
    // (a zero upper bound turns any nonzero beta into a bound violation).
    for j in tab.art_start..tab.width {
        tab.upper[j] = 0.0;
    }
    // Restore bound flips of non-basic columns. A flip needs a finite
    // upper bound; if a bound became infinite since export, bail out.
    for (j, &basic) in prescribed.iter().enumerate() {
        if start.flipped[j] && !basic {
            if !tab.upper[j].is_finite() {
                return None;
            }
            tab.flip_column(j);
        }
    }
    // Refactorize: pivot every exported row onto one prescribed basic
    // column. The exported row↔column pairing is only a hint — any perfect
    // matching of rows onto the prescribed column *set* reproduces the
    // same basis — so each row greedily takes the remaining column with
    // the largest pivot magnitude (partial pivoting). Insisting on the
    // recorded pairing would stall whenever the fixed pivot sequence hits
    // an elimination-order zero, which happens routinely on large bases; a
    // sweep with no progress at all means the prescribed basis really is
    // (near-)singular for the current coefficients.
    let mut rows: Vec<usize> = Vec::new();
    let mut cols: Vec<usize> = Vec::new();
    for (r, col) in start.rows.iter().enumerate() {
        if let Some(j) = *col {
            rows.push(r);
            cols.push(j);
        }
    }
    while !rows.is_empty() {
        let before = rows.len();
        let mut deferred = Vec::new();
        for &r in &rows {
            let row_off = r * tab.width;
            let mut best: Option<(usize, f64)> = None;
            for (ci, &j) in cols.iter().enumerate() {
                let a = tab.t[row_off + j].abs();
                if a > 1e-7 && best.is_none_or(|(_, m)| a > m) {
                    best = Some((ci, a));
                }
            }
            match best {
                Some((ci, _)) => {
                    let j = cols.swap_remove(ci);
                    tab.pivot(r, j);
                }
                None => deferred.push(r),
            }
        }
        if deferred.len() == before {
            return None;
        }
        rows = deferred;
    }

    let tol = options.tolerance;
    let max_iterations = auto_iteration_cap(options, tab.m, tab.n_real);
    let mut iterations = 0usize;
    if !primal_feasible(&tab, 1e-7) {
        dual_repair(&mut tab, &mut iterations)?;
    }
    run_phase(
        &mut tab,
        false,
        tol,
        max_iterations,
        options.stall_limit,
        &mut iterations,
    )
    .ok()?;
    let solution = extract_solution(&tab, problem, iterations);
    // Safety net: numerical trouble on the warm path must never leak an
    // infeasible "solution"; the cold path re-solves from scratch instead.
    if !problem.is_feasible(&solution.x, 1e-6) {
        return None;
    }
    let basis = export_basis(&tab, problem.num_vars());
    Some((solution, basis))
}

/// All basic values within their (working-space) bounds?
#[cfg(any(test, feature = "oracle"))]
fn primal_feasible(tab: &Tableau, tol: f64) -> bool {
    (0..tab.m).all(|r| {
        let b = tab.beta[r];
        let ub = tab.upper[tab.basis[r]];
        b >= -tol && (!ub.is_finite() || b <= ub + tol)
    })
}

/// Bounded-variable dual simplex: restores primal feasibility after
/// RHS/bound perturbations while preserving dual feasibility (non-negative
/// phase-2 reduced costs). Returns `None` — caller falls back to a cold
/// solve — on lost dual feasibility, an unsatisfiable row (primal
/// infeasibility, which the cold path confirms authoritatively), or a
/// stalled repair.
#[cfg(any(test, feature = "oracle"))]
fn dual_repair(tab: &mut Tableau, iterations: &mut usize) -> Option<()> {
    const FEAS_TOL: f64 = 1e-7;
    let step_cap = 4 * tab.m + 50;
    let mut steps = 0usize;
    loop {
        // Leaving row: largest bound violation (ties: lowest row).
        let mut worst: Option<(usize, f64, bool)> = None;
        for r in 0..tab.m {
            let b = tab.beta[r];
            let ub = tab.upper[tab.basis[r]];
            let (violation, at_upper) = if b < -FEAS_TOL {
                (-b, false)
            } else if ub.is_finite() && b > ub + FEAS_TOL {
                (b - ub, true)
            } else {
                continue;
            };
            if worst.is_none_or(|(_, w, _)| violation > w) {
                worst = Some((r, violation, at_upper));
            }
        }
        let Some((r, _, at_upper)) = worst else {
            return Some(()); // primal feasible again
        };
        if steps >= step_cap {
            return None;
        }
        if at_upper {
            // Complement the basic variable so the violation is uniformly
            // "below zero" and the textbook dual ratio test applies.
            tab.flip_basic_row(r);
        }
        let d = tab.reduced_costs(false);
        let mut in_basis = vec![false; tab.width];
        for &b in &tab.basis {
            in_basis[b] = true;
        }
        let row = r * tab.width;
        let mut entering: Option<(f64, usize)> = None;
        for (j, &dj) in d.iter().enumerate().take(tab.n_real) {
            if in_basis[j] || tab.upper[j] <= 0.0 {
                continue;
            }
            if dj < -1e-7 {
                return None; // dual feasibility lost: repair unsound
            }
            let a = tab.t[row + j];
            if a < -1e-9 {
                let ratio = dj.max(0.0) / -a;
                let better = match entering {
                    None => true,
                    Some((br, bj)) => ratio < br - 1e-12 || (ratio < br + 1e-12 && j < bj),
                };
                if better {
                    entering = Some((ratio, j));
                }
            }
        }
        let (_, j) = entering?; // no candidate: row unsatisfiable
        tab.pivot(r, j);
        *iterations += 1;
        steps += 1;
    }
}

#[cfg(any(test, feature = "oracle"))]
fn run_phase(
    tab: &mut Tableau,
    phase1: bool,
    tol: f64,
    max_iterations: usize,
    stall_limit: usize,
    iterations: &mut usize,
) -> Result<(), LpError> {
    let mut pricing = Pricing::Dantzig;
    let mut stall = 0usize;
    let mut detector = CycleDetector::new();
    let mut last_obj = tab.objective(phase1);
    // Reduced costs are maintained incrementally (O(n) per pivot) and
    // refreshed from scratch periodically to bound numerical drift.
    const REFRESH_EVERY: usize = 128;
    let mut d = tab.reduced_costs(phase1);
    let mut since_refresh = 0usize;
    loop {
        if *iterations >= max_iterations {
            return Err(LpError::IterationLimit {
                limit: max_iterations,
            });
        }
        if since_refresh >= REFRESH_EVERY {
            d = tab.reduced_costs(phase1);
            since_refresh = 0;
        }
        // Entering column: eligible = non-basic, movable, not a barred
        // artificial, with significantly negative reduced cost.
        let mut in_basis = vec![false; tab.width];
        for &b in &tab.basis {
            in_basis[b] = true;
        }
        let pick = |d: &[f64]| {
            let eligible = (0..tab.width).filter(|&j| {
                !in_basis[j] && tab.upper[j] > 0.0 && d[j] < -tol && (phase1 || j < tab.art_start)
            });
            match pricing {
                // Windowed argmin: a later column must beat the incumbent
                // by more than PRICE_TIE to displace it, so exact ties
                // resolve to the lowest index on both engines.
                Pricing::Dantzig => {
                    let mut best: Option<(usize, f64)> = None;
                    for j in eligible {
                        match best {
                            Some((_, bd)) if d[j] >= bd - PRICE_TIE * (1.0 + bd.abs()) => {}
                            _ => best = Some((j, d[j])),
                        }
                    }
                    best.map(|(j, _)| j)
                }
                Pricing::Bland => eligible.min(),
            }
        };
        let mut entering = pick(&d);
        if entering.is_none() && since_refresh > 0 {
            // Possibly drift-induced: confirm optimality on fresh costs.
            d = tab.reduced_costs(phase1);
            since_refresh = 0;
            entering = pick(&d);
        }
        let Some(j) = entering else {
            return Ok(()); // optimal for this phase
        };

        // Ratio test.
        let mut best = tab.upper[j];
        let mut outcome = if best.is_finite() {
            RatioOutcome::Flip
        } else {
            RatioOutcome::Unbounded
        };
        for i in 0..tab.m {
            let a = tab.t[i * tab.width + j];
            if a > 1e-9 {
                let numer = tab.beta[i].max(0.0);
                let ratio = if numer < DEGEN_SNAP { 0.0 } else { numer / a };
                let tie = RATIO_TIE * (1.0 + best.abs());
                if ratio < best - tie
                    || (ratio < best + tie && better_leave(tab, &outcome, i, pricing))
                {
                    best = ratio;
                    outcome = RatioOutcome::LeaveLower(i);
                }
            } else if a < -1e-9 {
                let ub = tab.upper[tab.basis[i]];
                if ub.is_finite() {
                    let numer = (ub - tab.beta[i]).max(0.0);
                    let ratio = if numer < DEGEN_SNAP {
                        0.0
                    } else {
                        numer / (-a)
                    };
                    let tie = RATIO_TIE * (1.0 + best.abs());
                    if ratio < best - tie
                        || (ratio < best + tie && better_leave(tab, &outcome, i, pricing))
                    {
                        best = ratio;
                        outcome = RatioOutcome::LeaveUpper(i);
                    }
                }
            }
        }

        match outcome {
            RatioOutcome::Unbounded => {
                return if phase1 {
                    // Cannot happen: phase-1 objective is bounded below by 0.
                    Err(LpError::Infeasible)
                } else {
                    Err(LpError::Unbounded)
                };
            }
            RatioOutcome::Flip => {
                tab.flip_column(j);
                d[j] = -d[j];
            }
            RatioOutcome::LeaveLower(r) => {
                let dj = d[j];
                tab.pivot(r, j);
                update_reduced_costs(&mut d, tab, r, dj);
            }
            RatioOutcome::LeaveUpper(r) => {
                // The basic-row complement leaves reduced costs unchanged
                // (the effective basic cost and the row negate together).
                let dj = d[j];
                tab.flip_basic_row(r);
                tab.pivot(r, j);
                update_reduced_costs(&mut d, tab, r, dj);
            }
        }
        *iterations += 1;
        since_refresh += 1;

        let obj = tab.objective(phase1);
        if obj < last_obj - 1e-12 {
            stall = 0;
            pricing = Pricing::Dantzig;
            detector.clear();
        } else {
            stall += 1;
            // A basis repeat is conclusive where the rule is deterministic
            // and no rescue remains: under Bland, or under Dantzig with
            // the Bland rescue disabled. Report it as a typed error
            // instead of burning the iteration budget.
            if (pricing == Pricing::Bland || stall_limit == usize::MAX)
                && detector.record(&tab.basis, &tab.flipped)
            {
                return Err(LpError::Cycling {
                    iterations: *iterations,
                });
            }
            if stall > stall_limit && pricing != Pricing::Bland {
                // Bland's anti-cycling guarantee needs exact reduced-cost
                // signs: refresh before switching rules.
                pricing = Pricing::Bland;
                d = tab.reduced_costs(phase1);
                since_refresh = 0;
                detector.clear();
            }
        }
        last_obj = obj;
    }
}

/// Incremental reduced-cost update after a pivot on row `r` where the
/// entering column had reduced cost `dj_before`: `d ← d − dj · (row r)`
/// (the post-pivot row, whose entering-column entry is exactly 1, so the
/// entering column's reduced cost lands on exactly 0).
#[cfg(any(test, feature = "oracle"))]
fn update_reduced_costs(d: &mut [f64], tab: &Tableau, r: usize, dj_before: f64) {
    if dj_before == 0.0 {
        return;
    }
    let row = &tab.t[r * tab.width..(r + 1) * tab.width];
    for (dc, &a) in d.iter_mut().zip(row.iter()) {
        if a != 0.0 {
            *dc -= dj_before * a;
        }
    }
}

/// Tie-break for equal ratios: under Bland, prefer the smallest leaving
/// variable index (with flips ranked last); under Dantzig, prefer the row
/// whose pivot element has larger magnitude for numerical stability — here
/// approximated by preferring any row over a flip and lower basis index.
#[cfg(any(test, feature = "oracle"))]
fn better_leave(
    tab: &Tableau,
    current: &RatioOutcome,
    candidate_row: usize,
    pricing: Pricing,
) -> bool {
    let cand = tab.basis[candidate_row];
    match current {
        RatioOutcome::Flip | RatioOutcome::Unbounded => true,
        RatioOutcome::LeaveLower(r) | RatioOutcome::LeaveUpper(r) => match pricing {
            Pricing::Bland => cand < tab.basis[*r],
            Pricing::Dantzig => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation};

    const INF: f64 = f64::INFINITY;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), z = 36
        let mut p = Problem::new();
        let x = p.add_var(-3.0, 0.0, INF).unwrap();
        let y = p.add_var(-5.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0).unwrap();
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0).unwrap();
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.objective, -36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + 2y = 4, x - y = 1 -> x = 2, y = 1
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, INF).unwrap();
        let y = p.add_var(1.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 1.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn ge_constraints_and_shifted_lower_bounds() {
        // min 2x + 3y st x + y >= 10, x >= 2, y in [1, 4]
        let mut p = Problem::new();
        let x = p.add_var(2.0, 2.0, INF).unwrap();
        let y = p.add_var(3.0, 1.0, 4.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        let sol = p.solve().unwrap();
        // Cheaper to use x: y stays at its lower bound 1, x = 9.
        assert_close(sol.value(x), 9.0);
        assert_close(sol.value(y), 1.0);
        assert_close(sol.objective, 21.0);
    }

    #[test]
    fn upper_bound_flip_without_constraints() {
        // min -x with x in [0, 3] and no rows: pure bound flip.
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, 3.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 3.0);
        assert_close(sol.objective, -3.0);
    }

    #[test]
    fn upper_bounds_interact_with_rows() {
        // max x + 2y st x + y <= 4, y <= 3 (bound), x <= 10 (bound)
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, 10.0).unwrap();
        let y = p.add_var(-2.0, 0.0, 3.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 1.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn basic_variable_leaves_at_upper_bound() {
        // min -x - y st x - y <= 2, x <= 5, y <= 4.
        // Optimum x=5 (upper), y=4 (upper). Exercises LeaveUpper paths.
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, 5.0).unwrap();
        let y = p.add_var(-1.0, 0.0, 4.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 2.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 5.0);
        assert_close(sol.value(y), 4.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 5.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_infeasible_equalities() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Eq, 3.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Eq, 4.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, INF).unwrap();
        let y = p.add_var(0.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 1.0)
            .unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 2.5, 2.5).unwrap();
        let y = p.add_var(-1.0, 0.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 10.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 2.5);
        assert_close(sol.value(y), 1.0);
    }

    #[test]
    fn redundant_rows_are_harmless() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, INF).unwrap();
        let y = p.add_var(1.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 8.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.objective, 4.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: several constraints meet at the origin.
        let mut p = Problem::new();
        let x = p.add_var(-0.75, 0.0, INF).unwrap();
        let y = p.add_var(150.0, 0.0, INF).unwrap();
        let z = p.add_var(-0.02, 0.0, INF).unwrap();
        let w = p.add_var(6.0, 0.0, INF).unwrap();
        // Beale's cycling example (min form).
        p.add_constraint(
            &[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(
            &[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(&[(z, 1.0)], Relation::Le, 1.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.objective, -0.05);
    }

    #[test]
    fn zero_constraint_problem_minimizes_at_bounds() {
        let mut p = Problem::new();
        let x = p.add_var(3.0, 1.0, 8.0).unwrap();
        let y = p.add_var(-2.0, 0.0, 5.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 1.0);
        assert_close(sol.value(y), 5.0);
        assert_close(sol.objective, -7.0);
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // x - y >= -3 with b < 0 after standardization.
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, INF).unwrap();
        let y = p.add_var(1.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Ge, -3.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 2.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn iteration_limit_reported() {
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        let opts = SimplexOptions {
            max_iterations: 0,
            ..Default::default()
        };
        assert!(p.solve_with(&opts).is_ok());
        // A limit of zero iterations cannot even complete phase 1 pivots...
        // but phase 1 with b=0 rows may need no pivots; use an always-pivoting
        // instance: equality forces at least one pivot.
        let mut q = Problem::new();
        let v = q.add_var(1.0, 0.0, INF).unwrap();
        q.add_constraint(&[(v, 1.0)], Relation::Eq, 2.0).unwrap();
        let strict = SimplexOptions {
            max_iterations: 1,
            ..Default::default()
        };
        // Either it solves within one pivot or reports the limit; both are
        // acceptable contracts, but it must not loop forever.
        match q.solve_with(&strict) {
            Ok(sol) => assert_close(sol.value(v), 2.0),
            Err(LpError::IterationLimit { limit }) => assert_eq!(limit, 1),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn warm_start_after_rhs_change_matches_cold() {
        // Solve, perturb every RHS, re-solve warm; objective must match a
        // cold solve to high precision and the warm path must engage.
        let mut p = Problem::new();
        let x = p.add_var(-3.0, 0.0, INF).unwrap();
        let y = p.add_var(-5.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0).unwrap();
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0).unwrap();
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let opts = SimplexOptions::default();
        let first = solve_with_warm_start(&p, &opts, None).unwrap();
        assert!(!first.warm_used);

        let mut q = Problem::new();
        let x = q.add_var(-3.0, 0.0, INF).unwrap();
        let y = q.add_var(-5.0, 0.0, INF).unwrap();
        q.add_constraint(&[(x, 1.0)], Relation::Le, 3.0).unwrap();
        q.add_constraint(&[(y, 2.0)], Relation::Le, 10.0).unwrap();
        q.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 16.0)
            .unwrap();
        let warm = solve_with_warm_start(&q, &opts, Some(&first.basis)).unwrap();
        let cold = solve(&q, &opts).unwrap();
        assert!(warm.warm_used, "compatible basis must warm-start");
        assert!((warm.solution.objective - cold.objective).abs() < 1e-9);
        assert!(q.is_feasible(&warm.solution.x, 1e-7));
    }

    #[test]
    fn warm_start_dimension_mismatch_falls_back_cold() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        let opts = SimplexOptions::default();
        let first = solve_with_warm_start(&p, &opts, None).unwrap();

        let mut q = Problem::new();
        let a = q.add_var(1.0, 0.0, INF).unwrap();
        let b = q.add_var(1.0, 0.0, INF).unwrap();
        q.add_constraint(&[(a, 1.0), (b, 1.0)], Relation::Ge, 2.0)
            .unwrap();
        assert!(!first.basis.fits(&q));
        let warm = solve_with_warm_start(&q, &opts, Some(&first.basis)).unwrap();
        assert!(!warm.warm_used, "mismatched basis must fall back cold");
        assert_close(warm.solution.objective, 2.0);
    }

    #[test]
    fn warm_start_detects_new_infeasibility() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, 10.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        let opts = SimplexOptions::default();
        let first = solve_with_warm_start(&p, &opts, None).unwrap();

        // Same structure, but the Ge RHS now exceeds the variable bound.
        let mut q = Problem::new();
        let x = q.add_var(1.0, 0.0, 10.0).unwrap();
        q.add_constraint(&[(x, 1.0)], Relation::Ge, 50.0).unwrap();
        let err = solve_with_warm_start(&q, &opts, Some(&first.basis)).unwrap_err();
        assert_eq!(err, LpError::Infeasible);
    }

    #[test]
    fn warm_start_handles_bound_tightening_and_flips() {
        // Optimum sits at upper bounds (flipped columns); tighten bounds
        // and re-solve warm.
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, 5.0).unwrap();
        let y = p.add_var(-1.0, 0.0, 4.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 2.0)
            .unwrap();
        let opts = SimplexOptions::default();
        let first = solve_with_warm_start(&p, &opts, None).unwrap();
        assert_close(first.solution.objective, -9.0);

        let mut q = Problem::new();
        let x = q.add_var(-1.0, 0.0, 3.0).unwrap();
        let y = q.add_var(-1.0, 0.0, 2.0).unwrap();
        q.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 2.0)
            .unwrap();
        let warm = solve_with_warm_start(&q, &opts, Some(&first.basis)).unwrap();
        let cold = solve(&q, &opts).unwrap();
        assert!((warm.solution.objective - cold.objective).abs() < 1e-9);
        assert!(q.is_feasible(&warm.solution.x, 1e-7));
    }

    #[test]
    fn warm_start_chain_tracks_a_drifting_rhs() {
        // A replan-like sequence: the same structure re-solved many times
        // with drifting RHS, each solve warm-started from the previous.
        let opts = SimplexOptions::default();
        let build = |b0: f64, b1: f64| {
            let mut p = Problem::new();
            let x = p.add_var(-2.0, 0.0, 8.0).unwrap();
            let y = p.add_var(-3.0, 0.0, 8.0).unwrap();
            let z = p.add_var(-1.0, 0.0, 8.0).unwrap();
            p.add_constraint(&[(x, 1.0), (y, 2.0), (z, 1.0)], Relation::Le, b0)
                .unwrap();
            p.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, b1)
                .unwrap();
            p.add_constraint(&[(y, 1.0), (z, 1.0)], Relation::Ge, 1.0)
                .unwrap();
            p
        };
        let mut basis: Option<Basis> = None;
        let mut warm_hits = 0usize;
        for step in 0..12 {
            let b0 = 10.0 + (step % 5) as f64;
            let b1 = 12.0 - (step % 3) as f64;
            let p = build(b0, b1);
            let got = solve_with_warm_start(&p, &opts, basis.as_ref()).unwrap();
            let cold = solve(&p, &opts).unwrap();
            assert!(
                (got.solution.objective - cold.objective).abs() < 1e-9,
                "step {step}: warm {} vs cold {}",
                got.solution.objective,
                cold.objective
            );
            assert!(p.is_feasible(&got.solution.x, 1e-7));
            warm_hits += usize::from(got.warm_used);
            basis = Some(got.basis);
        }
        assert!(warm_hits >= 10, "only {warm_hits}/11 possible warm starts");
    }

    #[test]
    fn warm_start_survives_equality_and_redundant_rows() {
        let opts = SimplexOptions::default();
        let build = |rhs: f64| {
            let mut p = Problem::new();
            let x = p.add_var(1.0, 0.0, INF).unwrap();
            let y = p.add_var(1.0, 0.0, INF).unwrap();
            p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, rhs)
                .unwrap();
            p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 2.0 * rhs)
                .unwrap();
            p
        };
        let first = solve_with_warm_start(&build(4.0), &opts, None).unwrap();
        let p = build(6.0);
        let warm = solve_with_warm_start(&p, &opts, Some(&first.basis)).unwrap();
        assert!((warm.solution.objective - 6.0).abs() < 1e-9);
        assert!(p.is_feasible(&warm.solution.x, 1e-7));
    }

    #[test]
    fn solution_feasible_on_moderate_random_instance() {
        // Deterministic pseudo-random LP; checks feasibility + optimality
        // against the bound given by weak duality through a feasible point.
        let mut p = Problem::new();
        let mut vars = Vec::new();
        let mut state = 0x12345678u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..12 {
            let c = rnd() * 4.0 - 2.0;
            let u = 1.0 + rnd() * 9.0;
            vars.push(p.add_var(c, 0.0, u).unwrap());
        }
        for _ in 0..8 {
            let terms: Vec<_> = vars
                .iter()
                .map(|&v| (v, rnd() * 2.0))
                .filter(|&(_, c)| c > 0.4)
                .collect();
            let rhs = 5.0 + rnd() * 20.0;
            p.add_constraint(&terms, Relation::Le, rhs).unwrap();
        }
        let sol = p.solve().unwrap();
        assert!(p.is_feasible(&sol.x, 1e-6));
        // Origin is feasible (all-≤ with positive rhs), so optimum ≤ 0.
        assert!(sol.objective <= 1e-9);
    }

    // ---- cross-engine and anti-cycling tests ----

    fn opts_for(engine: SimplexEngine) -> SimplexOptions {
        SimplexOptions {
            engine: Some(engine),
            ..SimplexOptions::default()
        }
    }

    /// Beale's classic cycling example (min form): under Dantzig pricing
    /// with lowest-index ratio ties and no anti-cycling rescue, the
    /// simplex revisits bases forever at the degenerate origin vertex.
    fn beale_problem() -> Problem {
        let mut p = Problem::new();
        let x = p.add_var(-0.75, 0.0, INF).unwrap();
        let y = p.add_var(150.0, 0.0, INF).unwrap();
        let z = p.add_var(-0.02, 0.0, INF).unwrap();
        let w = p.add_var(6.0, 0.0, INF).unwrap();
        p.add_constraint(
            &[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(
            &[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(&[(z, 1.0)], Relation::Le, 1.0).unwrap();
        p
    }

    fn random_instance(seed: u64, n: usize, m: usize) -> Problem {
        let mut p = Problem::new();
        let mut vars = Vec::new();
        let mut state = seed;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..n {
            let c = rnd() * 4.0 - 2.0;
            let u = 1.0 + rnd() * 9.0;
            vars.push(p.add_var(c, 0.0, u).unwrap());
        }
        for _ in 0..m {
            let terms: Vec<_> = vars
                .iter()
                .map(|&v| (v, rnd() * 2.0))
                .filter(|&(_, c)| c > 0.4)
                .collect();
            let rhs = 5.0 + rnd() * 20.0;
            p.add_constraint(&terms, Relation::Le, rhs).unwrap();
        }
        p
    }

    /// A minimal instance (found by randomized search over small integer
    /// LPs degenerate at the origin) on which this implementation's exact
    /// pivot rules — Dantzig most-negative entering, lowest-index ratio
    /// ties — revisit a basis forever when the Bland rescue is disabled.
    fn cycling_problem() -> Problem {
        let mut p = Problem::new();
        let v: Vec<_> = [2.0, -2.0, 0.0, 2.0]
            .iter()
            .map(|&c| p.add_var(c, 0.0, INF).unwrap())
            .collect();
        for row in [
            [-1.0, -1.0, -2.0, 2.0],
            [-3.0, -2.0, 0.0, 1.0],
            [3.0, -3.0, -1.0, 1.0],
        ] {
            let terms: Vec<_> = v
                .iter()
                .zip(&row)
                .filter(|&(_, &c)| c != 0.0)
                .map(|(&var, &c)| (var, c))
                .collect();
            p.add_constraint(&terms, Relation::Le, 0.0).unwrap();
        }
        p
    }

    #[test]
    fn cycling_reported_when_rescue_disabled() {
        // Regression for the silent accuracy gap: with the Bland rescue
        // disabled, a genuine cycle must surface as a typed error on both
        // engines instead of spinning until the iteration cap.
        for engine in [SimplexEngine::Sparse, SimplexEngine::Dense] {
            let opts = SimplexOptions {
                stall_limit: usize::MAX,
                ..opts_for(engine)
            };
            match solve(&cycling_problem(), &opts) {
                Err(LpError::Cycling { iterations }) => {
                    assert!(iterations > 0, "{engine:?}: cycle at pivot 0?")
                }
                other => panic!("{engine:?}: expected Cycling, got {other:?}"),
            }
        }
    }

    #[test]
    fn cycling_instance_resolves_with_default_options() {
        // The same instance escapes the cycle under the default Bland
        // rescue: the LP is actually unbounded along the x2 ray, and both
        // engines must discover that instead of spinning.
        for engine in [SimplexEngine::Sparse, SimplexEngine::Dense] {
            assert_eq!(
                solve(&cycling_problem(), &opts_for(engine)).unwrap_err(),
                LpError::Unbounded,
                "{engine:?}"
            );
        }
        // And the bounded classic (Beale's example) still reaches its
        // optimum under default options on both engines.
        for engine in [SimplexEngine::Sparse, SimplexEngine::Dense] {
            let sol = solve(&beale_problem(), &opts_for(engine)).unwrap();
            assert_close(sol.objective, -0.05);
        }
    }

    /// The engines walk the same pivot trajectory, so they terminate at
    /// the same vertex; numeric values differ only by accumulation order
    /// (incremental tableau vs fresh LU solves), i.e. last-ulp noise. The
    /// downstream bit-identity contract is on *rounded* plans.
    fn assert_engine_equivalent(s: &Solution, d: &Solution, tag: &str) {
        assert_eq!(s.iterations, d.iterations, "{tag}: trajectories split");
        assert!(
            (s.objective - d.objective).abs() <= 1e-9 * (1.0 + d.objective.abs()),
            "{tag}: objectives {} vs {}",
            s.objective,
            d.objective
        );
        assert_eq!(s.x.len(), d.x.len(), "{tag}");
        for (j, (&a, &b)) in s.x.iter().zip(&d.x).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                "{tag}: x[{j}] {a} vs {b}"
            );
            assert_eq!(
                a.round() as i64,
                b.round() as i64,
                "{tag}: x[{j}] rounds apart"
            );
        }
    }

    #[test]
    fn engines_agree_on_random_instances() {
        for seed in [0x12345678u64, 0xdeadbeef, 0x51ce9a7e] {
            let p = random_instance(seed, 12, 8);
            let s = solve(&p, &opts_for(SimplexEngine::Sparse)).unwrap();
            let d = solve(&p, &opts_for(SimplexEngine::Dense)).unwrap();
            assert_engine_equivalent(&s, &d, &format!("seed {seed:#x}"));
        }
    }

    #[test]
    fn engines_agree_on_warm_chain() {
        // Replan-like drifting-RHS chain, solved in lockstep on both
        // engines: every step's solution must match bitwise and the warm
        // bases must stay interchangeable.
        let build = |b0: f64, b1: f64| {
            let mut p = Problem::new();
            let x = p.add_var(-2.0, 0.0, 8.0).unwrap();
            let y = p.add_var(-3.0, 0.0, 8.0).unwrap();
            let z = p.add_var(-1.0, 0.0, 8.0).unwrap();
            p.add_constraint(&[(x, 1.0), (y, 2.0), (z, 1.0)], Relation::Le, b0)
                .unwrap();
            p.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, b1)
                .unwrap();
            p.add_constraint(&[(y, 1.0), (z, 1.0)], Relation::Ge, 1.0)
                .unwrap();
            p
        };
        let mut sparse_basis: Option<Basis> = None;
        let mut dense_basis: Option<Basis> = None;
        for step in 0..12 {
            let b0 = 10.0 + (step % 5) as f64;
            let b1 = 12.0 - (step % 3) as f64;
            let p = build(b0, b1);
            let s =
                solve_with_warm_start(&p, &opts_for(SimplexEngine::Sparse), sparse_basis.as_ref())
                    .unwrap();
            let d =
                solve_with_warm_start(&p, &opts_for(SimplexEngine::Dense), dense_basis.as_ref())
                    .unwrap();
            assert_engine_equivalent(&s.solution, &d.solution, &format!("step {step}"));
            assert_eq!(s.warm_used, d.warm_used, "step {step}");
            sparse_basis = Some(s.basis);
            dense_basis = Some(d.basis);
        }
    }

    #[test]
    fn basis_transfers_between_engines() {
        // A basis exported by one engine warm-starts the other: the
        // representation is engine-neutral.
        let p = random_instance(0xabcdef12, 10, 6);
        let from_dense = solve_with_warm_start(&p, &opts_for(SimplexEngine::Dense), None).unwrap();
        let from_sparse =
            solve_with_warm_start(&p, &opts_for(SimplexEngine::Sparse), None).unwrap();
        let s_warm = solve_with_warm_start(
            &p,
            &opts_for(SimplexEngine::Sparse),
            Some(&from_dense.basis),
        )
        .unwrap();
        let d_warm = solve_with_warm_start(
            &p,
            &opts_for(SimplexEngine::Dense),
            Some(&from_sparse.basis),
        )
        .unwrap();
        assert!(s_warm.warm_used, "sparse engine rejected a dense basis");
        assert!(d_warm.warm_used, "dense engine rejected a sparse basis");
        // A warm start from the other engine's optimal basis lands at the
        // same optimum (iteration counts differ from the cold solves by
        // construction, so compare values only).
        for (warm, cold, tag) in [
            (&s_warm.solution, &from_dense.solution, "dense->sparse"),
            (&d_warm.solution, &from_sparse.solution, "sparse->dense"),
        ] {
            assert!(
                (warm.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()),
                "{tag}: {} vs {}",
                warm.objective,
                cold.objective
            );
            for (j, (&a, &b)) in warm.x.iter().zip(&cold.x).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "{tag}: x[{j}] {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn dense_engine_handles_key_cases() {
        let opts = opts_for(SimplexEngine::Dense);
        let mut p = Problem::new();
        let x = p.add_var(-3.0, 0.0, INF).unwrap();
        let y = p.add_var(-5.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0).unwrap();
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0).unwrap();
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let sol = solve(&p, &opts).unwrap();
        assert_close(sol.objective, -36.0);

        let mut inf = Problem::new();
        let v = inf.add_var(1.0, 0.0, 1.0).unwrap();
        inf.add_constraint(&[(v, 1.0)], Relation::Ge, 5.0).unwrap();
        assert_eq!(solve(&inf, &opts).unwrap_err(), LpError::Infeasible);

        let mut unb = Problem::new();
        let a = unb.add_var(-1.0, 0.0, INF).unwrap();
        let b = unb.add_var(0.0, 0.0, INF).unwrap();
        unb.add_constraint(&[(a, 1.0), (b, -1.0)], Relation::Le, 1.0)
            .unwrap();
        assert_eq!(solve(&unb, &opts).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn work_counter_is_positive_and_deterministic() {
        let p = random_instance(0x7777, 12, 8);
        let s1 = solve(&p, &opts_for(SimplexEngine::Sparse)).unwrap();
        let s2 = solve(&p, &opts_for(SimplexEngine::Sparse)).unwrap();
        assert!(s1.work > 0);
        assert_eq!(s1.work, s2.work);
        let d = solve(&p, &opts_for(SimplexEngine::Dense)).unwrap();
        assert!(d.work > 0);
    }
}
