//! Bounded-variable two-phase primal simplex over a dense tableau.
//!
//! The implementation keeps every non-basic variable at one of its bounds.
//! Rather than tracking "at upper bound" as a separate state, a variable at
//! its upper bound is *complemented* (`x ↦ u − x`, a column negation), so all
//! non-basic variables sit at zero in the working space — this makes the
//! ratio test and pivoting identical to the textbook simplex while still
//! supporting finite upper bounds without extra constraint rows. Bound flips
//! (the entering variable reaching its own opposite bound) cost one column
//! negation and no pivot.
//!
//! Reduced costs are maintained incrementally (`O(n)` per pivot) and
//! refreshed from scratch periodically — and whenever optimality is about
//! to be declared — to bound numerical drift. Anti-cycling: Dantzig
//! pricing by default, switching to Bland's rule (with a fresh cost
//! vector) after `stall_limit` iterations without objective improvement.

use crate::error::LpError;
use crate::problem::{Problem, Relation};
use crate::solution::{Solution, Status};

/// Tuning knobs for [`solve`].
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on total pivots across both phases. `0` means "choose
    /// automatically from the problem size".
    pub max_iterations: usize,
    /// Feasibility / reduced-cost tolerance.
    pub tolerance: f64,
    /// Iterations without objective improvement before switching to
    /// Bland's rule.
    pub stall_limit: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 0,
            tolerance: 1e-9,
            stall_limit: 200,
        }
    }
}

/// Which pricing rule is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pricing {
    Dantzig,
    Bland,
}

/// Outcome of one ratio test.
#[derive(Debug, Clone, Copy)]
enum RatioOutcome {
    /// Entering variable reaches its own upper bound: flip, no pivot.
    Flip,
    /// Basic variable in this row reaches zero: standard pivot.
    LeaveLower(usize),
    /// Basic variable in this row reaches its upper bound: flip it, pivot.
    LeaveUpper(usize),
    /// No limit: the LP is unbounded in this direction.
    Unbounded,
}

struct Tableau {
    m: usize,
    /// Structural + slack columns (artificials excluded).
    n_real: usize,
    /// Total columns including artificials.
    width: usize,
    /// Row-major `m × width` tableau `B⁻¹A`.
    t: Vec<f64>,
    /// Current values of basic variables (`B⁻¹b` adjusted for flips).
    beta: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Upper bound of each column in the working (shifted) space.
    upper: Vec<f64>,
    /// Whether each column is currently complemented.
    flipped: Vec<bool>,
    /// Phase-2 cost of each column, in *original* (unflipped) orientation.
    cost2: Vec<f64>,
    /// Accumulated phase-2 objective constant from flips.
    flip_const2: f64,
    /// First artificial column index.
    art_start: usize,
}

impl Tableau {
    fn effective_cost2(&self, j: usize) -> f64 {
        if self.flipped[j] {
            -self.cost2[j]
        } else {
            self.cost2[j]
        }
    }

    fn effective_cost(&self, j: usize, phase1: bool) -> f64 {
        if phase1 {
            // Artificials never flip (infinite upper bound).
            if j >= self.art_start {
                1.0
            } else {
                0.0
            }
        } else {
            self.effective_cost2(j)
        }
    }

    /// Current phase objective value (including flip constants in phase 2).
    fn objective(&self, phase1: bool) -> f64 {
        let mut z = if phase1 { 0.0 } else { self.flip_const2 };
        for (i, &b) in self.basis.iter().enumerate() {
            z += self.effective_cost(b, phase1) * self.beta[i];
        }
        z
    }

    /// Reduced costs `d_j = c_j − c_B·(B⁻¹a_j)` for all columns.
    fn reduced_costs(&self, phase1: bool) -> Vec<f64> {
        let mut d: Vec<f64> = (0..self.width)
            .map(|j| self.effective_cost(j, phase1))
            .collect();
        for i in 0..self.m {
            let cb = self.effective_cost(self.basis[i], phase1);
            if cb != 0.0 {
                let row = &self.t[i * self.width..(i + 1) * self.width];
                for (dj, &a) in d.iter_mut().zip(row.iter()) {
                    *dj -= cb * a;
                }
            }
        }
        d
    }

    /// Complements non-basic column `j` (bound flip).
    fn flip_column(&mut self, j: usize) {
        let u = self.upper[j];
        debug_assert!(u.is_finite());
        self.flip_const2 += self.effective_cost2(j) * u;
        for i in 0..self.m {
            let a = self.t[i * self.width + j];
            if a != 0.0 {
                self.beta[i] -= a * u;
                self.t[i * self.width + j] = -a;
            }
        }
        self.flipped[j] = !self.flipped[j];
    }

    /// Complements *basic* variable of row `r` in place (it is about to
    /// leave at its upper bound): negates the row and rebases `beta`.
    fn flip_basic_row(&mut self, r: usize) {
        let k = self.basis[r];
        let u = self.upper[k];
        debug_assert!(u.is_finite());
        self.flip_const2 += self.effective_cost2(k) * u;
        let row = &mut self.t[r * self.width..(r + 1) * self.width];
        for (j, a) in row.iter_mut().enumerate() {
            if j != k {
                *a = -*a;
            }
        }
        self.beta[r] = u - self.beta[r];
        self.flipped[k] = !self.flipped[k];
    }

    /// Standard pivot: column `j` enters the basis in row `r`.
    fn pivot(&mut self, r: usize, j: usize) {
        let piv = self.t[r * self.width + j];
        debug_assert!(piv.abs() > 1e-12, "pivot on near-zero element");
        let inv = 1.0 / piv;
        for a in &mut self.t[r * self.width..(r + 1) * self.width] {
            *a *= inv;
        }
        self.beta[r] *= inv;
        // Exact unit column for the entering variable.
        self.t[r * self.width + j] = 1.0;
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let f = self.t[i * self.width + j];
            if f == 0.0 {
                continue;
            }
            let (head, tail) = self.t.split_at_mut(r.max(i) * self.width);
            let (row_i, row_r) = if i < r {
                (
                    &mut head[i * self.width..(i + 1) * self.width],
                    &tail[..self.width],
                )
            } else {
                (
                    &mut tail[..self.width],
                    &head[r * self.width..(r + 1) * self.width],
                )
            };
            for (a, &p) in row_i.iter_mut().zip(row_r.iter()) {
                *a -= f * p;
            }
            row_i[j] = 0.0;
            self.beta[i] -= f * self.beta[r];
            if self.beta[i] < 0.0 && self.beta[i] > -1e-9 {
                self.beta[i] = 0.0;
            }
        }
        self.basis[r] = j;
    }
}

/// An exported simplex basis: enough state to reconstruct the optimal
/// vertex of a solved [`Problem`] inside a *structurally identical*
/// problem (same variable count, same constraint count and senses) whose
/// coefficients, bounds, or right-hand sides have since been perturbed.
///
/// Obtained from [`solve_with_warm_start`] and fed back into a later call
/// to warm-start it. The representation is deliberately opaque: rows store
/// the basic column of each constraint row (in structural + slack
/// indexing; `None` marks a redundant row whose artificial stayed basic),
/// plus the at-upper-bound flip state of every non-basic column.
#[derive(Debug, Clone, PartialEq)]
pub struct Basis {
    /// Basic column of each row; `None` = artificial remained basic.
    rows: Vec<Option<usize>>,
    /// Bound-flip state per structural/slack column (true = at upper).
    /// Only meaningful for columns not in `rows`.
    flipped: Vec<bool>,
    /// Structural variable count of the originating problem.
    n_struct: usize,
    /// Slack column count of the originating problem.
    n_slack: usize,
}

impl Basis {
    /// Whether this basis is dimensionally compatible with `problem`
    /// (necessary, not sufficient, for a successful warm start).
    pub fn fits(&self, problem: &Problem) -> bool {
        self.n_struct == problem.num_vars()
            && self.rows.len() == problem.num_constraints()
            && self.n_slack == count_slacks(problem)
    }
}

/// Result of [`solve_with_warm_start`]: the solution, the optimal basis
/// (reusable as the next warm start), and whether the warm path was
/// actually taken or the solver fell back to a cold two-phase solve.
#[derive(Debug, Clone)]
pub struct WarmSolveResult {
    /// The optimal solution, identical in contract to [`solve`]'s.
    pub solution: Solution,
    /// The optimal basis, for warm-starting a subsequent solve.
    pub basis: Basis,
    /// True iff the provided basis was accepted and repaired in place;
    /// false on a cold solve (no basis given, or basis incompatible).
    pub warm_used: bool,
}

fn count_slacks(problem: &Problem) -> usize {
    problem
        .constraints
        .iter()
        .filter(|c| c.relation != Relation::Eq)
        .count()
}

/// Standard-form conversion shared by the cold and warm paths: shifts every
/// structural variable by its lower bound so domains are `[0, u]`, adds one
/// slack/surplus column per inequality and one artificial per row,
/// normalizes rows to `beta >= 0`, and installs the all-artificial basis.
fn build_tableau(problem: &Problem) -> Result<Tableau, LpError> {
    let n_struct = problem.num_vars();
    let m = problem.num_constraints();
    let mut upper: Vec<f64> = Vec::with_capacity(n_struct + m);
    for j in 0..n_struct {
        let u = problem.upper[j] - problem.lower[j];
        if u < 0.0 {
            return Err(LpError::InvalidBounds {
                lower: problem.lower[j],
                upper: problem.upper[j],
            });
        }
        upper.push(u);
    }
    let n_slack = count_slacks(problem);
    let n_real = n_struct + n_slack;
    let width = n_real + m; // + one artificial per row
    let mut t = vec![0.0f64; m * width];
    let mut beta = vec![0.0f64; m];
    let mut slack_idx = n_struct;
    for (i, con) in problem.constraints.iter().enumerate() {
        let mut rhs = con.rhs;
        for &(v, a) in &con.terms {
            rhs -= a * problem.lower[v];
            t[i * width + v] = a;
        }
        match con.relation {
            Relation::Le => {
                t[i * width + slack_idx] = 1.0;
                slack_idx += 1;
            }
            Relation::Ge => {
                t[i * width + slack_idx] = -1.0;
                slack_idx += 1;
            }
            Relation::Eq => {}
        }
        beta[i] = rhs;
    }
    upper.resize(n_real, f64::INFINITY); // slacks unbounded above
                                         // Normalize rows to beta >= 0, then install artificial basis.
    for i in 0..m {
        if beta[i] < 0.0 {
            beta[i] = -beta[i];
            for a in &mut t[i * width..i * width + n_real] {
                *a = -*a;
            }
        }
        t[i * width + n_real + i] = 1.0;
    }
    upper.resize(width, f64::INFINITY); // artificials

    let mut cost2 = vec![0.0f64; width];
    cost2[..n_struct].copy_from_slice(&problem.objective);
    let flip_const2: f64 = problem
        .objective
        .iter()
        .zip(problem.lower.iter())
        .map(|(c, l)| c * l)
        .sum();

    Ok(Tableau {
        m,
        n_real,
        width,
        t,
        beta,
        basis: (n_real..width).collect(),
        upper,
        flipped: vec![false; width],
        cost2,
        flip_const2,
        art_start: n_real,
    })
}

fn auto_iteration_cap(options: &SimplexOptions, m: usize, n_real: usize) -> usize {
    if options.max_iterations > 0 {
        options.max_iterations
    } else {
        20_000 + 50 * (m + n_real)
    }
}

/// Reads the structural solution out of an optimal tableau.
fn extract_solution(tab: &Tableau, problem: &Problem, iterations: usize) -> Solution {
    let n_struct = problem.num_vars();
    let mut shifted = vec![0.0f64; tab.n_real];
    for (r, &b) in tab.basis.iter().enumerate() {
        if b < tab.n_real {
            shifted[b] = tab.beta[r].max(0.0);
        }
    }
    let mut x = vec![0.0f64; n_struct];
    for j in 0..n_struct {
        let mut v = shifted[j];
        if tab.flipped[j] {
            v = tab.upper[j] - v;
        }
        x[j] = v + problem.lower[j];
        // Clean float fuzz against the original bounds.
        x[j] = x[j].clamp(problem.lower[j], problem.upper[j]);
    }
    let objective = problem.objective_at(&x);
    Solution {
        status: Status::Optimal,
        objective,
        x,
        iterations,
    }
}

/// Snapshots the basis of an optimal tableau. Flip state is recorded only
/// for non-basic columns: a basic column's flip history does not affect the
/// vertex (basic values are read off `beta` either way), and discarding it
/// keeps the basis a pure vertex description.
fn export_basis(tab: &Tableau, n_struct: usize) -> Basis {
    let rows: Vec<Option<usize>> = tab
        .basis
        .iter()
        .map(|&b| (b < tab.art_start).then_some(b))
        .collect();
    let mut in_basis = vec![false; tab.n_real];
    for &b in &tab.basis {
        if b < tab.art_start {
            in_basis[b] = true;
        }
    }
    let flipped = (0..tab.n_real)
        .map(|j| tab.flipped[j] && !in_basis[j])
        .collect();
    Basis {
        rows,
        flipped,
        n_struct,
        n_slack: tab.n_real - n_struct,
    }
}

/// Solves `problem` by two-phase bounded-variable primal simplex.
///
/// # Errors
///
/// * [`LpError::Infeasible`] if no point satisfies the constraints.
/// * [`LpError::Unbounded`] if the objective is unbounded below.
/// * [`LpError::IterationLimit`] if the pivot budget is exhausted.
/// * [`LpError::InvalidBounds`] if some variable has an empty domain.
pub fn solve(problem: &Problem, options: &SimplexOptions) -> Result<Solution, LpError> {
    solve_cold(problem, options).map(|(solution, _)| solution)
}

/// Cold two-phase solve that also exports the optimal basis.
fn solve_cold(problem: &Problem, options: &SimplexOptions) -> Result<(Solution, Basis), LpError> {
    let tol = options.tolerance;
    let mut tab = build_tableau(problem)?;
    let max_iterations = auto_iteration_cap(options, tab.m, tab.n_real);
    let mut iterations = 0usize;

    // --- phase 1 --------------------------------------------------------
    run_phase(
        &mut tab,
        true,
        tol,
        max_iterations,
        options.stall_limit,
        &mut iterations,
    )?;
    if tab.objective(true) > 1e-6 {
        return Err(LpError::Infeasible);
    }
    // Drive artificials out of the basis where possible; redundant rows
    // keep a zero-valued artificial that is inert from here on.
    for r in 0..tab.m {
        if tab.basis[r] >= tab.art_start {
            let row_start = r * tab.width;
            if let Some(j) =
                (0..tab.n_real).find(|&j| tab.upper[j] > 0.0 && tab.t[row_start + j].abs() > 1e-7)
            {
                tab.pivot(r, j);
            }
        }
    }
    // Bar artificials from ever entering again.
    for j in tab.art_start..tab.width {
        tab.upper[j] = 0.0;
    }

    // --- phase 2 --------------------------------------------------------
    run_phase(
        &mut tab,
        false,
        tol,
        max_iterations,
        options.stall_limit,
        &mut iterations,
    )?;

    let solution = extract_solution(&tab, problem, iterations);
    let basis = export_basis(&tab, problem.num_vars());
    Ok((solution, basis))
}

/// Solves `problem`, warm-starting from `warm` when possible.
///
/// The warm path rebuilds the tableau for the *current* problem data,
/// refactorizes the supplied basis onto it, restores non-basic bound
/// flips, and then repairs primal infeasibility introduced by RHS/bound
/// perturbations with a bounded dual simplex before finishing with
/// ordinary phase-2 pivots. Any incompatibility — dimension mismatch,
/// (near-)singular prescribed basis, lost dual feasibility, stalled
/// repair, or a final point that fails feasibility checks — silently falls
/// back to the cold two-phase solve, so the result contract is identical
/// to [`solve`]: same errors, and an optimal solution with the same
/// objective value (the optimal *vertex* may differ between the warm and
/// cold paths when the optimum is degenerate).
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with_warm_start(
    problem: &Problem,
    options: &SimplexOptions,
    warm: Option<&Basis>,
) -> Result<WarmSolveResult, LpError> {
    if let Some(start) = warm {
        if let Some((solution, basis)) = try_warm(problem, options, start) {
            return Ok(WarmSolveResult {
                solution,
                basis,
                warm_used: true,
            });
        }
    }
    let (solution, basis) = solve_cold(problem, options)?;
    Ok(WarmSolveResult {
        solution,
        basis,
        warm_used: false,
    })
}

/// Attempts the warm path; `None` means "fall back to a cold solve"
/// (covers both basis incompatibility and any in-flight solver error,
/// which the cold path will re-derive authoritatively).
fn try_warm(
    problem: &Problem,
    options: &SimplexOptions,
    start: &Basis,
) -> Option<(Solution, Basis)> {
    if !start.fits(problem) {
        return None;
    }
    let mut tab = build_tableau(problem).ok()?;
    if start.flipped.len() != tab.n_real {
        return None;
    }
    // Range/duplicate check on the prescribed basic columns.
    let mut prescribed = vec![false; tab.n_real];
    for &col in &start.rows {
        if let Some(j) = col {
            if j >= tab.n_real || prescribed[j] {
                return None;
            }
            prescribed[j] = true;
        }
    }
    // The warm path never runs phase 1: bar artificials immediately.
    // Rows whose artificial stays basic are handled by the dual repair
    // (a zero upper bound turns any nonzero beta into a bound violation).
    for j in tab.art_start..tab.width {
        tab.upper[j] = 0.0;
    }
    // Restore bound flips of non-basic columns. A flip needs a finite
    // upper bound; if a bound became infinite since export, bail out.
    for (j, &basic) in prescribed.iter().enumerate() {
        if start.flipped[j] && !basic {
            if !tab.upper[j].is_finite() {
                return None;
            }
            tab.flip_column(j);
        }
    }
    // Refactorize: pivot every exported row onto one prescribed basic
    // column. The exported row↔column pairing is only a hint — any perfect
    // matching of rows onto the prescribed column *set* reproduces the
    // same basis — so each row greedily takes the remaining column with
    // the largest pivot magnitude (partial pivoting). Insisting on the
    // recorded pairing would stall whenever the fixed pivot sequence hits
    // an elimination-order zero, which happens routinely on large bases; a
    // sweep with no progress at all means the prescribed basis really is
    // (near-)singular for the current coefficients.
    let mut rows: Vec<usize> = Vec::new();
    let mut cols: Vec<usize> = Vec::new();
    for (r, col) in start.rows.iter().enumerate() {
        if let Some(j) = *col {
            rows.push(r);
            cols.push(j);
        }
    }
    while !rows.is_empty() {
        let before = rows.len();
        let mut deferred = Vec::new();
        for &r in &rows {
            let row_off = r * tab.width;
            let mut best: Option<(usize, f64)> = None;
            for (ci, &j) in cols.iter().enumerate() {
                let a = tab.t[row_off + j].abs();
                if a > 1e-7 && best.is_none_or(|(_, m)| a > m) {
                    best = Some((ci, a));
                }
            }
            match best {
                Some((ci, _)) => {
                    let j = cols.swap_remove(ci);
                    tab.pivot(r, j);
                }
                None => deferred.push(r),
            }
        }
        if deferred.len() == before {
            return None;
        }
        rows = deferred;
    }

    let tol = options.tolerance;
    let max_iterations = auto_iteration_cap(options, tab.m, tab.n_real);
    let mut iterations = 0usize;
    if !primal_feasible(&tab, 1e-7) {
        dual_repair(&mut tab, &mut iterations)?;
    }
    run_phase(
        &mut tab,
        false,
        tol,
        max_iterations,
        options.stall_limit,
        &mut iterations,
    )
    .ok()?;
    let solution = extract_solution(&tab, problem, iterations);
    // Safety net: numerical trouble on the warm path must never leak an
    // infeasible "solution"; the cold path re-solves from scratch instead.
    if !problem.is_feasible(&solution.x, 1e-6) {
        return None;
    }
    let basis = export_basis(&tab, problem.num_vars());
    Some((solution, basis))
}

/// All basic values within their (working-space) bounds?
fn primal_feasible(tab: &Tableau, tol: f64) -> bool {
    (0..tab.m).all(|r| {
        let b = tab.beta[r];
        let ub = tab.upper[tab.basis[r]];
        b >= -tol && (!ub.is_finite() || b <= ub + tol)
    })
}

/// Bounded-variable dual simplex: restores primal feasibility after
/// RHS/bound perturbations while preserving dual feasibility (non-negative
/// phase-2 reduced costs). Returns `None` — caller falls back to a cold
/// solve — on lost dual feasibility, an unsatisfiable row (primal
/// infeasibility, which the cold path confirms authoritatively), or a
/// stalled repair.
fn dual_repair(tab: &mut Tableau, iterations: &mut usize) -> Option<()> {
    const FEAS_TOL: f64 = 1e-7;
    let step_cap = 4 * tab.m + 50;
    let mut steps = 0usize;
    loop {
        // Leaving row: largest bound violation (ties: lowest row).
        let mut worst: Option<(usize, f64, bool)> = None;
        for r in 0..tab.m {
            let b = tab.beta[r];
            let ub = tab.upper[tab.basis[r]];
            let (violation, at_upper) = if b < -FEAS_TOL {
                (-b, false)
            } else if ub.is_finite() && b > ub + FEAS_TOL {
                (b - ub, true)
            } else {
                continue;
            };
            if worst.is_none_or(|(_, w, _)| violation > w) {
                worst = Some((r, violation, at_upper));
            }
        }
        let Some((r, _, at_upper)) = worst else {
            return Some(()); // primal feasible again
        };
        if steps >= step_cap {
            return None;
        }
        if at_upper {
            // Complement the basic variable so the violation is uniformly
            // "below zero" and the textbook dual ratio test applies.
            tab.flip_basic_row(r);
        }
        let d = tab.reduced_costs(false);
        let mut in_basis = vec![false; tab.width];
        for &b in &tab.basis {
            in_basis[b] = true;
        }
        let row = r * tab.width;
        let mut entering: Option<(f64, usize)> = None;
        for (j, &dj) in d.iter().enumerate().take(tab.n_real) {
            if in_basis[j] || tab.upper[j] <= 0.0 {
                continue;
            }
            if dj < -1e-7 {
                return None; // dual feasibility lost: repair unsound
            }
            let a = tab.t[row + j];
            if a < -1e-9 {
                let ratio = dj.max(0.0) / -a;
                let better = match entering {
                    None => true,
                    Some((br, bj)) => ratio < br - 1e-12 || (ratio < br + 1e-12 && j < bj),
                };
                if better {
                    entering = Some((ratio, j));
                }
            }
        }
        let (_, j) = entering?; // no candidate: row unsatisfiable
        tab.pivot(r, j);
        *iterations += 1;
        steps += 1;
    }
}

fn run_phase(
    tab: &mut Tableau,
    phase1: bool,
    tol: f64,
    max_iterations: usize,
    stall_limit: usize,
    iterations: &mut usize,
) -> Result<(), LpError> {
    let mut pricing = Pricing::Dantzig;
    let mut stall = 0usize;
    let mut last_obj = tab.objective(phase1);
    // Reduced costs are maintained incrementally (O(n) per pivot) and
    // refreshed from scratch periodically to bound numerical drift.
    const REFRESH_EVERY: usize = 128;
    let mut d = tab.reduced_costs(phase1);
    let mut since_refresh = 0usize;
    loop {
        if *iterations >= max_iterations {
            return Err(LpError::IterationLimit {
                limit: max_iterations,
            });
        }
        if since_refresh >= REFRESH_EVERY {
            d = tab.reduced_costs(phase1);
            since_refresh = 0;
        }
        // Entering column: eligible = non-basic, movable, not a barred
        // artificial, with significantly negative reduced cost.
        let mut in_basis = vec![false; tab.width];
        for &b in &tab.basis {
            in_basis[b] = true;
        }
        let pick = |d: &[f64]| {
            let eligible = (0..tab.width).filter(|&j| {
                !in_basis[j] && tab.upper[j] > 0.0 && d[j] < -tol && (phase1 || j < tab.art_start)
            });
            match pricing {
                Pricing::Dantzig => eligible.min_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap()),
                Pricing::Bland => eligible.min(),
            }
        };
        let mut entering = pick(&d);
        if entering.is_none() && since_refresh > 0 {
            // Possibly drift-induced: confirm optimality on fresh costs.
            d = tab.reduced_costs(phase1);
            since_refresh = 0;
            entering = pick(&d);
        }
        let Some(j) = entering else {
            return Ok(()); // optimal for this phase
        };

        // Ratio test.
        let mut best = tab.upper[j];
        let mut outcome = if best.is_finite() {
            RatioOutcome::Flip
        } else {
            RatioOutcome::Unbounded
        };
        for i in 0..tab.m {
            let a = tab.t[i * tab.width + j];
            if a > 1e-9 {
                let ratio = (tab.beta[i].max(0.0)) / a;
                if ratio < best - 1e-12
                    || (ratio < best + 1e-12 && better_leave(tab, &outcome, i, pricing))
                {
                    best = ratio;
                    outcome = RatioOutcome::LeaveLower(i);
                }
            } else if a < -1e-9 {
                let ub = tab.upper[tab.basis[i]];
                if ub.is_finite() {
                    let ratio = (ub - tab.beta[i]).max(0.0) / (-a);
                    if ratio < best - 1e-12
                        || (ratio < best + 1e-12 && better_leave(tab, &outcome, i, pricing))
                    {
                        best = ratio;
                        outcome = RatioOutcome::LeaveUpper(i);
                    }
                }
            }
        }

        match outcome {
            RatioOutcome::Unbounded => {
                return if phase1 {
                    // Cannot happen: phase-1 objective is bounded below by 0.
                    Err(LpError::Infeasible)
                } else {
                    Err(LpError::Unbounded)
                };
            }
            RatioOutcome::Flip => {
                tab.flip_column(j);
                d[j] = -d[j];
            }
            RatioOutcome::LeaveLower(r) => {
                let dj = d[j];
                tab.pivot(r, j);
                update_reduced_costs(&mut d, tab, r, dj);
            }
            RatioOutcome::LeaveUpper(r) => {
                // The basic-row complement leaves reduced costs unchanged
                // (the effective basic cost and the row negate together).
                let dj = d[j];
                tab.flip_basic_row(r);
                tab.pivot(r, j);
                update_reduced_costs(&mut d, tab, r, dj);
            }
        }
        *iterations += 1;
        since_refresh += 1;

        let obj = tab.objective(phase1);
        if obj < last_obj - 1e-12 {
            stall = 0;
            pricing = Pricing::Dantzig;
        } else {
            stall += 1;
            if stall > stall_limit && pricing != Pricing::Bland {
                // Bland's anti-cycling guarantee needs exact reduced-cost
                // signs: refresh before switching rules.
                pricing = Pricing::Bland;
                d = tab.reduced_costs(phase1);
                since_refresh = 0;
            }
        }
        last_obj = obj;
    }
}

/// Incremental reduced-cost update after a pivot on row `r` where the
/// entering column had reduced cost `dj_before`: `d ← d − dj · (row r)`
/// (the post-pivot row, whose entering-column entry is exactly 1, so the
/// entering column's reduced cost lands on exactly 0).
fn update_reduced_costs(d: &mut [f64], tab: &Tableau, r: usize, dj_before: f64) {
    if dj_before == 0.0 {
        return;
    }
    let row = &tab.t[r * tab.width..(r + 1) * tab.width];
    for (dc, &a) in d.iter_mut().zip(row.iter()) {
        if a != 0.0 {
            *dc -= dj_before * a;
        }
    }
}

/// Tie-break for equal ratios: under Bland, prefer the smallest leaving
/// variable index (with flips ranked last); under Dantzig, prefer the row
/// whose pivot element has larger magnitude for numerical stability — here
/// approximated by preferring any row over a flip and lower basis index.
fn better_leave(
    tab: &Tableau,
    current: &RatioOutcome,
    candidate_row: usize,
    pricing: Pricing,
) -> bool {
    let cand = tab.basis[candidate_row];
    match current {
        RatioOutcome::Flip | RatioOutcome::Unbounded => true,
        RatioOutcome::LeaveLower(r) | RatioOutcome::LeaveUpper(r) => match pricing {
            Pricing::Bland => cand < tab.basis[*r],
            Pricing::Dantzig => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation};

    const INF: f64 = f64::INFINITY;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), z = 36
        let mut p = Problem::new();
        let x = p.add_var(-3.0, 0.0, INF).unwrap();
        let y = p.add_var(-5.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0).unwrap();
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0).unwrap();
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.objective, -36.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 6.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + 2y = 4, x - y = 1 -> x = 2, y = 1
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, INF).unwrap();
        let y = p.add_var(1.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 1.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn ge_constraints_and_shifted_lower_bounds() {
        // min 2x + 3y st x + y >= 10, x >= 2, y in [1, 4]
        let mut p = Problem::new();
        let x = p.add_var(2.0, 2.0, INF).unwrap();
        let y = p.add_var(3.0, 1.0, 4.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        let sol = p.solve().unwrap();
        // Cheaper to use x: y stays at its lower bound 1, x = 9.
        assert_close(sol.value(x), 9.0);
        assert_close(sol.value(y), 1.0);
        assert_close(sol.objective, 21.0);
    }

    #[test]
    fn upper_bound_flip_without_constraints() {
        // min -x with x in [0, 3] and no rows: pure bound flip.
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, 3.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 3.0);
        assert_close(sol.objective, -3.0);
    }

    #[test]
    fn upper_bounds_interact_with_rows() {
        // max x + 2y st x + y <= 4, y <= 3 (bound), x <= 10 (bound)
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, 10.0).unwrap();
        let y = p.add_var(-2.0, 0.0, 3.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 1.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn basic_variable_leaves_at_upper_bound() {
        // min -x - y st x - y <= 2, x <= 5, y <= 4.
        // Optimum x=5 (upper), y=4 (upper). Exercises LeaveUpper paths.
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, 5.0).unwrap();
        let y = p.add_var(-1.0, 0.0, 4.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 2.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 5.0);
        assert_close(sol.value(y), 4.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 5.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_infeasible_equalities() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Eq, 3.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Eq, 4.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, INF).unwrap();
        let y = p.add_var(0.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 1.0)
            .unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 2.5, 2.5).unwrap();
        let y = p.add_var(-1.0, 0.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 10.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 2.5);
        assert_close(sol.value(y), 1.0);
    }

    #[test]
    fn redundant_rows_are_harmless() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, INF).unwrap();
        let y = p.add_var(1.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 8.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.objective, 4.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: several constraints meet at the origin.
        let mut p = Problem::new();
        let x = p.add_var(-0.75, 0.0, INF).unwrap();
        let y = p.add_var(150.0, 0.0, INF).unwrap();
        let z = p.add_var(-0.02, 0.0, INF).unwrap();
        let w = p.add_var(6.0, 0.0, INF).unwrap();
        // Beale's cycling example (min form).
        p.add_constraint(
            &[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(
            &[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(&[(z, 1.0)], Relation::Le, 1.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.objective, -0.05);
    }

    #[test]
    fn zero_constraint_problem_minimizes_at_bounds() {
        let mut p = Problem::new();
        let x = p.add_var(3.0, 1.0, 8.0).unwrap();
        let y = p.add_var(-2.0, 0.0, 5.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 1.0);
        assert_close(sol.value(y), 5.0);
        assert_close(sol.objective, -7.0);
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // x - y >= -3 with b < 0 after standardization.
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, INF).unwrap();
        let y = p.add_var(1.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Ge, -3.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 2.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn iteration_limit_reported() {
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        let opts = SimplexOptions {
            max_iterations: 0,
            ..Default::default()
        };
        assert!(p.solve_with(&opts).is_ok());
        // A limit of zero iterations cannot even complete phase 1 pivots...
        // but phase 1 with b=0 rows may need no pivots; use an always-pivoting
        // instance: equality forces at least one pivot.
        let mut q = Problem::new();
        let v = q.add_var(1.0, 0.0, INF).unwrap();
        q.add_constraint(&[(v, 1.0)], Relation::Eq, 2.0).unwrap();
        let strict = SimplexOptions {
            max_iterations: 1,
            ..Default::default()
        };
        // Either it solves within one pivot or reports the limit; both are
        // acceptable contracts, but it must not loop forever.
        match q.solve_with(&strict) {
            Ok(sol) => assert_close(sol.value(v), 2.0),
            Err(LpError::IterationLimit { limit }) => assert_eq!(limit, 1),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn warm_start_after_rhs_change_matches_cold() {
        // Solve, perturb every RHS, re-solve warm; objective must match a
        // cold solve to high precision and the warm path must engage.
        let mut p = Problem::new();
        let x = p.add_var(-3.0, 0.0, INF).unwrap();
        let y = p.add_var(-5.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0).unwrap();
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0).unwrap();
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let opts = SimplexOptions::default();
        let first = solve_with_warm_start(&p, &opts, None).unwrap();
        assert!(!first.warm_used);

        let mut q = Problem::new();
        let x = q.add_var(-3.0, 0.0, INF).unwrap();
        let y = q.add_var(-5.0, 0.0, INF).unwrap();
        q.add_constraint(&[(x, 1.0)], Relation::Le, 3.0).unwrap();
        q.add_constraint(&[(y, 2.0)], Relation::Le, 10.0).unwrap();
        q.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 16.0)
            .unwrap();
        let warm = solve_with_warm_start(&q, &opts, Some(&first.basis)).unwrap();
        let cold = solve(&q, &opts).unwrap();
        assert!(warm.warm_used, "compatible basis must warm-start");
        assert!((warm.solution.objective - cold.objective).abs() < 1e-9);
        assert!(q.is_feasible(&warm.solution.x, 1e-7));
    }

    #[test]
    fn warm_start_dimension_mismatch_falls_back_cold() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, INF).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        let opts = SimplexOptions::default();
        let first = solve_with_warm_start(&p, &opts, None).unwrap();

        let mut q = Problem::new();
        let a = q.add_var(1.0, 0.0, INF).unwrap();
        let b = q.add_var(1.0, 0.0, INF).unwrap();
        q.add_constraint(&[(a, 1.0), (b, 1.0)], Relation::Ge, 2.0)
            .unwrap();
        assert!(!first.basis.fits(&q));
        let warm = solve_with_warm_start(&q, &opts, Some(&first.basis)).unwrap();
        assert!(!warm.warm_used, "mismatched basis must fall back cold");
        assert_close(warm.solution.objective, 2.0);
    }

    #[test]
    fn warm_start_detects_new_infeasibility() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, 10.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        let opts = SimplexOptions::default();
        let first = solve_with_warm_start(&p, &opts, None).unwrap();

        // Same structure, but the Ge RHS now exceeds the variable bound.
        let mut q = Problem::new();
        let x = q.add_var(1.0, 0.0, 10.0).unwrap();
        q.add_constraint(&[(x, 1.0)], Relation::Ge, 50.0).unwrap();
        let err = solve_with_warm_start(&q, &opts, Some(&first.basis)).unwrap_err();
        assert_eq!(err, LpError::Infeasible);
    }

    #[test]
    fn warm_start_handles_bound_tightening_and_flips() {
        // Optimum sits at upper bounds (flipped columns); tighten bounds
        // and re-solve warm.
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, 5.0).unwrap();
        let y = p.add_var(-1.0, 0.0, 4.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 2.0)
            .unwrap();
        let opts = SimplexOptions::default();
        let first = solve_with_warm_start(&p, &opts, None).unwrap();
        assert_close(first.solution.objective, -9.0);

        let mut q = Problem::new();
        let x = q.add_var(-1.0, 0.0, 3.0).unwrap();
        let y = q.add_var(-1.0, 0.0, 2.0).unwrap();
        q.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 2.0)
            .unwrap();
        let warm = solve_with_warm_start(&q, &opts, Some(&first.basis)).unwrap();
        let cold = solve(&q, &opts).unwrap();
        assert!((warm.solution.objective - cold.objective).abs() < 1e-9);
        assert!(q.is_feasible(&warm.solution.x, 1e-7));
    }

    #[test]
    fn warm_start_chain_tracks_a_drifting_rhs() {
        // A replan-like sequence: the same structure re-solved many times
        // with drifting RHS, each solve warm-started from the previous.
        let opts = SimplexOptions::default();
        let build = |b0: f64, b1: f64| {
            let mut p = Problem::new();
            let x = p.add_var(-2.0, 0.0, 8.0).unwrap();
            let y = p.add_var(-3.0, 0.0, 8.0).unwrap();
            let z = p.add_var(-1.0, 0.0, 8.0).unwrap();
            p.add_constraint(&[(x, 1.0), (y, 2.0), (z, 1.0)], Relation::Le, b0)
                .unwrap();
            p.add_constraint(&[(x, 2.0), (y, 1.0)], Relation::Le, b1)
                .unwrap();
            p.add_constraint(&[(y, 1.0), (z, 1.0)], Relation::Ge, 1.0)
                .unwrap();
            p
        };
        let mut basis: Option<Basis> = None;
        let mut warm_hits = 0usize;
        for step in 0..12 {
            let b0 = 10.0 + (step % 5) as f64;
            let b1 = 12.0 - (step % 3) as f64;
            let p = build(b0, b1);
            let got = solve_with_warm_start(&p, &opts, basis.as_ref()).unwrap();
            let cold = solve(&p, &opts).unwrap();
            assert!(
                (got.solution.objective - cold.objective).abs() < 1e-9,
                "step {step}: warm {} vs cold {}",
                got.solution.objective,
                cold.objective
            );
            assert!(p.is_feasible(&got.solution.x, 1e-7));
            warm_hits += usize::from(got.warm_used);
            basis = Some(got.basis);
        }
        assert!(warm_hits >= 10, "only {warm_hits}/11 possible warm starts");
    }

    #[test]
    fn warm_start_survives_equality_and_redundant_rows() {
        let opts = SimplexOptions::default();
        let build = |rhs: f64| {
            let mut p = Problem::new();
            let x = p.add_var(1.0, 0.0, INF).unwrap();
            let y = p.add_var(1.0, 0.0, INF).unwrap();
            p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, rhs)
                .unwrap();
            p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 2.0 * rhs)
                .unwrap();
            p
        };
        let first = solve_with_warm_start(&build(4.0), &opts, None).unwrap();
        let p = build(6.0);
        let warm = solve_with_warm_start(&p, &opts, Some(&first.basis)).unwrap();
        assert!((warm.solution.objective - 6.0).abs() < 1e-9);
        assert!(p.is_feasible(&warm.solution.x, 1e-7));
    }

    #[test]
    fn solution_feasible_on_moderate_random_instance() {
        // Deterministic pseudo-random LP; checks feasibility + optimality
        // against the bound given by weak duality through a feasible point.
        let mut p = Problem::new();
        let mut vars = Vec::new();
        let mut state = 0x12345678u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..12 {
            let c = rnd() * 4.0 - 2.0;
            let u = 1.0 + rnd() * 9.0;
            vars.push(p.add_var(c, 0.0, u).unwrap());
        }
        for _ in 0..8 {
            let terms: Vec<_> = vars
                .iter()
                .map(|&v| (v, rnd() * 2.0))
                .filter(|&(_, c)| c > 0.4)
                .collect();
            let rhs = 5.0 + rnd() * 20.0;
            p.add_constraint(&terms, Relation::Le, rhs).unwrap();
        }
        let sol = p.solve().unwrap();
        assert!(p.is_feasible(&sol.x, 1e-6));
        // Origin is feasible (all-≤ with positive rhs), so optimum ≤ 0.
        assert!(sol.objective <= 1e-9);
    }
}
