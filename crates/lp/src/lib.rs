//! A bounded-variable two-phase primal simplex linear-programming solver
//! with two interchangeable engines.
//!
//! The FlowTime paper (Section V) schedules deadline-aware jobs by solving a
//! linear program with CPLEX. Mature LP solvers are not available as pure
//! Rust crates, so this crate implements one from scratch:
//!
//! * [`Problem`] — an LP in the general form
//!   `min cᵀx  s.t.  Ax {≤,=,≥} b,  l ≤ x ≤ u`,
//!   built incrementally with [`Problem::add_var`] /
//!   [`Problem::add_constraint`].
//! * [`simplex::solve`] — a **bounded-variable two-phase primal simplex**.
//!   Variable upper bounds are handled implicitly (non-basic variables may
//!   sit at either bound, via the column-flip transformation), so the
//!   scheduling LP's per-slot parallelism caps do not inflate the row
//!   count. Anti-cycling falls back to Bland's rule after a stall, with
//!   basis-repeat detection surfacing [`LpError::Cycling`] when no rescue
//!   remains.
//!
//! Two engines implement the identical pivot policy and are selected with
//! [`SimplexEngine`] (per solve via [`SimplexOptions::engine`], or
//! process-wide via [`set_default_engine`]):
//!
//! * **Sparse revised simplex** (default) — the basis is held as a sparse
//!   LU factorization (Gilbert–Peierls left-looking factorization with
//!   partial pivoting and nnz-ascending column preorder) updated by a
//!   product-form eta file with periodic refactorization. Pricing uses
//!   BTRAN, entering columns FTRAN; a `‖B·β − b‖∞` residual self-check
//!   guards every refactorization. This exploits the near-banded interval
//!   structure of the paper's Lemma 2 LPs.
//! * **[`DenseOracle`]** — the original dense tableau engine, kept
//!   bit-for-bit intact behind the `oracle` feature (always available under
//!   `cfg(test)`) as a differential-testing oracle for the sparse path.
//!
//! Both engines share the warm-start contract: [`Basis`] export/import and
//! bounded dual-simplex repair, so cached bases transfer across engines.
//!
//! The solver is exact enough for the scheduling LPs of the paper: the
//! constraint matrices there are totally unimodular (paper Lemma 2), so
//! optimal bases are integral and the simplex returns integer allocations up
//! to floating-point round-off.
//!
//! # Example
//!
//! ```
//! use flowtime_lp::{Problem, Relation};
//!
//! # fn main() -> Result<(), flowtime_lp::LpError> {
//! // max x + 2y  s.t.  x + y <= 4, y <= 3, x,y >= 0
//! let mut p = Problem::new();
//! let x = p.add_var(-1.0, 0.0, f64::INFINITY)?; // minimize -x - 2y
//! let y = p.add_var(-2.0, 0.0, 3.0)?;
//! p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)?;
//! let sol = p.solve()?;
//! assert!((sol.objective - (-7.0)).abs() < 1e-9); // x=1, y=3
//! assert!((sol.value(x) - 1.0).abs() < 1e-9);
//! assert!((sol.value(y) - 3.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
mod lu;
pub mod problem;
mod revised;
pub mod simplex;
pub mod solution;
mod sparse;

pub use error::LpError;
pub use problem::{Problem, Relation, VarId};
#[cfg(any(test, feature = "oracle"))]
pub use simplex::DenseOracle;
pub use simplex::{
    default_engine, set_default_engine, Basis, SimplexEngine, SimplexOptions, WarmSolveResult,
};
pub use solution::{Solution, Status};
