//! A dense two-phase primal simplex linear-programming solver.
//!
//! The FlowTime paper (Section V) schedules deadline-aware jobs by solving a
//! linear program with CPLEX. Mature LP solvers are not available as pure
//! Rust crates, so this crate implements one from scratch:
//!
//! * [`Problem`] — an LP in the general form
//!   `min cᵀx  s.t.  Ax {≤,=,≥} b,  l ≤ x ≤ u`,
//!   built incrementally with [`Problem::add_var`] /
//!   [`Problem::add_constraint`].
//! * [`simplex::solve`] — a **bounded-variable two-phase primal simplex**
//!   over a dense tableau. Variable upper bounds are handled implicitly
//!   (non-basic variables may sit at either bound, via the column-flip
//!   transformation), so the scheduling LP's per-slot parallelism caps do
//!   not inflate the row count. Anti-cycling falls back to Bland's rule
//!   after a stall.
//!
//! The solver is exact enough for the scheduling LPs of the paper: the
//! constraint matrices there are totally unimodular (paper Lemma 2), so
//! optimal bases are integral and the simplex returns integer allocations up
//! to floating-point round-off.
//!
//! # Example
//!
//! ```
//! use flowtime_lp::{Problem, Relation};
//!
//! # fn main() -> Result<(), flowtime_lp::LpError> {
//! // max x + 2y  s.t.  x + y <= 4, y <= 3, x,y >= 0
//! let mut p = Problem::new();
//! let x = p.add_var(-1.0, 0.0, f64::INFINITY)?; // minimize -x - 2y
//! let y = p.add_var(-2.0, 0.0, 3.0)?;
//! p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)?;
//! let sol = p.solve()?;
//! assert!((sol.objective - (-7.0)).abs() < 1e-9); // x=1, y=3
//! assert!((sol.value(x) - 1.0).abs() < 1e-9);
//! assert!((sol.value(y) - 3.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod problem;
pub mod simplex;
pub mod solution;

pub use error::LpError;
pub use problem::{Problem, Relation, VarId};
pub use simplex::{Basis, SimplexOptions, WarmSolveResult};
pub use solution::{Solution, Status};
