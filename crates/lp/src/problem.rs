//! LP problem construction.

use crate::error::LpError;
use crate::simplex::{self, SimplexOptions};
use crate::solution::Solution;
use std::fmt;

/// Handle to a variable of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The dense index of this variable within its problem.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `≤ rhs`
    Le,
    /// `= rhs`
    Eq,
    /// `≥ rhs`
    Ge,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Le => "<=",
            Relation::Eq => "=",
            Relation::Ge => ">=",
        })
    }
}

/// One linear constraint `Σ coeff·x {≤,=,≥} rhs` in sparse form.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Constraint {
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

/// A linear program `min cᵀx  s.t.  Ax {≤,=,≥} b,  l ≤ x ≤ u`.
///
/// The objective sense is *minimization*; to maximize, negate the objective
/// coefficients. Variables require a finite lower bound; upper bounds may be
/// `f64::INFINITY`.
///
/// # Example
///
/// ```
/// use flowtime_lp::{Problem, Relation};
/// # fn main() -> Result<(), flowtime_lp::LpError> {
/// let mut p = Problem::new();
/// let x = p.add_var(1.0, 0.0, f64::INFINITY)?;
/// p.add_constraint(&[(x, 1.0)], Relation::Ge, 5.0)?;
/// let sol = p.solve()?;
/// assert!((sol.value(x) - 5.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) objective: Vec<f64>,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Problem::default()
    }

    /// Number of variables declared so far.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a variable with objective coefficient `obj` and bounds
    /// `[lower, upper]`.
    ///
    /// # Errors
    ///
    /// * [`LpError::InvalidBounds`] if `lower` is not finite, `upper` is NaN
    ///   or `-∞`, or `lower > upper`.
    /// * [`LpError::NonFiniteCoefficient`] if `obj` is not finite.
    pub fn add_var(&mut self, obj: f64, lower: f64, upper: f64) -> Result<VarId, LpError> {
        if !obj.is_finite() {
            return Err(LpError::NonFiniteCoefficient);
        }
        if !lower.is_finite() || upper.is_nan() || upper == f64::NEG_INFINITY || lower > upper {
            return Err(LpError::InvalidBounds { lower, upper });
        }
        self.objective.push(obj);
        self.lower.push(lower);
        self.upper.push(upper);
        Ok(VarId(self.objective.len() - 1))
    }

    /// Updates the objective coefficient of an existing variable.
    ///
    /// # Errors
    ///
    /// * [`LpError::VarOutOfRange`] if `var` was not created by this problem.
    /// * [`LpError::NonFiniteCoefficient`] if `obj` is not finite.
    pub fn set_objective(&mut self, var: VarId, obj: f64) -> Result<(), LpError> {
        if !obj.is_finite() {
            return Err(LpError::NonFiniteCoefficient);
        }
        let slot = self
            .objective
            .get_mut(var.0)
            .ok_or(LpError::VarOutOfRange {
                var: var.0,
                len: self.lower.len(),
            })?;
        *slot = obj;
        Ok(())
    }

    /// Tightens the bounds of an existing variable.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::add_var`] for bound validity, plus
    /// [`LpError::VarOutOfRange`].
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) -> Result<(), LpError> {
        if !lower.is_finite() || upper.is_nan() || upper == f64::NEG_INFINITY || lower > upper {
            return Err(LpError::InvalidBounds { lower, upper });
        }
        if var.0 >= self.lower.len() {
            return Err(LpError::VarOutOfRange {
                var: var.0,
                len: self.lower.len(),
            });
        }
        self.lower[var.0] = lower;
        self.upper[var.0] = upper;
        Ok(())
    }

    /// Adds the constraint `Σ terms {≤,=,≥} rhs`.
    ///
    /// Duplicate variables within `terms` are summed.
    ///
    /// # Errors
    ///
    /// * [`LpError::VarOutOfRange`] if any term references an unknown
    ///   variable.
    /// * [`LpError::NonFiniteCoefficient`] if any coefficient or `rhs` is
    ///   not finite.
    pub fn add_constraint(
        &mut self,
        terms: &[(VarId, f64)],
        relation: Relation,
        rhs: f64,
    ) -> Result<usize, LpError> {
        if !rhs.is_finite() {
            return Err(LpError::NonFiniteCoefficient);
        }
        let n = self.num_vars();
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(var, coeff) in terms {
            if !coeff.is_finite() {
                return Err(LpError::NonFiniteCoefficient);
            }
            if var.0 >= n {
                return Err(LpError::VarOutOfRange { var: var.0, len: n });
            }
            match dense.iter_mut().find(|(v, _)| *v == var.0) {
                Some((_, c)) => *c += coeff,
                None => dense.push((var.0, coeff)),
            }
        }
        self.constraints.push(Constraint {
            terms: dense,
            relation,
            rhs,
        });
        Ok(self.constraints.len() - 1)
    }

    /// Solves the problem with default [`SimplexOptions`].
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::IterationLimit`] from the simplex.
    pub fn solve(&self) -> Result<Solution, LpError> {
        simplex::solve(self, &SimplexOptions::default())
    }

    /// Solves the problem with explicit options.
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`].
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<Solution, LpError> {
        simplex::solve(self, options)
    }

    /// Solves the problem, warm-starting from a previous optimal basis
    /// when one is supplied and still compatible; see
    /// [`simplex::solve_with_warm_start`].
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`].
    pub fn solve_warm(
        &self,
        options: &SimplexOptions,
        warm: Option<&simplex::Basis>,
    ) -> Result<simplex::WarmSolveResult, LpError> {
        simplex::solve_with_warm_start(self, options, warm)
    }

    /// Evaluates the objective at a point (no feasibility check).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.objective
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum()
    }

    /// Writes the problem in CPLEX LP file format — handy for eyeballing a
    /// formulation or feeding it to an external solver for comparison.
    ///
    /// # Errors
    ///
    /// I/O errors from `writer`.
    ///
    /// # Example
    ///
    /// ```
    /// use flowtime_lp::{Problem, Relation};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut p = Problem::new();
    /// let x = p.add_var(1.0, 0.0, 5.0)?;
    /// p.add_constraint(&[(x, 2.0)], Relation::Ge, 3.0)?;
    /// let mut out = Vec::new();
    /// p.write_lp_format(&mut out)?;
    /// let text = String::from_utf8(out)?;
    /// assert!(text.contains("Minimize"));
    /// assert!(text.contains("2 x0 >= 3"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn write_lp_format<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "Minimize")?;
        write!(writer, " obj:")?;
        let mut first = true;
        for (j, &c) in self.objective.iter().enumerate() {
            if c != 0.0 {
                write!(
                    writer,
                    " {}{} x{j}",
                    if c >= 0.0 && !first { "+ " } else { "" },
                    fmt_coeff(c)
                )?;
                first = false;
            }
        }
        if first {
            write!(writer, " 0")?;
        }
        writeln!(writer)?;
        writeln!(writer, "Subject To")?;
        for (i, con) in self.constraints.iter().enumerate() {
            write!(writer, " c{i}:")?;
            let mut first = true;
            for &(v, a) in &con.terms {
                write!(
                    writer,
                    " {}{} x{v}",
                    if a >= 0.0 && !first { "+ " } else { "" },
                    fmt_coeff(a)
                )?;
                first = false;
            }
            if first {
                write!(writer, " 0 x0")?;
            }
            let op = match con.relation {
                Relation::Le => "<=",
                Relation::Eq => "=",
                Relation::Ge => ">=",
            };
            writeln!(writer, " {op} {}", fmt_coeff(con.rhs))?;
        }
        writeln!(writer, "Bounds")?;
        for j in 0..self.num_vars() {
            let (lo, hi) = (self.lower[j], self.upper[j]);
            if hi.is_finite() {
                writeln!(writer, " {} <= x{j} <= {}", fmt_coeff(lo), fmt_coeff(hi))?;
            } else {
                writeln!(writer, " x{j} >= {}", fmt_coeff(lo))?;
            }
        }
        writeln!(writer, "End")
    }

    /// Checks whether `x` satisfies all constraints and bounds within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (i, &v) in x.iter().enumerate() {
            if v < self.lower[i] - tol || v > self.upper[i] + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
                Relation::Ge => lhs >= c.rhs - tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Formats a coefficient without trailing `.0` noise for integers.
fn fmt_coeff(c: f64) -> String {
    if c == c.trunc() && c.abs() < 1e15 {
        format!("{}", c as i64)
    } else {
        format!("{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_validates() {
        let mut p = Problem::new();
        assert!(p.add_var(f64::NAN, 0.0, 1.0).is_err());
        assert!(p.add_var(1.0, f64::NEG_INFINITY, 1.0).is_err());
        assert!(p.add_var(1.0, 2.0, 1.0).is_err());
        assert!(p.add_var(1.0, 0.0, f64::NAN).is_err());
        assert!(p.add_var(1.0, 0.0, f64::INFINITY).is_ok());
        assert_eq!(p.num_vars(), 1);
    }

    #[test]
    fn constraint_validates_and_merges_duplicates() {
        let mut p = Problem::new();
        let x = p.add_var(0.0, 0.0, 1.0).unwrap();
        assert!(p
            .add_constraint(&[(VarId(7), 1.0)], Relation::Le, 1.0)
            .is_err());
        assert!(p
            .add_constraint(&[(x, f64::INFINITY)], Relation::Le, 1.0)
            .is_err());
        assert!(p
            .add_constraint(&[(x, 1.0)], Relation::Le, f64::NAN)
            .is_err());
        p.add_constraint(&[(x, 1.0), (x, 2.0)], Relation::Le, 1.0)
            .unwrap();
        assert_eq!(p.constraints[0].terms, vec![(0, 3.0)]);
    }

    #[test]
    fn feasibility_checker() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, 10.0).unwrap();
        let y = p.add_var(1.0, 0.0, 10.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0)
            .unwrap();
        assert!(p.is_feasible(&[2.0, 3.0], 1e-9));
        assert!(!p.is_feasible(&[2.0, 2.0], 1e-9));
        assert!(!p.is_feasible(&[-1.0, 6.0], 1e-9));
        assert!(!p.is_feasible(&[5.0], 1e-9));
        assert_eq!(p.objective_at(&[2.0, 3.0]), 5.0);
    }

    #[test]
    fn lp_format_is_complete() {
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, f64::INFINITY).unwrap();
        let y = p.add_var(2.5, 1.0, 4.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, -3.0)], Relation::Le, 7.0)
            .unwrap();
        p.add_constraint(&[(y, 1.0)], Relation::Eq, 2.0).unwrap();
        let mut out = Vec::new();
        p.write_lp_format(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Minimize"), "{text}");
        assert!(text.contains("-1 x0"), "{text}");
        assert!(text.contains("2.5 x1"), "{text}");
        assert!(text.contains("1 x0 -3 x1 <= 7"), "{text}");
        assert!(text.contains("1 x1 = 2"), "{text}");
        assert!(text.contains("x0 >= 0"), "{text}");
        assert!(text.contains("1 <= x1 <= 4"), "{text}");
        assert!(text.trim_end().ends_with("End"), "{text}");
    }

    #[test]
    fn set_bounds_and_objective() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, 10.0).unwrap();
        p.set_bounds(x, 1.0, 2.0).unwrap();
        p.set_objective(x, -3.0).unwrap();
        assert!(p.set_bounds(VarId(9), 0.0, 1.0).is_err());
        assert!(p.set_objective(VarId(9), 1.0).is_err());
        assert!(p.set_bounds(x, 3.0, 2.0).is_err());
        let sol = p.solve().unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
    }
}
