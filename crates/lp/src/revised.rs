//! Bounded-variable two-phase *revised* simplex over a sparse LU-factored
//! basis.
//!
//! This engine is trajectory-compatible with the dense tableau oracle in
//! [`crate::simplex`]: it prices with the same Dantzig→Bland policy, runs
//! the same ratio test with the same tolerances and tie-breaks, performs
//! the same bound-flip transformations, and counts iterations identically.
//! The two engines therefore walk the same pivot sequence (the revised
//! quantities `B⁻¹a_j`, reduced costs, and basic values are the *same
//! numbers* the tableau stores explicitly, recomputed through the LU
//! factors), so warm-start bases are interchangeable and plans downstream
//! stay bit-identical — the differential suite in `tests/lp_differential.rs`
//! holds the two engines to that.
//!
//! Where the dense tableau spends `O(m·n)` per pivot updating every entry,
//! this engine spends `O(nnz)`: one BTRAN for pricing, one FTRAN for the
//! entering column, and an `O(m)` basic-value update. On the Lemma 2
//! interval LPs (`nnz = O(n)`), that turns each pivot from quadratic to
//! linear.

use crate::error::LpError;
use crate::lu::{self, Factorization};
use crate::problem::Problem;
use crate::simplex::{
    auto_iteration_cap, quantize, Basis, CycleDetector, Pricing, RatioOutcome, SimplexOptions,
    SolverCore, DEGEN_SNAP, PRICE_TIE, RATIO_TIE,
};
use crate::solution::{Solution, Status};
use crate::sparse::SparseForm;

/// The sparse revised-simplex engine ([`crate::SimplexEngine::Sparse`]).
pub struct SparseRevised;

impl SolverCore for SparseRevised {
    fn solve_cold(
        &self,
        problem: &Problem,
        options: &SimplexOptions,
    ) -> Result<(Solution, Basis), LpError> {
        cold(problem, options)
    }

    fn try_warm(
        &self,
        problem: &Problem,
        options: &SimplexOptions,
        start: &Basis,
    ) -> Option<(Solution, Basis)> {
        warm(problem, options, start)
    }
}

/// Mutable solver state: the standard form, the basis, the incrementally
/// maintained basic values, and the factorization of the basis.
struct Rev {
    f: SparseForm,
    /// Basic column of each row/position.
    basis: Vec<usize>,
    /// Membership mask over all columns.
    in_basis: Vec<bool>,
    /// Current basic values (`B⁻¹b`, maintained incrementally exactly like
    /// the dense tableau's `beta`).
    beta: Vec<f64>,
    lu: Factorization,
    /// Non-LU operation counter (pricing, ratio tests, updates).
    work: u64,
}

/// Relative residual bound for the `‖B·β − b‖∞` self-check run at every
/// refactorization and before results are surfaced.
const RESIDUAL_TOL: f64 = 1e-6;

fn build_cold(problem: &Problem) -> Result<Rev, LpError> {
    let f = SparseForm::build(problem)?;
    let basis: Vec<usize> = (f.art_start..f.width).collect();
    let mut in_basis = vec![false; f.width];
    for &b in &basis {
        in_basis[b] = true;
    }
    let beta = f.b.clone(); // all-artificial basis: B = I
    let lu = Factorization::factor(&f.a, &basis)?;
    Ok(Rev {
        f,
        basis,
        in_basis,
        beta,
        lu,
        work: 0,
    })
}

fn objective(rev: &Rev, phase1: bool) -> f64 {
    let mut z = if phase1 { 0.0 } else { rev.f.flip_const2 };
    for (i, &b) in rev.basis.iter().enumerate() {
        z += rev.f.effective_cost(b, phase1) * rev.beta[i];
    }
    z
}

/// Complements the *basic* variable of row `r` (mirror of the dense
/// `flip_basic_row`): the storage flip plus the `beta` rebase. The caller
/// pivots this row immediately afterwards, which is what re-syncs the
/// factorization (the replacement eta is computed against the pre-flip
/// basis, and the replaced column's orientation is irrelevant once it has
/// left).
fn flip_basic(rev: &mut Rev, r: usize) {
    let k = rev.basis[r];
    rev.f.flip_column(k);
    rev.beta[r] = rev.f.upper[k] - rev.beta[r];
}

/// Basis exchange at row `r`: column `j` enters with FTRAN'd column `w` and
/// pivot element `w[r]` (the dense `pivot`, minus the tableau sweep).
fn pivot(rev: &mut Rev, r: usize, j: usize, w: &[f64]) -> Result<(), LpError> {
    let step = rev.beta[r] / w[r];
    apply_pivot(rev, r, j, w, step)
}

/// Basis exchange after [`flip_basic`] on row `r`: the dense pivot element
/// is the *negated* `w[r]` (the row was complemented), while the eta update
/// still uses the original `w` (`B_new = B_old·E(w)` — the leaving column's
/// in-storage negation does not alter the replaced basis column).
fn pivot_flipped(rev: &mut Rev, r: usize, j: usize, w: &[f64]) -> Result<(), LpError> {
    let step = rev.beta[r] / (-w[r]);
    apply_pivot(rev, r, j, w, step)
}

fn apply_pivot(rev: &mut Rev, r: usize, j: usize, w: &[f64], step: f64) -> Result<(), LpError> {
    for (i, &wi) in w.iter().enumerate() {
        if i == r || wi == 0.0 {
            continue;
        }
        rev.beta[i] -= wi * step;
        if rev.beta[i] < 0.0 && rev.beta[i] > -1e-9 {
            rev.beta[i] = 0.0;
        }
    }
    rev.beta[r] = step;
    rev.lu.update(r, w)?;
    rev.in_basis[rev.basis[r]] = false;
    rev.in_basis[j] = true;
    rev.basis[r] = j;
    rev.work += w.len() as u64;
    Ok(())
}

/// Rebuilds the LU factors from the current basis and runs the residual
/// self-check on the incrementally maintained `beta`. A corrupted factor or
/// a skipped eta shows up here as [`LpError::NumericalInstability`] rather
/// than a silently wrong plan.
fn refactor(rev: &mut Rev) -> Result<(), LpError> {
    let carried = rev.lu.work;
    rev.lu = Factorization::factor(&rev.f.a, &rev.basis)?;
    rev.lu.work += carried;
    check_residual(rev)
}

fn check_residual(rev: &Rev) -> Result<(), LpError> {
    let residual = lu::basis_residual_inf(&rev.f.a, &rev.basis, &rev.beta, &rev.f.b);
    let scale = 1.0 + rev.f.b.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    if residual / scale <= RESIDUAL_TOL {
        Ok(())
    } else {
        Err(LpError::NumericalInstability { residual })
    }
}

fn better_leave(rev: &Rev, current: &RatioOutcome, candidate_row: usize, pricing: Pricing) -> bool {
    let cand = rev.basis[candidate_row];
    match current {
        RatioOutcome::Flip | RatioOutcome::Unbounded => true,
        RatioOutcome::LeaveLower(r) | RatioOutcome::LeaveUpper(r) => match pricing {
            Pricing::Bland => cand < rev.basis[*r],
            Pricing::Dantzig => false,
        },
    }
}

fn run_phase(
    rev: &mut Rev,
    phase1: bool,
    tol: f64,
    max_iterations: usize,
    stall_limit: usize,
    iterations: &mut usize,
) -> Result<(), LpError> {
    let m = rev.f.m;
    let mut pricing = Pricing::Dantzig;
    let mut stall = 0usize;
    let mut detector = CycleDetector::new();
    let mut last_obj = objective(rev, phase1);
    let mut y = vec![0.0f64; m];
    let mut w = vec![0.0f64; m];
    loop {
        if *iterations >= max_iterations {
            return Err(LpError::IterationLimit {
                limit: max_iterations,
            });
        }
        // Price every column from fresh duals (`y = B⁻ᵀc_B`). The dense
        // engine maintains reduced costs incrementally but refreshes before
        // declaring optimality; both selections see the same values.
        for (i, slot) in y.iter_mut().enumerate() {
            *slot = rev.f.effective_cost(rev.basis[i], phase1);
        }
        rev.lu.btran(&mut y);
        let mut entering: Option<(usize, f64)> = None;
        for j in 0..rev.f.width {
            if rev.in_basis[j] || rev.f.upper[j] <= 0.0 || !(phase1 || j < rev.f.art_start) {
                continue;
            }
            let d = rev.f.effective_cost(j, phase1) - rev.f.a.col_dot(j, &y);
            if d < -tol {
                match pricing {
                    // Windowed argmin, mirroring the dense engine: a later
                    // column must beat the incumbent by more than
                    // PRICE_TIE to displace it, so exact ties resolve to
                    // the lowest index on both engines.
                    Pricing::Dantzig => {
                        if entering.is_none_or(|(_, bd)| d < bd - PRICE_TIE * (1.0 + bd.abs())) {
                            entering = Some((j, d));
                        }
                    }
                    Pricing::Bland => {
                        entering = Some((j, d));
                        break;
                    }
                }
            }
        }
        rev.work += rev.f.a.nnz() as u64 + m as u64;
        let Some((j, _)) = entering else {
            return Ok(()); // optimal for this phase
        };

        // FTRAN the entering column; `w` is the tableau column `B⁻¹a_j`.
        for v in w.iter_mut() {
            *v = 0.0;
        }
        rev.f.a.scatter_col(j, 1.0, &mut w);
        rev.lu.ftran(&mut w);

        // Ratio test — same thresholds and tie-breaks as the dense engine.
        let mut best = rev.f.upper[j];
        let mut outcome = if best.is_finite() {
            RatioOutcome::Flip
        } else {
            RatioOutcome::Unbounded
        };
        for (i, &a) in w.iter().enumerate() {
            if a > 1e-9 {
                let numer = rev.beta[i].max(0.0);
                let ratio = if numer < DEGEN_SNAP { 0.0 } else { numer / a };
                let tie = RATIO_TIE * (1.0 + best.abs());
                if ratio < best - tie
                    || (ratio < best + tie && better_leave(rev, &outcome, i, pricing))
                {
                    best = ratio;
                    outcome = RatioOutcome::LeaveLower(i);
                }
            } else if a < -1e-9 {
                let ub = rev.f.upper[rev.basis[i]];
                if ub.is_finite() {
                    let numer = (ub - rev.beta[i]).max(0.0);
                    let ratio = if numer < DEGEN_SNAP {
                        0.0
                    } else {
                        numer / (-a)
                    };
                    let tie = RATIO_TIE * (1.0 + best.abs());
                    if ratio < best - tie
                        || (ratio < best + tie && better_leave(rev, &outcome, i, pricing))
                    {
                        best = ratio;
                        outcome = RatioOutcome::LeaveUpper(i);
                    }
                }
            }
        }
        rev.work += m as u64;

        match outcome {
            RatioOutcome::Unbounded => {
                return if phase1 {
                    // Cannot happen: phase-1 objective is bounded below by 0.
                    Err(LpError::Infeasible)
                } else {
                    Err(LpError::Unbounded)
                };
            }
            RatioOutcome::Flip => {
                let u = rev.f.upper[j];
                for (i, &wi) in w.iter().enumerate() {
                    if wi != 0.0 {
                        rev.beta[i] -= wi * u;
                    }
                }
                rev.f.flip_column(j);
            }
            RatioOutcome::LeaveLower(r) => pivot(rev, r, j, &w)?,
            RatioOutcome::LeaveUpper(r) => {
                flip_basic(rev, r);
                pivot_flipped(rev, r, j, &w)?;
            }
        }
        *iterations += 1;

        let obj = objective(rev, phase1);
        if obj < last_obj - 1e-12 {
            stall = 0;
            pricing = Pricing::Dantzig;
            detector.clear();
        } else {
            stall += 1;
            // Cycle detection is armed where a basis repeat is conclusive:
            // under Bland (deterministic, so a repeat loops forever) and
            // under Dantzig when the Bland rescue is disabled.
            if (pricing == Pricing::Bland || stall_limit == usize::MAX)
                && detector.record(&rev.basis, &rev.f.flipped)
            {
                return Err(LpError::Cycling {
                    iterations: *iterations,
                });
            }
            if stall > stall_limit && pricing != Pricing::Bland {
                pricing = Pricing::Bland;
                detector.clear();
            }
        }
        last_obj = obj;

        if rev.lu.needs_refactor() {
            refactor(rev)?;
        }
    }
}

/// Drives still-basic artificials out after phase 1 (mirror of the dense
/// sweep): for each artificial row, the first real column with a pivotable
/// tableau entry enters.
fn drive_out_artificials(rev: &mut Rev) -> Result<(), LpError> {
    let m = rev.f.m;
    let mut rho = vec![0.0f64; m];
    let mut w = vec![0.0f64; m];
    for r in 0..m {
        if rev.basis[r] < rev.f.art_start {
            continue;
        }
        // Row r of B⁻¹A, one sparse dot per column.
        for v in rho.iter_mut() {
            *v = 0.0;
        }
        rho[r] = 1.0;
        rev.lu.btran(&mut rho);
        let found = (0..rev.f.n_real)
            .find(|&j| rev.f.upper[j] > 0.0 && rev.f.a.col_dot(j, &rho).abs() > 1e-7);
        rev.work += rev.f.a.nnz() as u64;
        if let Some(j) = found {
            for v in w.iter_mut() {
                *v = 0.0;
            }
            rev.f.a.scatter_col(j, 1.0, &mut w);
            rev.lu.ftran(&mut w);
            pivot(rev, r, j, &w)?;
            if rev.lu.needs_refactor() {
                refactor(rev)?;
            }
        }
    }
    Ok(())
}

fn extract_solution(rev: &Rev, problem: &Problem, iterations: usize) -> Solution {
    let n_struct = problem.num_vars();
    let mut shifted = vec![0.0f64; rev.f.n_real];
    for (r, &b) in rev.basis.iter().enumerate() {
        if b < rev.f.n_real {
            shifted[b] = rev.beta[r].max(0.0);
        }
    }
    let mut x = vec![0.0f64; n_struct];
    for (j, slot) in x.iter_mut().enumerate() {
        let mut v = shifted[j];
        if rev.f.flipped[j] {
            v = rev.f.upper[j] - v;
        }
        // Clean float fuzz against the original bounds and the grid.
        *slot = quantize((v + problem.lower[j]).clamp(problem.lower[j], problem.upper[j]));
    }
    let objective = problem.objective_at(&x);
    Solution {
        status: Status::Optimal,
        objective,
        x,
        iterations,
        work: rev.work + rev.lu.work,
    }
}

fn export_basis(rev: &Rev, n_struct: usize) -> Basis {
    let rows: Vec<Option<usize>> = rev
        .basis
        .iter()
        .map(|&b| (b < rev.f.art_start).then_some(b))
        .collect();
    let mut in_b = vec![false; rev.f.n_real];
    for &b in &rev.basis {
        if b < rev.f.art_start {
            in_b[b] = true;
        }
    }
    let flipped = (0..rev.f.n_real)
        .map(|j| rev.f.flipped[j] && !in_b[j])
        .collect();
    Basis {
        rows,
        flipped,
        n_struct,
        n_slack: rev.f.n_real - n_struct,
    }
}

fn cold(problem: &Problem, options: &SimplexOptions) -> Result<(Solution, Basis), LpError> {
    let tol = options.tolerance;
    let mut rev = build_cold(problem)?;
    let max_iterations = auto_iteration_cap(options, rev.f.m, rev.f.n_real);
    let mut iterations = 0usize;

    run_phase(
        &mut rev,
        true,
        tol,
        max_iterations,
        options.stall_limit,
        &mut iterations,
    )?;
    if objective(&rev, true) > 1e-6 {
        return Err(LpError::Infeasible);
    }
    drive_out_artificials(&mut rev)?;
    for j in rev.f.art_start..rev.f.width {
        rev.f.upper[j] = 0.0;
    }
    run_phase(
        &mut rev,
        false,
        tol,
        max_iterations,
        options.stall_limit,
        &mut iterations,
    )?;
    check_residual(&rev)?;
    let solution = extract_solution(&rev, problem, iterations);
    let basis = export_basis(&rev, problem.num_vars());
    Ok((solution, basis))
}

/// All basic values within their (working-space) bounds?
fn primal_feasible(rev: &Rev, tol: f64) -> bool {
    (0..rev.f.m).all(|r| {
        let b = rev.beta[r];
        let ub = rev.f.upper[rev.basis[r]];
        b >= -tol && (!ub.is_finite() || b <= ub + tol)
    })
}

/// Bounded-variable dual simplex on the revised representation, mirroring
/// the dense `dual_repair` step for step. Returns `None` — caller falls
/// back to a cold solve — on lost dual feasibility, an unsatisfiable row,
/// or a stalled repair.
fn dual_repair(rev: &mut Rev, iterations: &mut usize) -> Option<()> {
    const FEAS_TOL: f64 = 1e-7;
    let m = rev.f.m;
    let step_cap = 4 * m + 50;
    let mut steps = 0usize;
    let mut y = vec![0.0f64; m];
    let mut rho = vec![0.0f64; m];
    let mut w = vec![0.0f64; m];
    loop {
        // Leaving row: largest bound violation (ties: lowest row).
        let mut worst: Option<(usize, f64, bool)> = None;
        for r in 0..m {
            let b = rev.beta[r];
            let ub = rev.f.upper[rev.basis[r]];
            let (violation, at_upper) = if b < -FEAS_TOL {
                (-b, false)
            } else if ub.is_finite() && b > ub + FEAS_TOL {
                (b - ub, true)
            } else {
                continue;
            };
            if worst.is_none_or(|(_, wv, _)| violation > wv) {
                worst = Some((r, violation, at_upper));
            }
        }
        let Some((r, _, at_upper)) = worst else {
            return Some(()); // primal feasible again
        };
        if steps >= step_cap {
            return None;
        }
        // Price pre-flip: a basic-variable complement leaves reduced costs
        // unchanged, and the dense engine's post-flip pivot row is exactly
        // the negated `B⁻¹A` row, handled below via `sgn`.
        for (i, slot) in y.iter_mut().enumerate() {
            *slot = rev.f.effective_cost2(rev.basis[i]);
        }
        rev.lu.btran(&mut y);
        for v in rho.iter_mut() {
            *v = 0.0;
        }
        rho[r] = 1.0;
        rev.lu.btran(&mut rho);
        rev.work += 2 * rev.f.a.nnz() as u64;
        let sgn = if at_upper { -1.0 } else { 1.0 };
        let mut entering: Option<(f64, usize)> = None;
        for j in 0..rev.f.n_real {
            if rev.in_basis[j] || rev.f.upper[j] <= 0.0 {
                continue;
            }
            let dj = rev.f.effective_cost2(j) - rev.f.a.col_dot(j, &y);
            if dj < -1e-7 {
                return None; // dual feasibility lost: repair unsound
            }
            let a = sgn * rev.f.a.col_dot(j, &rho);
            if a < -1e-9 {
                let ratio = dj.max(0.0) / -a;
                let better = match entering {
                    None => true,
                    Some((br, bj)) => ratio < br - 1e-12 || (ratio < br + 1e-12 && j < bj),
                };
                if better {
                    entering = Some((ratio, j));
                }
            }
        }
        let (_, j) = entering?; // no candidate: row unsatisfiable
        for v in w.iter_mut() {
            *v = 0.0;
        }
        rev.f.a.scatter_col(j, 1.0, &mut w);
        rev.lu.ftran(&mut w);
        if at_upper {
            flip_basic(rev, r);
            pivot_flipped(rev, r, j, &w).ok()?;
        } else {
            pivot(rev, r, j, &w).ok()?;
        }
        *iterations += 1;
        steps += 1;
        if rev.lu.needs_refactor() {
            refactor(rev).ok()?;
        }
    }
}

/// Attempts the warm path; `None` means "fall back to a cold solve".
/// Mirrors the dense `try_warm` contract: same compatibility checks, same
/// flip restoration, dual repair, phase-2 finish, and final feasibility
/// safety net — with the greedy tableau refactorization replaced by a
/// direct LU factorization of the prescribed basis (any nonsingular
/// arrangement of the prescribed column set reproduces the same vertex).
fn warm(problem: &Problem, options: &SimplexOptions, start: &Basis) -> Option<(Solution, Basis)> {
    if !start.fits(problem) {
        return None;
    }
    let mut f = SparseForm::build(problem).ok()?;
    if start.flipped.len() != f.n_real {
        return None;
    }
    // Range/duplicate check on the prescribed basic columns.
    let mut prescribed = vec![false; f.n_real];
    for &col in &start.rows {
        if let Some(j) = col {
            if j >= f.n_real || prescribed[j] {
                return None;
            }
            prescribed[j] = true;
        }
    }
    // The warm path never runs phase 1: bar artificials immediately. Rows
    // whose artificial stays basic get a zero upper bound, so any nonzero
    // beta there becomes a bound violation for the dual repair.
    for j in f.art_start..f.width {
        f.upper[j] = 0.0;
    }
    // Restore bound flips of non-basic columns.
    for (j, &basic) in prescribed.iter().enumerate() {
        if start.flipped[j] && !basic {
            if !f.upper[j].is_finite() {
                return None;
            }
            f.flip_column(j);
        }
    }
    let basis: Vec<usize> = start
        .rows
        .iter()
        .enumerate()
        .map(|(r, col)| col.unwrap_or(f.art_start + r))
        .collect();
    let mut in_basis = vec![false; f.width];
    for &b in &basis {
        in_basis[b] = true;
    }
    // A (near-)singular prescribed basis falls back to the cold solve,
    // like the dense greedy refactorization's no-progress bail-out.
    let mut lu = Factorization::factor(&f.a, &basis).ok()?;
    let mut beta = f.b.clone();
    lu.ftran(&mut beta);
    let mut rev = Rev {
        f,
        basis,
        in_basis,
        beta,
        lu,
        work: 0,
    };

    let tol = options.tolerance;
    let max_iterations = auto_iteration_cap(options, rev.f.m, rev.f.n_real);
    let mut iterations = 0usize;
    if !primal_feasible(&rev, 1e-7) {
        dual_repair(&mut rev, &mut iterations)?;
    }
    run_phase(
        &mut rev,
        false,
        tol,
        max_iterations,
        options.stall_limit,
        &mut iterations,
    )
    .ok()?;
    check_residual(&rev).ok()?;
    let solution = extract_solution(&rev, problem, iterations);
    // Safety net: numerical trouble on the warm path must never leak an
    // infeasible "solution"; the cold path re-solves from scratch instead.
    if !problem.is_feasible(&solution.x, 1e-6) {
        return None;
    }
    let basis = export_basis(&rev, problem.num_vars());
    Some((solution, basis))
}
