//! Sparse standard-form representation for the revised simplex.
//!
//! [`SparseForm`] is the column-compressed analogue of the dense tableau's
//! standard-form conversion: every structural variable shifted by its lower
//! bound so domains are `[0, u]`, one slack/surplus column per inequality,
//! one artificial per row, rows normalized to a non-negative right-hand
//! side. Column orientations carry the bound-flip state (`x ↦ u − x` is a
//! stored column negation), exactly as in the dense tableau, so the two
//! engines walk the same working space and export interchangeable bases.
//!
//! The scheduling LPs this crate serves (paper Lemma 2) have *interval*
//! columns: each `x_{i,t}` touches one demand row and the capacity rows of
//! a single slot, and a job's columns cover a contiguous slot range. The
//! resulting bases are near-banded, which is what keeps LU fill-in small in
//! [`crate::lu`].

use crate::error::LpError;
use crate::problem::{Problem, Relation};

/// A column-compressed sparse matrix (CSC) with mutable values, used for
/// the standard-form constraint matrix. Row indices within a column are
/// strictly increasing.
#[derive(Debug, Clone)]
pub struct CscMatrix {
    /// Number of rows.
    pub m: usize,
    /// Column start offsets into `row_idx`/`values` (`n + 1` entries).
    pub col_ptr: Vec<usize>,
    /// Row index of each stored entry.
    pub row_idx: Vec<usize>,
    /// Value of each stored entry.
    pub values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from per-column entry lists.
    pub fn from_columns(m: usize, columns: &[Vec<(usize, f64)>]) -> CscMatrix {
        let nnz: usize = columns.iter().map(Vec::len).sum();
        let mut col_ptr = Vec::with_capacity(columns.len() + 1);
        let mut row_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        col_ptr.push(0);
        for col in columns {
            for &(r, v) in col {
                debug_assert!(r < m);
                row_idx.push(r);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            m,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Total stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The `(row, value)` entries of column `j`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_idx[range.clone()]
            .iter()
            .zip(self.values[range].iter())
            .map(|(&r, &v)| (r, v))
    }

    /// Entry count of column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Negates every stored value of column `j` (the bound-flip column
    /// transformation).
    pub fn negate_col(&mut self, j: usize) {
        for v in &mut self.values[self.col_ptr[j]..self.col_ptr[j + 1]] {
            *v = -*v;
        }
    }

    /// Sparse dot product of column `j` with a dense vector.
    pub fn col_dot(&self, j: usize, x: &[f64]) -> f64 {
        self.col(j).map(|(r, v)| v * x[r]).sum()
    }

    /// Scatters column `j` into a dense vector (adds onto existing values).
    pub fn scatter_col(&self, j: usize, scale: f64, out: &mut [f64]) {
        for (r, v) in self.col(j) {
            out[r] += scale * v;
        }
    }
}

/// The standard-form LP in column-sparse layout, sharing the dense
/// tableau's column indexing: `[0, n_struct)` structural, `[n_struct,
/// n_real)` slack/surplus, `[n_real, width)` artificial.
#[derive(Debug, Clone)]
pub struct SparseForm {
    /// Row count.
    pub m: usize,
    /// Structural variable count.
    #[cfg_attr(not(test), allow(dead_code))]
    pub n_struct: usize,
    /// Structural + slack column count (artificials excluded).
    pub n_real: usize,
    /// Total columns including artificials.
    pub width: usize,
    /// First artificial column index (`== n_real`).
    pub art_start: usize,
    /// Constraint matrix in the *current* column orientation (flipped
    /// columns are stored negated).
    pub a: CscMatrix,
    /// Current effective right-hand side, adjusted for every flip applied
    /// so far (`b − Σ_flipped u_j · a_j` in current orientations).
    pub b: Vec<f64>,
    /// Upper bound of each column in the working (shifted) space.
    pub upper: Vec<f64>,
    /// Whether each column is currently complemented.
    pub flipped: Vec<bool>,
    /// Phase-2 cost of each column, in *original* orientation.
    pub cost2: Vec<f64>,
    /// Accumulated phase-2 objective constant from shifts and flips.
    pub flip_const2: f64,
}

impl SparseForm {
    /// Standard-form conversion mirroring the dense tableau's
    /// `build_tableau` byte for byte in semantics: same shifts, same slack
    /// and artificial layout, same row normalization.
    ///
    /// # Errors
    ///
    /// [`LpError::InvalidBounds`] if some variable has an empty domain.
    pub fn build(problem: &Problem) -> Result<SparseForm, LpError> {
        let n_struct = problem.num_vars();
        let m = problem.num_constraints();
        let mut upper: Vec<f64> = Vec::with_capacity(n_struct + m);
        for j in 0..n_struct {
            let u = problem.upper[j] - problem.lower[j];
            if u < 0.0 {
                return Err(LpError::InvalidBounds {
                    lower: problem.lower[j],
                    upper: problem.upper[j],
                });
            }
            upper.push(u);
        }
        // Shifted right-hand sides and the per-row normalization sign.
        let mut b = vec![0.0f64; m];
        let mut sign = vec![1.0f64; m];
        for (i, con) in problem.constraints.iter().enumerate() {
            let mut rhs = con.rhs;
            for &(v, a) in &con.terms {
                rhs -= a * problem.lower[v];
            }
            if rhs < 0.0 {
                sign[i] = -1.0;
                rhs = -rhs;
            }
            b[i] = rhs;
        }
        let n_slack = problem
            .constraints
            .iter()
            .filter(|c| c.relation != Relation::Eq)
            .count();
        let n_real = n_struct + n_slack;
        let width = n_real + m;
        // Gather columns: structural from the row-major constraint data,
        // then slack singletons, then artificial singletons.
        let mut columns: Vec<Vec<(usize, f64)>> = vec![Vec::new(); width];
        let mut slack_idx = n_struct;
        for (i, con) in problem.constraints.iter().enumerate() {
            for &(v, a) in &con.terms {
                if a != 0.0 {
                    columns[v].push((i, a * sign[i]));
                }
            }
            match con.relation {
                Relation::Le => {
                    columns[slack_idx].push((i, sign[i]));
                    slack_idx += 1;
                }
                Relation::Ge => {
                    columns[slack_idx].push((i, -sign[i]));
                    slack_idx += 1;
                }
                Relation::Eq => {}
            }
            columns[n_real + i].push((i, 1.0));
        }
        let a = CscMatrix::from_columns(m, &columns);
        upper.resize(n_real, f64::INFINITY); // slacks unbounded above
        upper.resize(width, f64::INFINITY); // artificials (barred later)

        let mut cost2 = vec![0.0f64; width];
        cost2[..n_struct].copy_from_slice(&problem.objective);
        let flip_const2: f64 = problem
            .objective
            .iter()
            .zip(problem.lower.iter())
            .map(|(c, l)| c * l)
            .sum();

        Ok(SparseForm {
            m,
            n_struct,
            n_real,
            width,
            art_start: n_real,
            a,
            b,
            upper,
            flipped: vec![false; width],
            cost2,
            flip_const2,
        })
    }

    /// Phase-2 cost of column `j` in its current orientation.
    pub fn effective_cost2(&self, j: usize) -> f64 {
        if self.flipped[j] {
            -self.cost2[j]
        } else {
            self.cost2[j]
        }
    }

    /// Cost of column `j` for the given phase, current orientation.
    pub fn effective_cost(&self, j: usize, phase1: bool) -> f64 {
        if phase1 {
            if j >= self.art_start {
                1.0
            } else {
                0.0
            }
        } else {
            self.effective_cost2(j)
        }
    }

    /// Complements column `j`: accounts the objective constant, adjusts the
    /// effective right-hand side, and negates the stored column. The caller
    /// is responsible for any `beta` update (the engines maintain basic
    /// values incrementally, exactly like the dense tableau).
    pub fn flip_column(&mut self, j: usize) {
        let u = self.upper[j];
        debug_assert!(u.is_finite());
        self.flip_const2 += self.effective_cost2(j) * u;
        for k in self.a.col_ptr[j]..self.a.col_ptr[j + 1] {
            self.b[self.a.row_idx[k]] -= self.a.values[k] * u;
        }
        self.a.negate_col(j);
        self.flipped[j] = !self.flipped[j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation};

    fn sample() -> Problem {
        let mut p = Problem::new();
        let x = p.add_var(2.0, 1.0, 5.0).unwrap();
        let y = p.add_var(-1.0, 0.0, f64::INFINITY).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Le, 10.0)
            .unwrap();
        p.add_constraint(&[(x, 3.0), (y, -1.0)], Relation::Ge, -4.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 6.0)
            .unwrap();
        p
    }

    #[test]
    fn layout_matches_dense_convention() {
        let f = SparseForm::build(&sample()).unwrap();
        assert_eq!(f.m, 3);
        assert_eq!(f.n_struct, 2);
        assert_eq!(f.n_real, 4); // two inequality slacks
        assert_eq!(f.width, 7); // + three artificials
                                // Row 0: rhs 10 - 1*1 = 9 (positive, unnormalized).
        assert!((f.b[0] - 9.0).abs() < 1e-12);
        // Row 1: rhs -4 - 3*1 = -7 -> normalized to 7 with negated row.
        assert!((f.b[1] - 7.0).abs() < 1e-12);
        // Row 2: rhs 6 - 1 = 5.
        assert!((f.b[2] - 5.0).abs() < 1e-12);
        // Column x touches all three rows; row 1 negated.
        let col: Vec<(usize, f64)> = f.a.col(0).collect();
        assert_eq!(col, vec![(0, 1.0), (1, -3.0), (2, 1.0)]);
        // Surplus column of the Ge row: -1, then negated by normalization.
        let col: Vec<(usize, f64)> = f.a.col(3).collect();
        assert_eq!(col, vec![(1, 1.0)]);
        // Artificials are +1 singletons after normalization.
        for i in 0..3 {
            let col: Vec<(usize, f64)> = f.a.col(4 + i).collect();
            assert_eq!(col, vec![(i, 1.0)]);
        }
        // Shifted bounds and objective constant.
        assert!((f.upper[0] - 4.0).abs() < 1e-12);
        assert!(f.upper[1].is_infinite());
        assert!((f.flip_const2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flip_adjusts_rhs_and_orientation() {
        let mut f = SparseForm::build(&sample()).unwrap();
        let before = f.b.clone();
        f.flip_column(0);
        assert!(f.flipped[0]);
        // b -= u * a_col in the old orientation.
        assert!((f.b[0] - (before[0] - 4.0)).abs() < 1e-12);
        assert!((f.b[1] - (before[1] + 12.0)).abs() < 1e-12);
        let col: Vec<(usize, f64)> = f.a.col(0).collect();
        assert_eq!(col, vec![(0, -1.0), (1, 3.0), (2, -1.0)]);
        // Objective constant moved by c * u.
        assert!((f.flip_const2 - (2.0 + 2.0 * 4.0)).abs() < 1e-12);
        // Flipping back restores everything.
        f.flip_column(0);
        assert!(!f.flipped[0]);
        for (a, b) in f.b.iter().zip(before.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_bounds_rejected() {
        let mut p = Problem::new();
        p.objective.push(1.0);
        p.lower.push(3.0);
        p.upper.push(1.0);
        assert!(matches!(
            SparseForm::build(&p),
            Err(LpError::InvalidBounds { .. })
        ));
    }
}
