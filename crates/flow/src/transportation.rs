//! Transportation-problem layer: place integral job demand into time slots.
//!
//! The scheduling polytope of the paper (constraints Eq. (2)–(5)) with
//! unit-width tasks is a transportation polytope: supply nodes are jobs,
//! demand-side nodes are time slots, and an arc exists wherever slot `t`
//! lies within job `i`'s `[a_i, d_i]` window. Feasibility and an integral
//! allocation follow from one max-flow run.

use crate::dinic::Dinic;
use crate::error::FlowError;
use crate::graph::{EdgeId, FlowNetwork};

/// A bipartite supply/capacity instance.
#[derive(Debug, Clone, Default)]
pub struct Transportation {
    /// Demand of each supply node (job), in allocation units.
    pub supplies: Vec<u64>,
    /// Capacity of each sink-side node (slot), in allocation units.
    pub slot_caps: Vec<u64>,
    /// Admissible `(job, slot, max_units)` placements.
    pub edges: Vec<(usize, usize, u64)>,
}

/// An integral allocation: `allocation[job]` lists `(slot, units)` pairs
/// with positive units.
pub type Allocation = Vec<Vec<(usize, u64)>>;

impl Transportation {
    /// Attempts to place all supply.
    ///
    /// Returns `Ok(Some(allocation))` when all demand fits, `Ok(None)` when
    /// the instance is infeasible (max-flow is short of total supply).
    ///
    /// # Errors
    ///
    /// [`FlowError::NodeOutOfRange`] if an edge references an unknown job or
    /// slot.
    pub fn solve(&self) -> Result<Option<Allocation>, FlowError> {
        let n_jobs = self.supplies.len();
        let n_slots = self.slot_caps.len();
        for &(j, s, _) in &self.edges {
            if j >= n_jobs {
                return Err(FlowError::NodeOutOfRange {
                    node: j,
                    len: n_jobs,
                });
            }
            if s >= n_slots {
                return Err(FlowError::NodeOutOfRange {
                    node: s,
                    len: n_slots,
                });
            }
        }
        // Nodes: 0 = source, 1..=n_jobs = jobs, then slots, then sink.
        let source = 0usize;
        let job_base = 1usize;
        let slot_base = 1 + n_jobs;
        let sink = 1 + n_jobs + n_slots;
        let mut net = FlowNetwork::new(sink + 1);
        for (j, &s) in self.supplies.iter().enumerate() {
            net.add_edge(source, job_base + j, s)?;
        }
        let mut placement_edges: Vec<(usize, usize, EdgeId)> = Vec::with_capacity(self.edges.len());
        for &(j, s, cap) in &self.edges {
            let e = net.add_edge(job_base + j, slot_base + s, cap)?;
            placement_edges.push((j, s, e));
        }
        for (s, &cap) in self.slot_caps.iter().enumerate() {
            net.add_edge(slot_base + s, sink, cap)?;
        }
        let total: u64 = self.supplies.iter().sum();
        let flow = Dinic::new(&mut net).max_flow(source, sink);
        if flow < total {
            return Ok(None);
        }
        let mut allocation: Allocation = vec![Vec::new(); n_jobs];
        for (j, s, e) in placement_edges {
            let f = net.flow(e);
            if f > 0 {
                allocation[j].push((s, f));
            }
        }
        Ok(Some(allocation))
    }

    /// Total supply across all jobs.
    pub fn total_supply(&self) -> u64 {
        self.supplies.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot_loads(alloc: &Allocation, n_slots: usize) -> Vec<u64> {
        let mut loads = vec![0u64; n_slots];
        for per_job in alloc {
            for &(s, f) in per_job {
                loads[s] += f;
            }
        }
        loads
    }

    #[test]
    fn simple_feasible_placement() {
        let inst = Transportation {
            supplies: vec![4, 6],
            slot_caps: vec![5, 5],
            edges: vec![(0, 0, 4), (0, 1, 4), (1, 0, 6), (1, 1, 6)],
        };
        let alloc = inst.solve().unwrap().expect("feasible");
        let per_job: Vec<u64> = alloc
            .iter()
            .map(|v| v.iter().map(|&(_, f)| f).sum())
            .collect();
        assert_eq!(per_job, vec![4, 6]);
        let loads = slot_loads(&alloc, 2);
        assert!(loads.iter().all(|&l| l <= 5));
    }

    #[test]
    fn infeasible_when_capacity_short() {
        let inst = Transportation {
            supplies: vec![10],
            slot_caps: vec![4, 4],
            edges: vec![(0, 0, 10), (0, 1, 10)],
        };
        assert_eq!(inst.solve().unwrap(), None);
    }

    #[test]
    fn window_restrictions_bind() {
        // Job 1 may only use slot 0; job 0 must move to slot 1.
        let inst = Transportation {
            supplies: vec![3, 5],
            slot_caps: vec![5, 5],
            edges: vec![(0, 0, 3), (0, 1, 3), (1, 0, 5)],
        };
        let alloc = inst.solve().unwrap().expect("feasible");
        assert_eq!(alloc[1], vec![(0, 5)]);
        let loads = slot_loads(&alloc, 2);
        assert_eq!(
            loads[0],
            5 + alloc[0]
                .iter()
                .find(|&&(s, _)| s == 0)
                .map_or(0, |&(_, f)| f)
        );
    }

    #[test]
    fn per_edge_caps_model_parallelism_limits() {
        // 6 units over 3 slots with at most 2 per slot: must use all slots.
        let inst = Transportation {
            supplies: vec![6],
            slot_caps: vec![10, 10, 10],
            edges: vec![(0, 0, 2), (0, 1, 2), (0, 2, 2)],
        };
        let alloc = inst.solve().unwrap().expect("feasible");
        let loads = slot_loads(&alloc, 3);
        assert_eq!(loads, vec![2, 2, 2]);
    }

    #[test]
    fn rejects_bad_edge_indices() {
        let inst = Transportation {
            supplies: vec![1],
            slot_caps: vec![1],
            edges: vec![(0, 7, 1)],
        };
        assert!(matches!(
            inst.solve(),
            Err(FlowError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_instance_is_trivially_feasible() {
        let inst = Transportation::default();
        assert_eq!(inst.solve().unwrap(), Some(Vec::new()));
        assert_eq!(inst.total_supply(), 0);
    }

    #[test]
    fn zero_supply_jobs_get_empty_allocations() {
        let inst = Transportation {
            supplies: vec![0, 2],
            slot_caps: vec![2],
            edges: vec![(0, 0, 5), (1, 0, 5)],
        };
        let alloc = inst.solve().unwrap().expect("feasible");
        assert!(alloc[0].is_empty());
        assert_eq!(alloc[1], vec![(0, 2)]);
    }
}
