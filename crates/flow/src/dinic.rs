//! Dinic's maximum-flow algorithm.
//!
//! Level-graph BFS phases with blocking-flow DFS and the current-arc
//! optimisation. Runs in `O(V²E)` generally and `O(E√V)` on the unit-ish
//! bipartite networks produced by [`crate::transportation`], far below the
//! millisecond budget of a scheduler invocation at paper scale
//! (hundreds of jobs × hundreds of slots).

use crate::graph::{FlowNetwork, NodeId};

/// A max-flow computation bound to a mutable network.
///
/// The network retains the resulting flow assignment after
/// [`Dinic::max_flow`] returns, so callers can read per-edge flows via
/// [`FlowNetwork::flow`].
#[derive(Debug)]
pub struct Dinic<'a> {
    net: &'a mut FlowNetwork,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl<'a> Dinic<'a> {
    /// Binds the algorithm to `net`.
    pub fn new(net: &'a mut FlowNetwork) -> Self {
        let n = net.len();
        Dinic {
            net,
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    /// Computes the maximum `source → sink` flow, mutating the bound
    /// network's residual capacities.
    ///
    /// # Panics
    ///
    /// Panics if `source` or `sink` is out of range.
    pub fn max_flow(&mut self, source: NodeId, sink: NodeId) -> u64 {
        assert!(source < self.net.len() && sink < self.net.len());
        if source == sink {
            return 0;
        }
        let mut flow = 0u64;
        while self.bfs(source, sink) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(source, sink, u64::MAX);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// After [`Dinic::max_flow`], returns the source side of a minimum cut:
    /// all nodes reachable from `source` in the residual graph.
    pub fn min_cut_source_side(&mut self, source: NodeId) -> Vec<bool> {
        let n = self.net.len();
        let mut seen = vec![false; n];
        let mut stack = vec![source];
        seen[source] = true;
        while let Some(v) = stack.pop() {
            for arc in &self.net.adj[v] {
                if arc.cap > 0 && !seen[arc.to] {
                    seen[arc.to] = true;
                    stack.push(arc.to);
                }
            }
        }
        seen
    }

    fn bfs(&mut self, source: NodeId, sink: NodeId) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[source] = 0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            for arc in &self.net.adj[v] {
                if arc.cap > 0 && self.level[arc.to] < 0 {
                    self.level[arc.to] = self.level[v] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        self.level[sink] >= 0
    }

    fn dfs(&mut self, v: NodeId, sink: NodeId, limit: u64) -> u64 {
        if v == sink {
            return limit;
        }
        while self.iter[v] < self.net.adj[v].len() {
            let i = self.iter[v];
            let (to, cap, rev) = {
                let arc = &self.net.adj[v][i];
                (arc.to, arc.cap, arc.rev)
            };
            if cap > 0 && self.level[to] == self.level[v] + 1 {
                let pushed = self.dfs(to, sink, limit.min(cap));
                if pushed > 0 {
                    self.net.adj[v][i].cap -= pushed;
                    self.net.adj[to][rev].cap += pushed;
                    return pushed;
                }
            }
            self.iter[v] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlowNetwork;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 9).unwrap();
        assert_eq!(Dinic::new(&mut net).max_flow(0, 1), 9);
    }

    #[test]
    fn classic_diamond() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10).unwrap();
        net.add_edge(0, 2, 10).unwrap();
        net.add_edge(1, 3, 4).unwrap();
        net.add_edge(2, 3, 9).unwrap();
        net.add_edge(1, 2, 6).unwrap();
        assert_eq!(Dinic::new(&mut net).max_flow(0, 3), 13);
    }

    #[test]
    fn disconnected_sink() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5).unwrap();
        assert_eq!(Dinic::new(&mut net).max_flow(0, 2), 0);
    }

    #[test]
    fn source_equals_sink() {
        let mut net = FlowNetwork::new(1);
        assert_eq!(Dinic::new(&mut net).max_flow(0, 0), 0);
    }

    #[test]
    fn min_cut_separates() {
        // Bottleneck edge 1 -> 2 with capacity 1.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 100).unwrap();
        net.add_edge(1, 2, 1).unwrap();
        net.add_edge(2, 3, 100).unwrap();
        let mut dinic = Dinic::new(&mut net);
        assert_eq!(dinic.max_flow(0, 3), 1);
        let cut = dinic.min_cut_source_side(0);
        assert_eq!(cut, vec![true, true, false, false]);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 3).unwrap();
        net.add_edge(0, 1, 4).unwrap();
        assert_eq!(Dinic::new(&mut net).max_flow(0, 1), 7);
    }

    #[test]
    fn flow_conservation_holds() {
        // Random-ish fixed network; verify conservation at internal nodes.
        let mut net = FlowNetwork::new(6);
        let caps = [
            (0, 1, 7),
            (0, 2, 9),
            (1, 3, 5),
            (2, 3, 3),
            (1, 4, 4),
            (2, 4, 6),
            (3, 5, 9),
            (4, 5, 8),
            (3, 4, 2),
        ];
        let edges: Vec<_> = caps
            .iter()
            .map(|&(u, v, c)| ((u, v), net.add_edge(u, v, c).unwrap()))
            .collect();
        let total = Dinic::new(&mut net).max_flow(0, 5);
        assert!(total > 0);
        let mut balance = [0i64; 6];
        for ((u, v), e) in edges {
            let f = net.flow(e) as i64;
            balance[u] -= f;
            balance[v] += f;
        }
        assert_eq!(balance[0], -(total as i64));
        assert_eq!(balance[5], total as i64);
        for (node, &b) in balance.iter().enumerate().take(5).skip(1) {
            assert_eq!(b, 0, "conservation at {node}");
        }
    }
}
