//! Residual flow network representation.

use crate::error::FlowError;

/// Index of a node in a [`FlowNetwork`].
pub type NodeId = usize;

/// Handle to a directed edge, usable to query its final flow after a
/// max-flow computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub(crate) usize);

/// One directed arc and its residual twin.
#[derive(Debug, Clone)]
pub(crate) struct Arc {
    pub(crate) to: NodeId,
    /// Remaining residual capacity.
    pub(crate) cap: u64,
    /// Index of the reverse arc within `to`'s adjacency list.
    pub(crate) rev: usize,
    /// Original capacity (0 for residual twins).
    pub(crate) orig_cap: u64,
}

/// A directed flow network with integer capacities, stored as per-node
/// adjacency lists of residual arcs.
///
/// # Example
///
/// ```
/// use flowtime_flow::{FlowNetwork, Dinic};
/// # fn main() -> Result<(), flowtime_flow::FlowError> {
/// let mut net = FlowNetwork::new(4);
/// let e1 = net.add_edge(0, 1, 3)?;
/// net.add_edge(0, 2, 2)?;
/// net.add_edge(1, 3, 2)?;
/// net.add_edge(2, 3, 3)?;
/// net.add_edge(1, 2, 5)?;
/// let flow = Dinic::new(&mut net).max_flow(0, 3);
/// assert_eq!(flow, 5);
/// assert_eq!(net.flow(e1), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    pub(crate) adj: Vec<Vec<Arc>>,
    /// (node, arc-index) location of each public edge.
    edges: Vec<(NodeId, usize)>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of (forward) edges added.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Appends a fresh node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds a directed edge `from → to` with capacity `cap`.
    ///
    /// # Errors
    ///
    /// [`FlowError::NodeOutOfRange`] if either endpoint does not exist.
    /// Self-loops are permitted but never carry flow.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: u64) -> Result<EdgeId, FlowError> {
        let n = self.adj.len();
        for node in [from, to] {
            if node >= n {
                return Err(FlowError::NodeOutOfRange { node, len: n });
            }
        }
        let fwd_idx = self.adj[from].len();
        let rev_idx = self.adj[to].len() + usize::from(from == to);
        self.adj[from].push(Arc {
            to,
            cap,
            rev: rev_idx,
            orig_cap: cap,
        });
        self.adj[to].push(Arc {
            to: from,
            cap: 0,
            rev: fwd_idx,
            orig_cap: 0,
        });
        self.edges.push((from, fwd_idx));
        Ok(EdgeId(self.edges.len() - 1))
    }

    /// The flow currently carried by `edge` (meaningful after a max-flow
    /// run).
    ///
    /// # Panics
    ///
    /// Panics if `edge` does not belong to this network.
    pub fn flow(&self, edge: EdgeId) -> u64 {
        let (node, idx) = self.edges[edge.0];
        let arc = &self.adj[node][idx];
        arc.orig_cap - arc.cap
    }

    /// Remaining residual capacity of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` does not belong to this network.
    pub fn residual(&self, edge: EdgeId) -> u64 {
        let (node, idx) = self.edges[edge.0];
        self.adj[node][idx].cap
    }

    /// Resets all flows to zero, keeping the topology and capacities.
    pub fn reset(&mut self) {
        for arcs in &mut self.adj {
            for arc in arcs.iter_mut() {
                arc.cap = arc.orig_cap;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 7).unwrap();
        assert_eq!(net.len(), 2);
        assert_eq!(net.edge_count(), 1);
        assert_eq!(net.flow(e), 0);
        assert_eq!(net.residual(e), 7);
    }

    #[test]
    fn out_of_range_edge() {
        let mut net = FlowNetwork::new(1);
        assert_eq!(
            net.add_edge(0, 3, 1),
            Err(FlowError::NodeOutOfRange { node: 3, len: 1 })
        );
    }

    #[test]
    fn add_node_grows() {
        let mut net = FlowNetwork::new(0);
        let a = net.add_node();
        let b = net.add_node();
        assert_eq!((a, b), (0, 1));
        assert!(net.add_edge(a, b, 1).is_ok());
    }

    #[test]
    fn self_loop_is_accepted_and_inert() {
        let mut net = FlowNetwork::new(2);
        let loop_edge = net.add_edge(0, 0, 5).unwrap();
        let real = net.add_edge(0, 1, 5).unwrap();
        let flow = crate::dinic::Dinic::new(&mut net).max_flow(0, 1);
        assert_eq!(flow, 5);
        assert_eq!(net.flow(loop_edge), 0);
        assert_eq!(net.flow(real), 5);
    }

    #[test]
    fn reset_restores_capacity() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 4).unwrap();
        crate::dinic::Dinic::new(&mut net).max_flow(0, 1);
        assert_eq!(net.flow(e), 4);
        net.reset();
        assert_eq!(net.flow(e), 0);
        assert_eq!(net.residual(e), 4);
    }
}
