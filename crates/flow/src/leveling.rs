//! Parametric lexicographic load leveling.
//!
//! This module answers the paper's scheduling question (Eq. (1)) exactly for
//! unit-width allocations: place every deadline job's demand inside its
//! `[start, end)` window so that the *normalized peak load* profile is
//! lexicographically minimal — first minimize the worst slot's `z_t / C_t`,
//! then the next worst among the remaining free slots, and so on.
//!
//! Algorithm:
//!
//! 1. **Parametric search** for the minimal peak ratio `λ`: feasibility at a
//!    given `λ` (slot caps `⌊λ·C_t⌋`) is one max-flow; bisection converges
//!    to the minimal feasible breakpoint. When all free slot capacities are
//!    equal the search runs directly over integer per-slot loads and is
//!    exact by construction.
//! 2. **Min-cut slot fixing** for the lexicographic refinement: at the
//!    optimal `λ`, slots that cannot shed load (their capacity arc is
//!    saturated and they cannot reach the sink in the residual graph) are
//!    *peak-critical*; their caps are frozen and the search repeats over the
//!    remaining slots.
//!
//! Total unimodularity of the underlying polytope means the returned
//! allocation is integral — the combinatorial counterpart of the paper's
//! Lemma 2 argument for the LP.

use crate::dinic::Dinic;
use crate::error::FlowError;
use crate::graph::{EdgeId, FlowNetwork};
use crate::min_cost::CostFlowNetwork;

/// One deadline-aware job for the leveler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelingJob {
    /// First usable slot (inclusive) — the job's arrival/ready slot `a_i`.
    pub start: usize,
    /// One past the last usable slot (exclusive) — the deadline `d_i`.
    pub end: usize,
    /// Total demand in allocation units (e.g. task-slots).
    pub demand: u64,
    /// Optional cap on units placed in any single slot (max parallelism).
    pub per_slot_cap: Option<u64>,
}

/// A leveling instance over a slot horizon.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LevelingInstance {
    /// Capacity `C_t` of each slot, in allocation units.
    pub slot_caps: Vec<u64>,
    /// The deadline jobs to place.
    pub jobs: Vec<LevelingJob>,
}

/// The result of a leveling solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelingSolution {
    /// `allocation[job][slot]` units placed, dense over the horizon.
    pub allocation: Vec<Vec<u64>>,
    /// Per-slot total load `z_t`.
    pub slot_loads: Vec<u64>,
    /// The achieved `max_t z_t / C_t`.
    pub peak_ratio: f64,
}

impl LevelingInstance {
    /// Horizon length in slots.
    pub fn horizon(&self) -> usize {
        self.slot_caps.len()
    }

    fn validate(&self) -> Result<(), FlowError> {
        let horizon = self.horizon();
        for (idx, job) in self.jobs.iter().enumerate() {
            if job.start >= job.end || job.end > horizon {
                return Err(FlowError::InvalidWindow { job: idx });
            }
        }
        Ok(())
    }

    /// Minimizes only the single worst normalized slot load
    /// (one round of the lexicographic process).
    ///
    /// # Errors
    ///
    /// * [`FlowError::InvalidWindow`] for malformed jobs.
    /// * [`FlowError::Infeasible`] if demand does not fit even at full
    ///   capacity.
    pub fn solve_minmax(&self) -> Result<LevelingSolution, FlowError> {
        self.validate()?;
        let fixed = vec![None; self.horizon()];
        let (_, solution, _) = self.minmax_round(&fixed, None)?;
        Ok(solution)
    }

    /// Computes the full lexicographic min-max allocation.
    ///
    /// # Errors
    ///
    /// Same as [`LevelingInstance::solve_minmax`].
    pub fn solve_lexmin(&self) -> Result<LevelingSolution, FlowError> {
        // Each round fixes at least one slot, so `horizon + 1` rounds are
        // always enough for the exact lexicographic optimum.
        self.solve_lexmin_rounds(self.horizon() + 1)
    }

    /// Like [`LevelingInstance::solve_lexmin`] but with a bounded number of
    /// refinement rounds — the first round is always the exact min-max;
    /// further rounds refine lexicographically until the budget runs out.
    /// Schedulers use this to keep re-planning latency bounded on long
    /// horizons.
    ///
    /// # Errors
    ///
    /// Same as [`LevelingInstance::solve_minmax`].
    pub fn solve_lexmin_rounds(&self, max_rounds: usize) -> Result<LevelingSolution, FlowError> {
        self.validate()?;
        let horizon = self.horizon();
        let mut fixed: Vec<Option<u64>> = vec![None; horizon];
        let mut last = None;
        // Warm peak bound: freezing critical slots at their caps keeps the
        // previous round's allocation feasible, so the previous round's
        // per-slot peak bound upper-bounds the next round's optimum — each
        // refinement round searches a strictly smaller range.
        let mut peak_hint = None;
        for _ in 0..max_rounds.max(1) {
            let (caps, solution, bound) = self.minmax_round(&fixed, peak_hint)?;
            peak_hint = bound;
            let critical = self.critical_slots(&caps, &fixed);
            last = Some(solution);
            let mut fixed_any = false;
            for t in 0..horizon {
                if fixed[t].is_none() && critical[t] {
                    fixed[t] = Some(caps[t]);
                    fixed_any = true;
                }
            }
            if !fixed_any {
                // No free slot is pinned at the peak: the remaining profile
                // is already lexicographically settled by the caps in use.
                // Freeze all saturated free slots to make progress; if none
                // are saturated we are done.
                let loads = &last.as_ref().expect("just set").slot_loads;
                let mut saturated_any = false;
                for t in 0..horizon {
                    if fixed[t].is_none() && caps[t] > 0 && loads[t] == caps[t] {
                        fixed[t] = Some(caps[t]);
                        saturated_any = true;
                    }
                }
                if !saturated_any {
                    break;
                }
            }
            if fixed.iter().all(Option::is_some) {
                break;
            }
        }
        Ok(last.expect("at least one round runs"))
    }

    /// Places all demand within per-slot caps `caps`, choosing — among all
    /// feasible placements — one that *front-loads* work: each unit in
    /// slot `t` costs `t` in a min-cost max-flow, so jobs finish as early
    /// as the caps allow. An alternative secondary objective to the
    /// lexicographic refinement (work-conserving rather than flat).
    ///
    /// # Errors
    ///
    /// * [`FlowError::InvalidWindow`] for malformed jobs.
    /// * [`FlowError::Infeasible`] if demand does not fit under `caps`.
    pub fn solve_earliest_within(&self, caps: &[u64]) -> Result<LevelingSolution, FlowError> {
        self.validate()?;
        let n_jobs = self.jobs.len();
        let horizon = self.horizon();
        let caps_len = caps.len().min(horizon);
        let source = 0usize;
        let job_base = 1usize;
        let slot_base = 1 + n_jobs;
        let sink = 1 + n_jobs + horizon;
        let mut net = CostFlowNetwork::new(sink + 1);
        let mut placements = Vec::new();
        for (j, job) in self.jobs.iter().enumerate() {
            net.add_edge(source, job_base + j, job.demand, 0)?;
            let per_slot = job.per_slot_cap.unwrap_or(job.demand).min(job.demand);
            for t in job.start..job.end {
                let e = net.add_edge(job_base + j, slot_base + t, per_slot, t as i64)?;
                placements.push((j, t, e));
            }
        }
        for (t, &cap) in caps.iter().enumerate().take(caps_len) {
            net.add_edge(slot_base + t, sink, cap.min(self.slot_caps[t]), 0)?;
        }
        let total: u64 = self.jobs.iter().map(|j| j.demand).sum();
        let (flow, _cost) = net.min_cost_max_flow(source, sink);
        if flow < total {
            return Err(FlowError::Infeasible);
        }
        let mut allocation = vec![vec![0u64; horizon]; n_jobs];
        let mut slot_loads = vec![0u64; horizon];
        for (j, t, e) in placements {
            let f = net.flow(e);
            allocation[j][t] = f;
            slot_loads[t] += f;
        }
        let peak_ratio = slot_loads
            .iter()
            .zip(self.slot_caps.iter())
            .filter(|&(_, &c)| c > 0)
            .map(|(&z, &c)| z as f64 / c as f64)
            .fold(0.0f64, f64::max);
        Ok(LevelingSolution {
            allocation,
            slot_loads,
            peak_ratio,
        })
    }

    /// One parametric round: minimal peak over free slots given `fixed`
    /// caps. Returns the caps in effect, the allocation found, and — on
    /// the uniform integer-search path — the minimal per-slot bound, which
    /// the caller may feed back as `peak_hint` to shrink the next round's
    /// search range (the hint is verified feasible before it is trusted).
    fn minmax_round(
        &self,
        fixed: &[Option<u64>],
        peak_hint: Option<u64>,
    ) -> Result<(Vec<u64>, LevelingSolution, Option<u64>), FlowError> {
        // Feasibility requires the full-capacity instance to fit.
        if !self.feasible(&self.caps_at(1.0, fixed))? {
            return Err(FlowError::Infeasible);
        }
        let free_caps: Vec<u64> = (0..self.horizon())
            .filter(|&t| fixed[t].is_none())
            .map(|t| self.slot_caps[t])
            .collect();
        let uniform = free_caps.windows(2).all(|w| w[0] == w[1]);
        let mut found_bound = None;
        let caps = if let (true, Some(&c)) = (uniform, free_caps.first()) {
            // Exact integer search over the per-slot load bound `m`,
            // top-seeded by the previous round's bound when available.
            let mut hi = c;
            if let Some(h) = peak_hint {
                let h = h.min(c);
                if h < hi && self.feasible(&self.caps_with_free_bound(h, fixed))? {
                    hi = h;
                }
            }
            let mut lo = 0u64;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let caps = self.caps_with_free_bound(mid, fixed);
                if self.feasible(&caps)? {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            found_bound = Some(lo);
            self.caps_with_free_bound(lo, fixed)
        } else {
            // Bisection on the real ratio λ; integer caps change only at
            // breakpoints k/C_t, so 60 iterations pin the minimal one for
            // any realistic capacity magnitude.
            let (mut lo, mut hi) = (0.0f64, 1.0f64);
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if self.feasible(&self.caps_at(mid, fixed))? {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            self.caps_at(hi, fixed)
        };
        let solution = self.allocate(&caps)?;
        Ok((caps, solution, found_bound))
    }

    fn caps_at(&self, lambda: f64, fixed: &[Option<u64>]) -> Vec<u64> {
        self.slot_caps
            .iter()
            .enumerate()
            .map(|(t, &c)| match fixed[t] {
                Some(f) => f,
                None => ((lambda * c as f64) + 1e-9).floor() as u64,
            })
            .collect()
    }

    fn caps_with_free_bound(&self, bound: u64, fixed: &[Option<u64>]) -> Vec<u64> {
        self.slot_caps
            .iter()
            .enumerate()
            .map(|(t, &c)| match fixed[t] {
                Some(f) => f,
                None => bound.min(c),
            })
            .collect()
    }

    fn build_network(
        &self,
        caps: &[u64],
    ) -> (FlowNetwork, Vec<(usize, usize, EdgeId)>, usize, usize) {
        let n_jobs = self.jobs.len();
        let n_slots = self.horizon();
        let source = 0usize;
        let job_base = 1usize;
        let slot_base = 1 + n_jobs;
        let sink = 1 + n_jobs + n_slots;
        let mut net = FlowNetwork::new(sink + 1);
        let mut placements = Vec::new();
        for (j, job) in self.jobs.iter().enumerate() {
            net.add_edge(source, job_base + j, job.demand)
                .expect("valid node");
            let per_slot = job.per_slot_cap.unwrap_or(job.demand).min(job.demand);
            for t in job.start..job.end {
                let e = net
                    .add_edge(job_base + j, slot_base + t, per_slot)
                    .expect("valid node");
                placements.push((j, t, e));
            }
        }
        for (t, &cap) in caps.iter().enumerate() {
            net.add_edge(slot_base + t, sink, cap).expect("valid node");
        }
        (net, placements, source, sink)
    }

    fn feasible(&self, caps: &[u64]) -> Result<bool, FlowError> {
        let total: u64 = self.jobs.iter().map(|j| j.demand).sum();
        let (mut net, _, source, sink) = self.build_network(caps);
        let flow = Dinic::new(&mut net).max_flow(source, sink);
        Ok(flow == total)
    }

    fn allocate(&self, caps: &[u64]) -> Result<LevelingSolution, FlowError> {
        let total: u64 = self.jobs.iter().map(|j| j.demand).sum();
        let (mut net, placements, source, sink) = self.build_network(caps);
        let flow = Dinic::new(&mut net).max_flow(source, sink);
        if flow < total {
            return Err(FlowError::Infeasible);
        }
        let horizon = self.horizon();
        let mut allocation = vec![vec![0u64; horizon]; self.jobs.len()];
        let mut slot_loads = vec![0u64; horizon];
        for (j, t, e) in placements {
            let f = net.flow(e);
            allocation[j][t] = f;
            slot_loads[t] += f;
        }
        let peak_ratio = slot_loads
            .iter()
            .zip(self.slot_caps.iter())
            .filter(|&(_, &c)| c > 0)
            .map(|(&z, &c)| z as f64 / c as f64)
            .fold(0.0f64, f64::max);
        Ok(LevelingSolution {
            allocation,
            slot_loads,
            peak_ratio,
        })
    }

    /// Free slots that cannot shed load at the given caps: the capacity arc
    /// is saturated and the slot node cannot reach the sink in the residual
    /// graph (so no rerouting exists). These are pinned in every feasible
    /// allocation at these caps.
    fn critical_slots(&self, caps: &[u64], fixed: &[Option<u64>]) -> Vec<bool> {
        let n_jobs = self.jobs.len();
        let n_slots = self.horizon();
        let slot_base = 1 + n_jobs;
        let sink = 1 + n_jobs + n_slots;
        let (mut net, _, source, _) = self.build_network(caps);
        Dinic::new(&mut net).max_flow(source, sink);
        // Reverse reachability to the sink over residual arcs.
        let n = net.len();
        let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (v, arcs) in net.adj.iter().enumerate() {
            for arc in arcs {
                if arc.cap > 0 {
                    radj[arc.to].push(v);
                }
            }
        }
        let mut can_reach_sink = vec![false; n];
        let mut stack = vec![sink];
        can_reach_sink[sink] = true;
        while let Some(v) = stack.pop() {
            for &p in &radj[v] {
                if !can_reach_sink[p] {
                    can_reach_sink[p] = true;
                    stack.push(p);
                }
            }
        }
        (0..n_slots)
            .map(|t| fixed[t].is_none() && caps[t] > 0 && !can_reach_sink[slot_base + t])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(start: usize, end: usize, demand: u64) -> LevelingJob {
        LevelingJob {
            start,
            end,
            demand,
            per_slot_cap: None,
        }
    }

    fn check_valid(inst: &LevelingInstance, sol: &LevelingSolution) {
        for (j, alloc) in sol.allocation.iter().enumerate() {
            let total: u64 = alloc.iter().sum();
            assert_eq!(total, inst.jobs[j].demand, "job {j} demand");
            for (t, &a) in alloc.iter().enumerate() {
                if a > 0 {
                    assert!(t >= inst.jobs[j].start && t < inst.jobs[j].end, "window");
                    if let Some(cap) = inst.jobs[j].per_slot_cap {
                        assert!(a <= cap, "per-slot cap");
                    }
                }
            }
        }
        for (t, &load) in sol.slot_loads.iter().enumerate() {
            assert!(load <= inst.slot_caps[t], "capacity at {t}");
        }
    }

    #[test]
    fn levels_uniform_demand_evenly() {
        let inst = LevelingInstance {
            slot_caps: vec![10; 4],
            jobs: vec![job(0, 4, 12), job(0, 4, 8)],
        };
        let sol = inst.solve_lexmin().unwrap();
        check_valid(&inst, &sol);
        assert_eq!(sol.slot_loads, vec![5, 5, 5, 5]);
        assert!((sol.peak_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn peak_hint_seeding_matches_unseeded_refinement() {
        // Replicates the refinement loop with no peak hint, round by
        // round, and checks the seeded public path lands on the identical
        // allocation — the hint only prunes the search range, never the
        // answer.
        let inst = LevelingInstance {
            slot_caps: vec![10; 8],
            jobs: vec![job(0, 2, 14), job(1, 5, 6), job(2, 8, 12)],
        };
        let seeded = inst.solve_lexmin().unwrap();
        check_valid(&inst, &seeded);
        let horizon = inst.horizon();
        let mut fixed: Vec<Option<u64>> = vec![None; horizon];
        let mut last = None;
        for _ in 0..=horizon {
            let (caps, solution, _) = inst.minmax_round(&fixed, None).unwrap();
            let critical = inst.critical_slots(&caps, &fixed);
            last = Some(solution);
            let mut fixed_any = false;
            for t in 0..horizon {
                if fixed[t].is_none() && critical[t] {
                    fixed[t] = Some(caps[t]);
                    fixed_any = true;
                }
            }
            if !fixed_any {
                let loads = &last.as_ref().unwrap().slot_loads;
                let mut saturated_any = false;
                for t in 0..horizon {
                    if fixed[t].is_none() && caps[t] > 0 && loads[t] == caps[t] {
                        fixed[t] = Some(caps[t]);
                        saturated_any = true;
                    }
                }
                if !saturated_any {
                    break;
                }
            }
            if fixed.iter().all(Option::is_some) {
                break;
            }
        }
        let unseeded = last.unwrap();
        assert_eq!(seeded.allocation, unseeded.allocation);
        assert_eq!(seeded.slot_loads, unseeded.slot_loads);
    }

    #[test]
    fn tight_window_forces_peak() {
        // Job 0 must cram 8 units into slots [0,2); job 1 is flexible.
        let inst = LevelingInstance {
            slot_caps: vec![10; 4],
            jobs: vec![job(0, 2, 8), job(0, 4, 8)],
        };
        let sol = inst.solve_lexmin().unwrap();
        check_valid(&inst, &sol);
        // Minimal peak is 4 (job 0 split evenly), and the flexible job's
        // load levels the rest: loads 4,4,4,4.
        assert_eq!(sol.slot_loads, vec![4, 4, 4, 4]);
    }

    #[test]
    fn lexicographic_refinement_flattens_tail() {
        // One rigid job pins slots 0-1 at 6; the flexible job should spread
        // over slots 2..6 evenly rather than arbitrarily.
        let inst = LevelingInstance {
            slot_caps: vec![10; 6],
            jobs: vec![job(0, 2, 12), job(2, 6, 8)],
        };
        let sol = inst.solve_lexmin().unwrap();
        check_valid(&inst, &sol);
        assert_eq!(&sol.slot_loads[..2], &[6, 6]);
        assert_eq!(&sol.slot_loads[2..], &[2, 2, 2, 2]);
    }

    #[test]
    fn respects_per_slot_caps() {
        let inst = LevelingInstance {
            slot_caps: vec![100; 5],
            jobs: vec![LevelingJob {
                start: 0,
                end: 5,
                demand: 10,
                per_slot_cap: Some(2),
            }],
        };
        let sol = inst.solve_lexmin().unwrap();
        check_valid(&inst, &sol);
        assert_eq!(sol.slot_loads, vec![2, 2, 2, 2, 2]);
    }

    #[test]
    fn infeasible_demand_detected() {
        let inst = LevelingInstance {
            slot_caps: vec![2; 2],
            jobs: vec![job(0, 2, 5)],
        };
        assert_eq!(inst.solve_lexmin().unwrap_err(), FlowError::Infeasible);
        assert_eq!(inst.solve_minmax().unwrap_err(), FlowError::Infeasible);
    }

    #[test]
    fn invalid_window_detected() {
        let inst = LevelingInstance {
            slot_caps: vec![2; 2],
            jobs: vec![job(1, 1, 1)],
        };
        assert_eq!(
            inst.solve_lexmin().unwrap_err(),
            FlowError::InvalidWindow { job: 0 }
        );
        let inst2 = LevelingInstance {
            slot_caps: vec![2; 2],
            jobs: vec![job(0, 3, 1)],
        };
        assert!(matches!(
            inst2.solve_lexmin(),
            Err(FlowError::InvalidWindow { .. })
        ));
    }

    #[test]
    fn heterogeneous_capacities_normalize() {
        // Slot 0 has capacity 20, slot 1 capacity 10: leveling by *ratio*
        // puts twice as much load on slot 0.
        let inst = LevelingInstance {
            slot_caps: vec![20, 10],
            jobs: vec![job(0, 2, 15)],
        };
        let sol = inst.solve_lexmin().unwrap();
        check_valid(&inst, &sol);
        assert_eq!(sol.slot_loads, vec![10, 5]);
        assert!((sol.peak_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_instance() {
        let inst = LevelingInstance {
            slot_caps: vec![5; 3],
            jobs: vec![],
        };
        let sol = inst.solve_lexmin().unwrap();
        assert_eq!(sol.peak_ratio, 0.0);
        assert_eq!(sol.slot_loads, vec![0, 0, 0]);
    }

    #[test]
    fn motivating_example_leaves_room_for_adhoc() {
        // Paper Fig. 1: workflow W1 = two chained jobs, deadline slot 200,
        // cluster capacity normalized to 1 "job-width" unit per slot... use
        // 2 units/slot so the leveler can halve the footprint.
        // Job1 work 100 units in window [0,100), job2 in [100, 200): but the
        // leveler sees the *decomposed* windows; with loose deadlines it
        // stretches each job across its window at half width.
        let inst = LevelingInstance {
            slot_caps: vec![2; 200],
            jobs: vec![job(0, 100, 100), job(100, 200, 100)],
        };
        let sol = inst.solve_lexmin().unwrap();
        check_valid(&inst, &sol);
        // Exactly one unit per slot everywhere: half the cluster stays free
        // for ad-hoc jobs at all times.
        assert!(sol.slot_loads.iter().all(|&l| l == 1));
        assert!((sol.peak_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn earliest_within_caps_front_loads() {
        // 12 units over 6 slots with a per-slot cap of 3: the earliest
        // placement fills slots 0..4 at the cap rather than leveling at 2.
        let inst = LevelingInstance {
            slot_caps: vec![10; 6],
            jobs: vec![job(0, 6, 12)],
        };
        let early = inst.solve_earliest_within(&[3, 3, 3, 3, 3, 3]).unwrap();
        assert_eq!(early.slot_loads, vec![3, 3, 3, 3, 0, 0]);
        // The lexmin solution levels instead.
        let level = inst.solve_lexmin().unwrap();
        assert_eq!(level.slot_loads, vec![2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn earliest_within_caps_respects_windows_and_demand() {
        let inst = LevelingInstance {
            slot_caps: vec![10; 4],
            jobs: vec![job(1, 4, 6), job(0, 2, 4)],
        };
        let sol = inst.solve_earliest_within(&[5, 5, 5, 5]).unwrap();
        check_valid(&inst, &sol);
        // Job 1 (window 0..2) grabs slot 0 first; job 0 starts at slot 1.
        assert!(sol.allocation[1][0] > 0);
        assert_eq!(sol.allocation[0][0], 0);
    }

    #[test]
    fn earliest_within_caps_detects_infeasible_caps() {
        let inst = LevelingInstance {
            slot_caps: vec![10; 2],
            jobs: vec![job(0, 2, 10)],
        };
        assert_eq!(
            inst.solve_earliest_within(&[2, 2]).unwrap_err(),
            FlowError::Infeasible
        );
    }

    #[test]
    fn minmax_alone_does_not_flatten_tail() {
        // solve_minmax only guarantees the single worst slot; this is the
        // behavioural difference the lexicographic pass exists to fix.
        let inst = LevelingInstance {
            slot_caps: vec![10; 6],
            jobs: vec![job(0, 2, 12), job(2, 6, 8)],
        };
        let minmax = inst.solve_minmax().unwrap();
        check_valid(&inst, &minmax);
        assert_eq!(minmax.slot_loads[..2].iter().max(), Some(&6));
    }
}
