//! Max-flow based solvers for the FlowTime scheduling polytope.
//!
//! Lemma 2 of the paper shows the deadline-scheduling constraint matrix is
//! totally unimodular: each allocation variable `x_it` appears in one job
//! (demand) row and one slot (capacity) row — an interval/bipartite
//! structure. That polytope is a *transportation polytope*, so the LP can
//! also be solved exactly — with guaranteed integral solutions — by
//! combinatorial max-flow:
//!
//! * [`graph::FlowNetwork`] + [`dinic::Dinic`] — Dinic's max-flow algorithm
//!   on integer capacities.
//! * [`transportation`] — feasibility and allocation extraction for
//!   jobs-with-windows vs. slot-capacity instances.
//! * [`leveling`] — the scheduler's actual question: the **lexicographic
//!   min-max load profile** (paper Eq. (1)), found by parametric binary
//!   search over the peak ratio with min-cut-guided slot fixing.
//!
//! This crate serves as the exact combinatorial backend and as an
//! independent cross-check of the simplex backend in `flowtime-lp`; the
//! property-test suite asserts both produce the same optimal peak.
//!
//! # Example
//!
//! ```
//! use flowtime_flow::leveling::{LevelingInstance, LevelingJob};
//!
//! # fn main() -> Result<(), flowtime_flow::FlowError> {
//! // Two jobs on a 4-slot horizon of capacity 10/slot.
//! let inst = LevelingInstance {
//!     slot_caps: vec![10; 4],
//!     jobs: vec![
//!         LevelingJob { start: 0, end: 4, demand: 12, per_slot_cap: None },
//!         LevelingJob { start: 0, end: 2, demand: 8, per_slot_cap: None },
//!     ],
//! };
//! let sol = inst.solve_lexmin()?;
//! // 20 units over 4 slots level out to 5 per slot.
//! assert!((sol.peak_ratio - 0.5).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dinic;
pub mod error;
pub mod graph;
pub mod leveling;
pub mod min_cost;
pub mod transportation;

pub use dinic::Dinic;
pub use error::FlowError;
pub use graph::{EdgeId, FlowNetwork, NodeId};
pub use leveling::{LevelingInstance, LevelingJob, LevelingSolution};
pub use min_cost::CostFlowNetwork;
